//! Offline shim for `proptest`.
//!
//! Provides the subset of proptest's API that the workspace's property
//! tests use: the `proptest!` macro, `prop_assert*`/`prop_assume!`,
//! strategies for primitive types and ranges, tuple composition,
//! `prop::collection::vec`, `prop::bool::weighted` and `prop_map`.
//!
//! Unlike real proptest there is no shrinking: each test runs a fixed
//! number of randomized cases (default 64, `PROPTEST_CASES` overrides,
//! `ProptestConfig::with_cases` pins). Failures report the panicking
//! assertion directly — cases are reproducible because the RNG is seeded
//! from the test name.

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of randomized cases to execute.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running exactly `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        ProptestConfig { cases }
    }
}

/// Test-case level control flow.
pub mod test_runner {
    /// Why a case ended without completing its body.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case's inputs were rejected via `prop_assume!`.
        Reject,
    }

    /// Deterministic per-test RNG (splitmix64 over a name-derived seed).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from a test name so every run draws the same cases.
        pub fn from_name(name: &str) -> TestRng {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, 1)`.
        pub fn f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform draw in `[0, n)`.
        pub fn below(&mut self, n: u64) -> u64 {
            ((self.next_u64() as u128 * n as u128) >> 64) as u64
        }
    }
}

/// Strategies: composable random value generators.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of random values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy producing a fixed value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Whole-domain strategy for primitives; see [`any`].
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    /// Uniform strategy over a primitive type's whole domain.
    pub fn any<T>() -> Any<T>
    where
        Any<T>: Strategy<Value = T>,
    {
        Any(std::marker::PhantomData)
    }

    macro_rules! impl_any_int {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Any<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Strategy for Any<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            rng.f64()
        }
    }

    macro_rules! impl_range_int {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + rng.below(span + 1) as $t
                }
            }
        )*};
    }
    impl_range_int!(u8, u16, u32, u64, usize, i64);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            self.start + rng.f64() * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple!(A: 0);
    impl_tuple!(A: 0, B: 1);
    impl_tuple!(A: 0, B: 1, C: 2);
    impl_tuple!(A: 0, B: 1, C: 2, D: 3);
    impl_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
    impl_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
}

/// Namespaced strategy constructors (`prop::collection::vec`, ...).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Strategy for `Vec`s with random length in `len` and elements
        /// drawn from `element`.
        pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        /// See [`vec`].
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            len: std::ops::Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                assert!(self.len.start < self.len.end, "empty length range");
                let span = (self.len.end - self.len.start) as u64;
                let n = self.len.start + rng.below(span) as usize;
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// Boolean strategies.
    pub mod bool {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Strategy drawing `true` with probability `p`.
        pub fn weighted(p: f64) -> Weighted {
            Weighted { p }
        }

        /// See [`weighted`].
        #[derive(Debug, Clone, Copy)]
        pub struct Weighted {
            p: f64,
        }

        impl Strategy for Weighted {
            type Value = bool;
            fn generate(&self, rng: &mut TestRng) -> bool {
                rng.f64() < self.p
            }
        }
    }
}

/// Everything a property test file needs.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Asserts a condition inside a property test case.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property test case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skips the current case when its inputs are uninteresting.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Declares `#[test]` functions that run their body over randomized inputs.
///
/// Supports the same surface the workspace uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///
///     /// Doc comments are allowed.
///     fn my_property(x in 0u64..100, v in prop::collection::vec(any::<u8>(), 0..16)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr);
     $($(#[$meta:meta])*
       fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng =
                    $crate::test_runner::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..config.cases {
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match outcome {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject,
                        ) => continue,
                    }
                }
            }
        )*
    };
}
