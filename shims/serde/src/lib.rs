//! Offline shim for `serde`.
//!
//! Provides the `Serialize`/`Deserialize` names (trait + derive macro) that
//! the workspace's `#[derive(...)]` attributes and `use serde::{...}`
//! imports refer to. No actual serialization framework is included; the
//! repo writes its machine-readable output (`BENCH_*.json`) by hand.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
