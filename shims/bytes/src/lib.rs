//! Offline shim for the `bytes` crate.
//!
//! Implements the subset the workspace uses: `BytesMut` as a growable
//! buffer with big-endian `put_*` methods, `Bytes` as a cheaply clonable
//! immutable buffer, and the `Buf`/`BufMut` traits with the big-endian
//! integer accessors the wire codec needs.

use std::sync::Arc;

/// Cheaply clonable immutable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Bytes {
        Bytes {
            data: Arc::from(&[][..]),
        }
    }

    /// Wraps a static slice.
    pub fn from_static(s: &'static [u8]) -> Bytes {
        Bytes { data: Arc::from(s) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the contents into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes {
            data: Arc::from(v.into_boxed_slice()),
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Bytes {
        Bytes { data: Arc::from(s) }
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data[..] == other.data[..]
    }
}
impl Eq for Bytes {}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.data.hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

/// Growable byte buffer with big-endian writers.
#[derive(Clone, Default, Debug)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> BytesMut {
        BytesMut { data: Vec::new() }
    }

    /// Creates an empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Read cursor over a byte source; all integer accessors are big-endian.
pub trait Buf {
    /// Bytes remaining.
    fn remaining(&self) -> usize;
    /// Advances the cursor by `n` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds [`Buf::remaining`].
    fn advance(&mut self, n: usize);
    /// Borrows the unread bytes.
    fn chunk(&self) -> &[u8];

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }
    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let v = u16::from_be_bytes(self.chunk()[..2].try_into().expect("2 bytes"));
        self.advance(2);
        v
    }
    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let v = u32::from_be_bytes(self.chunk()[..4].try_into().expect("4 bytes"));
        self.advance(4);
        v
    }
    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let v = u64::from_be_bytes(self.chunk()[..8].try_into().expect("8 bytes"));
        self.advance(8);
        v
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }
    fn chunk(&self) -> &[u8] {
        self
    }
}

/// Write cursor; all integer writers are big-endian.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Writes one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Writes a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Writes a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Writes a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_big_endian() {
        let mut b = BytesMut::with_capacity(15);
        b.put_u8(0xab);
        b.put_u16(0x1234);
        b.put_u32(0xdead_beef);
        b.put_u64(0x0102_0304_0506_0708);
        let frozen = b.freeze();
        assert_eq!(frozen.len(), 15);
        let mut r: &[u8] = &frozen;
        assert_eq!(r.get_u8(), 0xab);
        assert_eq!(r.get_u16(), 0x1234);
        assert_eq!(r.get_u32(), 0xdead_beef);
        assert_eq!(r.get_u64(), 0x0102_0304_0506_0708);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn bytes_clone_is_shallow_and_equal() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(&*b, &[1, 2, 3]);
    }
}
