//! Offline shim for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its config and report
//! types but never actually serializes through serde (JSON output is
//! hand-rolled). These derives therefore expand to nothing; they exist so
//! the `#[derive(Serialize, Deserialize)]` attributes compile without
//! registry access.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
