//! Offline stand-in for the `libfuzzer-sys` crate.
//!
//! The real crate links the target against LLVM's libFuzzer runtime and
//! needs a nightly toolchain (`cargo fuzz run …`). This environment has
//! neither, so [`fuzz_target!`] expands to an ordinary binary:
//!
//! - `target <file>…` replays each file through the fuzz body (the
//!   corpus-replay mode CI uses for the committed regression corpus);
//! - `target` with no arguments runs `FUZZ_RUNS` (default 4096)
//!   random byte buffers derived from `FUZZ_SEED` (default 0) through
//!   the body — deterministic, so a failing `(seed, runs)` pair is a
//!   complete repro.
//!
//! Either way a panic in the body aborts the process with a nonzero
//! exit, which is all the harness contract the workspace relies on. The
//! same bodies are mirrored as proptests in `crates/swarm`, so `cargo
//! test` exercises them without this shim's driver. If a real nightly +
//! cargo-fuzz toolchain is available, delete this shim from
//! `[workspace.dependencies]` and the `fuzz/` member builds unchanged
//! against the real crate.

/// Deterministic byte generator for the no-argument mode: splitmix64
/// over the run index, sliced into 0..=511-byte buffers.
#[doc(hidden)]
pub fn random_buffer(seed: u64, run: u64) -> Vec<u8> {
    let mut state = seed ^ run.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let len = (next() % 512) as usize;
    let mut buf = Vec::with_capacity(len);
    while buf.len() < len {
        buf.extend_from_slice(&next().to_le_bytes());
    }
    buf.truncate(len);
    buf
}

#[doc(hidden)]
pub fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The subset of `libfuzzer_sys::fuzz_target!` the workspace uses:
/// `fuzz_target!(|data: &[u8]| { … });`.
#[macro_export]
macro_rules! fuzz_target {
    (|$data:ident: &[u8]| $body:block) => {
        fn fuzz_one($data: &[u8]) $body

        fn main() {
            let files: Vec<String> = std::env::args().skip(1).collect();
            if files.is_empty() {
                let seed = $crate::env_u64("FUZZ_SEED", 0);
                let runs = $crate::env_u64("FUZZ_RUNS", 4096);
                for run in 0..runs {
                    fuzz_one(&$crate::random_buffer(seed, run));
                }
                eprintln!("ok: {runs} random inputs (FUZZ_SEED={seed})");
            } else {
                for f in &files {
                    let data = std::fs::read(f)
                        .unwrap_or_else(|e| panic!("cannot read corpus file {f}: {e}"));
                    fuzz_one(&data);
                }
                eprintln!("ok: replayed {} corpus file(s)", files.len());
            }
        }
    };
}
