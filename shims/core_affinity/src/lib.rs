//! Offline shim for the `core_affinity` crate.
//!
//! Implements the narrow API the workspace consumes — [`CoreId`],
//! [`get_core_ids`] and [`set_for_current`] — without any external
//! dependency. On Linux (x86_64 / aarch64) the calls go straight to the
//! `sched_getaffinity` / `sched_setaffinity` syscalls via inline assembly;
//! everywhere else they degrade gracefully (`get_core_ids` falls back to
//! `available_parallelism`, `set_for_current` is a no-op returning `false`),
//! so callers can treat pinning as best-effort.

/// Identifier of one logical CPU, as understood by the scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CoreId {
    /// The logical CPU index.
    pub id: usize,
}

/// Size of the CPU mask handed to the kernel, in bytes (1024 CPUs).
const MASK_BYTES: usize = 128;
const MASK_WORDS: usize = MASK_BYTES / 8;

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
mod sys {
    use super::{MASK_BYTES, MASK_WORDS};

    const SYS_SCHED_SETAFFINITY: u64 = 203;
    const SYS_SCHED_GETAFFINITY: u64 = 204;

    fn syscall3(nr: u64, a1: u64, a2: u64, a3: u64) -> i64 {
        let ret: i64;
        // SAFETY: raw Linux syscall with the registers the x86_64 ABI
        // specifies; the kernel only reads/writes the `MASK_BYTES` buffer
        // whose pointer and length we pass, and the asm clobbers (rcx, r11)
        // are declared.
        unsafe {
            std::arch::asm!(
                "syscall",
                inlateout("rax") nr => ret,
                in("rdi") a1,
                in("rsi") a2,
                in("rdx") a3,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        ret
    }

    /// Reads the calling thread's allowed-CPU mask; `None` on failure.
    pub fn get_mask() -> Option<[u64; MASK_WORDS]> {
        let mut mask = [0u64; MASK_WORDS];
        let ret = syscall3(
            SYS_SCHED_GETAFFINITY,
            0,
            MASK_BYTES as u64,
            mask.as_mut_ptr() as u64,
        );
        (ret > 0).then_some(mask)
    }

    /// Restricts the calling thread to the CPUs set in `mask`.
    pub fn set_mask(mask: &[u64; MASK_WORDS]) -> bool {
        syscall3(
            SYS_SCHED_SETAFFINITY,
            0,
            MASK_BYTES as u64,
            mask.as_ptr() as u64,
        ) == 0
    }
}

#[cfg(all(target_os = "linux", target_arch = "aarch64"))]
mod sys {
    use super::{MASK_BYTES, MASK_WORDS};

    const SYS_SCHED_SETAFFINITY: u64 = 122;
    const SYS_SCHED_GETAFFINITY: u64 = 123;

    fn syscall3(nr: u64, a1: u64, a2: u64, a3: u64) -> i64 {
        let ret: i64;
        // SAFETY: raw Linux syscall per the aarch64 ABI (number in x8,
        // args in x0..x2); the kernel only touches the buffer we pass.
        unsafe {
            std::arch::asm!(
                "svc 0",
                in("x8") nr,
                inlateout("x0") a1 => ret,
                in("x1") a2,
                in("x2") a3,
                options(nostack),
            );
        }
        ret
    }

    /// Reads the calling thread's allowed-CPU mask; `None` on failure.
    pub fn get_mask() -> Option<[u64; MASK_WORDS]> {
        let mut mask = [0u64; MASK_WORDS];
        let ret = syscall3(
            SYS_SCHED_GETAFFINITY,
            0,
            MASK_BYTES as u64,
            mask.as_mut_ptr() as u64,
        );
        (ret > 0).then_some(mask)
    }

    /// Restricts the calling thread to the CPUs set in `mask`.
    pub fn set_mask(mask: &[u64; MASK_WORDS]) -> bool {
        syscall3(
            SYS_SCHED_SETAFFINITY,
            0,
            MASK_BYTES as u64,
            mask.as_ptr() as u64,
        ) == 0
    }
}

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
mod sys {
    use super::MASK_WORDS;

    pub fn get_mask() -> Option<[u64; MASK_WORDS]> {
        None
    }

    pub fn set_mask(_mask: &[u64; MASK_WORDS]) -> bool {
        false
    }
}

/// The logical CPUs the calling thread is allowed to run on, in ascending
/// id order. Falls back to `0..available_parallelism()` when the kernel
/// mask cannot be read (non-Linux platforms, seccomp'd sandboxes).
pub fn get_core_ids() -> Option<Vec<CoreId>> {
    if let Some(mask) = sys::get_mask() {
        let ids: Vec<CoreId> = (0..MASK_WORDS * 64)
            .filter(|&cpu| mask[cpu / 64] >> (cpu % 64) & 1 == 1)
            .map(|cpu| CoreId { id: cpu })
            .collect();
        if !ids.is_empty() {
            return Some(ids);
        }
    }
    let n = std::thread::available_parallelism().ok()?.get();
    Some((0..n).map(|id| CoreId { id }).collect())
}

/// Pins the calling thread to `core`. Returns whether the kernel accepted
/// the new mask; `false` means the thread runs unpinned (harmless).
pub fn set_for_current(core: CoreId) -> bool {
    if core.id >= MASK_WORDS * 64 {
        return false;
    }
    let mut mask = [0u64; MASK_WORDS];
    mask[core.id / 64] = 1u64 << (core.id % 64);
    sys::set_mask(&mask)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_ids_are_nonempty_and_sorted() {
        let ids = get_core_ids().expect("some cores");
        assert!(!ids.is_empty());
        assert!(ids.windows(2).all(|w| w[0].id < w[1].id));
    }

    #[test]
    fn pin_to_first_allowed_core_succeeds_on_linux() {
        let ids = get_core_ids().expect("some cores");
        let ok = set_for_current(ids[0]);
        if cfg!(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        )) {
            assert!(ok, "pinning to an allowed core must succeed");
        }
    }

    #[test]
    fn out_of_range_core_is_rejected() {
        assert!(!set_for_current(CoreId {
            id: MASK_WORDS * 64
        }));
    }
}
