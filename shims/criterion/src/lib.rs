//! Offline shim for `criterion`.
//!
//! Implements the macro-compatible subset the workspace's benches use:
//! `criterion_group!`/`criterion_main!`, `Criterion::bench_function`,
//! `benchmark_group`, `Bencher::iter`/`iter_batched` and `black_box`.
//!
//! Measurement is deliberately simple: each bench warms up briefly, then
//! takes several timed samples and reports the median ns/iter to stdout as
//!
//! ```text
//! bench <name> ... <median> ns/iter (<iters> iters, <samples> samples)
//! ```
//!
//! Set `CRITERION_SAMPLE_MS` to change the per-sample time budget
//! (default 100 ms; CI can lower it).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup (accepted for API compatibility;
/// every batch size runs setup once per iteration here).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Timing handle passed to bench closures.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` runs of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `iters` runs of `routine`, excluding `setup` time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn sample_budget() -> Duration {
    let ms = std::env::var("CRITERION_SAMPLE_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100u64);
    Duration::from_millis(ms.max(1))
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, mut f: F) {
    let budget = sample_budget();
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };

    // Warmup + calibration: grow the iteration count until one sample
    // costs roughly the budget.
    loop {
        f(&mut b);
        if b.elapsed * 4 >= budget || b.iters >= 1 << 40 {
            break;
        }
        let scale = if b.elapsed.is_zero() {
            16
        } else {
            (budget.as_nanos() / b.elapsed.as_nanos().max(1)).clamp(2, 16) as u64
        };
        b.iters *= scale;
    }

    const SAMPLES: usize = 5;
    let mut per_iter: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            f(&mut b);
            b.elapsed.as_nanos() as f64 / b.iters as f64
        })
        .collect();
    per_iter.sort_by(|a, z| a.total_cmp(z));
    let median = per_iter[SAMPLES / 2];
    println!(
        "bench {name:<48} {median:>12.1} ns/iter ({} iters, {SAMPLES} samples)",
        b.iters
    );
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<S, F>(&mut self, id: S, f: F) -> &mut Self
    where
        S: Into<String>,
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.into(), f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
        }
    }
}

/// A group of related benchmarks; names are prefixed with the group name.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in the group.
    pub fn bench_function<S, F>(&mut self, id: S, f: F) -> &mut Self
    where
        S: Into<String>,
        F: FnMut(&mut Bencher),
    {
        run_bench(&format!("{}/{}", self.name, id.into()), f);
        self
    }

    /// Finishes the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Declares a function running the listed benchmarks in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
