//! Offline shim for the `rand` crate.
//!
//! Implements the narrow API `reflex-sim` consumes: a deterministic
//! [`rngs::SmallRng`] seeded from a `u64`, `random::<f64>()` in `[0, 1)`,
//! and `random_range` over integer ranges. The generator is xoshiro256++
//! seeded via splitmix64 — deterministic across platforms, which is all
//! the simulation substrate requires.

/// Core generator trait: raw 64-bit output.
pub trait Rng {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;
}

/// Seeding support.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience sampling methods, available on every [`Rng`].
pub trait RngExt: Rng {
    /// Uniform draw of a supported type (`f64` in `[0, 1)`, full-range ints).
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform draw within a half-open integer range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }
}

impl<T: Rng + ?Sized> RngExt for T {}

/// Types drawable uniformly from their natural domain.
pub trait Standard: Sized {
    #[doc(hidden)]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one value.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Lemire-style widening multiply keeps the draw unbiased
                // enough for simulation purposes without a reject loop.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for rand's `SmallRng`).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngs::SmallRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_in_bounds() {
        let mut r = SmallRng::seed_from_u64(2);
        let mut seen_low = false;
        let mut seen_high = false;
        for _ in 0..10_000 {
            let x = r.random_range(0u64..10);
            assert!(x < 10);
            seen_low |= x == 0;
            seen_high |= x == 9;
        }
        assert!(seen_low && seen_high, "range endpoints never drawn");
    }
}
