//! Device performance profiles.
//!
//! A [`DeviceProfile`] captures the handful of physical parameters that
//! determine a Flash device's latency-vs-load surface. The three named
//! profiles ([`device_a`], [`device_b`], [`device_c`]) are calibrated so the
//! simulated devices reproduce the request cost models of Figure 3 of the
//! paper: write cost ≈ 10 / 20 / 16 tokens and read-only cost ≈ ½ token for
//! device A.

use reflex_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// Physical parameters of a simulated NVMe Flash device.
///
/// The mechanistic model is: `channels` independent units serve page-sized
/// work items. A 4KB read occupies a channel for `read_occupancy` (halved
/// when the device has seen no writes recently — read-only pipelining);
/// its host-visible latency additionally includes the fixed
/// `read_latency_median` array-read/transfer time. A 4KB write completes
/// into the DRAM buffer quickly (`write_buffer_median`) but enqueues a
/// background page program occupying a channel for `program_occupancy`, and
/// every `gc_every_pages` programs a channel additionally performs an erase
/// (`gc_erase_time`) — this is what makes writes 10–20× more expensive than
/// reads and what drags read tails at high write ratios (Figure 1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceProfile {
    /// Human-readable name ("device-a" …).
    pub name: String,
    /// Usable capacity in bytes.
    pub capacity_bytes: u64,
    /// Internal page size; requests smaller than this cost a full page.
    pub page_size: u32,
    /// Number of independent internal channels (dies/planes aggregated).
    pub channels: u32,
    /// Fixed component of read latency (median of a lognormal).
    pub read_latency_median: SimDuration,
    /// Lognormal sigma for the fixed read component.
    pub read_latency_sigma: f64,
    /// Channel occupancy per 4KB read under mixed load.
    pub read_occupancy: SimDuration,
    /// Multiplier (< 1) on read occupancy when the device is in read-only
    /// mode — models the better pipelining real devices exhibit at
    /// `r = 100%` (the paper's `C(read, 100%) = ½` for device A).
    pub read_only_occupancy_factor: f64,
    /// Host-visible DRAM-buffer write latency (median of a lognormal).
    pub write_buffer_median: SimDuration,
    /// Lognormal sigma for the buffered write latency.
    pub write_buffer_sigma: f64,
    /// Channel occupancy of one background page program.
    pub program_occupancy: SimDuration,
    /// A channel performs an erase after this many page programs.
    pub gc_every_pages: u32,
    /// Channel occupancy of one erase (garbage collection / wear leveling).
    pub gc_erase_time: SimDuration,
    /// Longest wait a read incurs behind an in-progress program/erase
    /// before the FTL suspends it (program/erase suspension).
    pub suspend_slice: SimDuration,
    /// Pending write work beyond which the FTL forces programs ahead of
    /// reads (internal buffer pressure); the source of read-tail collapse.
    pub write_force_threshold: SimDuration,
    /// Backlog of background program time a channel may accumulate before
    /// host writes start stalling (write-buffer backpressure).
    pub write_backlog_limit: SimDuration,
    /// Idle window after the last write before the device flips into
    /// read-only mode.
    pub read_only_window: SimDuration,
    /// Submission queue depth per queue pair.
    pub sq_depth: u32,
    /// Probability a read fails with an uncorrectable media error
    /// (healthy devices: ~0; used for failure-injection testing).
    pub media_error_rate: f64,
}

impl DeviceProfile {
    /// Theoretical read-only 4KB IOPS capacity.
    pub fn read_only_iops(&self) -> f64 {
        let occ = self.read_occupancy.as_secs_f64() * self.read_only_occupancy_factor;
        self.channels as f64 / occ
    }

    /// Theoretical mixed-load token rate (4KB-read equivalents per second).
    pub fn token_rate(&self) -> f64 {
        self.channels as f64 / self.read_occupancy.as_secs_f64()
    }

    /// Mechanistic write cost in tokens (program + amortized GC over read
    /// occupancy) — should land near the paper's calibrated C(write).
    pub fn write_cost_tokens(&self) -> f64 {
        let program = self.program_occupancy.as_secs_f64();
        let gc = self.gc_erase_time.as_secs_f64() / self.gc_every_pages as f64;
        (program + gc) / self.read_occupancy.as_secs_f64()
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.page_size == 0 {
            return Err("page_size must be non-zero".into());
        }
        if self.channels == 0 {
            return Err("channels must be non-zero".into());
        }
        if self.capacity_bytes < self.page_size as u64 {
            return Err("capacity must hold at least one page".into());
        }
        if self.read_occupancy.is_zero() {
            return Err("read_occupancy must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.read_only_occupancy_factor)
            || self.read_only_occupancy_factor == 0.0
        {
            return Err("read_only_occupancy_factor must be in (0, 1]".into());
        }
        if self.gc_every_pages == 0 {
            return Err("gc_every_pages must be non-zero".into());
        }
        if self.sq_depth == 0 {
            return Err("sq_depth must be non-zero".into());
        }
        if !(0.0..=1.0).contains(&self.media_error_rate) {
            return Err("media_error_rate must be a probability".into());
        }
        Ok(())
    }
}

/// Device A: the high-end device of the paper — ~1M read-only IOPS,
/// ~650K tokens/s mixed capacity, write cost ≈ 10 tokens.
pub fn device_a() -> DeviceProfile {
    DeviceProfile {
        name: "device-a".to_owned(),
        capacity_bytes: 800 * 1024 * 1024 * 1024,
        page_size: 4096,
        channels: 32,
        read_latency_median: SimDuration::from_micros_f64(76.0),
        read_latency_sigma: 0.11,
        read_occupancy: SimDuration::from_micros_f64(49.2), // 32 / 49.2us = 650K tokens/s
        read_only_occupancy_factor: 0.65,                   // 1.0M read-only IOPS
        write_buffer_median: SimDuration::from_micros_f64(10.0),
        write_buffer_sigma: 0.25,
        program_occupancy: SimDuration::from_micros_f64(430.0), // ~8.7 tokens
        gc_every_pages: 8,
        gc_erase_time: SimDuration::from_micros(500), // +1.3 tokens amortized -> ~10 total
        suspend_slice: SimDuration::from_micros_f64(100.0),
        write_force_threshold: SimDuration::from_micros_f64(3600.0),
        write_backlog_limit: SimDuration::from_millis(4),
        read_only_window: SimDuration::from_millis(5),
        sq_depth: 1024,
        media_error_rate: 0.0,
    }
}

/// Device B: lower-end device — ~300K tokens/s, write cost ≈ 20 tokens.
pub fn device_b() -> DeviceProfile {
    DeviceProfile {
        name: "device-b".to_owned(),
        capacity_bytes: 400 * 1024 * 1024 * 1024,
        page_size: 4096,
        channels: 16,
        read_latency_median: SimDuration::from_micros_f64(88.0),
        read_latency_sigma: 0.13,
        read_occupancy: SimDuration::from_micros_f64(53.3), // 16 / 53.3us = 300K tokens/s
        read_only_occupancy_factor: 0.8,
        write_buffer_median: SimDuration::from_micros_f64(12.0),
        write_buffer_sigma: 0.3,
        program_occupancy: SimDuration::from_micros_f64(960.0), // ~18 tokens
        gc_every_pages: 8,
        gc_erase_time: SimDuration::from_micros(850), // +2 tokens -> ~20 total
        suspend_slice: SimDuration::from_micros_f64(150.0),
        write_force_threshold: SimDuration::from_micros_f64(4500.0),
        write_backlog_limit: SimDuration::from_millis(6),
        read_only_window: SimDuration::from_millis(5),
        sq_depth: 1024,
        media_error_rate: 0.0,
    }
}

/// Device C: mid-range device — ~550K tokens/s, write cost ≈ 16 tokens.
pub fn device_c() -> DeviceProfile {
    DeviceProfile {
        name: "device-c".to_owned(),
        capacity_bytes: 1600 * 1024 * 1024 * 1024,
        page_size: 4096,
        channels: 24,
        read_latency_median: SimDuration::from_micros_f64(80.0),
        read_latency_sigma: 0.12,
        read_occupancy: SimDuration::from_micros_f64(43.6), // 24 / 43.6us = 550K tokens/s
        read_only_occupancy_factor: 0.7,
        write_buffer_median: SimDuration::from_micros_f64(11.0),
        write_buffer_sigma: 0.27,
        program_occupancy: SimDuration::from_micros_f64(610.0), // ~14 tokens
        gc_every_pages: 8,
        gc_erase_time: SimDuration::from_micros(700), // +2 tokens -> ~16 total
        suspend_slice: SimDuration::from_micros_f64(120.0),
        write_force_threshold: SimDuration::from_micros_f64(4000.0),
        write_backlog_limit: SimDuration::from_millis(5),
        read_only_window: SimDuration::from_millis(5),
        sq_depth: 1024,
        media_error_rate: 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_profiles_validate() {
        for p in [device_a(), device_b(), device_c()] {
            p.validate().expect("profile must be internally consistent");
        }
    }

    #[test]
    fn device_a_capacity_targets() {
        let p = device_a();
        let iops = p.read_only_iops();
        assert!((0.9e6..1.15e6).contains(&iops), "read-only IOPS {iops}");
        let tokens = p.token_rate();
        assert!((6.0e5..7.0e5).contains(&tokens), "token rate {tokens}");
        let wc = p.write_cost_tokens();
        assert!((9.0..11.0).contains(&wc), "write cost {wc}");
    }

    #[test]
    fn device_b_write_cost_near_20() {
        let wc = device_b().write_cost_tokens();
        assert!((18.0..22.0).contains(&wc), "write cost {wc}");
    }

    #[test]
    fn device_c_write_cost_near_16() {
        let wc = device_c().write_cost_tokens();
        assert!((14.5..17.5).contains(&wc), "write cost {wc}");
    }

    #[test]
    fn validate_rejects_bad_profiles() {
        let mut p = device_a();
        p.page_size = 0;
        assert!(p.validate().is_err());
        let mut p = device_a();
        p.channels = 0;
        assert!(p.validate().is_err());
        let mut p = device_a();
        p.read_only_occupancy_factor = 0.0;
        assert!(p.validate().is_err());
        let mut p = device_a();
        p.sq_depth = 0;
        assert!(p.validate().is_err());
    }
}
