//! # reflex-flash — simulated NVMe Flash devices
//!
//! A mechanistic model of NVMe Flash for the ReFlex reproduction. The
//! original paper measures real devices; here the device is simulated from
//! first principles — parallel channels, a DRAM write buffer, background
//! page programs, and garbage-collection erases — so that the crucial
//! emergent property holds: **tail read latency depends on total load and
//! on the read/write ratio** (paper Figure 1), with writes 10–20× as
//! expensive as reads (Figure 3).
//!
//! Three calibrated profiles, [`device_a`], [`device_b`] and [`device_c`],
//! correspond to the paper's devices A, B and C.
//!
//! # Examples
//!
//! ```
//! use reflex_flash::{device_a, CmdId, FlashDevice, NvmeCommand};
//! use reflex_sim::{SimRng, SimTime};
//!
//! let mut dev = FlashDevice::new(device_a(), SimRng::seed(7));
//! let qp = dev.create_queue_pair();
//! dev.submit(SimTime::ZERO, qp, NvmeCommand::read(CmdId(0), 4096, 4096))?;
//! let at = dev.next_completion_time(qp).expect("in flight");
//! let done = dev.poll_completions(at, qp, 16);
//! assert_eq!(done.len(), 1);
//! # Ok::<(), reflex_flash::SubmitError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod device;
mod profile;
mod types;

pub use device::{DeviceFaultAction, DeviceFaultHook, DeviceStats, FlashDevice, QpId, StagedCmd};
pub use profile::{device_a, device_b, device_c, DeviceProfile};
pub use types::{CmdId, IoType, NvmeCommand, NvmeCompletion, NvmeStatus, SubmitError};
