//! NVMe command, completion and error types.

use std::fmt;

use reflex_sim::SimTime;
use serde::{Deserialize, Serialize};

/// Identifier assigned by the submitter to correlate completions with
/// commands (the paper's `cookie` travels alongside at a higher layer).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CmdId(pub u64);

impl fmt::Display for CmdId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cmd#{}", self.0)
    }
}

/// I/O direction of an NVMe command.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IoType {
    /// A Flash page read.
    Read,
    /// A Flash page write (program).
    Write,
}

impl IoType {
    /// `true` for reads.
    pub fn is_read(self) -> bool {
        matches!(self, IoType::Read)
    }
}

impl fmt::Display for IoType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoType::Read => f.write_str("read"),
            IoType::Write => f.write_str("write"),
        }
    }
}

/// An NVMe read or write command for a range of logical blocks.
///
/// Addresses are in bytes on the device's logical address space; the device
/// internally operates at its page granularity (4KB on every profiled
/// device), so sub-page requests cost a full page, as in the paper's cost
/// model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NvmeCommand {
    /// Submitter-chosen correlation id.
    pub id: CmdId,
    /// Read or write.
    pub op: IoType,
    /// Byte offset of the first logical block.
    pub addr: u64,
    /// Transfer length in bytes (must be non-zero).
    pub len: u32,
}

impl NvmeCommand {
    /// Convenience constructor for a read command.
    pub fn read(id: CmdId, addr: u64, len: u32) -> Self {
        NvmeCommand {
            id,
            op: IoType::Read,
            addr,
            len,
        }
    }

    /// Convenience constructor for a write command.
    pub fn write(id: CmdId, addr: u64, len: u32) -> Self {
        NvmeCommand {
            id,
            op: IoType::Write,
            addr,
            len,
        }
    }

    /// Number of device pages this command touches given `page_size`.
    pub fn pages(&self, page_size: u32) -> u32 {
        debug_assert!(page_size > 0);
        self.len.div_ceil(page_size).max(1)
    }
}

/// Completion status of an NVMe command.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NvmeStatus {
    /// Command completed successfully.
    Success,
    /// Addressed range is outside the device capacity.
    OutOfRange,
    /// Uncorrectable media error while reading (failure injection).
    MediaError,
    /// The device has died: every command aborts immediately (fault
    /// injection — whole-device death, see `reflex-faults`).
    DeviceUnavailable,
}

/// A completed NVMe command popped from a completion queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NvmeCompletion {
    /// The submitter's correlation id.
    pub id: CmdId,
    /// I/O direction of the completed command.
    pub op: IoType,
    /// Instant the device posted the completion.
    pub completed_at: SimTime,
    /// Outcome.
    pub status: NvmeStatus,
}

/// Error returned when a command cannot be accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The submission queue is full; retry after polling completions.
    QueueFull,
    /// Zero-length command.
    EmptyCommand,
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::QueueFull => f.write_str("submission queue full"),
            SubmitError::EmptyCommand => f.write_str("zero-length command"),
        }
    }
}

impl std::error::Error for SubmitError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pages_rounds_up_and_never_zero() {
        let c = NvmeCommand::read(CmdId(1), 0, 1024);
        assert_eq!(c.pages(4096), 1);
        let c = NvmeCommand::read(CmdId(1), 0, 4096);
        assert_eq!(c.pages(4096), 1);
        let c = NvmeCommand::read(CmdId(1), 0, 4097);
        assert_eq!(c.pages(4096), 2);
        let c = NvmeCommand::write(CmdId(1), 0, 32 * 1024);
        assert_eq!(c.pages(4096), 8);
    }

    #[test]
    fn constructors_set_direction() {
        assert!(NvmeCommand::read(CmdId(0), 0, 1).op.is_read());
        assert!(!NvmeCommand::write(CmdId(0), 0, 1).op.is_read());
    }

    #[test]
    fn display_impls() {
        assert_eq!(CmdId(7).to_string(), "cmd#7");
        assert_eq!(IoType::Read.to_string(), "read");
        assert_eq!(SubmitError::QueueFull.to_string(), "submission queue full");
    }
}
