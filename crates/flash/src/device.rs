//! The simulated NVMe Flash device.
//!
//! [`FlashDevice`] computes each command's completion instant *at submission
//! time* from per-channel backlog state (lazy evaluation), so it needs no
//! events of its own: callers poll completion queues exactly like a real
//! NVMe driver polls CQs.
//!
//! The mechanistic model (see [`DeviceProfile`](crate::DeviceProfile)) is
//! what produces the paper's Figure 1 behaviour: background page programs
//! and GC erases occupy channels, reads queue behind them, and tail read
//! latency degrades as the write share of the load grows.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use reflex_sim::{SimDuration, SimRng, SimTime};
use reflex_telemetry::{Stage, Telemetry, TenantKey};
use serde::{Deserialize, Serialize};

use crate::profile::DeviceProfile;
use crate::types::{IoType, NvmeCommand, NvmeCompletion, NvmeStatus, SubmitError};

/// Identifier of a hardware submission/completion queue pair.
///
/// Each dataplane thread owns one queue pair, mirroring ReFlex's
/// one-QP-per-core design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct QpId(pub u32);

/// Per-channel backlog state.
///
/// Reads serialize on `busy_until`. Write work (page programs and GC
/// erases) accumulates in `pending_write_work` and drains in the channel's
/// idle gaps: real FTLs *suspend* programs and erases to serve reads, so a
/// read normally waits at most one suspend slice. Only when the backlog
/// exceeds the profile's force threshold (write-buffer pressure) does the
/// FTL force programs ahead of reads — which is exactly when read tails
/// explode on real devices (paper Figure 1).
#[derive(Debug, Clone, Copy, Default)]
struct Channel {
    busy_until: SimTime,
    pending_write_work: SimDuration,
    pages_since_erase: u32,
    /// Wall time up to which idle capacity has already been consumed for
    /// draining write work (prevents double-counting the same idle gap).
    drain_cursor: SimTime,
}

impl Channel {
    /// Drains pending write work into the not-yet-consumed idle gap
    /// before `now`.
    fn drain_idle(&mut self, now: SimTime) {
        let from = self.busy_until.max(self.drain_cursor);
        let idle = now.saturating_since(from);
        let drained = self.pending_write_work.min(idle);
        self.pending_write_work -= drained;
        self.drain_cursor = self.drain_cursor.max(now);
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct CqEntry {
    at: SimTime,
    seq: u64,
    completion: NvmeCompletion,
}

impl PartialOrd for CqEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for CqEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Aggregate device statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeviceStats {
    /// Read commands completed or in flight.
    pub reads: u64,
    /// Write commands completed or in flight.
    pub writes: u64,
    /// Pages read.
    pub read_pages: u64,
    /// Pages programmed.
    pub write_pages: u64,
    /// Garbage-collection erases performed.
    pub gc_erases: u64,
    /// Commands rejected for addressing beyond capacity.
    pub out_of_range: u64,
    /// Reads failed with uncorrectable media errors.
    pub media_errors: u64,
    /// Commands aborted because the device was declared dead by a fault
    /// hook.
    pub unavailable: u64,
}

/// What a [`DeviceFaultHook`] does to one command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceFaultAction {
    /// Service the command normally.
    None,
    /// Complete with [`NvmeStatus::MediaError`]: a transient uncorrectable
    /// read / failed program that a host retry may survive. The command
    /// still occupies the channel (ECC burned the time before giving up).
    TransientError,
    /// Add latency on top of the modelled completion time (stuck-GC spike,
    /// firmware hiccup). The channel occupancy is unchanged — only the
    /// host-visible completion is late.
    ExtraLatency(SimDuration),
    /// The device is dead: abort immediately with
    /// [`NvmeStatus::DeviceUnavailable`] and touch no channel state.
    Dead,
}

/// Per-command fault injection hook, consulted by [`FlashDevice::submit`]
/// for every accepted command.
///
/// Installed via [`FlashDevice::set_fault_hook`]; when no hook is installed
/// the device takes the exact same code path (and consumes the exact same
/// RNG stream) as before this trait existed, so fault-free runs are
/// byte-identical. Implementations needing randomness must bring their own
/// [`SimRng`] stream — the device's stream is off-limits to keep healthy
/// draws undisturbed.
pub trait DeviceFaultHook: Send {
    /// Decides the fate of `cmd` submitted at `now`.
    fn on_command(&mut self, now: SimTime, cmd: &NvmeCommand) -> DeviceFaultAction;
}

/// One submission staged for boundary-replayed application (split-dataplane
/// sharding). Every device replica applies the same staged commands in
/// canonical `(at, qp, seq)` order at lookahead-window boundaries, so all
/// replicas' channel backlog, RNG stream, and stats evolve identically.
#[derive(Debug, Clone, Copy)]
pub struct StagedCmd {
    /// Submission instant.
    pub at: SimTime,
    /// Submitting queue pair.
    pub qp: QpId,
    /// Per-queue-pair monotone sequence number (tie-break within one
    /// instant).
    pub seq: u64,
    /// The command.
    pub cmd: NvmeCommand,
}

/// Windowed-staging state (split-dataplane sharding): submissions are
/// staged and replayed at window boundaries instead of being serviced
/// inline. See [`FlashDevice::enable_windowed`].
#[derive(Debug)]
struct WindowedDev {
    window: SimDuration,
    /// Queue pairs whose completions this replica delivers (the qps of the
    /// dataplane threads placed on this replica's shard).
    local_qp: Vec<bool>,
    /// Local + remote staged commands awaiting boundary application.
    staged: Vec<StagedCmd>,
    /// Locally staged commands awaiting broadcast to peer replicas.
    outbound: Vec<StagedCmd>,
    /// Staged-but-unapplied count per qp (keeps the `sq_depth` check
    /// exact while commands sit between staging and application).
    staged_per_qp: Vec<u32>,
    /// Per-qp staging sequence counters.
    seqs: Vec<u64>,
    /// Boundary up to which staged commands have been applied.
    applied_until: SimTime,
}

fn grid_after(at: SimTime, window: SimDuration) -> SimTime {
    let w = window.as_nanos();
    SimTime::from_nanos(at.as_nanos() / w * w + w)
}

struct QueuePair {
    outstanding: u32,
    cq: BinaryHeap<Reverse<CqEntry>>,
}

impl QueuePair {
    fn new() -> Self {
        QueuePair {
            outstanding: 0,
            cq: BinaryHeap::new(),
        }
    }
}

/// A simulated NVMe Flash device with multiple hardware queue pairs.
///
/// # Examples
///
/// ```
/// use reflex_flash::{device_a, CmdId, FlashDevice, NvmeCommand};
/// use reflex_sim::{SimRng, SimTime};
///
/// let mut dev = FlashDevice::new(device_a(), SimRng::seed(1));
/// let qp = dev.create_queue_pair();
/// let t0 = SimTime::ZERO;
/// dev.submit(t0, qp, NvmeCommand::read(CmdId(1), 0, 4096))?;
/// let done = dev.next_completion_time(qp).expect("one command in flight");
/// let completions = dev.poll_completions(done, qp, 32);
/// assert_eq!(completions.len(), 1);
/// assert_eq!(completions[0].id, CmdId(1));
/// # Ok::<(), reflex_flash::SubmitError>(())
/// ```
pub struct FlashDevice {
    profile: DeviceProfile,
    channels: Vec<Channel>,
    qps: Vec<QueuePair>,
    rng: SimRng,
    seq: u64,
    last_write_at: Option<SimTime>,
    wear_factor: f64,
    stats: DeviceStats,
    fault_hook: Option<Box<dyn DeviceFaultHook>>,
    windowed: Option<WindowedDev>,
    telemetry: Telemetry,
}

impl std::fmt::Debug for FlashDevice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlashDevice")
            .field("profile", &self.profile.name)
            .field("qps", &self.qps.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl FlashDevice {
    /// Creates a device from a validated profile.
    ///
    /// # Panics
    ///
    /// Panics if the profile fails [`DeviceProfile::validate`].
    pub fn new(profile: DeviceProfile, rng: SimRng) -> Self {
        profile.validate().expect("invalid device profile");
        let channels = vec![Channel::default(); profile.channels as usize];
        FlashDevice {
            profile,
            channels,
            qps: Vec::new(),
            rng,
            seq: 0,
            last_write_at: None,
            wear_factor: 1.0,
            stats: DeviceStats::default(),
            fault_hook: None,
            windowed: None,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Installs a telemetry handle. Recording is purely passive — the
    /// device's timing, RNG draws, and stats are bit-for-bit unchanged.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// The device's performance profile.
    pub fn profile(&self) -> &DeviceProfile {
        &self.profile
    }

    /// Aggregate statistics so far.
    pub fn stats(&self) -> DeviceStats {
        self.stats
    }

    /// Multiplier applied to program occupancy to model wear-out; the
    /// control plane raises this as the device ages and re-calibrates the
    /// cost model (paper §3.2.1).
    pub fn set_wear_factor(&mut self, factor: f64) {
        assert!(factor >= 1.0, "wear can only slow a device down");
        self.wear_factor = factor;
    }

    /// Installs a fault-injection hook consulted on every accepted command.
    /// Replaces any previously installed hook.
    pub fn set_fault_hook(&mut self, hook: Box<dyn DeviceFaultHook>) {
        self.fault_hook = Some(hook);
    }

    /// Removes the fault hook, restoring healthy behaviour.
    pub fn clear_fault_hook(&mut self) -> Option<Box<dyn DeviceFaultHook>> {
        self.fault_hook.take()
    }

    /// Allocates a new hardware queue pair.
    ///
    /// # Panics
    ///
    /// Panics in windowed mode — create every qp before
    /// [`enable_windowed`](Self::enable_windowed).
    pub fn create_queue_pair(&mut self) -> QpId {
        assert!(
            self.windowed.is_none(),
            "create queue pairs before enabling windowed mode"
        );
        let id = QpId(self.qps.len() as u32);
        self.qps.push(QueuePair::new());
        id
    }

    /// Number of commands submitted on `qp` and not yet polled.
    pub fn outstanding(&self, qp: QpId) -> u32 {
        self.qps[qp.0 as usize].outstanding
    }

    /// `true` if the device has seen no write for the profile's read-only
    /// window — reads then pipeline better (the `C(read, 100%) = ½` effect).
    pub fn in_read_only_mode(&self, now: SimTime) -> bool {
        match self.last_write_at {
            None => true,
            Some(t) => now.saturating_since(t) > self.profile.read_only_window,
        }
    }

    fn channel_index(&self, addr: u64) -> usize {
        let page = addr / self.profile.page_size as u64;
        // Multiplicative hash spreads both sequential and strided patterns.
        let h = page.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        (h % self.channels.len() as u64) as usize
    }

    /// Submits a command on `qp` at instant `now`; returns the completion
    /// instant the model computed. The completion also becomes visible to
    /// [`poll_completions`](Self::poll_completions) at that instant, like
    /// a real CQ.
    ///
    /// # Errors
    ///
    /// [`SubmitError::QueueFull`] when `qp` already has `sq_depth`
    /// outstanding commands, [`SubmitError::EmptyCommand`] for zero-length
    /// requests.
    pub fn submit(
        &mut self,
        now: SimTime,
        qp: QpId,
        cmd: NvmeCommand,
    ) -> Result<SimTime, SubmitError> {
        if cmd.len == 0 {
            return Err(SubmitError::EmptyCommand);
        }
        if let Some(w) = &mut self.windowed {
            // Split-dataplane mode: stage now, apply at the next window
            // boundary on every replica in canonical order. The sq_depth
            // check stays exact by counting staged-but-unapplied commands.
            let qi = qp.0 as usize;
            debug_assert!(w.local_qp[qi], "submit on a non-local qp");
            if self.qps[qi].outstanding + w.staged_per_qp[qi] >= self.profile.sq_depth {
                self.telemetry.count("device.sq_full", 1);
                return Err(SubmitError::QueueFull);
            }
            let entry = StagedCmd {
                at: now,
                qp,
                seq: w.seqs[qi],
                cmd,
            };
            w.seqs[qi] += 1;
            w.staged_per_qp[qi] += 1;
            w.staged.push(entry);
            w.outbound.push(entry);
            // The modelled completion instant is only known at application;
            // the earliest it can surface is the boundary after `now`.
            return Ok(grid_after(now, w.window));
        }
        if self.qps[qp.0 as usize].outstanding >= self.profile.sq_depth {
            self.telemetry.count("device.sq_full", 1);
            return Err(SubmitError::QueueFull);
        }

        if cmd.addr.saturating_add(cmd.len as u64) > self.profile.capacity_bytes {
            self.stats.out_of_range += 1;
            self.telemetry.count("device.out_of_range", 1);
            let at = now + SimDuration::from_micros(1);
            let seq = self.next_seq();
            self.push_completion(
                qp,
                CqEntry {
                    at,
                    seq,
                    completion: NvmeCompletion {
                        id: cmd.id,
                        op: cmd.op,
                        completed_at: at,
                        status: NvmeStatus::OutOfRange,
                    },
                },
            );
            return Ok(at);
        }

        // Consult the fault hook first: a dead device aborts before any
        // channel state is touched. With no hook installed this is a no-op
        // and the healthy path below is bit-for-bit unchanged.
        let fault = match self.fault_hook.as_mut() {
            Some(hook) => hook.on_command(now, &cmd),
            None => DeviceFaultAction::None,
        };
        if fault == DeviceFaultAction::Dead {
            self.stats.unavailable += 1;
            self.telemetry.count("device.unavailable", 1);
            let at = now + SimDuration::from_micros(1);
            let seq = self.next_seq();
            self.push_completion(
                qp,
                CqEntry {
                    at,
                    seq,
                    completion: NvmeCompletion {
                        id: cmd.id,
                        op: cmd.op,
                        completed_at: at,
                        status: NvmeStatus::DeviceUnavailable,
                    },
                },
            );
            return Ok(at);
        }

        let mut completed_at = match cmd.op {
            IoType::Read => self.service_read(now, &cmd),
            IoType::Write => self.service_write(now, &cmd),
        };
        debug_assert!(completed_at >= now);
        if let DeviceFaultAction::ExtraLatency(extra) = fault {
            completed_at += extra;
        }
        // Failure injection: the read occupies the channel either way, but
        // ECC gives up and the completion reports a media error.
        let status = if fault == DeviceFaultAction::TransientError
            || (cmd.op.is_read()
                && self.profile.media_error_rate > 0.0
                && self.rng.chance(self.profile.media_error_rate))
        {
            self.stats.media_errors += 1;
            self.telemetry.count("device.media_errors", 1);
            NvmeStatus::MediaError
        } else {
            NvmeStatus::Success
        };
        self.telemetry.count("device.commands", 1);
        self.telemetry.span(
            TenantKey::GLOBAL,
            Stage::Channel,
            completed_at.saturating_since(now),
        );
        let seq = self.next_seq();
        self.push_completion(
            qp,
            CqEntry {
                at: completed_at,
                seq,
                completion: NvmeCompletion {
                    id: cmd.id,
                    op: cmd.op,
                    completed_at,
                    status,
                },
            },
        );
        Ok(completed_at)
    }

    /// Switches the device into windowed staging mode (split-dataplane
    /// sharding): submissions are staged and replayed in canonical
    /// `(at, qp, seq)` order at multiples of `window`, so independently-
    /// fed replicas stay bit-identical. Safe because every modelled
    /// completion latency (≥ 1µs) is at least one window, mirroring the
    /// fabric's lookahead argument. All current qps start local.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero or a fault hook is installed (fault
    /// actions are decided inline at submit time and cannot be replayed
    /// deterministically on replicas).
    pub fn enable_windowed(&mut self, window: SimDuration) {
        assert!(!window.is_zero(), "window must be positive");
        assert!(
            self.fault_hook.is_none(),
            "windowed mode is incompatible with a device fault hook"
        );
        let n = self.qps.len();
        self.windowed = Some(WindowedDev {
            window,
            local_qp: vec![true; n],
            staged: Vec::new(),
            outbound: Vec::new(),
            staged_per_qp: vec![0; n],
            seqs: vec![0; n],
            applied_until: SimTime::ZERO,
        });
    }

    /// `true` when windowed staging mode is active.
    pub fn is_windowed(&self) -> bool {
        self.windowed.is_some()
    }

    /// Whether a fault-injection hook is installed (windowed staging and
    /// replication are incompatible with one).
    pub fn has_fault_hook(&self) -> bool {
        self.fault_hook.is_some()
    }

    /// Restricts which qps this replica delivers completions for (the qps
    /// of the dataplane threads placed on its shard). Remote commands are
    /// still applied — channel state, RNG, and stats evolve identically on
    /// every replica — but their completions are dropped locally.
    ///
    /// # Panics
    ///
    /// Panics if windowed mode is off or `local` doesn't cover every qp.
    pub fn set_local_qps(&mut self, local: Vec<bool>) {
        let n = self.qps.len();
        let w = self.windowed.as_mut().expect("windowed mode required");
        assert_eq!(local.len(), n, "local mask must cover every qp");
        w.local_qp = local;
    }

    /// Clones this device into a pristine replica for another shard:
    /// identical profile, preconditioned channel state, RNG stream, and
    /// stats, but fresh (empty) queue pairs and staging state. Replica
    /// telemetry starts disabled — exactly one replica (shard 0's) should
    /// record, since all replicas observe every command.
    ///
    /// # Panics
    ///
    /// Panics if windowed mode is off, a fault hook is installed, or the
    /// device has already serviced or staged commands.
    pub fn replicate(&self) -> FlashDevice {
        assert!(
            self.fault_hook.is_none(),
            "cannot replicate a device with a fault hook"
        );
        let w = self.windowed.as_ref().expect("windowed mode required");
        assert!(
            w.staged.is_empty() && w.outbound.is_empty() && self.seq == 0,
            "replicate before any submissions"
        );
        FlashDevice {
            profile: self.profile.clone(),
            channels: self.channels.clone(),
            qps: self.qps.iter().map(|_| QueuePair::new()).collect(),
            rng: self.rng.clone(),
            seq: 0,
            last_write_at: self.last_write_at,
            wear_factor: self.wear_factor,
            stats: self.stats,
            fault_hook: None,
            windowed: Some(WindowedDev {
                window: w.window,
                local_qp: w.local_qp.clone(),
                staged: Vec::new(),
                outbound: Vec::new(),
                staged_per_qp: vec![0; self.qps.len()],
                seqs: vec![0; self.qps.len()],
                applied_until: SimTime::ZERO,
            }),
            telemetry: Telemetry::disabled(),
        }
    }

    /// Accepts commands staged by a peer replica.
    ///
    /// # Panics
    ///
    /// Panics if windowed mode is off.
    pub fn accept_staged(&mut self, cmds: &[StagedCmd]) {
        let w = self.windowed.as_mut().expect("windowed mode required");
        for s in cmds {
            w.staged_per_qp[s.qp.0 as usize] += 1;
            w.staged.push(*s);
        }
    }

    /// Drains the locally staged commands awaiting broadcast to peers.
    pub fn take_staged_outbound(&mut self) -> Vec<StagedCmd> {
        match &mut self.windowed {
            Some(w) => std::mem::take(&mut w.outbound),
            None => Vec::new(),
        }
    }

    /// Applies all staged commands before `now`'s window boundary in
    /// canonical `(at, qp, seq)` order. Driven by the event dispatcher so
    /// every replica applies the same prefix at the same simulated time;
    /// a no-op outside windowed mode.
    pub fn observe(&mut self, now: SimTime) {
        let todo = {
            let Some(w) = &mut self.windowed else { return };
            let wn = w.window.as_nanos();
            let boundary = SimTime::from_nanos(now.as_nanos() / wn * wn);
            if boundary <= w.applied_until {
                return;
            }
            w.applied_until = boundary;
            if w.staged.iter().all(|s| s.at >= boundary) {
                return;
            }
            w.staged.sort_by_key(|s| (s.at, s.qp, s.seq));
            let cut = w.staged.partition_point(|s| s.at < boundary);
            let rest = w.staged.split_off(cut);
            std::mem::replace(&mut w.staged, rest)
        };
        for s in todo {
            self.apply_staged(s);
        }
    }

    /// Replays one staged command through the exact inline service path
    /// (with `now` = its staging instant), delivering the completion only
    /// if its qp is local to this replica.
    fn apply_staged(&mut self, s: StagedCmd) {
        let qi = s.qp.0 as usize;
        let local = {
            let w = self.windowed.as_mut().expect("windowed mode");
            w.staged_per_qp[qi] -= 1;
            w.local_qp[qi]
        };
        let now = s.at;
        let cmd = s.cmd;
        if cmd.addr.saturating_add(cmd.len as u64) > self.profile.capacity_bytes {
            self.stats.out_of_range += 1;
            self.telemetry.count("device.out_of_range", 1);
            let at = now + SimDuration::from_micros(1);
            let seq = self.next_seq();
            if local {
                self.push_completion(
                    s.qp,
                    CqEntry {
                        at,
                        seq,
                        completion: NvmeCompletion {
                            id: cmd.id,
                            op: cmd.op,
                            completed_at: at,
                            status: NvmeStatus::OutOfRange,
                        },
                    },
                );
            }
            return;
        }
        let completed_at = match cmd.op {
            IoType::Read => self.service_read(now, &cmd),
            IoType::Write => self.service_write(now, &cmd),
        };
        debug_assert!(completed_at >= now);
        let status = if cmd.op.is_read()
            && self.profile.media_error_rate > 0.0
            && self.rng.chance(self.profile.media_error_rate)
        {
            self.stats.media_errors += 1;
            self.telemetry.count("device.media_errors", 1);
            NvmeStatus::MediaError
        } else {
            NvmeStatus::Success
        };
        self.telemetry.count("device.commands", 1);
        self.telemetry.span(
            TenantKey::GLOBAL,
            Stage::Channel,
            completed_at.saturating_since(now),
        );
        let seq = self.next_seq();
        if local {
            self.push_completion(
                s.qp,
                CqEntry {
                    at: completed_at,
                    seq,
                    completion: NvmeCompletion {
                        id: cmd.id,
                        op: cmd.op,
                        completed_at,
                        status,
                    },
                },
            );
        }
    }

    fn next_seq(&mut self) -> u64 {
        let s = self.seq;
        self.seq += 1;
        s
    }

    fn push_completion(&mut self, qp: QpId, entry: CqEntry) {
        let q = &mut self.qps[qp.0 as usize];
        q.outstanding += 1;
        q.cq.push(Reverse(entry));
    }

    fn service_read(&mut self, now: SimTime, cmd: &NvmeCommand) -> SimTime {
        let pages = cmd.pages(self.profile.page_size) as u64;
        self.stats.reads += 1;
        self.stats.read_pages += pages;

        let occ_page = if self.in_read_only_mode(now) {
            self.profile
                .read_occupancy
                .mul_f64(self.profile.read_only_occupancy_factor)
        } else {
            self.profile.read_occupancy
        };
        let fixed = self.rng.lognormal(
            self.profile.read_latency_median,
            self.profile.read_latency_sigma,
        );

        // Multi-page commands stripe across channels (page i of the
        // request lands on the channel its page address hashes to); the
        // command completes when its slowest page does.
        let mut completed = now;
        for i in 0..pages {
            let addr = cmd.addr + i * self.profile.page_size as u64;
            let ch_idx = self.channel_index(addr);
            let ch = &mut self.channels[ch_idx];
            ch.drain_idle(now);
            let mut start = now.max(ch.busy_until);
            if !ch.pending_write_work.is_zero() {
                // Program suspension: wait out the in-flight program
                // slice. If buffer pressure forces programs ahead of
                // reads, wait for the excess backlog too — the read-tail
                // collapse of Figure 1.
                let suspend = ch.pending_write_work.min(self.profile.suspend_slice);
                let forced = ch
                    .pending_write_work
                    .saturating_sub(self.profile.write_force_threshold);
                let delay = suspend.max(forced);
                start += delay;
                ch.pending_write_work -= delay.min(ch.pending_write_work);
            }
            ch.busy_until = start + occ_page;
            completed = completed.max(start + fixed);
        }
        completed
    }

    fn service_write(&mut self, now: SimTime, cmd: &NvmeCommand) -> SimTime {
        let pages = cmd.pages(self.profile.page_size) as u64;
        self.stats.writes += 1;
        self.stats.write_pages += pages;
        self.last_write_at = Some(now);

        let program = self.profile.program_occupancy.mul_f64(self.wear_factor);
        let buffered = self.rng.lognormal(
            self.profile.write_buffer_median,
            self.profile.write_buffer_sigma,
        );

        // Each page's program lands on its own channel; host completion
        // stalls on the most backlogged channel involved once its pending
        // work exceeds the write-buffer allowance.
        let mut worst_stall = SimDuration::ZERO;
        for i in 0..pages {
            let addr = cmd.addr + i * self.profile.page_size as u64;
            let ch_idx = self.channel_index(addr);
            let ch = &mut self.channels[ch_idx];
            ch.drain_idle(now);
            ch.pending_write_work += program;
            ch.pages_since_erase += 1;
            while ch.pages_since_erase >= self.profile.gc_every_pages {
                ch.pages_since_erase -= self.profile.gc_every_pages;
                ch.pending_write_work += self.profile.gc_erase_time;
                self.stats.gc_erases += 1;
            }
            let stall = ch
                .pending_write_work
                .saturating_sub(self.profile.write_backlog_limit);
            worst_stall = worst_stall.max(stall);
        }
        now + buffered + worst_stall
    }

    /// Pops up to `max` completions with `completed_at <= now` from `qp`'s
    /// completion queue, in completion order.
    pub fn poll_completions(&mut self, now: SimTime, qp: QpId, max: usize) -> Vec<NvmeCompletion> {
        let mut out = Vec::new();
        self.poll_completions_into(now, qp, max, &mut out);
        out
    }

    /// [`FlashDevice::poll_completions`] into a caller-owned buffer: `out`
    /// is cleared and refilled, so a completion loop reusing one scratch
    /// `Vec` drains batches without allocating in steady state.
    pub fn poll_completions_into(
        &mut self,
        now: SimTime,
        qp: QpId,
        max: usize,
        out: &mut Vec<NvmeCompletion>,
    ) {
        out.clear();
        let q = &mut self.qps[qp.0 as usize];
        while out.len() < max {
            match q.cq.peek() {
                Some(Reverse(e)) if e.at <= now => {
                    out.push(q.cq.pop().expect("peeked entry must pop").0.completion);
                    q.outstanding -= 1;
                }
                _ => break,
            }
        }
    }

    /// Instant of `qp`'s earliest pending completion, if any. In windowed
    /// mode this also covers `qp`'s own staged-but-unapplied commands via
    /// the boundary at which they will be applied — a conservative (and
    /// still deterministic) wake hint, since a staged command's true
    /// completion is only modelled at application.
    pub fn next_completion_time(&self, qp: QpId) -> Option<SimTime> {
        let applied = self.qps[qp.0 as usize].cq.peek().map(|Reverse(e)| e.at);
        let staged = self.windowed.as_ref().and_then(|w| {
            w.staged
                .iter()
                .filter(|s| s.qp == qp)
                .map(|s| s.at)
                .min()
                .map(|at| grid_after(at, w.window))
        });
        match (applied, staged) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Earliest pending completion across all queue pairs, if any.
    pub fn next_completion_time_any(&self) -> Option<SimTime> {
        self.qps
            .iter()
            .filter_map(|q| q.cq.peek().map(|Reverse(e)| e.at))
            .min()
    }

    /// Preconditions the device to steady state (the paper preconditions
    /// real devices with sequential + random writes): marks every channel
    /// mid-way to its next GC erase so write costs are immediately at their
    /// steady-state average.
    pub fn precondition(&mut self) {
        let half = self.profile.gc_every_pages / 2;
        for ch in &mut self.channels {
            ch.pages_since_erase = half;
        }
    }

    /// Convenience: submit a 4KB read at a uniformly random page-aligned
    /// address (workload generators use this for random-read patterns).
    pub fn random_page_addr(&mut self) -> u64 {
        let pages = self.profile.capacity_bytes / self.profile.page_size as u64;
        self.rng.below(pages) * self.profile.page_size as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::device_a;
    use crate::types::CmdId;
    use reflex_sim::SimRng;

    fn dev() -> (FlashDevice, QpId) {
        let mut d = FlashDevice::new(device_a(), SimRng::seed(42));
        let qp = d.create_queue_pair();
        (d, qp)
    }

    #[test]
    fn unloaded_read_latency_matches_profile() {
        let (mut d, qp) = dev();
        let mut total = 0.0;
        let n = 2_000;
        let mut t = SimTime::ZERO;
        for i in 0..n {
            let addr = d.random_page_addr();
            d.submit(t, qp, NvmeCommand::read(CmdId(i), addr, 4096))
                .unwrap();
            let done = d.next_completion_time(qp).unwrap();
            let cs = d.poll_completions(done, qp, 8);
            assert_eq!(cs.len(), 1);
            total += (cs[0].completed_at - t).as_micros_f64();
            t = done + SimDuration::from_micros(50); // queue depth 1, idle gaps
        }
        let avg = total / n as f64;
        // Unloaded read ~ fixed component only (single page): ~76.5us mean.
        assert!((72.0..=82.0).contains(&avg), "unloaded read avg {avg}us");
    }

    #[test]
    fn unloaded_write_latency_is_buffered() {
        let (mut d, qp) = dev();
        let mut total = 0.0;
        let n = 500;
        let mut t = SimTime::ZERO;
        for i in 0..n {
            let addr = d.random_page_addr();
            d.submit(t, qp, NvmeCommand::write(CmdId(i), addr, 4096))
                .unwrap();
            let done = d.next_completion_time(qp).unwrap();
            d.poll_completions(done, qp, 8);
            total += (done - t).as_micros_f64();
            t = done + SimDuration::from_millis(1); // let programs drain
        }
        let avg = total / n as f64;
        assert!((8.0..=16.0).contains(&avg), "unloaded write avg {avg}us");
    }

    #[test]
    fn reads_queue_behind_writes_on_same_channel() {
        let (mut d, qp) = dev();
        let addr = 0u64;
        let t0 = SimTime::ZERO;
        // Stack enough writes on one channel to exceed the force threshold,
        // then read the same channel.
        for i in 0..16 {
            d.submit(t0, qp, NvmeCommand::write(CmdId(i), addr, 4096))
                .unwrap();
        }
        d.submit(t0, qp, NvmeCommand::read(CmdId(100), addr, 4096))
            .unwrap();
        let mut read_done = None;
        let mut poll_t = t0;
        for _ in 0..100 {
            poll_t += SimDuration::from_millis(1);
            for c in d.poll_completions(poll_t, qp, 64) {
                if c.id == CmdId(100) {
                    read_done = Some(c.completed_at);
                }
            }
            if read_done.is_some() {
                break;
            }
        }
        let lat = (read_done.expect("read completes") - t0).as_micros_f64();
        // 16 programs x 430us = 6.9ms of backlog; ~3.3ms is forced ahead of
        // the read: far above unloaded latency.
        assert!(lat > 2_000.0, "interfered read latency only {lat}us");
    }

    #[test]
    fn read_only_mode_engages_after_idle_window() {
        let (mut d, qp) = dev();
        assert!(d.in_read_only_mode(SimTime::ZERO));
        d.submit(SimTime::ZERO, qp, NvmeCommand::write(CmdId(0), 0, 4096))
            .unwrap();
        assert!(!d.in_read_only_mode(SimTime::from_millis(1)));
        assert!(d.in_read_only_mode(SimTime::from_millis(20)));
    }

    #[test]
    fn queue_full_is_reported() {
        let (mut d, qp) = dev();
        let depth = d.profile().sq_depth;
        for i in 0..depth {
            d.submit(
                SimTime::ZERO,
                qp,
                NvmeCommand::read(CmdId(i as u64), 0, 4096),
            )
            .unwrap();
        }
        let err = d.submit(SimTime::ZERO, qp, NvmeCommand::read(CmdId(9999), 0, 4096));
        assert_eq!(err, Err(SubmitError::QueueFull));
        // Draining completions frees slots.
        let t = SimTime::from_secs(10);
        let n = d.poll_completions(t, qp, usize::MAX);
        assert_eq!(n.len(), depth as usize);
        assert!(d
            .submit(t, qp, NvmeCommand::read(CmdId(9999), 0, 4096))
            .is_ok());
    }

    #[test]
    fn out_of_range_completes_with_error_status() {
        let (mut d, qp) = dev();
        let cap = d.profile().capacity_bytes;
        d.submit(SimTime::ZERO, qp, NvmeCommand::read(CmdId(1), cap, 4096))
            .unwrap();
        let cs = d.poll_completions(SimTime::from_millis(1), qp, 8);
        assert_eq!(cs.len(), 1);
        assert_eq!(cs[0].status, NvmeStatus::OutOfRange);
        assert_eq!(d.stats().out_of_range, 1);
    }

    #[test]
    fn empty_command_rejected() {
        let (mut d, qp) = dev();
        let err = d.submit(SimTime::ZERO, qp, NvmeCommand::read(CmdId(1), 0, 0));
        assert_eq!(err, Err(SubmitError::EmptyCommand));
    }

    #[test]
    fn completions_come_out_in_time_order() {
        let (mut d, qp) = dev();
        for i in 0..200u64 {
            let addr = d.random_page_addr();
            let cmd = if i % 3 == 0 {
                NvmeCommand::write(CmdId(i), addr, 4096)
            } else {
                NvmeCommand::read(CmdId(i), addr, 4096)
            };
            d.submit(SimTime::from_nanos(i * 100), qp, cmd).unwrap();
        }
        let cs = d.poll_completions(SimTime::from_secs(1), qp, usize::MAX);
        assert_eq!(cs.len(), 200);
        for w in cs.windows(2) {
            assert!(w[0].completed_at <= w[1].completed_at);
        }
    }

    #[test]
    fn multiple_qps_are_independent() {
        let mut d = FlashDevice::new(device_a(), SimRng::seed(1));
        let qp0 = d.create_queue_pair();
        let qp1 = d.create_queue_pair();
        d.submit(SimTime::ZERO, qp0, NvmeCommand::read(CmdId(1), 0, 4096))
            .unwrap();
        assert_eq!(d.outstanding(qp0), 1);
        assert_eq!(d.outstanding(qp1), 0);
        let t = SimTime::from_millis(1);
        assert!(d.poll_completions(t, qp1, 8).is_empty());
        assert_eq!(d.poll_completions(t, qp0, 8).len(), 1);
    }

    #[test]
    fn multi_page_reads_stripe_across_channels() {
        let (mut d, qp) = dev();
        // 32KB read = 8 pages striped over channels: latency stays near
        // the fixed array-read time, while channel occupancy (and thus the
        // token cost the scheduler charges) is 8x a 4KB read.
        d.submit(SimTime::ZERO, qp, NvmeCommand::read(CmdId(1), 0, 32 * 1024))
            .unwrap();
        let done = d.next_completion_time(qp).unwrap();
        let lat = (done - SimTime::ZERO).as_micros_f64();
        assert!(
            (60.0..200.0).contains(&lat),
            "32KB striped read latency {lat}us"
        );
        assert_eq!(d.stats().read_pages, 8);
    }

    #[test]
    fn gc_erases_accumulate_with_writes() {
        let (mut d, qp) = dev();
        d.precondition();
        let mut t = SimTime::ZERO;
        for i in 0..2_000u64 {
            let addr = d.random_page_addr();
            d.submit(t, qp, NvmeCommand::write(CmdId(i), addr, 4096))
                .unwrap();
            t += SimDuration::from_micros(20);
            d.poll_completions(t, qp, usize::MAX);
        }
        assert!(
            d.stats().gc_erases > 10,
            "expected GC activity, got {:?}",
            d.stats()
        );
    }

    struct ScriptedHook {
        actions: Vec<DeviceFaultAction>,
    }

    impl DeviceFaultHook for ScriptedHook {
        fn on_command(&mut self, _now: SimTime, _cmd: &NvmeCommand) -> DeviceFaultAction {
            if self.actions.is_empty() {
                DeviceFaultAction::None
            } else {
                self.actions.remove(0)
            }
        }
    }

    #[test]
    fn fault_hook_injects_transient_and_death() {
        let (mut d, qp) = dev();
        d.set_fault_hook(Box::new(ScriptedHook {
            actions: vec![
                DeviceFaultAction::TransientError,
                DeviceFaultAction::Dead,
                DeviceFaultAction::None,
            ],
        }));
        let t0 = SimTime::ZERO;
        for i in 0..3 {
            d.submit(t0, qp, NvmeCommand::read(CmdId(i), i * 4096, 4096))
                .unwrap();
        }
        let cs = d.poll_completions(SimTime::from_secs(1), qp, usize::MAX);
        assert_eq!(cs.len(), 3);
        let by_id = |id: u64| cs.iter().find(|c| c.id == CmdId(id)).unwrap();
        assert_eq!(by_id(0).status, NvmeStatus::MediaError);
        assert_eq!(by_id(1).status, NvmeStatus::DeviceUnavailable);
        assert_eq!(by_id(2).status, NvmeStatus::Success);
        assert_eq!(d.stats().media_errors, 1);
        assert_eq!(d.stats().unavailable, 1);
        // Dead completions abort fast, without paying the read latency.
        assert!((by_id(1).completed_at - t0).as_micros_f64() < 2.0);
    }

    #[test]
    fn fault_hook_extra_latency_delays_completion() {
        let (mut d0, qp0) = dev();
        let (mut d1, qp1) = dev();
        d1.set_fault_hook(Box::new(ScriptedHook {
            actions: vec![DeviceFaultAction::ExtraLatency(SimDuration::from_millis(2))],
        }));
        d0.submit(SimTime::ZERO, qp0, NvmeCommand::read(CmdId(1), 0, 4096))
            .unwrap();
        d1.submit(SimTime::ZERO, qp1, NvmeCommand::read(CmdId(1), 0, 4096))
            .unwrap();
        let healthy = d0.next_completion_time(qp0).unwrap();
        let delayed = d1.next_completion_time(qp1).unwrap();
        let gap = (delayed - healthy).as_micros_f64();
        assert!((gap - 2_000.0).abs() < 1e-6, "gap {gap}us");
    }

    #[test]
    fn fault_hook_does_not_perturb_healthy_rng_stream() {
        // Same seed, one device with a pass-through hook: identical
        // completion times (the hook must not consume device RNG).
        let (mut d0, qp0) = dev();
        let (mut d1, qp1) = dev();
        d1.set_fault_hook(Box::new(ScriptedHook { actions: vec![] }));
        for i in 0..50u64 {
            let t = SimTime::from_micros(i * 10);
            d0.submit(t, qp0, NvmeCommand::read(CmdId(i), i * 4096, 4096))
                .unwrap();
            d1.submit(t, qp1, NvmeCommand::read(CmdId(i), i * 4096, 4096))
                .unwrap();
            assert_eq!(
                d0.next_completion_time(qp0),
                d1.next_completion_time(qp1),
                "diverged at cmd {i}"
            );
            d0.poll_completions(SimTime::from_secs(1), qp0, usize::MAX);
            d1.poll_completions(SimTime::from_secs(1), qp1, usize::MAX);
        }
    }

    #[test]
    fn windowed_replicas_match_inline_device() {
        // Inline reference device vs two windowed replicas, each owning one
        // qp and exchanging staged commands at every window boundary: the
        // locally delivered completions and the stats must be identical.
        let mut inline_d = FlashDevice::new(device_a(), SimRng::seed(7));
        let i0 = inline_d.create_queue_pair();
        let i1 = inline_d.create_queue_pair();
        let mut base = FlashDevice::new(device_a(), SimRng::seed(7));
        base.create_queue_pair();
        base.create_queue_pair();
        base.enable_windowed(SimDuration::from_micros(1));
        let mut a = base.replicate();
        let mut b = base.replicate();
        a.set_local_qps(vec![true, false]);
        b.set_local_qps(vec![false, true]);

        let mut next_cmd = 0u64;
        for win in 0..40u64 {
            for j in 0..5u64 {
                let t = SimTime::from_nanos(win * 1_000 + j * 180);
                let addr = (next_cmd * 7_919 % 1_000_000) * 4096;
                let cmd = if next_cmd.is_multiple_of(4) {
                    NvmeCommand::write(CmdId(next_cmd), addr, 4096)
                } else {
                    NvmeCommand::read(CmdId(next_cmd), addr, 4096)
                };
                if next_cmd.is_multiple_of(2) {
                    inline_d.submit(t, i0, cmd).unwrap();
                    a.submit(t, i0, cmd).unwrap();
                } else {
                    inline_d.submit(t, i1, cmd).unwrap();
                    b.submit(t, i1, cmd).unwrap();
                }
                next_cmd += 1;
            }
            let boundary = SimTime::from_nanos((win + 1) * 1_000);
            let oa = a.take_staged_outbound();
            let ob = b.take_staged_outbound();
            a.accept_staged(&ob);
            b.accept_staged(&oa);
            a.observe(boundary);
            b.observe(boundary);
        }
        // Flush the last window and compare.
        let late = SimTime::from_secs(1);
        let oa = a.take_staged_outbound();
        let ob = b.take_staged_outbound();
        a.accept_staged(&ob);
        b.accept_staged(&oa);
        a.observe(late);
        b.observe(late);
        assert_eq!(
            inline_d.poll_completions(late, i0, usize::MAX),
            a.poll_completions(late, i0, usize::MAX)
        );
        assert_eq!(
            inline_d.poll_completions(late, i1, usize::MAX),
            b.poll_completions(late, i1, usize::MAX)
        );
        assert_eq!(inline_d.stats(), a.stats());
        assert_eq!(inline_d.stats(), b.stats());
    }

    #[test]
    fn windowed_sq_depth_counts_staged_commands() {
        let mut d = FlashDevice::new(device_a(), SimRng::seed(3));
        let qp = d.create_queue_pair();
        d.enable_windowed(SimDuration::from_micros(1));
        let depth = d.profile().sq_depth;
        for i in 0..depth {
            d.submit(
                SimTime::ZERO,
                qp,
                NvmeCommand::read(CmdId(i as u64), 0, 4096),
            )
            .unwrap();
        }
        // All staged, none applied — the queue must still report full.
        let err = d.submit(SimTime::ZERO, qp, NvmeCommand::read(CmdId(9_999), 0, 4096));
        assert_eq!(err, Err(SubmitError::QueueFull));
        d.observe(SimTime::from_micros(1));
        let t = SimTime::from_secs(10);
        assert_eq!(d.poll_completions(t, qp, usize::MAX).len(), depth as usize);
        assert!(d
            .submit(t, qp, NvmeCommand::read(CmdId(9_999), 0, 4096))
            .is_ok());
    }

    #[test]
    fn wear_factor_slows_writes() {
        let (mut d, qp) = dev();
        d.set_wear_factor(4.0);
        let t0 = SimTime::ZERO;
        for i in 0..8 {
            d.submit(t0, qp, NvmeCommand::write(CmdId(i), 0, 4096))
                .unwrap();
        }
        d.submit(t0, qp, NvmeCommand::read(CmdId(99), 0, 4096))
            .unwrap();
        let all = d.poll_completions(SimTime::from_secs(1), qp, usize::MAX);
        let read = all.iter().find(|c| c.id == CmdId(99)).unwrap();
        let lat = (read.completed_at - t0).as_micros_f64();
        // 8 programs x 430us x 4 wear = ~13.8ms backlog; ~10ms forced ahead.
        assert!(lat > 5_000.0, "worn-device read latency {lat}us");
    }
}
