//! Validates the device model's latency-vs-load surface — the substrate for
//! the paper's Figure 1 (tail read latency depends on total IOPS *and* the
//! read/write ratio) and Figure 3 (curves collapse under token weighting).

use reflex_flash::{device_a, CmdId, DeviceProfile, FlashDevice, IoType, NvmeCommand};
use reflex_sim::{Histogram, SimDuration, SimRng, SimTime};

/// Open-loop Poisson sweep at `total_iops` with `read_pct` reads; returns
/// p95 read latency in microseconds. Requests are 4KB, uniformly random.
fn p95_read_at(mut profile: DeviceProfile, total_iops: f64, read_pct: u32, seed: u64) -> f64 {
    // The open-loop sweep keeps issuing past saturation by design; a huge SQ
    // lets the backlog (and thus the measured tail) grow unbounded.
    profile.sq_depth = 1 << 20;
    let mut dev = FlashDevice::new(profile, SimRng::seed(seed));
    dev.precondition();
    let qp = dev.create_queue_pair();
    let mut rng = SimRng::seed(seed ^ 0xabcd);
    let mut hist = Histogram::new();
    let mean_gap = SimDuration::from_secs_f64(1.0 / total_iops);
    let mut now = SimTime::ZERO;
    let warmup = SimTime::from_millis(100);
    let end = SimTime::from_millis(400);
    let mut issued: Vec<(CmdId, SimTime, IoType)> = Vec::new();
    let mut id = 0u64;
    while now < end {
        now += rng.exponential(mean_gap);
        let addr = dev.random_page_addr();
        let is_read = rng.below(100) < read_pct as u64;
        let cmd = if is_read {
            NvmeCommand::read(CmdId(id), addr, 4096)
        } else {
            NvmeCommand::write(CmdId(id), addr, 4096)
        };
        issued.push((CmdId(id), now, cmd.op));
        id += 1;
        // Drain completions opportunistically to bound queue memory.
        let _ = dev.poll_completions(now, qp, usize::MAX);
        dev.submit(now, qp, cmd)
            .expect("sq depth generous for sweep");
    }
    let done = dev.poll_completions(SimTime::from_secs(30), qp, usize::MAX);
    let mut completion_of = std::collections::HashMap::new();
    for c in done {
        completion_of.insert(c.id, c.completed_at);
    }
    for (cid, at, op) in issued {
        if op != IoType::Read || at < warmup {
            continue;
        }
        if let Some(&fin) = completion_of.get(&cid) {
            hist.record(fin.saturating_since(at));
        }
    }
    hist.p95().as_micros_f64()
}

#[test]
fn read_only_load_has_low_tail_at_half_capacity() {
    let p95 = p95_read_at(device_a(), 500_000.0, 100, 1);
    assert!(p95 < 400.0, "p95 at 500K read-only IOPS was {p95}us");
}

#[test]
fn tail_latency_grows_with_load() {
    let low = p95_read_at(device_a(), 100_000.0, 100, 2);
    let high = p95_read_at(device_a(), 900_000.0, 100, 2);
    assert!(high > low, "p95 must grow with load: low={low} high={high}");
}

#[test]
fn writes_drag_read_tails_at_equal_total_iops() {
    let pure = p95_read_at(device_a(), 200_000.0, 100, 3);
    let mixed = p95_read_at(device_a(), 200_000.0, 75, 3);
    assert!(
        mixed > 2.0 * pure,
        "75% read load should have much worse read tail: pure={pure}us mixed={mixed}us"
    );
}

#[test]
fn knee_positions_follow_the_cost_model() {
    // At ~65% of the weighted token capacity the device should still be
    // comfortable for any ratio; near 100% it should be heavily degraded.
    let profile = device_a();
    let tokens = profile.token_rate(); // ~650K tokens/s
    let wc = profile.write_cost_tokens(); // ~10

    for read_pct in [90u32, 75] {
        let r = read_pct as f64 / 100.0;
        let cost_per_io = r + (1.0 - r) * wc;
        let comfortable = 0.6 * tokens / cost_per_io;
        let saturated = 1.15 * tokens / cost_per_io;
        let ok = p95_read_at(profile.clone(), comfortable, read_pct, 4);
        let bad = p95_read_at(profile.clone(), saturated, read_pct, 4);
        assert!(
            ok < 1_000.0,
            "r={read_pct}%: comfortable load p95 {ok}us too high"
        );
        assert!(
            bad > 1_500.0,
            "r={read_pct}%: saturated load p95 {bad}us too low"
        );
        assert!(
            bad > 3.0 * ok,
            "r={read_pct}%: knee not sharp: {ok} -> {bad}"
        );
    }
}

/// Diagnostic, not an assertion: prints the Figure-1 surface. Run with
/// `cargo test -p reflex-flash --test latency_surface -- --ignored --nocapture`.
#[test]
#[ignore = "diagnostic sweep; prints the latency surface"]
fn print_figure1_surface() {
    println!("read_pct\tkIOPS\tp95_read_us");
    for read_pct in [100u32, 99, 95, 90, 75, 50] {
        for kiops in [
            50u64, 100, 150, 200, 300, 400, 500, 600, 700, 800, 900, 1000, 1100,
        ] {
            let p95 = p95_read_at(device_a(), kiops as f64 * 1e3, read_pct, 7);
            println!("{read_pct}\t{kiops}\t{p95:.0}");
            if p95 > 4000.0 {
                break;
            }
        }
    }
}
