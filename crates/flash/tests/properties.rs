//! Property-based tests of the Flash device model's invariants.

use proptest::prelude::*;
use reflex_flash::{device_a, CmdId, FlashDevice, NvmeCommand, NvmeStatus};
use reflex_sim::{SimRng, SimTime};

fn arbitrary_cmd(i: u64, kind: u8, page: u64, pages: u32) -> NvmeCommand {
    let addr = (page % 1_000_000) * 4096;
    let len = pages.clamp(1, 64) * 4096;
    if kind == 0 {
        NvmeCommand::read(CmdId(i), addr, len)
    } else {
        NvmeCommand::write(CmdId(i), addr, len)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Completions never precede submissions, and polled completions come
    /// out in non-decreasing completion order.
    #[test]
    fn completions_causal_and_ordered(
        cmds in prop::collection::vec((0u8..2, 0u64..1_000_000, 1u32..8, 1u64..50_000), 1..200),
    ) {
        let mut dev = FlashDevice::new(device_a(), SimRng::seed(1));
        let qp = dev.create_queue_pair();
        let mut now = SimTime::ZERO;
        let mut submit_times = std::collections::HashMap::new();
        for (i, (kind, page, pages, gap_ns)) in cmds.iter().enumerate() {
            now += reflex_sim::SimDuration::from_nanos(*gap_ns);
            let cmd = arbitrary_cmd(i as u64, *kind, *page, *pages);
            submit_times.insert(cmd.id, now);
            dev.submit(now, qp, cmd).expect("sq deep enough");
        }
        let completions = dev.poll_completions(SimTime::from_secs(3_600), qp, usize::MAX);
        prop_assert_eq!(completions.len(), cmds.len());
        let mut prev = SimTime::ZERO;
        for c in &completions {
            prop_assert!(c.completed_at >= prev, "completion order violated");
            prev = c.completed_at;
            let submitted = submit_times[&c.id];
            prop_assert!(c.completed_at >= submitted, "completion before submission");
            prop_assert_eq!(c.status, NvmeStatus::Success);
        }
    }

    /// The completion instant returned by submit matches what the CQ
    /// later reports.
    #[test]
    fn predicted_completion_matches_cq(
        cmds in prop::collection::vec((0u8..2, 0u64..100_000, 1u32..4), 1..100),
    ) {
        let mut dev = FlashDevice::new(device_a(), SimRng::seed(2));
        let qp = dev.create_queue_pair();
        let mut predicted = std::collections::HashMap::new();
        let mut now = SimTime::ZERO;
        for (i, (kind, page, pages)) in cmds.iter().enumerate() {
            now += reflex_sim::SimDuration::from_micros(3);
            let cmd = arbitrary_cmd(i as u64, *kind, *page, *pages);
            let at = dev.submit(now, qp, cmd).expect("deep sq");
            predicted.insert(cmd.id, at);
        }
        for c in dev.poll_completions(SimTime::from_secs(3_600), qp, usize::MAX) {
            prop_assert_eq!(predicted[&c.id], c.completed_at);
        }
    }

    /// Out-of-range commands always complete with OutOfRange and never
    /// touch channel state (subsequent latencies are unaffected).
    #[test]
    fn out_of_range_is_isolated(offsets in prop::collection::vec(0u64..1_000_000, 1..20)) {
        let mut dev = FlashDevice::new(device_a(), SimRng::seed(3));
        let qp = dev.create_queue_pair();
        let cap = dev.profile().capacity_bytes;
        for (i, off) in offsets.iter().enumerate() {
            dev.submit(
                SimTime::ZERO,
                qp,
                NvmeCommand::read(CmdId(i as u64), cap + off * 4096, 4096),
            )
            .expect("accepted");
        }
        let cs = dev.poll_completions(SimTime::from_secs(1), qp, usize::MAX);
        for c in &cs {
            prop_assert_eq!(c.status, NvmeStatus::OutOfRange);
        }
        // A clean read afterwards sees unloaded latency.
        let t = SimTime::from_secs(2);
        let done = dev.submit(t, qp, NvmeCommand::read(CmdId(999), 0, 4096)).unwrap();
        let lat_us = done.saturating_since(t).as_micros_f64();
        prop_assert!(lat_us < 150.0, "clean read after errors took {lat_us}us");
    }

    /// Device statistics count exactly what was submitted.
    #[test]
    fn stats_count_submissions(
        reads in 0u32..50,
        writes in 0u32..50,
    ) {
        let mut dev = FlashDevice::new(device_a(), SimRng::seed(4));
        let qp = dev.create_queue_pair();
        let mut id = 0u64;
        for _ in 0..reads {
            dev.submit(SimTime::ZERO, qp, NvmeCommand::read(CmdId(id), 0, 4096)).unwrap();
            id += 1;
        }
        for _ in 0..writes {
            dev.submit(SimTime::ZERO, qp, NvmeCommand::write(CmdId(id), 4096, 4096)).unwrap();
            id += 1;
        }
        let stats = dev.stats();
        prop_assert_eq!(stats.reads, reads as u64);
        prop_assert_eq!(stats.writes, writes as u64);
        prop_assert_eq!(stats.read_pages, reads as u64);
        prop_assert_eq!(stats.write_pages, writes as u64);
    }

    /// Queue-pair isolation: traffic on one QP never produces completions
    /// on another.
    #[test]
    fn qp_isolation(n in 1u32..100) {
        let mut dev = FlashDevice::new(device_a(), SimRng::seed(5));
        let qp0 = dev.create_queue_pair();
        let qp1 = dev.create_queue_pair();
        for i in 0..n {
            dev.submit(SimTime::ZERO, qp0, NvmeCommand::read(CmdId(i as u64), 0, 4096)).unwrap();
        }
        prop_assert!(dev.poll_completions(SimTime::from_secs(10), qp1, usize::MAX).is_empty());
        prop_assert_eq!(
            dev.poll_completions(SimTime::from_secs(10), qp0, usize::MAX).len(),
            n as usize
        );
    }
}
