//! Steady-state behaviours of the device model: the sustained-write cliff
//! (bursts absorb into the DRAM buffer; sustained load settles at the
//! program-bandwidth floor) and wear-driven slowdown.

use reflex_flash::{device_a, CmdId, FlashDevice, NvmeCommand};
use reflex_sim::{SimDuration, SimRng, SimTime};

fn write_burst_latency_us(
    dev: &mut FlashDevice,
    qp: reflex_flash::QpId,
    start: SimTime,
    n: u64,
) -> (f64, SimTime) {
    let mut t = start;
    let mut total = 0.0;
    for i in 0..n {
        t += SimDuration::from_micros(5); // 200K writes/s offered
        let addr = dev.random_page_addr();
        let done = dev
            .submit(
                t,
                qp,
                NvmeCommand::write(CmdId(i + start.as_nanos()), addr, 4096),
            )
            .expect("deep sq");
        total += done.saturating_since(t).as_micros_f64();
    }
    (total / n as f64, t)
}

#[test]
fn write_burst_fast_then_sustained_cliff() {
    let mut profile = device_a();
    profile.sq_depth = 1 << 20;
    let mut dev = FlashDevice::new(profile, SimRng::seed(9));
    dev.precondition();
    let qp = dev.create_queue_pair();

    // A short burst rides the DRAM buffer (~4ms of program backlog fits):
    // ~10us writes while it lasts.
    let (burst_avg, t) = write_burst_latency_us(&mut dev, qp, SimTime::ZERO, 100);
    assert!(burst_avg < 40.0, "early burst writes {burst_avg}us");

    // Sustained 200K writes/s is 3x the ~65K-page/s program bandwidth:
    // the backlog exceeds the buffer allowance and writes stall hard.
    let (_, t2) = write_burst_latency_us(&mut dev, qp, t, 30_000);
    let (sustained_avg, _) = write_burst_latency_us(&mut dev, qp, t2, 2_000);
    assert!(
        sustained_avg > 20_000.0,
        "sustained overload writes should hit the cliff: {sustained_avg}us"
    );
}

#[test]
fn sustained_write_throughput_matches_program_bandwidth() {
    let mut profile = device_a();
    profile.sq_depth = 1 << 20;
    let mut dev = FlashDevice::new(profile.clone(), SimRng::seed(10));
    dev.precondition();
    let qp = dev.create_queue_pair();
    // Closed-loop writes at QD 64 for 2 simulated seconds.
    let mut heap = std::collections::BinaryHeap::new();
    for i in 0..64u64 {
        let addr = dev.random_page_addr();
        let done = dev
            .submit(SimTime::ZERO, qp, NvmeCommand::write(CmdId(i), addr, 4096))
            .unwrap();
        heap.push(std::cmp::Reverse(done));
    }
    let mut id = 64u64;
    let mut completed = 0u64;
    let end = SimTime::from_secs(2);
    while let Some(std::cmp::Reverse(done)) = heap.pop() {
        if done > end {
            break;
        }
        completed += 1;
        let addr = dev.random_page_addr();
        let next = dev
            .submit(done, qp, NvmeCommand::write(CmdId(id), addr, 4096))
            .unwrap();
        id += 1;
        heap.push(std::cmp::Reverse(next));
    }
    let rate = completed as f64 / 2.0;
    // Program bandwidth: 32 channels / (430us + 500us/8 GC) = ~65K pages/s.
    assert!(
        (52_000.0..78_000.0).contains(&rate),
        "sustained write rate {rate} pages/s"
    );
}

#[test]
fn worn_device_sustains_less_write_throughput() {
    let run = |wear: f64| {
        let mut profile = device_a();
        profile.sq_depth = 1 << 20;
        let mut dev = FlashDevice::new(profile, SimRng::seed(11));
        dev.precondition();
        dev.set_wear_factor(wear);
        let qp = dev.create_queue_pair();
        let mut heap = std::collections::BinaryHeap::new();
        for i in 0..32u64 {
            let addr = dev.random_page_addr();
            let done = dev
                .submit(SimTime::ZERO, qp, NvmeCommand::write(CmdId(i), addr, 4096))
                .unwrap();
            heap.push(std::cmp::Reverse(done));
        }
        let mut id = 32u64;
        let mut completed = 0u64;
        let end = SimTime::from_secs(1);
        while let Some(std::cmp::Reverse(done)) = heap.pop() {
            if done > end {
                break;
            }
            completed += 1;
            let addr = dev.random_page_addr();
            let next = dev
                .submit(done, qp, NvmeCommand::write(CmdId(id), addr, 4096))
                .unwrap();
            id += 1;
            heap.push(std::cmp::Reverse(next));
        }
        completed as f64
    };
    let fresh = run(1.0);
    let worn = run(2.0);
    assert!(
        worn < fresh * 0.65,
        "2x wear should roughly halve write bandwidth: {fresh} -> {worn}"
    );
}
