//! Failure injection: uncorrectable media errors.

use reflex_flash::{device_a, CmdId, FlashDevice, NvmeCommand, NvmeStatus};
use reflex_sim::{SimRng, SimTime};

#[test]
fn media_errors_occur_at_the_configured_rate() {
    let mut profile = device_a();
    profile.media_error_rate = 0.05;
    profile.sq_depth = 1 << 16; // batch-submit test: no backpressure needed
    let mut dev = FlashDevice::new(profile, SimRng::seed(1));
    let qp = dev.create_queue_pair();
    let n = 5_000u64;
    for i in 0..n {
        let addr = dev.random_page_addr();
        dev.submit(
            SimTime::from_nanos(i * 2_000),
            qp,
            NvmeCommand::read(CmdId(i), addr, 4096),
        )
        .expect("deep sq");
    }
    let cs = dev.poll_completions(SimTime::from_secs(600), qp, usize::MAX);
    let errors = cs
        .iter()
        .filter(|c| c.status == NvmeStatus::MediaError)
        .count();
    let rate = errors as f64 / n as f64;
    assert!((0.035..0.07).contains(&rate), "observed error rate {rate}");
    assert_eq!(dev.stats().media_errors, errors as u64);
}

#[test]
fn healthy_devices_never_error() {
    let mut profile = device_a();
    profile.sq_depth = 1 << 16;
    let mut dev = FlashDevice::new(profile, SimRng::seed(2));
    let qp = dev.create_queue_pair();
    for i in 0..2_000u64 {
        let addr = dev.random_page_addr();
        dev.submit(
            SimTime::from_nanos(i * 1_000),
            qp,
            NvmeCommand::read(CmdId(i), addr, 4096),
        )
        .expect("deep sq");
    }
    let cs = dev.poll_completions(SimTime::from_secs(600), qp, usize::MAX);
    assert!(cs.iter().all(|c| c.status == NvmeStatus::Success));
}

#[test]
fn writes_are_unaffected_by_read_error_injection() {
    let mut profile = device_a();
    profile.media_error_rate = 0.5;
    let mut dev = FlashDevice::new(profile, SimRng::seed(3));
    let qp = dev.create_queue_pair();
    for i in 0..500u64 {
        let addr = dev.random_page_addr();
        dev.submit(
            SimTime::from_nanos(i * 20_000),
            qp,
            NvmeCommand::write(CmdId(i), addr, 4096),
        )
        .expect("deep sq");
    }
    let cs = dev.poll_completions(SimTime::from_secs(600), qp, usize::MAX);
    assert!(cs.iter().all(|c| c.status == NvmeStatus::Success));
}

#[test]
fn invalid_rate_rejected() {
    let mut profile = device_a();
    profile.media_error_rate = 1.5;
    assert!(profile.validate().is_err());
}
