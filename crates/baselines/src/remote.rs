//! Software remote-storage baselines: iSCSI and libaio+libevent servers.
//!
//! Both run on the Linux kernel network stack (set
//! `TestbedBuilder::server_stack(StackProfile::linux_tcp())`), process
//! requests FIFO with no QoS scheduling, and are characterized by their
//! per-request CPU cost and protocol/copy latency:
//!
//! * **iSCSI** (paper §2.1, §5.2): ~70K IOPS per core; heavy protocol
//!   processing and data copies between socket, SCSI and application
//!   buffers add large fixed latency on both request and response paths.
//! * **libaio+libevent** (paper §5.2): a lightweight epoll server using
//!   Linux AIO; ~75K IOPS per core, moderate added latency.
//!
//! They implement [`ServerHarness`], so they run under the exact same
//! testbed (clients, fabric, device) as the ReFlex server.

use std::collections::HashMap;

use reflex_core::{AdmissionError, ServerHarness};
use reflex_dataplane::{AclEntry, WireMsg};
use reflex_flash::{CmdId, FlashDevice, IoType, NvmeCommand, QpId};
use reflex_net::{ConnId, Fabric, MachineId, NicQueueId, Opcode, ReflexHeader};
use reflex_qos::{TenantClass, TenantId};
use reflex_sim::{SimDuration, SimRng, SimTime};

/// Performance parameters of a baseline server.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineConfig {
    /// Human-readable name.
    pub name: String,
    /// Worker CPU per request on the receive/submit path.
    pub rx_cpu: SimDuration,
    /// Worker CPU per request on the completion/response path.
    pub tx_cpu: SimDuration,
    /// Median extra latency on the request path (protocol processing,
    /// buffer copies) beyond CPU occupancy.
    pub request_overhead_median: SimDuration,
    /// Median extra latency on the response path.
    pub response_overhead_median: SimDuration,
    /// Lognormal sigma for the overhead samples.
    pub overhead_sigma: f64,
    /// Worker threads.
    pub threads: u32,
}

impl BaselineConfig {
    /// The Linux iSCSI target (~70K IOPS/core; §2.1).
    pub fn iscsi() -> Self {
        BaselineConfig {
            name: "iscsi".to_owned(),
            rx_cpu: SimDuration::from_micros_f64(7.4),
            tx_cpu: SimDuration::from_micros_f64(6.9),
            request_overhead_median: SimDuration::from_micros_f64(38.0),
            response_overhead_median: SimDuration::from_micros_f64(38.0),
            overhead_sigma: 0.35,
            threads: 1,
        }
    }

    /// The libaio+libevent lightweight server (~75K IOPS/core; §5.2).
    pub fn libaio() -> Self {
        BaselineConfig {
            name: "libaio".to_owned(),
            rx_cpu: SimDuration::from_micros_f64(7.0),
            tx_cpu: SimDuration::from_micros_f64(6.3),
            request_overhead_median: SimDuration::from_micros_f64(6.0),
            response_overhead_median: SimDuration::from_micros_f64(6.0),
            overhead_sigma: 0.4,
            threads: 1,
        }
    }

    /// Same configuration with a different worker count.
    pub fn with_threads(mut self, threads: u32) -> Self {
        assert!(threads > 0, "need at least one worker");
        self.threads = threads;
        self
    }

    /// Theoretical per-core IOPS ceiling.
    pub fn peak_iops_per_core(&self) -> f64 {
        1.0 / (self.rx_cpu.as_secs_f64() + self.tx_cpu.as_secs_f64())
    }
}

#[derive(Debug, Clone, Copy)]
struct PendingReq {
    conn: ConnId,
    client: MachineId,
    cookie: u64,
    op: IoType,
    len: u32,
}

#[derive(Debug)]
struct Worker {
    queue: NicQueueId,
    qp: QpId,
    busy: SimTime,
    busy_total: SimDuration,
    inflight: HashMap<CmdId, PendingReq>,
}

/// A baseline remote-storage server (iSCSI or libaio model).
#[derive(Debug)]
pub struct BaselineServer {
    machine: MachineId,
    config: BaselineConfig,
    workers: Vec<Worker>,
    tenants: HashMap<TenantId, usize>,
    conn_binding: HashMap<ConnId, (TenantId, MachineId, usize)>,
    next_worker: usize,
    cmd_seq: u64,
    rng: SimRng,
}

impl BaselineServer {
    /// Creates the server on `machine`, allocating one NIC queue and one
    /// NVMe queue pair per worker.
    pub fn new(
        machine: MachineId,
        fabric: &mut Fabric<WireMsg>,
        device: &mut FlashDevice,
        config: BaselineConfig,
        seed: u64,
    ) -> Self {
        let workers = (0..config.threads)
            .map(|i| Worker {
                queue: if i == 0 {
                    NicQueueId(0)
                } else {
                    fabric.add_queue(machine)
                },
                qp: device.create_queue_pair(),
                busy: SimTime::ZERO,
                busy_total: SimDuration::ZERO,
                inflight: HashMap::new(),
            })
            .collect();
        BaselineServer {
            machine,
            config,
            workers,
            tenants: HashMap::new(),
            conn_binding: HashMap::new(),
            next_worker: 0,
            cmd_seq: 0,
            rng: SimRng::seed(seed),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &BaselineConfig {
        &self.config
    }
}

impl ServerHarness for BaselineServer {
    fn machine(&self) -> MachineId {
        self.machine
    }

    fn active_threads(&self) -> usize {
        self.workers.len()
    }

    fn nic_queue(&self, thread: usize) -> NicQueueId {
        self.workers[thread].queue
    }

    fn register_tenant(
        &mut self,
        id: TenantId,
        _class: TenantClass,
        _acl: AclEntry,
        _io_size: u32,
    ) -> Result<usize, AdmissionError> {
        // No SLOs, no admission control: everything is best effort.
        if self.tenants.contains_key(&id) {
            return Err(AdmissionError::Duplicate(id));
        }
        let worker = self.next_worker % self.workers.len();
        self.next_worker += 1;
        self.tenants.insert(id, worker);
        Ok(worker)
    }

    fn bind_connection(
        &mut self,
        conn: ConnId,
        tenant: TenantId,
        client: MachineId,
    ) -> Result<(usize, NicQueueId), AdmissionError> {
        let &worker = self
            .tenants
            .get(&tenant)
            .ok_or(AdmissionError::Unknown(tenant))?;
        self.conn_binding.insert(conn, (tenant, client, worker));
        Ok((worker, self.workers[worker].queue))
    }

    fn route(&self, conn: ConnId) -> Option<NicQueueId> {
        self.conn_binding
            .get(&conn)
            .map(|&(_, _, w)| self.workers[w].queue)
    }

    fn thread_of_conn(&self, conn: ConnId) -> Option<usize> {
        self.conn_binding.get(&conn).map(|&(_, _, w)| w)
    }

    fn pump_thread(
        &mut self,
        i: usize,
        now: SimTime,
        fabric: &mut Fabric<WireMsg>,
        device: &mut FlashDevice,
    ) -> Option<SimTime> {
        let sigma = self.config.overhead_sigma;
        if self.workers[i].busy < now {
            self.workers[i].busy = now;
        }
        loop {
            let mut progress = false;

            // Receive path: FIFO, one at a time (no adaptive batching).
            let cursor = self.workers[i].busy;
            let msgs = fabric.poll_queue(cursor, self.machine, self.workers[i].queue, 16);
            for d in msgs {
                let rx_cpu = self.config.rx_cpu;
                let overhead = self
                    .rng
                    .lognormal(self.config.request_overhead_median, sigma);
                let w = &mut self.workers[i];
                w.busy += rx_cpu;
                w.busy_total += rx_cpu;
                let Ok(header) = ReflexHeader::decode(&d.payload) else {
                    continue;
                };
                let Some(&(_tenant, client, _)) = self.conn_binding.get(&d.conn) else {
                    continue;
                };
                let op = match header.opcode {
                    Opcode::Get => IoType::Read,
                    Opcode::Put => IoType::Write,
                    // Baseline servers predate barrier support; ignore.
                    Opcode::Barrier | Opcode::Response | Opcode::Error => continue,
                };
                let id = CmdId(self.cmd_seq);
                self.cmd_seq += 1;
                let submit_at = self.workers[i].busy + overhead;
                let cmd = match op {
                    IoType::Read => NvmeCommand::read(id, header.addr, header.len),
                    IoType::Write => NvmeCommand::write(id, header.addr, header.len),
                };
                if device.submit(submit_at, self.workers[i].qp, cmd).is_ok() {
                    self.workers[i].inflight.insert(
                        id,
                        PendingReq {
                            conn: d.conn,
                            client,
                            cookie: header.cookie,
                            op,
                            len: header.len,
                        },
                    );
                }
                progress = true;
            }

            // Completion path.
            let cursor = self.workers[i].busy;
            let comps = device.poll_completions(cursor, self.workers[i].qp, 16);
            for c in comps {
                let tx_cpu = self.config.tx_cpu;
                let overhead = self
                    .rng
                    .lognormal(self.config.response_overhead_median, sigma);
                let w = &mut self.workers[i];
                w.busy += tx_cpu;
                w.busy_total += tx_cpu;
                let Some(req) = w.inflight.remove(&c.id) else {
                    continue;
                };
                let ok = c.status == reflex_flash::NvmeStatus::Success;
                let header = ReflexHeader {
                    opcode: if ok { Opcode::Response } else { Opcode::Error },
                    tenant: 0,
                    cookie: req.cookie,
                    addr: 0,
                    len: req.len,
                };
                let payload = if ok && req.op.is_read() { req.len } else { 0 };
                let send_at = self.workers[i].busy + overhead;
                fabric.send(
                    send_at,
                    self.machine,
                    req.client,
                    req.conn,
                    payload,
                    header.encode_array(),
                );
                progress = true;
            }

            if !progress {
                break;
            }
        }

        let w = &self.workers[i];
        let mut wake: Option<SimTime> = None;
        let mut consider = |t: Option<SimTime>| {
            if let Some(t) = t {
                wake = Some(wake.map_or(t, |x: SimTime| x.min(t)));
            }
        };
        consider(fabric.next_arrival_queue(self.machine, w.queue));
        consider(device.next_completion_time(w.qp));
        wake.map(|t| t.max(w.busy))
    }

    fn busy_time(&self, i: usize) -> SimDuration {
        self.workers[i].busy_total
    }
}
