//! # reflex-baselines — comparison systems from the paper's evaluation
//!
//! * [`LocalRig`] — direct local NVMe access via SPDK (the "Local" rows
//!   and curves; best case).
//! * [`BaselineServer`] with [`BaselineConfig::iscsi`] — the Linux iSCSI
//!   target (~70K IOPS/core, heavy protocol latency).
//! * [`BaselineServer`] with [`BaselineConfig::libaio`] — the lightweight
//!   libaio+libevent server (~75K IOPS/core).
//!
//! The remote baselines implement [`reflex_core::ServerHarness`], so every
//! comparison uses identical clients, fabric and Flash device — only the
//! server changes.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod local;
mod remote;

pub use local::{LocalReport, LocalRig, SPDK_PER_REQ_CPU};
pub use remote::{BaselineConfig, BaselineServer};
