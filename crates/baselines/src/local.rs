//! Local Flash access through SPDK (the paper's "Local" baseline).
//!
//! SPDK gives software direct access to NVMe queues, bypassing the kernel
//! filesystem and block layers; its per-request software cost is tiny
//! (~1.15µs merged submit+complete), letting one core drive ~870K IOPS on
//! local Flash (paper §5.3). [`LocalRig`] measures latency-vs-throughput
//! for local access with a configurable number of polling threads.

use std::collections::HashMap;

use reflex_flash::{CmdId, DeviceProfile, FlashDevice, IoType, NvmeCommand};
use reflex_sim::{Histogram, SimDuration, SimRng, SimTime};

/// Per-request software cost of the SPDK path (submit + completion
/// handling merged; charged at submission).
pub const SPDK_PER_REQ_CPU: SimDuration = SimDuration::from_nanos(1_150);

/// Results of one local measurement.
#[derive(Debug, Clone)]
pub struct LocalReport {
    /// Read-latency histogram.
    pub read_latency: Histogram,
    /// Write-latency histogram.
    pub write_latency: Histogram,
    /// Completed operations per second over the measured window.
    pub iops: f64,
}

/// A local-access measurement rig: `threads` SPDK polling threads sharing
/// one device, each with its own queue pair.
///
/// # Examples
///
/// ```
/// use reflex_baselines::LocalRig;
/// use reflex_flash::device_a;
/// use reflex_sim::SimDuration;
///
/// let mut rig = LocalRig::new(device_a(), 1, 7);
/// let rep = rig.run_open_loop(
///     100_000.0,
///     100,
///     4096,
///     SimDuration::from_millis(50),
///     SimDuration::from_millis(100),
/// );
/// let avg = rep.read_latency.mean().as_micros_f64();
/// assert!((70.0..90.0).contains(&avg));
/// ```
#[derive(Debug)]
pub struct LocalRig {
    device: FlashDevice,
    qps: Vec<reflex_flash::QpId>,
    rng: SimRng,
    per_req_cpu: SimDuration,
}

impl LocalRig {
    /// Creates a rig with `threads` polling threads.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn new(mut profile: DeviceProfile, threads: u32, seed: u64) -> Self {
        assert!(threads > 0, "need at least one thread");
        // Open-loop sweeps intentionally run past saturation.
        profile.sq_depth = 1 << 20;
        let mut rng = SimRng::seed(seed);
        let mut device = FlashDevice::new(profile, rng.fork());
        device.precondition();
        let qps = (0..threads).map(|_| device.create_queue_pair()).collect();
        LocalRig {
            device,
            qps,
            rng,
            per_req_cpu: SPDK_PER_REQ_CPU,
        }
    }

    /// Overrides the per-request software cost (for ablations).
    pub fn set_per_req_cpu(&mut self, cpu: SimDuration) {
        self.per_req_cpu = cpu;
    }

    /// Open-loop measurement: Poisson arrivals at `iops` with `read_pct`%
    /// reads of `io_size` bytes, spread round-robin over the threads.
    pub fn run_open_loop(
        &mut self,
        iops: f64,
        read_pct: u8,
        io_size: u32,
        warmup: SimDuration,
        measure: SimDuration,
    ) -> LocalReport {
        assert!(iops > 0.0 && read_pct <= 100);
        let gap = SimDuration::from_secs_f64(1.0 / iops);
        let start_measure = SimTime::ZERO + warmup;
        let end = start_measure + measure;
        let mut thread_busy = vec![SimTime::ZERO; self.qps.len()];
        let mut issued: Vec<(CmdId, SimTime, IoType)> = Vec::new();
        let mut completion_of: HashMap<CmdId, SimTime> = HashMap::new();
        let mut now = SimTime::ZERO;
        let mut id = 0u64;
        while now < end {
            now += self.rng.exponential(gap);
            let th = (id as usize) % self.qps.len();
            let t_submit = now.max(thread_busy[th]) + self.per_req_cpu;
            thread_busy[th] = t_submit;
            let addr = self.device.random_page_addr();
            let op = if self.rng.below(100) < read_pct as u64 {
                IoType::Read
            } else {
                IoType::Write
            };
            let cmd = match op {
                IoType::Read => NvmeCommand::read(CmdId(id), addr, io_size),
                IoType::Write => NvmeCommand::write(CmdId(id), addr, io_size),
            };
            let qp = self.qps[th];
            for c in self.device.poll_completions(now, qp, usize::MAX) {
                completion_of.insert(c.id, c.completed_at);
            }
            self.device.submit(t_submit, qp, cmd).expect("deep sq");
            issued.push((CmdId(id), now, op));
            id += 1;
        }
        for &qp in &self.qps {
            for c in self
                .device
                .poll_completions(SimTime::from_secs(600), qp, usize::MAX)
            {
                completion_of.insert(c.id, c.completed_at);
            }
        }
        let mut read_latency = Histogram::new();
        let mut write_latency = Histogram::new();
        let mut completed_in_window = 0u64;
        for (cid, at, op) in issued {
            let Some(&fin) = completion_of.get(&cid) else {
                continue;
            };
            // Throughput: completions that landed inside the window.
            if fin >= start_measure && fin < end {
                completed_in_window += 1;
            }
            // Latency: requests issued inside the window.
            if at >= start_measure && at < end {
                let lat = fin.saturating_since(at);
                match op {
                    IoType::Read => read_latency.record(lat),
                    IoType::Write => write_latency.record(lat),
                }
            }
        }
        LocalReport {
            read_latency,
            write_latency,
            iops: completed_in_window as f64 / measure.as_secs_f64(),
        }
    }

    /// Closed-loop measurement at queue depth 1 per thread — the unloaded
    /// latency configuration of Table 2.
    pub fn run_unloaded(&mut self, read_pct: u8, io_size: u32, ops: u32) -> LocalReport {
        let mut read_latency = Histogram::new();
        let mut write_latency = Histogram::new();
        let qp = self.qps[0];
        let mut now = SimTime::ZERO;
        for i in 0..ops {
            // Idle gap between probes so the device drains (QD1 prober).
            now += SimDuration::from_micros(200);
            let t_submit = now + self.per_req_cpu;
            let addr = self.device.random_page_addr();
            let op = if self.rng.below(100) < read_pct as u64 {
                IoType::Read
            } else {
                IoType::Write
            };
            let cmd = match op {
                IoType::Read => NvmeCommand::read(CmdId(i as u64), addr, io_size),
                IoType::Write => NvmeCommand::write(CmdId(i as u64), addr, io_size),
            };
            self.device.submit(t_submit, qp, cmd).expect("deep sq");
            let done = self.device.next_completion_time(qp).expect("in flight");
            let _ = self.device.poll_completions(done, qp, usize::MAX);
            // Completion handling costs another CPU slice before the app
            // sees the data.
            let seen = done + self.per_req_cpu;
            let lat = seen.saturating_since(now);
            match op {
                IoType::Read => read_latency.record(lat),
                IoType::Write => write_latency.record(lat),
            }
            now = seen;
        }
        let total = read_latency.count() + write_latency.count();
        LocalReport {
            read_latency,
            write_latency,
            iops: total as f64, // not meaningful for QD1 probing
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reflex_flash::device_a;

    #[test]
    fn unloaded_latencies_match_table2_local_row() {
        let mut rig = LocalRig::new(device_a(), 1, 1);
        let rep = rig.run_unloaded(100, 4096, 2_000);
        let avg = rep.read_latency.mean().as_micros_f64();
        let p95 = rep.read_latency.p95().as_micros_f64();
        // Paper Table 2: local read 78 avg / 90 p95.
        assert!((73.0..85.0).contains(&avg), "local read avg {avg}");
        assert!((85.0..100.0).contains(&p95), "local read p95 {p95}");

        let mut rig = LocalRig::new(device_a(), 1, 2);
        let rep = rig.run_unloaded(0, 4096, 2_000);
        let avg = rep.write_latency.mean().as_micros_f64();
        let p95 = rep.write_latency.p95().as_micros_f64();
        // Paper Table 2: local write 11 avg / 17 p95.
        assert!((8.0..16.0).contains(&avg), "local write avg {avg}");
        assert!((12.0..24.0).contains(&p95), "local write p95 {p95}");
    }

    #[test]
    fn single_core_saturates_near_870k() {
        let mut rig = LocalRig::new(device_a(), 1, 3);
        // Offer 2M IOPS 4KB read-only on one thread: CPU-capped at ~870K.
        let rep = rig.run_open_loop(
            2_000_000.0,
            100,
            4096,
            SimDuration::from_millis(30),
            SimDuration::from_millis(100),
        );
        assert!(
            (780_000.0..920_000.0).contains(&rep.iops),
            "1-thread local IOPS {}",
            rep.iops
        );
    }

    #[test]
    fn two_cores_reach_device_limit() {
        let mut rig = LocalRig::new(device_a(), 2, 4);
        let rep = rig.run_open_loop(
            2_000_000.0,
            100,
            4096,
            SimDuration::from_millis(30),
            SimDuration::from_millis(100),
        );
        // Device A read-only limit ~1M IOPS.
        assert!(
            (900_000.0..1_100_000.0).contains(&rep.iops),
            "2-thread local IOPS {}",
            rep.iops
        );
    }

    #[test]
    fn latency_low_at_half_load() {
        let mut rig = LocalRig::new(device_a(), 2, 5);
        let rep = rig.run_open_loop(
            500_000.0,
            100,
            4096,
            SimDuration::from_millis(30),
            SimDuration::from_millis(100),
        );
        let p95 = rep.read_latency.p95().as_micros_f64();
        assert!(p95 < 400.0, "p95 at 500K local {p95}us");
    }
}
