//! Baseline servers under the shared testbed: unloaded latency (Table 2)
//! and per-core throughput ceilings (§5.3).

use reflex_baselines::{BaselineConfig, BaselineServer};
use reflex_core::{LoadPattern, Testbed, TestbedBuilder, WorkloadSpec};
use reflex_net::StackProfile;
use reflex_qos::{TenantClass, TenantId};
use reflex_sim::SimDuration;

fn baseline_testbed(config: BaselineConfig, client: StackProfile) -> Testbed<BaselineServer> {
    TestbedBuilder::new()
        .server_stack(StackProfile::linux_tcp())
        .client_machines(vec![client])
        .seed(99)
        .build_with(move |fabric, device, machine| {
            BaselineServer::new(machine, fabric, device, config, 17)
        })
}

fn unloaded(config: BaselineConfig, client: StackProfile, read_pct: u8) -> (f64, f64) {
    let mut tb = baseline_testbed(config, client);
    let mut spec = WorkloadSpec::closed_loop("probe", TenantId(1), TenantClass::BestEffort, 1);
    spec.read_pct = read_pct;
    tb.add_workload(spec).expect("baseline accepts any tenant");
    tb.run(SimDuration::from_millis(50));
    tb.begin_measurement();
    tb.run(SimDuration::from_millis(400));
    let report = tb.report();
    let w = report.workload("probe");
    assert_eq!(w.errors, 0, "probe must not error");
    let hist = if read_pct == 100 {
        &w.read_latency
    } else {
        &w.write_latency
    };
    (hist.mean().as_micros_f64(), hist.p95().as_micros_f64())
}

#[test]
fn iscsi_unloaded_read_latency_matches_table2() {
    // Paper: iSCSI 4KB read 211 avg / 251 p95 (Linux client).
    let (avg, p95) = unloaded(BaselineConfig::iscsi(), StackProfile::linux_tcp(), 100);
    assert!((190.0..235.0).contains(&avg), "iscsi read avg {avg}");
    assert!((225.0..285.0).contains(&p95), "iscsi read p95 {p95}");
}

#[test]
fn iscsi_unloaded_write_latency_matches_table2() {
    // Paper: iSCSI 4KB write 155 avg / 215 p95.
    let (avg, p95) = unloaded(BaselineConfig::iscsi(), StackProfile::linux_tcp(), 0);
    assert!((130.0..180.0).contains(&avg), "iscsi write avg {avg}");
    assert!((160.0..250.0).contains(&p95), "iscsi write p95 {p95}");
}

#[test]
fn libaio_unloaded_read_latency_matches_table2() {
    // Paper: libaio (Linux client) 183 avg / 205 p95; (IX client) 121/139.
    // Paper reports 183 avg for the Linux client; our model lands lower
    // (~150) because the interrupt-coalescing interplay between two Linux
    // endpoints is not modelled — the ordering vs the IX client and vs
    // ReFlex is what matters (recorded in EXPERIMENTS.md).
    let (avg_linux, p95_linux) = unloaded(BaselineConfig::libaio(), StackProfile::linux_tcp(), 100);
    assert!(
        (135.0..205.0).contains(&avg_linux),
        "libaio/linux read avg {avg_linux}"
    );
    assert!(
        (150.0..240.0).contains(&p95_linux),
        "libaio/linux read p95 {p95_linux}"
    );

    let (avg_ix, p95_ix) = unloaded(BaselineConfig::libaio(), StackProfile::ix_tcp(), 100);
    assert!(
        (108.0..135.0).contains(&avg_ix),
        "libaio/ix read avg {avg_ix}"
    );
    assert!(
        (125.0..160.0).contains(&p95_ix),
        "libaio/ix read p95 {p95_ix}"
    );
}

#[test]
fn libaio_throughput_caps_near_75k_per_core() {
    let mut tb = baseline_testbed(BaselineConfig::libaio(), StackProfile::ix_tcp());
    let mut spec = WorkloadSpec::open_loop(
        "load",
        TenantId(1),
        TenantClass::BestEffort,
        200_000.0, // far above a single worker's capacity
    );
    spec.io_size = 1024;
    spec.conns = 32;
    spec.client_threads = 8;
    tb.add_workload(spec).expect("accepted");
    tb.run(SimDuration::from_millis(100));
    tb.begin_measurement();
    tb.run(SimDuration::from_millis(200));
    let report = tb.report();
    let w = report.workload("load");
    assert!(
        (55_000.0..90_000.0).contains(&w.iops),
        "libaio 1-core IOPS {}",
        w.iops
    );
}

#[test]
fn iscsi_throughput_caps_near_70k_per_core() {
    let mut tb = baseline_testbed(BaselineConfig::iscsi(), StackProfile::ix_tcp());
    let mut spec = WorkloadSpec::open_loop("load", TenantId(1), TenantClass::BestEffort, 200_000.0);
    spec.io_size = 1024;
    spec.conns = 32;
    spec.client_threads = 8;
    tb.add_workload(spec).expect("accepted");
    tb.run(SimDuration::from_millis(100));
    tb.begin_measurement();
    tb.run(SimDuration::from_millis(200));
    let report = tb.report();
    let w = report.workload("load");
    assert!(
        (50_000.0..85_000.0).contains(&w.iops),
        "iscsi 1-core IOPS {}",
        w.iops
    );
}

#[test]
fn two_workers_double_libaio_throughput() {
    let mut tb = baseline_testbed(
        BaselineConfig::libaio().with_threads(2),
        StackProfile::ix_tcp(),
    );
    // Two tenants land on different workers (round-robin placement).
    for t in 0..2u32 {
        let mut spec = WorkloadSpec::open_loop(
            &format!("load{t}"),
            TenantId(t + 1),
            TenantClass::BestEffort,
            120_000.0,
        );
        spec.io_size = 1024;
        spec.conns = 16;
        spec.client_threads = 8;
        tb.add_workload(spec).expect("accepted");
    }
    tb.run(SimDuration::from_millis(100));
    tb.begin_measurement();
    tb.run(SimDuration::from_millis(200));
    let report = tb.report();
    let total: f64 = report.workloads.iter().map(|w| w.iops).sum();
    assert!(
        (110_000.0..180_000.0).contains(&total),
        "libaio 2-core total IOPS {total}"
    );
}

#[test]
fn baseline_latency_ordering_iscsi_worst() {
    let (iscsi_avg, _) = unloaded(BaselineConfig::iscsi(), StackProfile::linux_tcp(), 100);
    let (libaio_avg, _) = unloaded(BaselineConfig::libaio(), StackProfile::linux_tcp(), 100);
    assert!(
        iscsi_avg > libaio_avg + 10.0,
        "iscsi ({iscsi_avg}) must be clearly slower than libaio ({libaio_avg})"
    );
}

#[test]
fn load_pattern_matches_closed_loop_semantics() {
    // A QD1 probe issues one request at a time: issued ≈ completed.
    let mut tb = baseline_testbed(BaselineConfig::libaio(), StackProfile::ix_tcp());
    let spec = WorkloadSpec {
        pattern: LoadPattern::ClosedLoop { queue_depth: 1 },
        ..WorkloadSpec::open_loop("probe", TenantId(1), TenantClass::BestEffort, 1.0)
    };
    tb.add_workload(spec).expect("accepted");
    tb.run(SimDuration::from_millis(20));
    tb.begin_measurement();
    tb.run(SimDuration::from_millis(100));
    let report = tb.report();
    let w = report.workload("probe");
    let completed = w.read_latency.count() + w.write_latency.count();
    assert!(w.issued > 0);
    assert!(
        (w.issued as i64 - completed as i64).abs() <= 2,
        "issued {} vs completed {completed}",
        w.issued
    );
}
