//! Telemetry counters vs `SlabPool` slot recycling.
//!
//! The dataplane records `note_completed`/`close_span` only after
//! `SlabPool::take` succeeds on the completion's pool key. Slots recycle
//! aggressively (the key packs slot + generation), so a stale completion
//! — one whose cookie names a slot that has since been reused — must
//! never reach the telemetry sink: `take` misses and the handler
//! returns. These properties drive arbitrary submit/complete/stale-replay
//! interleavings through exactly that discipline and check the
//! conservation invariant the soak test asserts at exit.

use proptest::prelude::*;
use reflex_sim::{PoolKey, SlabPool};
use reflex_telemetry::{Telemetry, TenantKey};

/// The dataplane's completion discipline, reduced to its essentials:
/// telemetry is only touched when the pool key still resolves.
struct Model {
    telemetry: Telemetry,
    inflight: SlabPool<u32>,
    live: Vec<PoolKey>,
    retired: Vec<PoolKey>,
}

impl Model {
    fn submit(&mut self, tenant: u32) {
        self.telemetry.open_span(TenantKey(tenant));
        self.telemetry.note_submitted(TenantKey(tenant));
        self.live.push(self.inflight.insert(tenant));
    }

    /// Delivers a completion for `key`; recording is gated on `take`,
    /// exactly like `DataplaneThread::handle_completion`.
    fn complete(&mut self, key: PoolKey, fail: bool) -> bool {
        let Some(tenant) = self.inflight.take(key) else {
            return false; // stale cookie: slot reused or already drained
        };
        let t = TenantKey(tenant);
        self.telemetry
            .span_nanos(t, reflex_telemetry::Stage::Channel, 1_000);
        if fail {
            self.telemetry.note_failed(t);
        } else {
            self.telemetry.note_completed(t);
        }
        self.telemetry.close_span(t);
        true
    }
}

proptest! {
    /// Under arbitrary interleavings of submissions, completions,
    /// failures and stale-cookie replays — with slots recycling many
    /// times — every tenant's counters conserve
    /// (`submitted == completed + failed + retried`) and no span is left
    /// open once the in-flight set drains.
    #[test]
    fn no_double_count_across_slot_recycling(
        ops in prop::collection::vec((0u8..4, any::<u64>(), 0u32..3), 1..400),
    ) {
        let mut m = Model {
            telemetry: Telemetry::enabled(),
            inflight: SlabPool::new(),
            live: Vec::new(),
            retired: Vec::new(),
        };
        for (op, pick, tenant) in ops {
            match op {
                // Weighted toward submits so slots churn through reuse.
                0 | 1 => m.submit(tenant),
                2 => {
                    let Some(i) = (!m.live.is_empty()).then(|| pick as usize % m.live.len()) else {
                        continue;
                    };
                    let key = m.live.swap_remove(i);
                    prop_assert!(m.complete(key, pick % 5 == 0), "live completion missed");
                    m.retired.push(key);
                }
                _ => {
                    // Replay a retired cookie: its slot may be empty or
                    // re-occupied by a *different* request (ABA). Either
                    // way the generation check must reject it and the
                    // sink must see nothing.
                    let Some(i) = (!m.retired.is_empty()).then(|| pick as usize % m.retired.len()) else {
                        continue;
                    };
                    let before = m.telemetry.snapshot().expect("enabled");
                    prop_assert!(!m.complete(m.retired[i], false), "stale cookie resolved");
                    let after = m.telemetry.snapshot().expect("enabled");
                    prop_assert_eq!(&before.ios, &after.ios, "stale completion touched counters");
                }
            }
        }
        // Drain: deliver every still-live completion exactly once.
        for key in std::mem::take(&mut m.live) {
            prop_assert!(m.complete(key, false));
        }
        let snapshot = m.telemetry.snapshot().expect("enabled");
        let mut submitted = 0u64;
        for (tenant, io) in &snapshot.ios {
            prop_assert_eq!(
                io.submitted,
                io.completed + io.failed + io.retried,
                "conservation violated for tenant {:?}",
                tenant
            );
            prop_assert_eq!(io.open_spans, 0, "span left open for tenant {:?}", tenant);
            submitted += io.submitted;
        }
        // Every submit was recorded exactly once in aggregate too.
        prop_assert_eq!(submitted, snapshot.ios.values().map(|io| io.completed + io.failed).sum::<u64>());
    }

    /// Double delivery of the *same* completion: the second take misses,
    /// so counters move exactly once per request no matter how many
    /// duplicate cookies arrive.
    #[test]
    fn duplicate_completions_count_once(n in 1usize..60, dups in 1usize..4) {
        let telemetry = Telemetry::enabled();
        let mut pool: SlabPool<u32> = SlabPool::new();
        let mut keys = Vec::new();
        for _ in 0..n {
            telemetry.open_span(TenantKey(7));
            telemetry.note_submitted(TenantKey(7));
            keys.push(pool.insert(7));
        }
        for key in &keys {
            for _ in 0..=dups {
                if pool.take(*key).is_some() {
                    telemetry.note_completed(TenantKey(7));
                    telemetry.close_span(TenantKey(7));
                }
            }
        }
        let snap = telemetry.snapshot().expect("enabled");
        let io = snap.ios[&TenantKey(7)];
        prop_assert_eq!(io.submitted, n as u64);
        prop_assert_eq!(io.completed, n as u64);
        prop_assert_eq!(io.open_spans, 0);
        // Round-trip through the u64 cookie encoding, as on the wire.
        for key in keys {
            prop_assert_eq!(PoolKey::from_u64(key.as_u64()), key);
        }
    }
}
