//! Observability layer for the ReFlex reproduction.
//!
//! The simulator's headline claim — remote Flash within tens of
//! microseconds of local at a 500µs p95 SLO — is only checkable if every
//! microsecond can be attributed to a pipeline stage and per-tenant SLO
//! conformance can be watched live. This crate provides that surface:
//!
//! * a registry of cheap named [counters](Telemetry::count),
//! * per-tenant, per-[`Stage`] latency **spans** recorded into the
//!   existing log-bucketed [`Histogram`],
//! * per-tenant IO conservation counters (submitted / completed / failed /
//!   retried, plus an open-span gauge),
//! * a rolling-window [`SloMonitor`]-style tracker that checks p95/p99
//!   against `qos::slo` targets and emits [`SloViolation`] events,
//! * a mergeable, deterministic [`TelemetrySnapshot`] with JSON and TSV
//!   exporters.
//!
//! # Zero cost when disabled
//!
//! [`Telemetry::disabled`] carries no allocation and every recording call
//! is a single `Option` branch, so instrumented hot paths stay within the
//! workspace's allocation budget (`alloc_budget.rs`). Recording is purely
//! passive — no RNG draws, no simulated CPU time, no event scheduling — so
//! enabling telemetry can never perturb simulation results.
//!
//! # Examples
//!
//! ```
//! use reflex_sim::SimDuration;
//! use reflex_telemetry::{Stage, Telemetry, TenantKey};
//!
//! let tel = Telemetry::enabled();
//! tel.count("engine.events", 3);
//! tel.span(TenantKey(1), Stage::Channel, SimDuration::from_micros(80));
//! let snap = tel.snapshot().unwrap();
//! assert_eq!(snap.counters["engine.events"], 3);
//! assert_eq!(snap.spans[&(TenantKey(1), Stage::Channel)].count(), 1);
//!
//! let off = Telemetry::disabled();
//! off.count("ignored", 1); // no-op, no allocation
//! assert!(off.snapshot().is_none());
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use reflex_sim::{EngineProbe, Histogram, SimDuration, SimTime};

/// Identifies a tenant inside the telemetry layer.
///
/// Mirrors `qos::TenantId` (callers convert via `.0`) without creating a
/// dependency cycle; [`TenantKey::GLOBAL`] tags tenant-agnostic spans such
/// as fabric wire time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantKey(pub u32);

impl TenantKey {
    /// Sentinel for spans not attributable to a single tenant.
    pub const GLOBAL: TenantKey = TenantKey(u32::MAX);

    /// Human-readable label (`"global"` for the sentinel).
    pub fn label(self) -> String {
        if self == Self::GLOBAL {
            "global".to_string()
        } else {
            self.0.to_string()
        }
    }
}

/// One stage of the request pipeline, in wire order. Each span records the
/// time a request spent inside that stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// Client-side send gating: queueing behind the client thread's
    /// per-message CPU cost before the request hits the fabric.
    Ingress,
    /// Request-direction wire time: TX stack + serialization + propagation
    /// + RX stack on the server NIC.
    Fabric,
    /// NIC receive queue wait: message arrival to the dataplane thread
    /// starting RX processing.
    NicQueue,
    /// Dataplane RX processing: decode, ACL, ordering, QoS enqueue.
    Dataplane,
    /// Flash submission-queue wait: QoS enqueue to device submit.
    FlashSq,
    /// Flash channel occupancy: device submit to completion.
    Channel,
    /// Completion handling: device completion to response on the wire.
    Cq,
    /// Response-direction wire time back to the client.
    Egress,
}

impl Stage {
    /// All stages in pipeline order.
    pub const ALL: [Stage; 8] = [
        Stage::Ingress,
        Stage::Fabric,
        Stage::NicQueue,
        Stage::Dataplane,
        Stage::FlashSq,
        Stage::Channel,
        Stage::Cq,
        Stage::Egress,
    ];

    /// Stable lowercase name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Ingress => "ingress",
            Stage::Fabric => "fabric",
            Stage::NicQueue => "nic_queue",
            Stage::Dataplane => "dataplane",
            Stage::FlashSq => "flash_sq",
            Stage::Channel => "channel",
            Stage::Cq => "cq",
            Stage::Egress => "egress",
        }
    }
}

/// Per-tenant IO conservation counters. After a drained run,
/// `submitted == completed + failed + retried` and `open_spans == 0`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoCounters {
    /// Device submission attempts.
    pub submitted: u64,
    /// Successful completions.
    pub completed: u64,
    /// Completions with an error status.
    pub failed: u64,
    /// Submission attempts refused by a full submission queue and requeued.
    pub retried: u64,
    /// Requests accepted by the dataplane whose response has not yet been
    /// sent (a gauge, not a monotone counter).
    pub open_spans: u64,
}

/// A closed SLO window whose p95 exceeded the tenant's target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloViolation {
    /// The violating tenant.
    pub tenant: TenantKey,
    /// Simulated time the window closed.
    pub at: SimTime,
    /// Window p95 in nanoseconds.
    pub p95_nanos: u64,
    /// Window p99 in nanoseconds.
    pub p99_nanos: u64,
    /// The tenant's SLO target in nanoseconds.
    pub target_p95_nanos: u64,
}

/// Rolling SLO windows close every 10ms of simulated time.
pub fn slo_window() -> SimDuration {
    SimDuration::from_millis(10)
}

/// At most this many violation events are retained verbatim; the total
/// count keeps incrementing past it.
const MAX_VIOLATION_EVENTS: usize = 256;

#[derive(Debug)]
struct SloState {
    target_p95_nanos: u64,
    window: Histogram,
    window_start: SimTime,
    windows: u64,
    violations: u64,
    worst_p95_nanos: u64,
}

impl SloState {
    fn new(target_p95_nanos: u64) -> Self {
        SloState {
            target_p95_nanos,
            window: Histogram::new(),
            window_start: SimTime::ZERO,
            windows: 0,
            violations: 0,
            worst_p95_nanos: 0,
        }
    }

    /// Closes the current window if one is due, returning a violation
    /// event when the window's p95 missed the target.
    fn observe(&mut self, tenant: TenantKey, nanos: u64, now: SimTime) -> Option<SloViolation> {
        let mut fired = None;
        if !self.window.is_empty() && now.saturating_since(self.window_start) >= slo_window() {
            let p95 = self.window.p95().as_nanos();
            let p99 = self.window.p99().as_nanos();
            self.windows += 1;
            self.worst_p95_nanos = self.worst_p95_nanos.max(p95);
            if p95 > self.target_p95_nanos {
                self.violations += 1;
                fired = Some(SloViolation {
                    tenant,
                    at: now,
                    p95_nanos: p95,
                    p99_nanos: p99,
                    target_p95_nanos: self.target_p95_nanos,
                });
            }
            self.window.reset();
        }
        if self.window.is_empty() {
            self.window_start = now;
        }
        self.window.record_nanos(nanos);
        fired
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<&'static str, u64>,
    spans: BTreeMap<(TenantKey, Stage), Histogram>,
    ios: BTreeMap<TenantKey, IoCounters>,
    slo: BTreeMap<TenantKey, SloState>,
    violations: Vec<SloViolation>,
}

#[derive(Debug, Default)]
struct TelemetryCore {
    /// Engine dispatch count, kept lock-free because the engine probe runs
    /// once per dispatched event.
    engine_events: AtomicU64,
    inner: Mutex<Inner>,
}

/// Shared, cloneable handle to a telemetry sink.
///
/// [`Telemetry::disabled`] is the zero-cost default: every method is a
/// single `Option` branch and no state is allocated. Clones of an enabled
/// handle share one sink, so a testbed can hand the same handle to the
/// Deterministic per-shard counters exported by the sharded-PDES runner:
/// how often each shard hit the rendezvous barrier, how many window-grid
/// steps it committed, and how many rendezvous committed more than one
/// window at once (event-horizon extension firing). All three are pure
/// functions of the simulation — identical across runs and hosts — unlike
/// wall-clock barrier-wait time, which stays out of snapshots by design.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardCounter {
    /// Barrier rendezvous the shard participated in.
    BarrierWaits,
    /// Window-grid steps the shard committed.
    WindowsCommitted,
    /// Rendezvous that committed more than one window at once.
    ExtendedCommits,
}

macro_rules! shard_keys {
    ($suffix:literal) => {
        [
            concat!("shard0.", $suffix),
            concat!("shard1.", $suffix),
            concat!("shard2.", $suffix),
            concat!("shard3.", $suffix),
            concat!("shard4.", $suffix),
            concat!("shard5.", $suffix),
            concat!("shard6.", $suffix),
            concat!("shard7.", $suffix),
            concat!("shard8.", $suffix),
            concat!("shard9.", $suffix),
            concat!("shard10.", $suffix),
            concat!("shard11.", $suffix),
            concat!("shard12.", $suffix),
            concat!("shard13.", $suffix),
            concat!("shard14.", $suffix),
            concat!("shard15.", $suffix),
            concat!("shard16plus.", $suffix),
        ]
    };
}

static SHARD_BARRIER_WAITS: [&str; 17] = shard_keys!("barrier_waits");
static SHARD_WINDOWS_COMMITTED: [&str; 17] = shard_keys!("windows_committed");
static SHARD_EXTENDED_COMMITS: [&str; 17] = shard_keys!("extended_commits");

/// The `&'static str` counter key for `(kind, shard)` — e.g.
/// `"shard3.barrier_waits"`. Shards past 15 fold into one shared
/// `shard16plus.*` overflow key so keys stay static (no allocation on the
/// recording path, per the crate's zero-cost contract).
pub fn shard_counter(kind: ShardCounter, shard: usize) -> &'static str {
    let idx = shard.min(16);
    match kind {
        ShardCounter::BarrierWaits => SHARD_BARRIER_WAITS[idx],
        ShardCounter::WindowsCommitted => SHARD_WINDOWS_COMMITTED[idx],
        ShardCounter::ExtendedCommits => SHARD_EXTENDED_COMMITS[idx],
    }
}

/// fabric, the device, every dataplane thread, and the client world.
#[derive(Debug, Clone, Default)]
pub struct Telemetry(Option<Arc<TelemetryCore>>);

impl Telemetry {
    /// A no-op handle: records nothing, allocates nothing.
    pub fn disabled() -> Self {
        Telemetry(None)
    }

    /// A live handle backed by a fresh shared sink.
    pub fn enabled() -> Self {
        Telemetry(Some(Arc::new(TelemetryCore::default())))
    }

    /// `true` if this handle records.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Adds `delta` to the named counter. Counter names are `&'static str`
    /// so steady-state bumps never allocate.
    pub fn count(&self, name: &'static str, delta: u64) {
        if let Some(core) = &self.0 {
            *core.inner.lock().unwrap().counters.entry(name).or_insert(0) += delta;
        }
    }

    /// Adds `delta` to a per-shard counter of the sharded runner
    /// ([`ShardCounter`] picks which). Skips the `Option` branch *and* the
    /// static-key lookup when disabled, like [`count`](Self::count).
    pub fn count_shard(&self, kind: ShardCounter, shard: usize, delta: u64) {
        if self.0.is_some() {
            self.count(shard_counter(kind, shard), delta);
        }
    }

    /// Records a latency sample for `(tenant, stage)`.
    pub fn span(&self, tenant: TenantKey, stage: Stage, d: SimDuration) {
        self.span_nanos(tenant, stage, d.as_nanos());
    }

    /// Records a raw nanosecond latency sample for `(tenant, stage)`.
    pub fn span_nanos(&self, tenant: TenantKey, stage: Stage, nanos: u64) {
        if let Some(core) = &self.0 {
            core.inner
                .lock()
                .unwrap()
                .spans
                .entry((tenant, stage))
                .or_default()
                .record_nanos(nanos);
        }
    }

    fn with_ios(&self, tenant: TenantKey, f: impl FnOnce(&mut IoCounters)) {
        if let Some(core) = &self.0 {
            f(core.inner.lock().unwrap().ios.entry(tenant).or_default());
        }
    }

    /// Notes a device submission attempt for `tenant`.
    pub fn note_submitted(&self, tenant: TenantKey) {
        self.with_ios(tenant, |c| c.submitted += 1);
    }

    /// Notes a successful completion for `tenant`.
    pub fn note_completed(&self, tenant: TenantKey) {
        self.with_ios(tenant, |c| c.completed += 1);
    }

    /// Notes an errored completion for `tenant`.
    pub fn note_failed(&self, tenant: TenantKey) {
        self.with_ios(tenant, |c| c.failed += 1);
    }

    /// Notes a submission refused by a full queue and requeued.
    pub fn note_retried(&self, tenant: TenantKey) {
        self.with_ios(tenant, |c| c.retried += 1);
    }

    /// Opens a request span: the dataplane accepted a request it will
    /// eventually answer.
    pub fn open_span(&self, tenant: TenantKey) {
        self.with_ios(tenant, |c| c.open_spans += 1);
    }

    /// Closes a request span: the response left the dataplane. Callers
    /// must pair this with exactly one [`open_span`](Self::open_span) —
    /// the generation-checked in-flight slab guarantees that even across
    /// slot recycling.
    pub fn close_span(&self, tenant: TenantKey) {
        self.with_ios(tenant, |c| {
            debug_assert!(c.open_spans > 0, "close_span without open_span");
            c.open_spans = c.open_spans.saturating_sub(1);
        });
    }

    /// Registers (idempotently) an SLO target for `tenant`. Rolling p95
    /// checks start with the first [`slo_observe`](Self::slo_observe).
    pub fn slo_register(&self, tenant: TenantKey, target_p95: SimDuration) {
        if let Some(core) = &self.0 {
            core.inner
                .lock()
                .unwrap()
                .slo
                .entry(tenant)
                .or_insert_with(|| SloState::new(target_p95.as_nanos()));
        }
    }

    /// Feeds one end-to-end latency sample into `tenant`'s rolling SLO
    /// window. Unregistered tenants are ignored.
    pub fn slo_observe(&self, tenant: TenantKey, latency: SimDuration, now: SimTime) {
        if let Some(core) = &self.0 {
            let mut inner = core.inner.lock().unwrap();
            let Some(state) = inner.slo.get_mut(&tenant) else {
                return;
            };
            if let Some(v) = state.observe(tenant, latency.as_nanos(), now) {
                if inner.violations.len() < MAX_VIOLATION_EVENTS {
                    inner.violations.push(v);
                }
            }
        }
    }

    /// An [`EngineProbe`] that counts dispatched events into this sink
    /// (`None` when disabled — don't install a probe at all).
    pub fn engine_probe(&self) -> Option<Box<dyn EngineProbe>> {
        self.0.as_ref().map(|core| {
            Box::new(EngineEventsProbe {
                core: Arc::clone(core),
            }) as Box<dyn EngineProbe>
        })
    }

    /// A point-in-time copy of everything recorded so far (`None` when
    /// disabled).
    pub fn snapshot(&self) -> Option<TelemetrySnapshot> {
        let core = self.0.as_ref()?;
        let inner = core.inner.lock().unwrap();
        let mut counters: BTreeMap<String, u64> = inner
            .counters
            .iter()
            .map(|(k, v)| (k.to_string(), *v))
            .collect();
        let engine = core.engine_events.load(Ordering::Relaxed);
        if engine > 0 {
            *counters.entry("engine.events".to_string()).or_insert(0) += engine;
        }
        Some(TelemetrySnapshot {
            counters,
            spans: inner.spans.iter().map(|(k, v)| (*k, v.clone())).collect(),
            ios: inner.ios.clone(),
            slo: inner
                .slo
                .iter()
                .map(|(t, s)| {
                    (
                        *t,
                        SloSnapshot {
                            target_p95_nanos: s.target_p95_nanos,
                            windows: s.windows,
                            violations: s.violations,
                            worst_p95_nanos: s.worst_p95_nanos,
                        },
                    )
                })
                .collect(),
            violations: inner.violations.clone(),
        })
    }
}

/// Probe installed on `sim::Engine` to count dispatches without the engine
/// depending on this crate.
struct EngineEventsProbe {
    core: Arc<TelemetryCore>,
}

impl EngineProbe for EngineEventsProbe {
    fn on_dispatch(&mut self, _now: SimTime) {
        self.core.engine_events.fetch_add(1, Ordering::Relaxed);
    }
}

/// Per-tenant SLO conformance summary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SloSnapshot {
    /// Target p95 in nanoseconds.
    pub target_p95_nanos: u64,
    /// Closed rolling windows.
    pub windows: u64,
    /// Windows whose p95 exceeded the target.
    pub violations: u64,
    /// Worst closed-window p95 in nanoseconds.
    pub worst_p95_nanos: u64,
}

/// A mergeable point-in-time copy of a telemetry sink.
///
/// Merging is commutative and associative (counters add, histograms
/// merge, SLO windows add), so snapshots taken on different sweep worker
/// threads can be folded in any order with a deterministic result.
#[derive(Debug, Clone, Default)]
pub struct TelemetrySnapshot {
    /// Named counters.
    pub counters: BTreeMap<String, u64>,
    /// Per-(tenant, stage) latency histograms.
    pub spans: BTreeMap<(TenantKey, Stage), Histogram>,
    /// Per-tenant IO conservation counters.
    pub ios: BTreeMap<TenantKey, IoCounters>,
    /// Per-tenant SLO conformance.
    pub slo: BTreeMap<TenantKey, SloSnapshot>,
    /// Retained violation events (capped; counts in [`SloSnapshot`] are
    /// exact).
    pub violations: Vec<SloViolation>,
}

impl TelemetrySnapshot {
    /// `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.spans.is_empty() && self.ios.is_empty()
    }

    /// Folds `other` into `self`.
    pub fn merge(&mut self, other: &TelemetrySnapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, h) in &other.spans {
            self.spans.entry(*k).or_default().merge(h);
        }
        for (t, c) in &other.ios {
            let mine = self.ios.entry(*t).or_default();
            mine.submitted += c.submitted;
            mine.completed += c.completed;
            mine.failed += c.failed;
            mine.retried += c.retried;
            mine.open_spans += c.open_spans;
        }
        for (t, s) in &other.slo {
            let mine = self.slo.entry(*t).or_default();
            mine.target_p95_nanos = mine.target_p95_nanos.max(s.target_p95_nanos);
            mine.windows += s.windows;
            mine.violations += s.violations;
            mine.worst_p95_nanos = mine.worst_p95_nanos.max(s.worst_p95_nanos);
        }
        for v in &other.violations {
            if self.violations.len() >= MAX_VIOLATION_EVENTS {
                break;
            }
            self.violations.push(*v);
        }
    }

    /// Total SLO violations across all tenants.
    pub fn total_violations(&self) -> u64 {
        self.slo.values().map(|s| s.violations).sum()
    }

    /// The span histogram for `(tenant, stage)` if any samples exist.
    pub fn stage(&self, tenant: TenantKey, stage: Stage) -> Option<&Histogram> {
        self.spans.get(&(tenant, stage))
    }

    /// Deterministic JSON rendering of the snapshot (schema
    /// `reflex-telemetry-v1`, pinned by a golden-file test).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"schema\": \"reflex-telemetry-v1\",\n  \"counters\": {");
        let mut first = true;
        for (k, v) in &self.counters {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\n    {}: {}", json_str(k), v);
        }
        if !self.counters.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"spans\": [");
        first = true;
        for ((tenant, stage), h) in &self.spans {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\n    {{\"tenant\": {}, \"stage\": \"{}\", \"count\": {}, \
                 \"mean_us\": {}, \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}, \
                 \"max_us\": {}}}",
                json_str(&tenant.label()),
                stage.name(),
                h.count(),
                json_f64(h.mean().as_micros_f64()),
                json_f64(h.p50().as_micros_f64()),
                json_f64(h.p95().as_micros_f64()),
                json_f64(h.p99().as_micros_f64()),
                json_f64(h.max().as_micros_f64()),
            );
        }
        if !self.spans.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"tenants\": [");
        first = true;
        for (t, c) in &self.ios {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\n    {{\"tenant\": {}, \"submitted\": {}, \"completed\": {}, \
                 \"failed\": {}, \"retried\": {}, \"open_spans\": {}}}",
                json_str(&t.label()),
                c.submitted,
                c.completed,
                c.failed,
                c.retried,
                c.open_spans,
            );
        }
        if !self.ios.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"slo\": [");
        first = true;
        for (t, s) in &self.slo {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\n    {{\"tenant\": {}, \"target_p95_us\": {}, \"windows\": {}, \
                 \"violations\": {}, \"worst_p95_us\": {}}}",
                json_str(&t.label()),
                json_f64(s.target_p95_nanos as f64 / 1e3),
                s.windows,
                s.violations,
                json_f64(s.worst_p95_nanos as f64 / 1e3),
            );
        }
        if !self.slo.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// Deterministic TSV rendering: one section per table, separated by
    /// `#`-prefixed headers.
    pub fn to_tsv(&self) -> String {
        let mut out = String::new();
        out.push_str("# counters\ncounter\tvalue\n");
        for (k, v) in &self.counters {
            let _ = writeln!(out, "{k}\t{v}");
        }
        out.push_str("# spans\ntenant\tstage\tcount\tmean_us\tp50_us\tp95_us\tp99_us\tmax_us\n");
        for ((tenant, stage), h) in &self.spans {
            let _ = writeln!(
                out,
                "{}\t{}\t{}\t{:.3}\t{:.3}\t{:.3}\t{:.3}\t{:.3}",
                tenant.label(),
                stage.name(),
                h.count(),
                h.mean().as_micros_f64(),
                h.p50().as_micros_f64(),
                h.p95().as_micros_f64(),
                h.p99().as_micros_f64(),
                h.max().as_micros_f64(),
            );
        }
        out.push_str("# tenants\ntenant\tsubmitted\tcompleted\tfailed\tretried\topen_spans\n");
        for (t, c) in &self.ios {
            let _ = writeln!(
                out,
                "{}\t{}\t{}\t{}\t{}\t{}",
                t.label(),
                c.submitted,
                c.completed,
                c.failed,
                c.retried,
                c.open_spans,
            );
        }
        out.push_str("# slo\ntenant\ttarget_p95_us\twindows\tviolations\tworst_p95_us\n");
        for (t, s) in &self.slo {
            let _ = writeln!(
                out,
                "{}\t{:.3}\t{}\t{}\t{:.3}",
                t.label(),
                s.target_p95_nanos as f64 / 1e3,
                s.windows,
                s.violations,
                s.worst_p95_nanos as f64 / 1e3,
            );
        }
        out
    }
}

/// JSON string escaping (sufficient for counter names and tenant labels).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Deterministic fixed-precision float rendering for JSON.
fn json_f64(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_counters_have_stable_static_keys() {
        assert_eq!(
            shard_counter(ShardCounter::BarrierWaits, 0),
            "shard0.barrier_waits"
        );
        assert_eq!(
            shard_counter(ShardCounter::WindowsCommitted, 15),
            "shard15.windows_committed"
        );
        // Shards past the static table fold into one overflow key.
        assert_eq!(
            shard_counter(ShardCounter::ExtendedCommits, 40),
            "shard16plus.extended_commits"
        );
        let tel = Telemetry::enabled();
        tel.count_shard(ShardCounter::BarrierWaits, 3, 7);
        tel.count_shard(ShardCounter::BarrierWaits, 3, 2);
        let snap = tel.snapshot().unwrap();
        assert_eq!(snap.counters["shard3.barrier_waits"], 9);
        // Disabled handles skip the key lookup entirely.
        Telemetry::disabled().count_shard(ShardCounter::WindowsCommitted, 0, 1);
    }

    #[test]
    fn disabled_is_inert() {
        let tel = Telemetry::disabled();
        tel.count("x", 1);
        tel.span(TenantKey(1), Stage::Channel, SimDuration::from_micros(5));
        tel.note_submitted(TenantKey(1));
        tel.slo_register(TenantKey(1), SimDuration::from_micros(500));
        tel.slo_observe(
            TenantKey(1),
            SimDuration::from_micros(700),
            SimTime::from_nanos(1),
        );
        assert!(!tel.is_enabled());
        assert!(tel.snapshot().is_none());
        assert!(tel.engine_probe().is_none());
    }

    #[test]
    fn clones_share_one_sink() {
        let a = Telemetry::enabled();
        let b = a.clone();
        a.count("hits", 2);
        b.count("hits", 3);
        assert_eq!(a.snapshot().unwrap().counters["hits"], 5);
    }

    #[test]
    fn spans_accumulate_per_tenant_and_stage() {
        let tel = Telemetry::enabled();
        tel.span(TenantKey(1), Stage::Channel, SimDuration::from_micros(10));
        tel.span(TenantKey(1), Stage::Channel, SimDuration::from_micros(20));
        tel.span(TenantKey(2), Stage::Channel, SimDuration::from_micros(30));
        tel.span(TenantKey(1), Stage::Cq, SimDuration::from_micros(40));
        let snap = tel.snapshot().unwrap();
        assert_eq!(snap.stage(TenantKey(1), Stage::Channel).unwrap().count(), 2);
        assert_eq!(snap.stage(TenantKey(2), Stage::Channel).unwrap().count(), 1);
        assert_eq!(snap.stage(TenantKey(1), Stage::Cq).unwrap().count(), 1);
        assert!(snap.stage(TenantKey(2), Stage::Cq).is_none());
    }

    #[test]
    fn io_counters_conserve() {
        let tel = Telemetry::enabled();
        let t = TenantKey(7);
        for _ in 0..5 {
            tel.open_span(t);
            tel.note_submitted(t);
        }
        tel.note_retried(t);
        tel.note_submitted(t);
        for _ in 0..4 {
            tel.note_completed(t);
            tel.close_span(t);
        }
        tel.note_failed(t);
        tel.close_span(t);
        let c = tel.snapshot().unwrap().ios[&t];
        assert_eq!(c.submitted, 6);
        assert_eq!(c.submitted, c.completed + c.failed + c.retried);
        assert_eq!(c.open_spans, 0);
    }

    #[test]
    fn slo_monitor_counts_violating_windows() {
        let tel = Telemetry::enabled();
        let t = TenantKey(1);
        tel.slo_register(t, SimDuration::from_micros(100));
        // First window: all fast. Second window: all slow.
        for i in 0..100u64 {
            tel.slo_observe(
                t,
                SimDuration::from_micros(50),
                SimTime::from_nanos(i * 10_000),
            );
        }
        for i in 0..100u64 {
            tel.slo_observe(
                t,
                SimDuration::from_micros(400),
                SimTime::from_nanos(15_000_000 + i * 10_000),
            );
        }
        // Third batch closes the slow window.
        tel.slo_observe(
            t,
            SimDuration::from_micros(50),
            SimTime::from_nanos(40_000_000),
        );
        let snap = tel.snapshot().unwrap();
        let s = snap.slo[&t];
        assert_eq!(s.windows, 2);
        assert_eq!(s.violations, 1);
        assert!(s.worst_p95_nanos >= 350_000);
        assert_eq!(snap.violations.len(), 1);
        assert_eq!(snap.violations[0].tenant, t);
        assert_eq!(snap.total_violations(), 1);
    }

    #[test]
    fn merge_is_commutative() {
        let a = Telemetry::enabled();
        a.count("x", 1);
        a.span(TenantKey(1), Stage::Fabric, SimDuration::from_micros(10));
        a.note_submitted(TenantKey(1));
        let b = Telemetry::enabled();
        b.count("x", 2);
        b.count("y", 5);
        b.span(TenantKey(1), Stage::Fabric, SimDuration::from_micros(90));
        b.note_completed(TenantKey(1));
        let (sa, sb) = (a.snapshot().unwrap(), b.snapshot().unwrap());
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        assert_eq!(ab.to_json(), ba.to_json());
        assert_eq!(ab.counters["x"], 3);
        assert_eq!(ab.stage(TenantKey(1), Stage::Fabric).unwrap().count(), 2);
    }

    #[test]
    fn exports_are_deterministic() {
        let build = || {
            let tel = Telemetry::enabled();
            tel.count("engine.events", 10);
            tel.span(
                TenantKey::GLOBAL,
                Stage::Fabric,
                SimDuration::from_micros(7),
            );
            tel.note_submitted(TenantKey(3));
            tel.snapshot().unwrap()
        };
        assert_eq!(build().to_json(), build().to_json());
        assert_eq!(build().to_tsv(), build().to_tsv());
        assert!(build().to_json().contains("\"global\""));
    }
}
