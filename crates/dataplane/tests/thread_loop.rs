//! End-to-end tests of a single dataplane thread against a real simulated
//! fabric and Flash device: request in, response out, with QoS, ACLs and
//! CPU accounting in the loop.

use std::sync::Arc;

use reflex_dataplane::{AclEntry, DataplaneConfig, DataplaneThread, WireMsg};
use reflex_flash::{device_a, FlashDevice};
use reflex_net::{
    ConnId, Fabric, LinkConfig, MachineId, NicQueueId, Opcode, ReflexHeader, StackProfile,
};
use reflex_qos::{CostModel, SchedulerParams, SloSpec, TenantClass, TenantId};
use reflex_sim::{SimDuration, SimRng, SimTime};

struct Rig {
    fabric: Fabric<WireMsg>,
    device: FlashDevice,
    thread: DataplaneThread,
    client: MachineId,
    conn: ConnId,
}

fn rig(class: TenantClass) -> Rig {
    let mut fabric = Fabric::new(LinkConfig::default(), SimRng::seed(11));
    let client = fabric.add_machine(StackProfile::ix_tcp());
    let server = fabric.add_machine(StackProfile::dataplane_raw());
    let mut device = FlashDevice::new(device_a(), SimRng::seed(12));
    device.precondition();
    let qp = device.create_queue_pair();
    let bucket = Arc::new(reflex_qos::GlobalBucket::new(1));
    let mut thread = DataplaneThread::new(
        0,
        server,
        NicQueueId(0),
        qp,
        bucket,
        CostModel::for_device_a(),
        SchedulerParams::default(),
        DataplaneConfig::default(),
        SimTime::ZERO,
    );
    let tenant = TenantId(1);
    let capacity = device.profile().capacity_bytes;
    thread
        .register_tenant(tenant, class, AclEntry::full(capacity), 4096)
        .expect("fresh tenant registers");
    let conn = fabric.new_conn();
    thread
        .bind_connection(conn, tenant, client)
        .expect("tenant exists");
    Rig {
        fabric,
        device,
        thread,
        client,
        conn,
    }
}

fn lc_class(iops: u64) -> TenantClass {
    TenantClass::LatencyCritical(SloSpec::new(iops, 100, SimDuration::from_micros(500)))
}

/// Drives the thread until the client has received `want` responses or
/// simulated time passes `deadline`. Returns (responses, last instant).
fn drive(r: &mut Rig, want: usize, deadline: SimTime) -> Vec<(ReflexHeader, SimTime)> {
    let mut responses = Vec::new();
    let mut now = SimTime::ZERO;
    while responses.len() < want && now < deadline {
        let wake = r.thread.pump(now, &mut r.fabric, &mut r.device);
        // Collect anything delivered to the client so far.
        let horizon = wake.unwrap_or(now + SimDuration::from_millis(1));
        for d in r.fabric.poll(horizon, r.client, usize::MAX) {
            let h = ReflexHeader::decode(&d.payload).expect("server speaks the protocol");
            responses.push((h, d.arrived_at));
        }
        now = match wake {
            Some(w) if w > now => w,
            _ => now + SimDuration::from_micros(5),
        };
    }
    responses
}

#[test]
fn read_request_round_trips() {
    let mut r = rig(lc_class(100_000));
    let req = ReflexHeader {
        opcode: Opcode::Get,
        tenant: 1,
        cookie: 77,
        addr: 8192,
        len: 4096,
    };
    r.fabric.send(
        SimTime::ZERO,
        r.client,
        r.thread.machine(),
        r.conn,
        0,
        req.encode_array(),
    );

    let responses = drive(&mut r, 1, SimTime::from_millis(10));
    assert_eq!(responses.len(), 1);
    let (h, at) = &responses[0];
    assert_eq!(h.opcode, Opcode::Response);
    assert_eq!(h.cookie, 77);
    let latency = at.as_micros_f64();
    // Unloaded remote read: ~76us device + ~stack/wire overheads ≈ 85-120us.
    assert!(
        (80.0..140.0).contains(&latency),
        "unloaded remote read {latency}us"
    );
    let st = r.thread.stats();
    assert_eq!(st.rx_msgs, 1);
    assert_eq!(st.submitted, 1);
    assert_eq!(st.completed, 1);
    assert_eq!(st.tx_msgs, 1);
}

#[test]
fn write_request_round_trips_faster_than_read() {
    let mut r = rig(lc_class(100_000));
    let req = ReflexHeader {
        opcode: Opcode::Put,
        tenant: 1,
        cookie: 5,
        addr: 0,
        len: 4096,
    };
    r.fabric.send(
        SimTime::ZERO,
        r.client,
        r.thread.machine(),
        r.conn,
        4096,
        req.encode_array(),
    );
    let responses = drive(&mut r, 1, SimTime::from_millis(10));
    assert_eq!(responses.len(), 1);
    let (h, at) = &responses[0];
    assert_eq!(h.opcode, Opcode::Response);
    let latency = at.as_micros_f64();
    // Buffered write ~10us + overheads: far below read latency.
    assert!(latency < 60.0, "unloaded remote write {latency}us");
}

#[test]
fn acl_read_only_tenant_gets_error_for_writes() {
    let mut fabricless = rig(lc_class(10_000));
    // Rebind with a read-only ACL on a second tenant.
    let tenant = TenantId(2);
    let acl = AclEntry {
        ns_start: 0,
        ns_len: 1 << 30,
        allow_read: true,
        allow_write: false,
        allowed_clients: None,
    };
    fabricless
        .thread
        .register_tenant(tenant, TenantClass::BestEffort, acl, 4096)
        .unwrap();
    let conn2 = fabricless.fabric.new_conn();
    fabricless
        .thread
        .bind_connection(conn2, tenant, fabricless.client)
        .unwrap();

    let req = ReflexHeader {
        opcode: Opcode::Put,
        tenant: 2,
        cookie: 9,
        addr: 0,
        len: 4096,
    };
    fabricless.fabric.send(
        SimTime::ZERO,
        fabricless.client,
        fabricless.thread.machine(),
        conn2,
        4096,
        req.encode_array(),
    );
    let responses = drive(&mut fabricless, 1, SimTime::from_millis(5));
    assert_eq!(responses.len(), 1);
    assert_eq!(responses[0].0.opcode, Opcode::Error);
    assert_eq!(responses[0].0.cookie, 9);
    assert_eq!(fabricless.thread.stats().acl_rejections, 1);
    assert_eq!(fabricless.thread.stats().submitted, 0);
}

#[test]
fn namespace_bounds_are_enforced() {
    let mut r = rig(lc_class(10_000));
    let tenant = TenantId(2);
    let acl = AclEntry {
        ns_start: 4096,
        ns_len: 8192,
        allow_read: true,
        allow_write: true,
        allowed_clients: None,
    };
    r.thread
        .register_tenant(tenant, TenantClass::BestEffort, acl, 4096)
        .unwrap();
    let conn2 = r.fabric.new_conn();
    r.thread.bind_connection(conn2, tenant, r.client).unwrap();

    // In-range read succeeds; out-of-range read errors.
    let ok = ReflexHeader {
        opcode: Opcode::Get,
        tenant: 2,
        cookie: 1,
        addr: 4096,
        len: 4096,
    };
    let bad = ReflexHeader {
        opcode: Opcode::Get,
        tenant: 2,
        cookie: 2,
        addr: 0,
        len: 4096,
    };
    r.fabric.send(
        SimTime::ZERO,
        r.client,
        r.thread.machine(),
        conn2,
        0,
        ok.encode_array(),
    );
    r.fabric.send(
        SimTime::from_micros(1),
        r.client,
        r.thread.machine(),
        conn2,
        0,
        bad.encode_array(),
    );
    let responses = drive(&mut r, 2, SimTime::from_millis(10));
    assert_eq!(responses.len(), 2);
    let by_cookie: std::collections::HashMap<u64, Opcode> = responses
        .iter()
        .map(|(h, _)| (h.cookie, h.opcode))
        .collect();
    assert_eq!(by_cookie[&1], Opcode::Response);
    assert_eq!(by_cookie[&2], Opcode::Error);
}

#[test]
fn unbound_connection_is_dropped() {
    let mut r = rig(lc_class(10_000));
    let stray = r.fabric.new_conn();
    let req = ReflexHeader {
        opcode: Opcode::Get,
        tenant: 1,
        cookie: 3,
        addr: 0,
        len: 4096,
    };
    r.fabric.send(
        SimTime::ZERO,
        r.client,
        r.thread.machine(),
        stray,
        0,
        req.encode_array(),
    );
    let responses = drive(&mut r, 1, SimTime::from_millis(2));
    assert!(responses.is_empty());
    assert_eq!(r.thread.stats().unbound_conns, 1);
}

#[test]
fn garbage_messages_count_as_decode_errors() {
    let mut r = rig(lc_class(10_000));
    r.fabric.send(
        SimTime::ZERO,
        r.client,
        r.thread.machine(),
        r.conn,
        0,
        *b"not a reflex header.........",
    );
    let responses = drive(&mut r, 1, SimTime::from_millis(2));
    assert!(responses.is_empty());
    assert_eq!(r.thread.stats().decode_errors, 1);
}

#[test]
fn pipelined_requests_are_batched_and_all_answered() {
    let mut r = rig(lc_class(200_000));
    // 512 back-to-back 4KB reads at 1us spacing: far faster than the device
    // unloaded latency, so the thread must batch RX and CQ processing.
    for i in 0..512u64 {
        let addr = (i * 7919 % 1_000_000) * 4096;
        let req = ReflexHeader {
            opcode: Opcode::Get,
            tenant: 1,
            cookie: i,
            addr,
            len: 4096,
        };
        r.fabric.send(
            SimTime::from_nanos(i * 1_000),
            r.client,
            r.thread.machine(),
            r.conn,
            0,
            req.encode_array(),
        );
    }
    let responses = drive(&mut r, 512, SimTime::from_millis(100));
    assert_eq!(responses.len(), 512);
    let mut cookies: Vec<u64> = responses.iter().map(|(h, _)| h.cookie).collect();
    cookies.sort_unstable();
    cookies.dedup();
    assert_eq!(cookies.len(), 512, "every request answered exactly once");
}

#[test]
fn thread_cpu_time_tracks_work() {
    let mut r = rig(lc_class(200_000));
    for i in 0..100u64 {
        let req = ReflexHeader {
            opcode: Opcode::Get,
            tenant: 1,
            cookie: i,
            addr: i * 4096,
            len: 4096,
        };
        r.fabric.send(
            SimTime::from_nanos(i * 2_000),
            r.client,
            r.thread.machine(),
            r.conn,
            0,
            req.encode_array(),
        );
    }
    let _ = drive(&mut r, 100, SimTime::from_millis(50));
    let busy = r.thread.busy_time().as_micros_f64();
    // ~1.05us per request (rx+tx) plus scheduling: within [100, 200]us.
    assert!(
        (80.0..250.0).contains(&busy),
        "busy time {busy}us for 100 requests"
    );
    assert!(r.thread.sched_cpu_time() < r.thread.busy_time());
}

#[test]
fn tenant_lifecycle_management() {
    let mut r = rig(lc_class(10_000));
    let t2 = TenantId(2);
    r.thread
        .register_tenant(t2, TenantClass::BestEffort, AclEntry::full(1 << 30), 4096)
        .unwrap();
    assert!(r
        .thread
        .register_tenant(t2, TenantClass::BestEffort, AclEntry::full(1 << 30), 4096)
        .is_err());
    let conn2 = r.fabric.new_conn();
    r.thread.bind_connection(conn2, t2, r.client).unwrap();
    assert_eq!(r.thread.connection_count(), 2);
    let dropped = r.thread.unregister_tenant(t2).unwrap();
    assert!(dropped.is_empty());
    // The tenant's connections were unbound too.
    assert_eq!(r.thread.connection_count(), 1);
    assert!(r.thread.bind_connection(conn2, t2, r.client).is_err());
}

#[test]
fn barrier_orders_requests() {
    let mut r = rig(lc_class(100_000));
    let server = r.thread.machine();
    // Write, then barrier, then read: the read must complete after the
    // barrier, which must complete after the write.
    let w = ReflexHeader {
        opcode: Opcode::Put,
        tenant: 1,
        cookie: 1,
        addr: 0,
        len: 4096,
    };
    let bar = ReflexHeader {
        opcode: Opcode::Barrier,
        tenant: 1,
        cookie: 2,
        addr: 0,
        len: 0,
    };
    let rd = ReflexHeader {
        opcode: Opcode::Get,
        tenant: 1,
        cookie: 3,
        addr: 0,
        len: 4096,
    };
    r.fabric.send(
        SimTime::ZERO,
        r.client,
        server,
        r.conn,
        4096,
        w.encode_array(),
    );
    r.fabric.send(
        SimTime::from_nanos(100),
        r.client,
        server,
        r.conn,
        0,
        bar.encode_array(),
    );
    r.fabric.send(
        SimTime::from_nanos(200),
        r.client,
        server,
        r.conn,
        0,
        rd.encode_array(),
    );

    let responses = drive(&mut r, 3, SimTime::from_millis(20));
    assert_eq!(responses.len(), 3, "all three must be answered");
    let order: Vec<u64> = responses.iter().map(|(h, _)| h.cookie).collect();
    assert_eq!(order, vec![1, 2, 3], "barrier must serialize: {order:?}");
    assert_eq!(r.thread.stats().barriers, 1);
    // The barrier ack comes no earlier than the write completion.
    assert!(responses[1].1 >= responses[0].1);
    assert!(responses[2].1 >= responses[1].1);
}

#[test]
fn barrier_with_nothing_outstanding_acks_immediately() {
    let mut r = rig(lc_class(100_000));
    let bar = ReflexHeader {
        opcode: Opcode::Barrier,
        tenant: 1,
        cookie: 9,
        addr: 0,
        len: 0,
    };
    r.fabric.send(
        SimTime::ZERO,
        r.client,
        r.thread.machine(),
        r.conn,
        0,
        bar.encode_array(),
    );
    let responses = drive(&mut r, 1, SimTime::from_millis(5));
    assert_eq!(responses.len(), 1);
    assert_eq!(responses[0].0.cookie, 9);
    let latency = responses[0].1.as_micros_f64();
    assert!(latency < 30.0, "idle barrier ack took {latency}us");
}

#[test]
fn double_barrier_is_rejected() {
    let mut r = rig(lc_class(100_000));
    let server = r.thread.machine();
    // Queue a slow write burst so the first barrier fences.
    for i in 0..16u64 {
        let w = ReflexHeader {
            opcode: Opcode::Put,
            tenant: 1,
            cookie: i,
            addr: i * 4096,
            len: 4096,
        };
        r.fabric.send(
            SimTime::from_nanos(i * 10),
            r.client,
            server,
            r.conn,
            4096,
            w.encode_array(),
        );
    }
    let b1 = ReflexHeader {
        opcode: Opcode::Barrier,
        tenant: 1,
        cookie: 100,
        addr: 0,
        len: 0,
    };
    let b2 = ReflexHeader {
        opcode: Opcode::Barrier,
        tenant: 1,
        cookie: 101,
        addr: 0,
        len: 0,
    };
    r.fabric.send(
        SimTime::from_micros(1),
        r.client,
        server,
        r.conn,
        0,
        b1.encode_array(),
    );
    r.fabric.send(
        SimTime::from_micros(2),
        r.client,
        server,
        r.conn,
        0,
        b2.encode_array(),
    );
    let responses = drive(&mut r, 18, SimTime::from_millis(100));
    let b2_resp = responses
        .iter()
        .find(|(h, _)| h.cookie == 101)
        .expect("b2 answered");
    assert_eq!(b2_resp.0.opcode, Opcode::Error, "second barrier must error");
    let b1_resp = responses
        .iter()
        .find(|(h, _)| h.cookie == 100)
        .expect("b1 answered");
    assert_eq!(b1_resp.0.opcode, Opcode::Response);
}

#[test]
fn barrier_releases_buffered_requests_in_order() {
    let mut r = rig(lc_class(100_000));
    let server = r.thread.machine();
    // One write, a barrier, then a burst of reads buffered behind it.
    let w = ReflexHeader {
        opcode: Opcode::Put,
        tenant: 1,
        cookie: 0,
        addr: 0,
        len: 4096,
    };
    r.fabric.send(
        SimTime::ZERO,
        r.client,
        server,
        r.conn,
        4096,
        w.encode_array(),
    );
    let bar = ReflexHeader {
        opcode: Opcode::Barrier,
        tenant: 1,
        cookie: 1,
        addr: 0,
        len: 0,
    };
    r.fabric.send(
        SimTime::from_nanos(50),
        r.client,
        server,
        r.conn,
        0,
        bar.encode_array(),
    );
    for i in 0..8u64 {
        let rd = ReflexHeader {
            opcode: Opcode::Get,
            tenant: 1,
            cookie: 10 + i,
            addr: i * 4096,
            len: 4096,
        };
        r.fabric.send(
            SimTime::from_nanos(100 + i),
            r.client,
            server,
            r.conn,
            0,
            rd.encode_array(),
        );
    }
    let responses = drive(&mut r, 10, SimTime::from_millis(50));
    assert_eq!(responses.len(), 10);
    let barrier_at = responses
        .iter()
        .find(|(h, _)| h.cookie == 1)
        .expect("barrier acked")
        .1;
    for (h, at) in &responses {
        if h.cookie >= 10 {
            assert!(
                *at > barrier_at,
                "read {} completed before the barrier",
                h.cookie
            );
            assert_eq!(h.opcode, Opcode::Response);
        }
    }
}

#[test]
fn client_allowlists_gate_connection_open() {
    let mut r = rig(lc_class(10_000));
    let stranger = r.fabric.add_machine(StackProfile::ix_tcp());
    let tenant = TenantId(2);
    let acl = AclEntry::full(1 << 30).restricted_to(vec![r.client]);
    r.thread
        .register_tenant(tenant, TenantClass::BestEffort, acl, 4096)
        .unwrap();
    // The allowed client binds fine.
    let ok_conn = r.fabric.new_conn();
    r.thread
        .bind_connection(ok_conn, tenant, r.client)
        .expect("allowed client");
    // The stranger is denied at connection open (paper §4.1).
    let bad_conn = r.fabric.new_conn();
    let err = r.thread.bind_connection(bad_conn, tenant, stranger);
    assert!(
        matches!(err, Err(reflex_qos::QosError::ConnectionDenied(t)) if t == tenant),
        "{err:?}"
    );
}
