//! Named regressions promoted from `properties.proptest-regressions`.
//!
//! The proptest seed file replays past failures, but only as opaque
//! hashes at the front of the next proptest run. Promoting each shrunk
//! case to a named test keeps it readable (the scenario is spelled out,
//! not hashed), keeps it running even if the property is later rewritten
//! and its strategy no longer reproduces the seed, and gives the failure
//! a place to document *why* it ever failed.

use std::sync::Arc;

use reflex_dataplane::{AclEntry, DataplaneConfig, DataplaneThread};
use reflex_flash::{device_a, FlashDevice};
use reflex_net::{Fabric, LinkConfig, NicQueueId, Opcode, ReflexHeader, StackProfile};
use reflex_qos::{CostModel, GlobalBucket, SchedulerParams, SloSpec, TenantClass, TenantId};
use reflex_sim::{SimDuration, SimRng, SimTime};

struct Op {
    is_read: bool,
    page: u64,
    gap_ns: u64,
    barrier: bool,
}

/// The harness from `properties.rs::every_request_answered_exactly_once`,
/// with plain asserts: sends the ops, drives to quiescence, checks every
/// request is answered exactly once and counters stay consistent.
fn assert_answered_exactly_once(ops: &[Op]) {
    let mut fabric = Fabric::new(LinkConfig::default(), SimRng::seed(7));
    let client = fabric.add_machine(StackProfile::ix_tcp());
    let server = fabric.add_machine(StackProfile::dataplane_raw());
    let mut device = FlashDevice::new(device_a(), SimRng::seed(8));
    device.precondition();
    let qp = device.create_queue_pair();
    let bucket = Arc::new(GlobalBucket::new(1));
    let mut thread = DataplaneThread::new(
        0,
        server,
        NicQueueId(0),
        qp,
        bucket,
        CostModel::for_device_a(),
        SchedulerParams::default(),
        DataplaneConfig::default(),
        SimTime::ZERO,
    );
    let tenant = TenantId(1);
    let slo = SloSpec::new(200_000, 50, SimDuration::from_millis(2));
    thread
        .register_tenant(
            tenant,
            TenantClass::LatencyCritical(slo),
            AclEntry::full(device.profile().capacity_bytes),
            4096,
        )
        .expect("fresh tenant");
    let conn = fabric.new_conn();
    thread.bind_connection(conn, tenant, client).expect("bound");

    let mut now = SimTime::ZERO;
    let mut sent = 0u64;
    let mut barriers = 0u64;
    for (i, op) in ops.iter().enumerate() {
        now += SimDuration::from_nanos(op.gap_ns);
        let cookie = i as u64;
        let header = if op.barrier {
            barriers += 1;
            ReflexHeader {
                opcode: Opcode::Barrier,
                tenant: 1,
                cookie,
                addr: 0,
                len: 0,
            }
        } else {
            ReflexHeader {
                opcode: if op.is_read { Opcode::Get } else { Opcode::Put },
                tenant: 1,
                cookie,
                addr: op.page * 4096,
                len: 4096,
            }
        };
        let payload = if header.opcode == Opcode::Put {
            4096
        } else {
            0
        };
        fabric.send(now, client, server, conn, payload, header.encode_array());
        sent += 1;
    }

    let mut answered = std::collections::HashSet::new();
    let mut t = SimTime::ZERO;
    for _ in 0..100_000 {
        let wake = thread.pump(t, &mut fabric, &mut device);
        for d in fabric.poll(SimTime::from_secs(3_600), client, usize::MAX) {
            let h = ReflexHeader::decode(&d.payload).expect("server speaks protocol");
            assert!(
                answered.insert(h.cookie),
                "cookie {} answered twice",
                h.cookie
            );
        }
        match wake {
            Some(w) => t = w.max(t + SimDuration::from_nanos(1)),
            None if answered.len() as u64 == sent => break,
            None => t += SimDuration::from_millis(1),
        }
        if t > SimTime::from_secs(60) {
            break;
        }
    }
    assert_eq!(answered.len() as u64, sent, "unanswered requests remain");

    let stats = thread.stats();
    assert_eq!(stats.tx_msgs, sent);
    assert!(stats.completed <= stats.submitted);
    assert_eq!(stats.unbound_conns, 0);
    assert!(
        stats.decode_errors < barriers.max(1),
        "decode errors {} vs barriers {barriers}",
        stats.decode_errors
    );
}

/// Shrunk by proptest (cc a4e34e6a…): a write, a read, then two barriers
/// in quick succession — the second barrier arrives while the first is
/// still outstanding. The overlapping barrier must be answered (with an
/// error response), not silently dropped, and must not double-answer or
/// leak the requests queued behind it.
#[test]
fn overlapping_barriers_still_answered_exactly_once() {
    assert_answered_exactly_once(&[
        Op {
            is_read: false,
            page: 359_670,
            gap_ns: 100,
            barrier: false,
        },
        Op {
            is_read: true,
            page: 200_086,
            gap_ns: 1_785,
            barrier: false,
        },
        Op {
            is_read: true,
            page: 235_512,
            gap_ns: 13_594,
            barrier: true,
        },
        Op {
            is_read: true,
            page: 625_183,
            gap_ns: 68_735,
            barrier: true,
        },
    ]);
}

/// The same scenario with the barriers spaced out, as a control: a
/// well-separated barrier pair has always passed, so a failure here
/// (but not above) points at barrier *overlap* handling specifically.
#[test]
fn separated_barriers_still_answered_exactly_once() {
    assert_answered_exactly_once(&[
        Op {
            is_read: false,
            page: 359_670,
            gap_ns: 100,
            barrier: false,
        },
        Op {
            is_read: true,
            page: 200_086,
            gap_ns: 1_785,
            barrier: false,
        },
        Op {
            is_read: true,
            page: 235_512,
            gap_ns: 13_594,
            barrier: true,
        },
        Op {
            is_read: true,
            page: 625_183,
            gap_ns: 50_000_000,
            barrier: true,
        },
    ]);
}
