//! Property-based tests of the dataplane thread: for arbitrary request
//! streams, every valid request is answered exactly once, never before
//! its device completion, and counters stay consistent.

use std::sync::Arc;

use proptest::prelude::*;
use reflex_dataplane::{AclEntry, DataplaneConfig, DataplaneThread};
use reflex_flash::{device_a, FlashDevice};
use reflex_net::{Fabric, LinkConfig, NicQueueId, Opcode, ReflexHeader, StackProfile};
use reflex_qos::{CostModel, GlobalBucket, SchedulerParams, SloSpec, TenantClass, TenantId};
use reflex_sim::{SimDuration, SimRng, SimTime};

#[derive(Debug, Clone)]
struct Op {
    is_read: bool,
    page: u64,
    gap_ns: u64,
    barrier: bool,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (
        any::<bool>(),
        0u64..1_000_000,
        100u64..100_000,
        prop::bool::weighted(0.05),
    )
        .prop_map(|(is_read, page, gap_ns, barrier)| Op {
            is_read,
            page,
            gap_ns,
            barrier,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn every_request_answered_exactly_once(ops in prop::collection::vec(op_strategy(), 1..150)) {
        let mut fabric = Fabric::new(LinkConfig::default(), SimRng::seed(7));
        let client = fabric.add_machine(StackProfile::ix_tcp());
        let server = fabric.add_machine(StackProfile::dataplane_raw());
        let mut device = FlashDevice::new(device_a(), SimRng::seed(8));
        device.precondition();
        let qp = device.create_queue_pair();
        let bucket = Arc::new(GlobalBucket::new(1));
        let mut thread = DataplaneThread::new(
            0,
            server,
            NicQueueId(0),
            qp,
            bucket,
            CostModel::for_device_a(),
            SchedulerParams::default(),
            DataplaneConfig::default(),
            SimTime::ZERO,
        );
        let tenant = TenantId(1);
        let slo = SloSpec::new(200_000, 50, SimDuration::from_millis(2));
        thread
            .register_tenant(
                tenant,
                TenantClass::LatencyCritical(slo),
                AclEntry::full(device.profile().capacity_bytes),
                4096,
            )
            .expect("fresh tenant");
        let conn = fabric.new_conn();
        thread.bind_connection(conn, tenant, client).expect("bound");

        // Send the stream as-is. Overlapping barriers are application
        // errors by our semantics; the server answers them with error
        // responses, which the accounting below allows for.
        let mut now = SimTime::ZERO;
        let mut sent = 0u64;
        let mut barriers = 0u64;
        for (i, op) in ops.iter().enumerate() {
            now += SimDuration::from_nanos(op.gap_ns);
            let cookie = i as u64;
            let header = if op.barrier {
                barriers += 1;
                ReflexHeader { opcode: Opcode::Barrier, tenant: 1, cookie, addr: 0, len: 0 }
            } else {
                let opcode = if op.is_read { Opcode::Get } else { Opcode::Put };
                ReflexHeader {
                    opcode,
                    tenant: 1,
                    cookie,
                    addr: op.page * 4096,
                    len: 4096,
                }
            };
            let payload = if header.opcode == Opcode::Put { 4096 } else { 0 };
            fabric.send(now, client, server, conn, payload, header.encode_array());
            sent += 1;
        }

        // Drive to quiescence.
        let mut answered = std::collections::HashSet::new();
        let mut t = SimTime::ZERO;
        for _ in 0..100_000 {
            let wake = thread.pump(t, &mut fabric, &mut device);
            for d in fabric.poll(SimTime::from_secs(3_600), client, usize::MAX) {
                let h = ReflexHeader::decode(&d.payload).expect("server speaks protocol");
                prop_assert!(answered.insert(h.cookie), "cookie {} answered twice", h.cookie);
            }
            match wake {
                Some(w) => t = w.max(t + SimDuration::from_nanos(1)),
                None if answered.len() as u64 == sent => break,
                None => t += SimDuration::from_millis(1),
            }
            if t > SimTime::from_secs(60) {
                break;
            }
        }
        prop_assert_eq!(answered.len() as u64, sent, "unanswered requests remain");

        let stats = thread.stats();
        prop_assert_eq!(stats.tx_msgs, sent);
        prop_assert!(stats.completed <= stats.submitted);
        prop_assert_eq!(stats.unbound_conns, 0);
        // A barrier that arrives while another is outstanding is rejected
        // with an error response (still answered exactly once); nothing
        // else may count as a decode error.
        prop_assert!(
            stats.decode_errors < barriers.max(1),
            "decode errors {} vs barriers {barriers}",
            stats.decode_errors
        );
    }
}
