//! Dataplane CPU-cost configuration.
//!
//! The dataplane's throughput per core emerges from these per-item CPU
//! costs. They are calibrated so one simulated core peaks at ~850K IOPS for
//! 1KB requests (paper §5.3), spends ~20% of its time on TCP/IP processing
//! and 2–8% on QoS scheduling, and degrades once per-connection state
//! exceeds the last-level cache (paper Figure 6c).

use reflex_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// Models LLC pressure from TCP connection state: a multiplier applied to
/// per-message CPU costs as the connection count grows (paper §5.5:
/// performance degrades beyond ~5K connections per core as connection
/// state spills out of the last-level cache).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConnPressure {
    /// Mild warming term: extra cost fraction reached by `warm_conns`.
    pub warm_penalty: f64,
    /// Connections at which the warming term saturates.
    pub warm_conns: u32,
    /// Connections beyond which the spill term starts.
    pub spill_threshold: u32,
    /// Extra cost fraction per `spill_threshold` connections beyond it.
    pub spill_penalty: f64,
}

impl Default for ConnPressure {
    fn default() -> Self {
        ConnPressure {
            warm_penalty: 0.10,
            warm_conns: 1_000,
            spill_threshold: 5_000,
            spill_penalty: 0.55,
        }
    }
}

impl ConnPressure {
    /// The CPU-cost multiplier for `conns` active connections.
    pub fn factor(&self, conns: u32) -> f64 {
        let warm = self.warm_penalty * (conns as f64 / self.warm_conns as f64).min(1.0);
        let spill = if conns > self.spill_threshold {
            self.spill_penalty * (conns - self.spill_threshold) as f64 / self.spill_threshold as f64
        } else {
            0.0
        };
        1.0 + warm + spill
    }
}

/// Per-item CPU costs of a dataplane thread.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DataplaneConfig {
    /// CPU per incoming message: NIC RX descriptor handling, TCP/IP
    /// receive, protocol parse, ACL check, event dispatch, read/write
    /// syscall.
    pub rx_msg_cost: SimDuration,
    /// CPU per outgoing response: completion event, send syscall, TCP/IP
    /// transmit, NIC TX descriptor.
    pub tx_msg_cost: SimDuration,
    /// Fixed CPU per QoS scheduling round.
    pub sched_base_cost: SimDuration,
    /// CPU per registered tenant per scheduling round (token generation,
    /// queue inspection).
    pub sched_per_tenant_cost: SimDuration,
    /// Minimum spacing between scheduling rounds: under low load the
    /// thread schedules immediately per arrival batch; this floor stops a
    /// many-tenant scheduler from being re-run for every single message
    /// (the paper's rounds run every 0.5-100us).
    pub min_sched_interval: SimDuration,
    /// Adaptive batching cap (paper: 64).
    pub batch_max: usize,
    /// When requests are queued but not admissible, the thread re-enters
    /// the scheduling step after this interval at the latest. The control
    /// plane keeps it ≤ 5% of the strictest SLO (paper §3.2.2).
    pub max_sched_interval: SimDuration,
    /// Connection-state cache-pressure model.
    pub conn_pressure: ConnPressure,
}

impl Default for DataplaneConfig {
    fn default() -> Self {
        DataplaneConfig {
            rx_msg_cost: SimDuration::from_nanos(640),
            tx_msg_cost: SimDuration::from_nanos(490),
            sched_base_cost: SimDuration::from_nanos(150),
            sched_per_tenant_cost: SimDuration::from_nanos(12),
            min_sched_interval: SimDuration::from_micros(3),
            batch_max: 64,
            max_sched_interval: SimDuration::from_micros(10),
            conn_pressure: ConnPressure::default(),
        }
    }
}

impl DataplaneConfig {
    /// Per-request costs with the UDP transport: the dataplane spends
    /// ~20% of its request time in TCP/IP processing (paper §5.3), most
    /// of which a datagram protocol avoids.
    pub fn udp() -> Self {
        DataplaneConfig {
            rx_msg_cost: SimDuration::from_nanos(500),
            tx_msg_cost: SimDuration::from_nanos(380),
            ..DataplaneConfig::default()
        }
    }

    /// Theoretical single-core IOPS ceiling with few connections and few
    /// tenants (rx + tx cost per request, scheduling amortized over a full
    /// batch).
    pub fn peak_iops_per_core(&self) -> f64 {
        let per_req = self.rx_msg_cost.as_secs_f64()
            + self.tx_msg_cost.as_secs_f64()
            + self.sched_base_cost.as_secs_f64() / self.batch_max as f64;
        1.0 / per_req
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.batch_max == 0 {
            return Err("batch_max must be non-zero".into());
        }
        if self.rx_msg_cost.is_zero() || self.tx_msg_cost.is_zero() {
            return Err("per-message costs must be positive".into());
        }
        if self.max_sched_interval.is_zero() {
            return Err("max_sched_interval must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_peaks_near_850k_iops() {
        let peak = DataplaneConfig::default().peak_iops_per_core();
        assert!(
            (800_000.0..1_000_000.0).contains(&peak),
            "peak {peak} IOPS/core"
        );
    }

    #[test]
    fn conn_pressure_shape() {
        let p = ConnPressure::default();
        assert!((p.factor(1) - 1.0).abs() < 0.01);
        // ~850 connections: the paper's 780K vs 850K peak (~9%).
        let f850 = p.factor(850);
        assert!((1.05..1.12).contains(&f850), "factor(850) = {f850}");
        // At 5K connections the warm term has saturated, no spill yet.
        let f5k = p.factor(5_000);
        assert!((1.09..1.12).contains(&f5k), "factor(5000) = {f5k}");
        // Beyond 5K the spill term dominates.
        let f10k = p.factor(10_000);
        assert!(f10k > 1.5, "factor(10000) = {f10k}");
        // Monotone.
        let mut prev = 0.0;
        for n in [0u32, 100, 500, 1_000, 2_000, 5_000, 7_000, 10_000, 20_000] {
            let f = p.factor(n);
            assert!(f >= prev);
            prev = f;
        }
    }

    #[test]
    fn validation_catches_bad_configs() {
        let c = DataplaneConfig {
            batch_max: 0,
            ..DataplaneConfig::default()
        };
        assert!(c.validate().is_err());
        let c = DataplaneConfig {
            rx_msg_cost: SimDuration::ZERO,
            ..DataplaneConfig::default()
        };
        assert!(c.validate().is_err());
        let c = DataplaneConfig {
            max_sched_interval: SimDuration::ZERO,
            ..DataplaneConfig::default()
        };
        assert!(c.validate().is_err());
        assert!(DataplaneConfig::default().validate().is_ok());
    }
}
