//! The ReFlex dataplane thread (paper §3.1, Figure 2).
//!
//! Each thread owns a dedicated core (modelled by a `core_busy` CPU clock),
//! one NIC queue pair (its machine's receive queue on the [`Fabric`]) and
//! one NVMe queue pair. A [`pump`](DataplaneThread::pump) call runs the
//! polling loop at the current instant:
//!
//! 1. poll NIC RX, parse the wire protocol, run access control, and issue
//!    read/write **syscalls** that enqueue requests into per-tenant QoS
//!    queues (run-to-completion step 1);
//! 2. run the QoS scheduler and submit admissible requests to the NVMe
//!    submission queue;
//! 3. poll the NVMe completion queue, deliver **event conditions** to the
//!    user-level server code, and transmit responses (run-to-completion
//!    step 2).
//!
//! Adaptive batching emerges naturally: while the core is busy, arrivals
//! and completions accumulate and are picked up in batches of up to 64.

use std::collections::{HashMap, VecDeque};

use reflex_flash::{
    CmdId, FlashDevice, IoType, NvmeCommand, NvmeCompletion, NvmeStatus, QpId, SubmitError,
};
use reflex_net::{
    ConnId, Delivery, Fabric, MachineId, NicQueueId, Opcode, ReflexHeader, HEADER_SIZE,
};
use reflex_qos::{
    CostModel, CostedRequest, LoadMix, QosError, QosScheduler, ScheduleOutcome, SchedulerParams,
    TenantClass, TenantId, TokenRate,
};
use reflex_sim::{Histogram, PoolKey, SimDuration, SimTime, SlabPool};
use reflex_telemetry::{Stage, Telemetry, TenantKey};
use std::sync::Arc;

use crate::abi::{AbiStatus, BufHandle, Cookie, EventCond, Syscall, TenantHandle};
use crate::config::DataplaneConfig;

/// The payload carried on the simulated wire: an encoded ReFlex header as
/// a fixed stack array. (Data blocks are represented by message sizes, not
/// bytes.) Being `Copy`, messages move through the fabric without any
/// heap traffic.
pub type WireMsg = [u8; HEADER_SIZE];

/// Access-control entry for a tenant: a namespace (byte range of logical
/// blocks), read/write permissions, and optionally the client machines
/// allowed to open connections to the tenant (paper §4.1: "it checks if a
/// client has the right to open a connection to a specific tenant and if
/// a tenant has read or write permission for an NVMe namespace").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AclEntry {
    /// First byte of the tenant's namespace.
    pub ns_start: u64,
    /// Length of the namespace in bytes.
    pub ns_len: u64,
    /// Tenant may read.
    pub allow_read: bool,
    /// Tenant may write.
    pub allow_write: bool,
    /// Client machines that may connect (`None` = any client).
    pub allowed_clients: Option<Vec<MachineId>>,
}

impl AclEntry {
    /// Full-device read/write access from any client.
    pub fn full(capacity: u64) -> Self {
        AclEntry {
            ns_start: 0,
            ns_len: capacity,
            allow_read: true,
            allow_write: true,
            allowed_clients: None,
        }
    }

    /// Restricts connection-open rights to the given client machines.
    pub fn restricted_to(mut self, clients: Vec<MachineId>) -> Self {
        self.allowed_clients = Some(clients);
        self
    }

    /// `true` when `client` may open connections to this tenant.
    pub fn permits_client(&self, client: MachineId) -> bool {
        match &self.allowed_clients {
            None => true,
            Some(list) => list.contains(&client),
        }
    }

    /// Checks an I/O against the entry.
    fn check(&self, op: IoType, addr: u64, len: u32) -> Result<(), AbiStatus> {
        match op {
            IoType::Read if !self.allow_read => return Err(AbiStatus::AccessDenied),
            IoType::Write if !self.allow_write => return Err(AbiStatus::AccessDenied),
            _ => {}
        }
        let end = addr.saturating_add(len as u64);
        if addr < self.ns_start || end > self.ns_start + self.ns_len {
            return Err(AbiStatus::OutOfRange);
        }
        Ok(())
    }
}

/// Per-request context carried from syscall to completion event. Opaque
/// outside the dataplane; exposed only as the scheduler's payload type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReqCtx {
    tenant: TenantId,
    conn: ConnId,
    client: MachineId,
    cookie: Cookie,
    op: IoType,
    addr: u64,
    len: u32,
    arrived: SimTime,
    rx_started: SimTime,
    enqueued: SimTime,
}

/// Per-tenant ordering state for barrier support: while fenced, new
/// requests buffer here instead of entering the QoS queue.
#[derive(Debug, Default)]
struct OrderingState {
    inflight: u32,
    fence: Option<ReqCtx>,
    buffered: VecDeque<(IoType, u32, ReqCtx)>,
}

/// Everything the thread tracks for one in-flight NVMe command. Lives in
/// a [`SlabPool`]; the pool key — packed into the command's [`CmdId`] —
/// both correlates the completion and recycles the slot, replacing the
/// per-IO hash-map churn of `inflight` + `submit_times` maps.
#[derive(Debug, Clone, Copy)]
struct InflightIo {
    ctx: ReqCtx,
    submitted_at: SimTime,
}

/// Aggregate statistics of one dataplane thread.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ThreadStats {
    /// Messages received and parsed.
    pub rx_msgs: u64,
    /// Responses transmitted (including error responses).
    pub tx_msgs: u64,
    /// NVMe commands submitted.
    pub submitted: u64,
    /// NVMe completions processed.
    pub completed: u64,
    /// Requests rejected by access control.
    pub acl_rejections: u64,
    /// Messages that failed protocol parsing.
    pub decode_errors: u64,
    /// Requests for connections not bound to any tenant.
    pub unbound_conns: u64,
    /// Messages re-steered to a sibling thread after rebalancing.
    pub forwarded: u64,
    /// QoS scheduling rounds executed.
    pub sched_rounds: u64,
    /// Barrier requests completed.
    pub barriers: u64,
    /// NVMe submissions refused with a full SQ (retried later).
    pub sq_full_retries: u64,
    /// Fault-injected core stalls applied via
    /// [`DataplaneThread::inject_stall`].
    pub stalls: u64,
}

/// One simulated ReFlex server thread. See the module documentation.
#[derive(Debug)]
pub struct DataplaneThread {
    thread_idx: u32,
    machine: MachineId,
    nic_queue: NicQueueId,
    qp: QpId,
    config: DataplaneConfig,
    sched: QosScheduler<ReqCtx>,
    acl: HashMap<TenantId, AclEntry>,
    ordering: HashMap<TenantId, OrderingState>,
    /// Server-side read-latency histograms, kept for LC tenants so the
    /// control plane can monitor SLO compliance (paper §4.3).
    tenant_read_latency: HashMap<TenantId, Histogram>,
    conn_binding: HashMap<ConnId, (TenantId, MachineId)>,
    forwards: HashMap<ConnId, NicQueueId>,
    /// In-flight IOs, slot-recycled; the pool key rides in each command's
    /// `CmdId` and is generation-checked on completion.
    inflight: SlabPool<InflightIo>,
    retry_submit: VecDeque<(TenantId, CostedRequest<ReqCtx>)>,
    core_busy: SimTime,
    busy_time: SimDuration,
    sched_time: SimDuration,
    last_sched: SimTime,
    max_sched_interval: SimDuration,
    /// Observability sink shared with the rest of the testbed; disabled
    /// by default, in which case every recording call is one branch.
    telemetry: Telemetry,
    /// Scratch buffers reused across pump iterations so steady-state
    /// batches drain with zero allocations.
    rx_scratch: Vec<Delivery<WireMsg>>,
    cq_scratch: Vec<NvmeCompletion>,
    sched_scratch: ScheduleOutcome<ReqCtx>,
    stats: ThreadStats,
}

impl DataplaneThread {
    /// Creates a thread bound to `machine`'s NIC queues and NVMe queue
    /// pair `qp`, sharing the QoS `bucket` with sibling threads.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails validation.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        thread_idx: u32,
        machine: MachineId,
        nic_queue: NicQueueId,
        qp: QpId,
        bucket: Arc<reflex_qos::GlobalBucket>,
        model: CostModel,
        sched_params: SchedulerParams,
        config: DataplaneConfig,
        now: SimTime,
    ) -> Self {
        config.validate().expect("invalid dataplane config");
        DataplaneThread {
            thread_idx,
            machine,
            nic_queue,
            qp,
            config,
            sched: QosScheduler::new(thread_idx, bucket, model, sched_params, now),
            acl: HashMap::new(),
            ordering: HashMap::new(),
            tenant_read_latency: HashMap::new(),
            conn_binding: HashMap::new(),
            forwards: HashMap::new(),
            inflight: SlabPool::new(),
            retry_submit: VecDeque::new(),
            core_busy: now,
            busy_time: SimDuration::ZERO,
            sched_time: SimDuration::ZERO,
            last_sched: now,
            max_sched_interval: config.max_sched_interval,
            telemetry: Telemetry::disabled(),
            rx_scratch: Vec::new(),
            cq_scratch: Vec::new(),
            sched_scratch: ScheduleOutcome::default(),
            stats: ThreadStats::default(),
        }
    }

    /// Installs a telemetry handle and forwards it to the thread's QoS
    /// scheduler. Per-stage latency spans (paper Figure 2) are then
    /// recorded per tenant on every completed request; recording is purely
    /// passive and perturbs neither timing nor scheduling.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.sched.set_telemetry(telemetry.clone());
        self.telemetry = telemetry;
    }

    /// Sets the upper bound on the scheduling interval (the control plane
    /// keeps it at 5% of the strictest registered SLO, paper §3.2.2).
    pub fn set_max_sched_interval(&mut self, interval: SimDuration) {
        self.max_sched_interval = interval.max(self.config.min_sched_interval);
    }

    /// The spacing between scheduling rounds this thread currently aims
    /// for: wide enough that per-tenant iteration stays below ~half the
    /// core, but never beyond the control plane's SLO-derived bound.
    fn sched_interval(&self) -> SimDuration {
        let (lc, be) = self.sched.tenant_counts();
        let round_cost =
            self.config.sched_base_cost + self.config.sched_per_tenant_cost * (lc + be) as u64;
        (round_cost * 2)
            .max(self.config.min_sched_interval)
            .min(self.max_sched_interval)
    }

    /// This thread's index (bit position in the global bucket).
    pub fn thread_idx(&self) -> u32 {
        self.thread_idx
    }

    /// The machine whose NIC queues this thread polls.
    pub fn machine(&self) -> MachineId {
        self.machine
    }

    /// The NIC receive queue dedicated to this thread.
    pub fn nic_queue(&self) -> NicQueueId {
        self.nic_queue
    }

    /// The NVMe queue pair dedicated to this thread.
    pub fn qp(&self) -> QpId {
        self.qp
    }

    /// Statistics so far.
    pub fn stats(&self) -> ThreadStats {
        self.stats
    }

    /// Total CPU time consumed.
    pub fn busy_time(&self) -> SimDuration {
        self.busy_time
    }

    /// CPU time spent in QoS scheduling (paper: 2–8% at load).
    pub fn sched_cpu_time(&self) -> SimDuration {
        self.sched_time
    }

    /// Fault injection: freezes this thread's core for `dur` starting at
    /// `now` (SMI, hypervisor preemption, a rogue interrupt storm). The
    /// thread resumes exactly where it left off — in-flight requests are
    /// delayed, never lost — so the visible effect is a latency spike on
    /// everything the thread owns.
    pub fn inject_stall(&mut self, now: SimTime, dur: SimDuration) {
        self.core_busy = self.core_busy.max(now) + dur;
        self.busy_time += dur;
        self.stats.stalls += 1;
    }

    /// Server-side read latency (message arrival to response transmit)
    /// for an LC tenant — what the control plane monitors against SLOs.
    pub fn tenant_read_latency(&self, id: TenantId) -> Option<&Histogram> {
        self.tenant_read_latency.get(&id)
    }

    /// Resets a tenant's server-side latency window (the control plane
    /// clears it after each monitoring interval).
    pub fn reset_tenant_read_latency(&mut self, id: TenantId) {
        if let Some(h) = self.tenant_read_latency.get_mut(&id) {
            h.reset();
        }
    }

    /// Exclusive access to the thread's QoS scheduler (control plane
    /// operations: BE rates, cost-model recalibration, token inspection).
    pub fn scheduler_mut(&mut self) -> &mut QosScheduler<ReqCtx> {
        &mut self.sched
    }

    /// Shared access to the thread's QoS scheduler.
    pub fn scheduler(&self) -> &QosScheduler<ReqCtx> {
        &self.sched
    }

    /// Registers a tenant on this thread (the control plane binds each
    /// tenant to exactly one thread, §4.1 "Limitations").
    ///
    /// # Errors
    ///
    /// Propagates [`QosError::DuplicateTenant`].
    pub fn register_tenant(
        &mut self,
        id: TenantId,
        class: TenantClass,
        acl: AclEntry,
        io_size: u32,
    ) -> Result<TenantHandle, QosError> {
        match class {
            TenantClass::LatencyCritical(slo) => {
                self.sched.register_lc(id, slo, io_size)?;
                self.tenant_read_latency.insert(id, Histogram::new());
            }
            TenantClass::BestEffort => self.sched.register_be(id)?,
        }
        self.acl.insert(id, acl);
        Ok(TenantHandle(id.0))
    }

    /// Unregisters a tenant, returning its queued requests so a caller
    /// moving the tenant to another thread can re-enqueue them there (see
    /// [`adopt_pending`](Self::adopt_pending)).
    ///
    /// # Errors
    ///
    /// Propagates [`QosError::UnknownTenant`].
    pub fn unregister_tenant(
        &mut self,
        id: TenantId,
    ) -> Result<Vec<CostedRequest<ReqCtx>>, QosError> {
        let leftovers = self.sched.unregister(id)?;
        self.acl.remove(&id);
        let buffered = self
            .ordering
            .remove(&id)
            .map(|o| o.buffered)
            .unwrap_or_default();
        self.tenant_read_latency.remove(&id);
        self.conn_binding.retain(|_, (t, _)| *t != id);
        // Fence-buffered requests follow the queued ones (order preserved:
        // scheduler queue first, then post-barrier buffer).
        let mut all = leftovers;
        all.extend(buffered.into_iter().map(|(op, len, ctx)| CostedRequest {
            op,
            len,
            payload: ctx,
        }));
        Ok(all)
    }

    /// Re-enqueues requests drained from another thread during tenant
    /// rebalancing, keeping their order. The tenant must already be
    /// registered here.
    ///
    /// # Errors
    ///
    /// Propagates [`QosError::UnknownTenant`].
    pub fn adopt_pending(
        &mut self,
        id: TenantId,
        reqs: Vec<CostedRequest<ReqCtx>>,
    ) -> Result<(), QosError> {
        let ordering = self.ordering.entry(id).or_default();
        ordering.inflight += reqs.len() as u32;
        for req in reqs {
            self.sched.enqueue(id, req)?;
        }
        Ok(())
    }

    /// Binds a client connection to a tenant (the connection-open ACL
    /// check of §4.1).
    ///
    /// # Errors
    ///
    /// [`QosError::UnknownTenant`] when the tenant is not on this thread.
    pub fn bind_connection(
        &mut self,
        conn: ConnId,
        tenant: TenantId,
        client: MachineId,
    ) -> Result<(), QosError> {
        let Some(acl) = self.acl.get(&tenant) else {
            return Err(QosError::UnknownTenant(tenant));
        };
        if !acl.permits_client(client) {
            return Err(QosError::ConnectionDenied(tenant));
        }
        self.conn_binding.insert(conn, (tenant, client));
        Ok(())
    }

    /// Removes a connection binding.
    pub fn unbind_connection(&mut self, conn: ConnId) {
        self.conn_binding.remove(&conn);
    }

    /// Installs a forwarding entry: messages for `conn` arriving on this
    /// thread's queue are re-steered to `queue` (tenant rebalancing keeps
    /// in-flight traffic from being dropped, paper §3.1, reference \[53\]).
    pub fn forward_connection(&mut self, conn: ConnId, queue: NicQueueId) {
        self.conn_binding.remove(&conn);
        self.forwards.insert(conn, queue);
    }

    /// Active connection count (drives the LLC-pressure model).
    pub fn connection_count(&self) -> u32 {
        self.conn_binding.len() as u32
    }

    /// Sets each BE tenant's fair-share token rate (control plane).
    pub fn set_be_rate(&mut self, rate: TokenRate) {
        self.sched.set_be_rate(rate);
    }

    fn charge(&mut self, cost: SimDuration) {
        self.core_busy += cost;
        self.busy_time += cost;
    }

    /// The *user-level server code* (paper: 490 SLOC in guest ring 3):
    /// parses a message and turns it into a syscall. Pure function of the
    /// header — any bug here cannot touch dataplane state.
    fn user_handle_message(
        header: &ReflexHeader,
        tenant: TenantId,
    ) -> Result<Option<Syscall>, AbiStatus> {
        let handle = TenantHandle(tenant.0);
        // Zero-copy: the buffer handle indexes a pre-allocated DMA region;
        // the cookie travels to the completion event untouched.
        let buf = BufHandle(0);
        match header.opcode {
            Opcode::Get => Ok(Some(Syscall::Read {
                handle,
                buf,
                addr: header.addr,
                len: header.len,
                cookie: header.cookie,
            })),
            Opcode::Put => Ok(Some(Syscall::Write {
                handle,
                buf,
                addr: header.addr,
                len: header.len,
                cookie: header.cookie,
            })),
            // Barriers are an ordering directive, not an I/O syscall.
            Opcode::Barrier => Ok(None),
            Opcode::Response | Opcode::Error => Err(AbiStatus::AccessDenied),
        }
    }

    /// The user-level completion path: turns an event condition into the
    /// response message for the wire.
    fn user_handle_event(event: &EventCond, ctx: &ReqCtx) -> (ReflexHeader, u32) {
        let ok = matches!(
            event,
            EventCond::Response {
                status: AbiStatus::Ok,
                ..
            } | EventCond::Written {
                status: AbiStatus::Ok,
                ..
            }
        );
        let opcode = if ok { Opcode::Response } else { Opcode::Error };
        let payload = if ok && ctx.op.is_read() { ctx.len } else { 0 };
        (
            ReflexHeader {
                opcode,
                tenant: 0,
                cookie: ctx.cookie,
                addr: ctx.addr,
                len: ctx.len,
            },
            payload,
        )
    }

    fn send_error(&mut self, fabric: &mut Fabric<WireMsg>, ctx: ReqCtx, status: AbiStatus) {
        let event = match ctx.op {
            IoType::Read => EventCond::Response {
                cookie: ctx.cookie,
                status,
            },
            IoType::Write => EventCond::Written {
                cookie: ctx.cookie,
                status,
            },
        };
        let (header, payload) = Self::user_handle_event(&event, &ctx);
        let factor = self.config.conn_pressure.factor(self.connection_count());
        self.charge(self.config.tx_msg_cost.mul_f64(factor));
        self.stats.tx_msgs += 1;
        fabric.send_from(
            self.core_busy,
            self.machine,
            self.nic_queue,
            ctx.client,
            ctx.conn,
            payload,
            header.encode_array(),
        );
    }

    fn handle_rx(
        &mut self,
        fabric: &mut Fabric<WireMsg>,
        delivery: Delivery<WireMsg>,
        rx_started: SimTime,
    ) {
        self.stats.rx_msgs += 1;
        let Some(&(tenant, client)) = self.conn_binding.get(&delivery.conn) else {
            if let Some(&queue) = self.forwards.get(&delivery.conn) {
                fabric.requeue(self.core_busy, self.machine, queue, delivery);
                self.stats.forwarded += 1;
            } else {
                self.stats.unbound_conns += 1;
            }
            return;
        };
        let header = match ReflexHeader::decode(&delivery.payload) {
            Ok(h) => h,
            Err(_) => {
                self.stats.decode_errors += 1;
                return;
            }
        };
        let syscall = match Self::user_handle_message(&header, tenant) {
            Ok(s) => s,
            Err(status) => {
                self.stats.decode_errors += 1;
                let ctx = ReqCtx {
                    tenant,
                    conn: delivery.conn,
                    client,
                    cookie: header.cookie,
                    op: IoType::Read,
                    addr: header.addr,
                    len: header.len,
                    arrived: delivery.arrived_at,
                    rx_started,
                    enqueued: self.core_busy,
                };
                self.send_error(fabric, ctx, status);
                return;
            }
        };

        // Barrier: complete immediately if the tenant has nothing
        // outstanding, otherwise fence the tenant until it drains.
        let Some(syscall) = syscall else {
            let ctx = ReqCtx {
                tenant,
                conn: delivery.conn,
                client,
                cookie: header.cookie,
                op: IoType::Read,
                addr: 0,
                len: 0,
                arrived: delivery.arrived_at,
                rx_started,
                enqueued: self.core_busy,
            };
            let ordering = self.ordering.entry(tenant).or_default();
            if ordering.fence.is_some() {
                // One outstanding barrier per tenant; a second is an error.
                self.stats.decode_errors += 1;
                self.send_error(fabric, ctx, AbiStatus::OutOfResources);
                return;
            }
            let drained = ordering.inflight == 0 && self.sched.queued_for(tenant) == 0;
            if drained {
                self.ack_barrier(fabric, ctx);
            } else {
                self.ordering.entry(tenant).or_default().fence = Some(ctx);
            }
            return;
        };

        // Kernel side of the syscall: ACL check, then per-tenant queueing.
        let (op, addr, len, cookie) = match syscall {
            Syscall::Read {
                addr, len, cookie, ..
            } => (IoType::Read, addr, len, cookie),
            Syscall::Write {
                addr, len, cookie, ..
            } => (IoType::Write, addr, len, cookie),
            // Register/unregister arrive via the control plane in this
            // reproduction; they never appear on the data path.
            Syscall::Register { .. } | Syscall::Unregister { .. } => return,
        };
        let ctx = ReqCtx {
            tenant,
            conn: delivery.conn,
            client,
            cookie,
            op,
            addr,
            len,
            arrived: delivery.arrived_at,
            rx_started,
            enqueued: self.core_busy,
        };
        let acl_verdict = self
            .acl
            .get(&tenant)
            .expect("bound conn implies ACL entry")
            .check(op, addr, len);
        if let Err(status) = acl_verdict {
            self.stats.acl_rejections += 1;
            self.send_error(fabric, ctx, status);
            return;
        }
        // The request is accepted from here on: it will be answered by
        // exactly one completion, so its telemetry span opens now (closed
        // in `handle_completion` when the response hits the wire).
        self.telemetry.open_span(TenantKey(tenant.0));
        let ordering = self.ordering.entry(tenant).or_default();
        if ordering.fence.is_some() {
            // Requests behind a barrier wait for it to complete.
            ordering.buffered.push_back((op, len, ctx));
            return;
        }
        ordering.inflight += 1;
        self.sched
            .enqueue(
                tenant,
                CostedRequest {
                    op,
                    len,
                    payload: ctx,
                },
            )
            .expect("bound conn implies registered tenant");
    }

    /// Acknowledges a completed barrier to the client.
    fn ack_barrier(&mut self, fabric: &mut Fabric<WireMsg>, ctx: ReqCtx) {
        self.stats.barriers += 1;
        let header = ReflexHeader {
            opcode: Opcode::Response,
            tenant: ctx.tenant.0,
            cookie: ctx.cookie,
            addr: 0,
            len: 0,
        };
        let factor = self.config.conn_pressure.factor(self.connection_count());
        self.charge(self.config.tx_msg_cost.mul_f64(factor));
        self.stats.tx_msgs += 1;
        fabric.send_from(
            self.core_busy,
            self.machine,
            self.nic_queue,
            ctx.client,
            ctx.conn,
            0,
            header.encode_array(),
        );
    }

    /// Called when one of `tenant`'s I/Os completes: release a pending
    /// barrier (and the requests buffered behind it) once drained.
    fn note_completion(&mut self, fabric: &mut Fabric<WireMsg>, tenant: TenantId) {
        let Some(ordering) = self.ordering.get_mut(&tenant) else {
            return;
        };
        ordering.inflight = ordering.inflight.saturating_sub(1);
        if ordering.inflight == 0 && ordering.fence.is_some() && self.sched.queued_for(tenant) == 0
        {
            let ctx = ordering.fence.take().expect("checked above");
            let buffered = std::mem::take(&mut ordering.buffered);
            ordering.inflight += buffered.len() as u32;
            self.ack_barrier(fabric, ctx);
            for (op, len, rctx) in buffered {
                self.sched
                    .enqueue(
                        tenant,
                        CostedRequest {
                            op,
                            len,
                            payload: rctx,
                        },
                    )
                    .expect("tenant still registered");
            }
        }
    }

    fn submit_one(
        &mut self,
        device: &mut FlashDevice,
        tenant: TenantId,
        req: CostedRequest<ReqCtx>,
    ) {
        // The in-flight slab slot doubles as the NVMe command id: the pool
        // key (slot + generation) packs into the CmdId u64 and travels
        // through the device, so completion lookup is a generation-checked
        // index instead of a hash probe — and slot reuse recycles the
        // storage with no per-IO allocation.
        let key = self.inflight.insert(InflightIo {
            ctx: req.payload,
            submitted_at: self.core_busy,
        });
        let id = CmdId(key.as_u64());
        let cmd = match req.op {
            IoType::Read => NvmeCommand::read(id, req.payload.addr, req.len),
            IoType::Write => NvmeCommand::write(id, req.payload.addr, req.len),
        };
        self.telemetry.note_submitted(TenantKey(tenant.0));
        match device.submit(self.core_busy, self.qp, cmd) {
            Ok(_) => {
                self.stats.submitted += 1;
            }
            Err(SubmitError::QueueFull) => {
                let io = self.inflight.take(key).expect("just inserted");
                self.stats.sq_full_retries += 1;
                self.telemetry.note_retried(TenantKey(tenant.0));
                self.retry_submit.push_front((
                    tenant,
                    CostedRequest {
                        op: req.op,
                        len: req.len,
                        payload: io.ctx,
                    },
                ));
            }
            Err(SubmitError::EmptyCommand) => {
                // Zero-length requests were already rejected at parse time;
                // treat defensively as a decode error.
                self.inflight.take(key);
                self.stats.decode_errors += 1;
                self.telemetry.note_failed(TenantKey(tenant.0));
                self.telemetry.close_span(TenantKey(tenant.0));
            }
        }
    }

    fn handle_completion(
        &mut self,
        fabric: &mut Fabric<WireMsg>,
        completed: reflex_flash::NvmeCompletion,
    ) {
        self.stats.completed += 1;
        let Some(io) = self.inflight.take(PoolKey::from_u64(completed.id.0)) else {
            return;
        };
        let InflightIo { ctx, submitted_at } = io;
        let status = match completed.status {
            NvmeStatus::Success => AbiStatus::Ok,
            NvmeStatus::OutOfRange => AbiStatus::OutOfRange,
            // Both map to the retryable error class: the client cannot
            // distinguish a transient media error from a dying device and
            // should retry (the control plane handles re-placement).
            NvmeStatus::MediaError | NvmeStatus::DeviceUnavailable => AbiStatus::OutOfResources,
        };
        let event = match ctx.op {
            IoType::Read => EventCond::Response {
                cookie: ctx.cookie,
                status,
            },
            IoType::Write => EventCond::Written {
                cookie: ctx.cookie,
                status,
            },
        };
        let (header, payload) = Self::user_handle_event(&event, &ctx);
        let factor = self.config.conn_pressure.factor(self.connection_count());
        self.charge(self.config.tx_msg_cost.mul_f64(factor));
        self.stats.tx_msgs += 1;
        fabric.send_from(
            self.core_busy,
            self.machine,
            self.nic_queue,
            ctx.client,
            ctx.conn,
            payload,
            header.encode_array(),
        );
        if ctx.op.is_read() {
            if let Some(h) = self.tenant_read_latency.get_mut(&ctx.tenant) {
                h.record(self.core_busy.saturating_since(ctx.arrived));
            }
        }
        if self.telemetry.is_enabled() {
            // Per-stage decomposition of the request's server-side life
            // (paper Figure 2), attributed to its tenant. The single-take
            // guard above means a stale/duplicated completion can never
            // reach this point, so each request is decomposed exactly once.
            let t = TenantKey(ctx.tenant.0);
            self.telemetry.span(
                t,
                Stage::NicQueue,
                ctx.rx_started.saturating_since(ctx.arrived),
            );
            self.telemetry.span(
                t,
                Stage::Dataplane,
                ctx.enqueued.saturating_since(ctx.rx_started),
            );
            self.telemetry.span(
                t,
                Stage::FlashSq,
                submitted_at.saturating_since(ctx.enqueued),
            );
            self.telemetry.span(
                t,
                Stage::Channel,
                completed.completed_at.saturating_since(submitted_at),
            );
            self.telemetry.span(
                t,
                Stage::Cq,
                self.core_busy.saturating_since(completed.completed_at),
            );
            if status == AbiStatus::Ok {
                self.telemetry.note_completed(t);
            } else {
                self.telemetry.note_failed(t);
            }
            self.telemetry.close_span(t);
        }
        // Barrier release happens after the response is on the wire so the
        // client observes completions in order.
        self.note_completion(fabric, ctx.tenant);
    }

    /// Runs the polling loop at `now`: drains available NIC arrivals, runs
    /// QoS scheduling, submits to the device and transmits completions,
    /// charging CPU time throughout. Returns the instant the thread should
    /// next be woken, or `None` when fully idle with no pending work.
    pub fn pump(
        &mut self,
        now: SimTime,
        fabric: &mut Fabric<WireMsg>,
        device: &mut FlashDevice,
    ) -> Option<SimTime> {
        if self.core_busy < now {
            self.core_busy = now;
        }

        loop {
            let mut progress = false;
            let factor = self.config.conn_pressure.factor(self.connection_count());

            // Step 1: NIC RX batch (bounded, adaptive). The scratch vector
            // is owned by the thread and recycled tick over tick, so a
            // steady-state pump round performs no RX-path allocation.
            let mut msgs = std::mem::take(&mut self.rx_scratch);
            fabric.poll_queue_into(
                self.core_busy,
                self.machine,
                self.nic_queue,
                self.config.batch_max,
                &mut msgs,
            );
            for d in msgs.drain(..) {
                let rx_started = self.core_busy.max(d.arrived_at);
                self.charge(self.config.rx_msg_cost.mul_f64(factor));
                self.handle_rx(fabric, d, rx_started);
                progress = true;
            }
            self.rx_scratch = msgs;

            // Step 2: QoS scheduling + NVMe submission.
            // Retry anything the SQ refused last round first. The SQ is a
            // single queue: once one submit fails with QueueFull, the rest
            // will too, so stop immediately instead of rescanning the
            // whole backlog every round.
            while let Some((tenant, req)) = self.retry_submit.pop_front() {
                let before = self.stats.sq_full_retries;
                self.submit_one(device, tenant, req);
                if self.stats.sq_full_retries > before {
                    // submit_one pushed the request back; the SQ is full,
                    // so every further attempt this round would fail too.
                    break;
                }
            }
            let due = self.core_busy.saturating_since(self.last_sched) >= self.sched_interval();
            if self.sched.queued_requests() > 0 && due {
                self.last_sched = self.core_busy;
                let (lc, be) = self.sched.tenant_counts();
                let cost = self.config.sched_base_cost
                    + self.config.sched_per_tenant_cost * (lc + be) as u64;
                self.charge(cost);
                self.sched_time += cost;
                self.stats.sched_rounds += 1;
                let mix = if device.in_read_only_mode(self.core_busy) {
                    LoadMix::ReadOnly
                } else {
                    LoadMix::Mixed
                };
                let mut outcome = std::mem::take(&mut self.sched_scratch);
                self.sched.schedule_into(self.core_busy, mix, &mut outcome);
                let submitted_any = !outcome.submitted.is_empty();
                for (tenant, req) in outcome.submitted.drain(..) {
                    self.submit_one(device, tenant, req);
                }
                self.sched_scratch = outcome;
                if submitted_any {
                    progress = true;
                }
            }

            // Step 3: NVMe CQ batch -> events -> responses, drained through
            // the recycled completion scratch buffer.
            let mut comps = std::mem::take(&mut self.cq_scratch);
            device.poll_completions_into(
                self.core_busy,
                self.qp,
                self.config.batch_max,
                &mut comps,
            );
            for c in comps.drain(..) {
                self.handle_completion(fabric, c);
                progress = true;
            }
            self.cq_scratch = comps;

            if !progress {
                break;
            }
        }

        // Decide when to wake next.
        let mut wake: Option<SimTime> = None;
        let mut consider = |t: Option<SimTime>| {
            if let Some(t) = t {
                wake = Some(match wake {
                    Some(w) => w.min(t),
                    None => t,
                });
            }
        };
        consider(fabric.next_arrival_queue(self.machine, self.nic_queue));
        consider(device.next_completion_time(self.qp));
        if self.sched.queued_requests() > 0 || !self.retry_submit.is_empty() {
            consider(Some(self.core_busy + self.sched_interval()));
        }
        wake.map(|t| t.max(self.core_busy))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acl_client_permits() {
        let open = AclEntry::full(1 << 20);
        assert!(open.permits_client(MachineId(0)));
        assert!(open.permits_client(MachineId(9)));
        let closed = AclEntry::full(1 << 20).restricted_to(vec![MachineId(1), MachineId(2)]);
        assert!(closed.permits_client(MachineId(1)));
        assert!(!closed.permits_client(MachineId(3)));
    }
}
