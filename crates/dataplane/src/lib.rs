//! # reflex-dataplane — the ReFlex server execution model
//!
//! Implements the paper's dataplane (§3.1, Figure 2) on the simulation
//! substrate: polling threads with dedicated cores and hardware queue
//! pairs, two-step run-to-completion, bounded adaptive batching, the
//! Table-1 syscall/event ABI between the protected dataplane and the
//! user-level server code, per-tenant access control, and the QoS
//! scheduling step wired into the submission path.
//!
//! The crate exposes [`DataplaneThread`] (one per simulated core) and
//! [`DataplaneConfig`] (per-item CPU costs calibrated to the paper's
//! ~850K IOPS/core) — the full server is assembled in `reflex-core`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod abi;
mod config;
mod thread;

pub use abi::{AbiStatus, BufHandle, Cookie, EventCond, Syscall, TenantHandle};
pub use config::{ConnPressure, DataplaneConfig};
pub use thread::{AclEntry, DataplaneThread, ReqCtx, ThreadStats, WireMsg};
