//! The dataplane ↔ user-level server ABI (paper Table 1).
//!
//! ReFlex extends the IX dataplane with system calls to register tenants
//! and submit NVMe reads/writes, and event conditions for their
//! completions. Calls and events are batched over shared-memory arrays —
//! modelled here as bounded queues — so no interrupts or thread scheduling
//! are involved.

use reflex_qos::{SloSpec, TenantId};
use serde::{Deserialize, Serialize};

/// Handle identifying a registered tenant to the dataplane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TenantHandle(pub u32);

/// Opaque user-space correlation value carried through the dataplane and
/// returned in the matching event condition.
pub type Cookie = u64;

/// Handle to a pre-allocated zero-copy DMA buffer. The simulation tracks
/// buffer accounting but not contents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BufHandle(pub u32);

/// System calls the user-level server code issues to the dataplane
/// (paper Table 1, top half). Batched over a shared array.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Syscall {
    /// Registers a tenant with an SLO (`None` ⇒ best-effort).
    Register {
        /// Proposed tenant id.
        id: TenantId,
        /// SLO for latency-critical tenants; `None` for best-effort.
        slo: Option<SloSpec>,
        /// Echoed in the `Registered` event.
        cookie: Cookie,
    },
    /// Unregisters a tenant.
    Unregister {
        /// Handle from a previous `Registered` event.
        handle: TenantHandle,
    },
    /// Reads `len` bytes at `addr` into `buf`.
    Read {
        /// Tenant issuing the I/O.
        handle: TenantHandle,
        /// Destination zero-copy buffer.
        buf: BufHandle,
        /// Device byte address.
        addr: u64,
        /// Length in bytes.
        len: u32,
        /// Echoed in the `Response` event.
        cookie: Cookie,
    },
    /// Writes `len` bytes at `addr` from `buf`.
    Write {
        /// Tenant issuing the I/O.
        handle: TenantHandle,
        /// Source zero-copy buffer.
        buf: BufHandle,
        /// Device byte address.
        addr: u64,
        /// Length in bytes.
        len: u32,
        /// Echoed in the `Written` event.
        cookie: Cookie,
    },
}

/// Completion status in an event condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AbiStatus {
    /// Success.
    Ok,
    /// Tenant could not be admitted (SLO not satisfiable) or resources
    /// exhausted.
    OutOfResources,
    /// The I/O failed access-control checks.
    AccessDenied,
    /// The I/O addressed blocks beyond the namespace.
    OutOfRange,
}

/// Event conditions the dataplane delivers to the user-level server code
/// (paper Table 1, bottom half).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventCond {
    /// A `Register` syscall completed.
    Registered {
        /// Handle for subsequent I/O syscalls.
        handle: TenantHandle,
        /// Cookie from the `Register` call.
        cookie: Cookie,
        /// Admission outcome.
        status: AbiStatus,
    },
    /// An `Unregister` syscall completed.
    Unregistered {
        /// The now-invalid handle.
        handle: TenantHandle,
    },
    /// An NVMe read completed.
    Response {
        /// Cookie from the `Read` call.
        cookie: Cookie,
        /// I/O outcome.
        status: AbiStatus,
    },
    /// An NVMe write completed.
    Written {
        /// Cookie from the `Write` call.
        cookie: Cookie,
        /// I/O outcome.
        status: AbiStatus,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use reflex_sim::SimDuration;

    #[test]
    fn syscall_variants_are_constructible_and_distinct() {
        let slo = SloSpec::new(1_000, 90, SimDuration::from_micros(500));
        let calls = [
            Syscall::Register {
                id: TenantId(1),
                slo: Some(slo),
                cookie: 9,
            },
            Syscall::Register {
                id: TenantId(2),
                slo: None,
                cookie: 10,
            },
            Syscall::Read {
                handle: TenantHandle(1),
                buf: BufHandle(3),
                addr: 4096,
                len: 4096,
                cookie: 11,
            },
            Syscall::Write {
                handle: TenantHandle(1),
                buf: BufHandle(4),
                addr: 0,
                len: 1024,
                cookie: 12,
            },
            Syscall::Unregister {
                handle: TenantHandle(1),
            },
        ];
        let mut reprs: Vec<String> = calls.iter().map(|c| format!("{c:?}")).collect();
        reprs.sort();
        reprs.dedup();
        assert_eq!(reprs.len(), calls.len(), "variants must be distinct");
    }

    #[test]
    fn event_variants_carry_status() {
        let e = EventCond::Response {
            cookie: 1,
            status: AbiStatus::AccessDenied,
        };
        match e {
            EventCond::Response { status, .. } => assert_eq!(status, AbiStatus::AccessDenied),
            _ => unreachable!(),
        }
    }
}
