//! The global token bucket shared by all dataplane threads.
//!
//! LC tenants with spare tokens donate into the bucket; BE tenants on any
//! thread claim from it. Threads use atomic read-modify-write operations —
//! no locks — and the bucket is reset once every thread has completed at
//! least one scheduling round since the last reset, with the *last* thread
//! to mark performing the reset (paper §4.1, "Multi-threading operation").

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

use crate::tokens::Tokens;

/// Lock-free shared token bucket with last-thread-resets round tracking.
///
/// # Examples
///
/// ```
/// use reflex_qos::{GlobalBucket, Tokens};
///
/// let bucket = GlobalBucket::new(2); // two dataplane threads
/// bucket.give(Tokens::from_tokens(10));
/// let got = bucket.take(Tokens::from_tokens(4));
/// assert_eq!(got, Tokens::from_tokens(4));
/// assert_eq!(bucket.balance(), Tokens::from_tokens(6));
///
/// // Thread 0 finishes a round: not everyone yet, no reset.
/// assert!(!bucket.mark_round(0));
/// // Thread 1 finishes: last one marks, bucket resets.
/// assert!(bucket.mark_round(1));
/// assert_eq!(bucket.balance(), Tokens::ZERO);
/// ```
#[derive(Debug)]
pub struct GlobalBucket {
    millitokens: AtomicI64,
    round_marks: AtomicU64,
    active_mask: AtomicU64,
}

impl GlobalBucket {
    /// Creates a bucket shared by `num_threads` dataplane threads.
    ///
    /// # Panics
    ///
    /// Panics if `num_threads` is zero or exceeds 64 (one mark bit per
    /// thread).
    pub fn new(num_threads: u32) -> Self {
        assert!(
            (1..=64).contains(&num_threads),
            "bucket supports 1..=64 threads, got {num_threads}"
        );
        let mask = if num_threads == 64 {
            u64::MAX
        } else {
            (1u64 << num_threads) - 1
        };
        GlobalBucket {
            millitokens: AtomicI64::new(0),
            round_marks: AtomicU64::new(0),
            active_mask: AtomicU64::new(mask),
        }
    }

    /// Number of threads that must mark a round before the bucket resets.
    pub fn num_threads(&self) -> u32 {
        self.active_mask.load(Ordering::Acquire).count_ones()
    }

    /// Updates the set of active dataplane threads (control-plane thread
    /// scaling). Threads are identified by bit position.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero or exceeds 64.
    pub fn set_active_threads(&self, count: u32) {
        assert!((1..=64).contains(&count), "bucket supports 1..=64 threads");
        let mask = if count == 64 {
            u64::MAX
        } else {
            (1u64 << count) - 1
        };
        self.active_mask.store(mask, Ordering::Release);
        self.round_marks.store(0, Ordering::Release);
    }

    /// Donates tokens to the bucket. Negative or zero amounts are ignored.
    pub fn give(&self, tokens: Tokens) {
        let mt = tokens.as_millitokens();
        if mt > 0 {
            self.millitokens.fetch_add(mt, Ordering::AcqRel);
        }
    }

    /// Atomically claims up to `want` tokens, returning what was granted
    /// (zero if the bucket is empty or `want` is non-positive).
    pub fn take(&self, want: Tokens) -> Tokens {
        let want_mt = want.as_millitokens();
        if want_mt <= 0 {
            return Tokens::ZERO;
        }
        let mut current = self.millitokens.load(Ordering::Acquire);
        loop {
            let grant = current.min(want_mt).max(0);
            if grant == 0 {
                return Tokens::ZERO;
            }
            match self.millitokens.compare_exchange_weak(
                current,
                current - grant,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Tokens::from_millitokens(grant),
                Err(actual) => current = actual,
            }
        }
    }

    /// Current balance (advisory; may race with concurrent give/take).
    pub fn balance(&self) -> Tokens {
        Tokens::from_millitokens(self.millitokens.load(Ordering::Acquire))
    }

    /// Marks that thread `thread_idx` completed a scheduling round. When
    /// every thread has marked since the last reset, the caller — the last
    /// thread — zeroes the bucket and the marks; returns `true` in that
    /// case. This keeps BE bursting bounded without cross-thread locking
    /// and lets threads schedule at different frequencies.
    ///
    /// Marks from threads outside the active set (e.g. a thread retired by
    /// the control plane that is still draining its queues) are ignored
    /// and return `false`.
    pub fn mark_round(&self, thread_idx: u32) -> bool {
        let bit = 1u64 << thread_idx;
        let active = self.active_mask.load(Ordering::Acquire);
        if bit & active == 0 {
            return false;
        }
        let prev = self.round_marks.fetch_or(bit, Ordering::AcqRel);
        let marked = (prev | bit) & active;
        if marked == active {
            self.round_marks.store(0, Ordering::Release);
            self.millitokens.store(0, Ordering::Release);
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn take_is_bounded_by_balance() {
        let b = GlobalBucket::new(1);
        b.give(Tokens::from_tokens(3));
        assert_eq!(b.take(Tokens::from_tokens(10)), Tokens::from_tokens(3));
        assert_eq!(b.take(Tokens::from_tokens(1)), Tokens::ZERO);
    }

    #[test]
    fn give_ignores_non_positive() {
        let b = GlobalBucket::new(1);
        b.give(Tokens::from_tokens(-5));
        b.give(Tokens::ZERO);
        assert_eq!(b.balance(), Tokens::ZERO);
    }

    #[test]
    fn take_ignores_non_positive_want() {
        let b = GlobalBucket::new(1);
        b.give(Tokens::from_tokens(1));
        assert_eq!(b.take(Tokens::from_tokens(-1)), Tokens::ZERO);
        assert_eq!(b.balance(), Tokens::from_tokens(1));
    }

    #[test]
    fn single_thread_reset_every_round() {
        let b = GlobalBucket::new(1);
        b.give(Tokens::from_tokens(5));
        assert!(b.mark_round(0));
        assert_eq!(b.balance(), Tokens::ZERO);
    }

    #[test]
    fn reset_requires_all_threads() {
        let b = GlobalBucket::new(3);
        b.give(Tokens::from_tokens(5));
        assert!(!b.mark_round(0));
        assert!(!b.mark_round(1));
        assert!(!b.mark_round(0)); // re-marking the same thread doesn't help
        assert_eq!(b.balance(), Tokens::from_tokens(5));
        assert!(b.mark_round(2));
        assert_eq!(b.balance(), Tokens::ZERO);
        // Next cycle starts fresh.
        assert!(!b.mark_round(2));
    }

    #[test]
    fn foreign_thread_marks_are_ignored() {
        let b = GlobalBucket::new(2);
        b.give(Tokens::from_tokens(1));
        assert!(!b.mark_round(7));
        assert_eq!(
            b.balance(),
            Tokens::from_tokens(1),
            "no reset from outsiders"
        );
    }

    #[test]
    fn active_set_changes_reset_marks() {
        let b = GlobalBucket::new(3);
        assert!(!b.mark_round(0));
        assert!(!b.mark_round(1));
        // Scaling down to 2 threads clears marks: the cycle restarts.
        b.set_active_threads(2);
        assert_eq!(b.num_threads(), 2);
        assert!(!b.mark_round(0));
        assert!(b.mark_round(1), "both active threads marked");
        // Scaling back up: thread 2 participates again.
        b.set_active_threads(3);
        assert!(!b.mark_round(0));
        assert!(!b.mark_round(1));
        assert!(b.mark_round(2));
    }

    #[test]
    fn concurrent_takes_never_over_grant() {
        // Hammer the bucket from 8 OS threads; total granted must equal
        // total donated (conservation under real concurrency).
        let b = Arc::new(GlobalBucket::new(8));
        let donated = 8 * 10_000i64;
        b.give(Tokens::from_millitokens(donated));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let b = Arc::clone(&b);
            handles.push(std::thread::spawn(move || {
                let mut got = 0i64;
                for _ in 0..5_000 {
                    got += b.take(Tokens::from_millitokens(7)).as_millitokens();
                }
                got
            }));
        }
        let total: i64 = handles
            .into_iter()
            .map(|h| h.join().expect("no panic"))
            .sum();
        assert_eq!(total + b.balance().as_millitokens(), donated);
    }

    #[test]
    fn concurrent_give_take_conserves() {
        let b = Arc::new(GlobalBucket::new(4));
        let mut handles = Vec::new();
        for i in 0..4 {
            let b = Arc::clone(&b);
            handles.push(std::thread::spawn(move || {
                let mut net = 0i64; // taken - given by this thread
                for k in 0..10_000 {
                    if (k + i) % 2 == 0 {
                        b.give(Tokens::from_millitokens(3));
                        net -= 3;
                    } else {
                        net += b.take(Tokens::from_millitokens(2)).as_millitokens();
                    }
                }
                net
            }));
        }
        let net: i64 = handles
            .into_iter()
            .map(|h| h.join().expect("no panic"))
            .sum();
        // given - taken must equal what's left in the bucket.
        assert_eq!(-net, b.balance().as_millitokens());
        assert!(b.balance().as_millitokens() >= 0);
    }
}
