//! A fairness-only scheduler for comparison (related work, paper §7).
//!
//! FIOS, FlashFQ and Libra schedule Flash I/O for *fairness* or throughput
//! shares; the paper's point is that "their cost models do not necessarily
//! capture a request's impact on the tail latency of concurrent I/Os".
//! [`FairScheduler`] is a Deficit-Round-Robin scheduler that grants every
//! tenant equal byte quanta per round — fair by construction, but blind to
//! the 10–20× read-tail impact of writes. The comparison test in this
//! module reproduces the paper's argument quantitatively: under DRR a
//! write-heavy tenant receives its fair share of *requests* and destroys a
//! reader's tail latency; the cost-model scheduler holds it.

use std::collections::{HashMap, VecDeque};

use reflex_sim::SimTime;

use crate::scheduler::{CostedRequest, QosError};
use crate::slo::TenantId;

/// A Deficit-Round-Robin I/O scheduler: per-round byte quanta, no latency
/// awareness. See the module documentation.
#[derive(Debug)]
pub struct FairScheduler<R> {
    tenants: HashMap<TenantId, FairTenant<R>>,
    order: Vec<TenantId>,
    cursor: usize,
    /// Bytes granted to each backlogged tenant per round.
    quantum: u32,
    /// Aggregate device-rate limit: bytes per second the scheduler may
    /// dispatch (a fairness scheduler still paces the device; it just
    /// paces *bytes*, not interference cost).
    bytes_per_sec: f64,
    dispatch_budget: f64,
    prev_time: SimTime,
}

#[derive(Debug)]
struct FairTenant<R> {
    deficit: u32,
    queue: VecDeque<CostedRequest<R>>,
}

impl<R> FairScheduler<R> {
    /// Creates a DRR scheduler with a per-round `quantum` (bytes) and an
    /// aggregate dispatch rate (bytes/sec).
    ///
    /// # Panics
    ///
    /// Panics if `quantum` is zero or the rate is non-positive.
    pub fn new(quantum: u32, bytes_per_sec: f64, now: SimTime) -> Self {
        assert!(quantum > 0, "quantum must be positive");
        assert!(bytes_per_sec > 0.0, "rate must be positive");
        FairScheduler {
            tenants: HashMap::new(),
            order: Vec::new(),
            cursor: 0,
            quantum,
            bytes_per_sec,
            dispatch_budget: 0.0,
            prev_time: now,
        }
    }

    /// Registers a tenant.
    ///
    /// # Errors
    ///
    /// [`QosError::DuplicateTenant`] when already registered.
    pub fn register(&mut self, id: TenantId) -> Result<(), QosError> {
        if self.tenants.contains_key(&id) {
            return Err(QosError::DuplicateTenant(id));
        }
        self.tenants.insert(
            id,
            FairTenant {
                deficit: 0,
                queue: VecDeque::new(),
            },
        );
        self.order.push(id);
        Ok(())
    }

    /// Queues a request.
    ///
    /// # Errors
    ///
    /// [`QosError::UnknownTenant`] when `id` is not registered.
    pub fn enqueue(&mut self, id: TenantId, req: CostedRequest<R>) -> Result<(), QosError> {
        self.tenants
            .get_mut(&id)
            .ok_or(QosError::UnknownTenant(id))?
            .queue
            .push_back(req);
        Ok(())
    }

    /// Total queued requests.
    pub fn queued_requests(&self) -> usize {
        self.tenants.values().map(|t| t.queue.len()).sum()
    }

    /// Runs one DRR round at `now`; returns the dispatched requests in
    /// order. Dispatch volume is bounded by the byte rate accumulated
    /// since the previous round.
    pub fn schedule(&mut self, now: SimTime) -> Vec<(TenantId, CostedRequest<R>)> {
        let elapsed = now.saturating_since(self.prev_time);
        self.prev_time = now;
        self.dispatch_budget += elapsed.as_secs_f64() * self.bytes_per_sec;
        // Cap banked budget at one large round to bound bursts.
        let cap = 4.0 * self.quantum as f64 * self.order.len().max(1) as f64;
        self.dispatch_budget = self.dispatch_budget.min(cap.max(self.quantum as f64 * 4.0));

        let mut out = Vec::new();
        let n = self.order.len();
        if n == 0 {
            return out;
        }
        for k in 0..n {
            let idx = (self.cursor + k) % n;
            let id = self.order[idx];
            let t = self.tenants.get_mut(&id).expect("order tracks map");
            if t.queue.is_empty() {
                t.deficit = 0; // DRR: no credit while idle
                continue;
            }
            t.deficit = t.deficit.saturating_add(self.quantum);
            while let Some(front) = t.queue.front() {
                let bytes = front.len.max(1);
                if bytes > t.deficit || (bytes as f64) > self.dispatch_budget {
                    break;
                }
                t.deficit -= bytes;
                self.dispatch_budget -= bytes as f64;
                let req = t.queue.pop_front().expect("checked non-empty");
                out.push((id, req));
            }
        }
        self.cursor = (self.cursor + 1) % n;
        out
    }
}

/// Convenience: the byte quantum matching 4KB-request workloads.
pub const FOUR_KB_QUANTUM: u32 = 4096;

#[cfg(test)]
mod tests {
    use super::*;
    use reflex_flash::{device_a, CmdId, FlashDevice, IoType, NvmeCommand};
    use reflex_sim::{SimDuration, SimRng};

    fn read_req(i: u64) -> CostedRequest<u64> {
        CostedRequest {
            op: IoType::Read,
            len: 4096,
            payload: i,
        }
    }

    fn write_req(i: u64) -> CostedRequest<u64> {
        CostedRequest {
            op: IoType::Write,
            len: 4096,
            payload: i,
        }
    }

    #[test]
    fn drr_is_fair_in_requests() {
        let mut s: FairScheduler<u64> = FairScheduler::new(FOUR_KB_QUANTUM, 400e6, SimTime::ZERO);
        let a = TenantId(1);
        let b = TenantId(2);
        s.register(a).unwrap();
        s.register(b).unwrap();
        let mut counts = (0u64, 0u64);
        let mut now = SimTime::ZERO;
        for i in 0..500 {
            s.enqueue(a, read_req(i)).unwrap();
            s.enqueue(b, write_req(i)).unwrap();
            now += SimDuration::from_micros(50);
            for (id, _) in s.schedule(now) {
                if id == a {
                    counts.0 += 1;
                } else {
                    counts.1 += 1;
                }
            }
        }
        let (ra, rb) = counts;
        assert!(
            (ra as i64 - rb as i64).abs() <= 2,
            "DRR must be request-fair: {ra} vs {rb}"
        );
    }

    #[test]
    fn registration_errors() {
        let mut s: FairScheduler<u64> = FairScheduler::new(4096, 1e6, SimTime::ZERO);
        s.register(TenantId(1)).unwrap();
        assert!(s.register(TenantId(1)).is_err());
        assert!(s.enqueue(TenantId(2), read_req(0)).is_err());
    }

    #[test]
    fn dispatch_rate_is_capped() {
        // 40MB/s = 10K 4KB requests/s; over 100ms at most ~1000 dispatch
        // (plus the small banked-burst allowance).
        let mut s: FairScheduler<u64> = FairScheduler::new(FOUR_KB_QUANTUM, 40e6, SimTime::ZERO);
        let t1 = TenantId(1);
        s.register(t1).unwrap();
        for i in 0..5_000 {
            s.enqueue(t1, read_req(i)).unwrap();
        }
        let mut dispatched = 0usize;
        let mut now = SimTime::ZERO;
        for _ in 0..1_000 {
            now += SimDuration::from_micros(100);
            dispatched += s.schedule(now).len();
        }
        assert!(
            (900..1_100).contains(&dispatched),
            "rate cap violated: {dispatched} in 100ms at 10K/s"
        );
    }

    /// The paper's §7 argument, quantified: run a reader and a write-heavy
    /// tenant through (a) the DRR fair scheduler and (b) the cost-model
    /// QoS scheduler, against the same device model. DRR grants the writer
    /// its fair *request* share and the reader's p95 collapses; the QoS
    /// scheduler charges writes 10x and keeps the reader's tail intact.
    #[test]
    fn fairness_without_cost_model_destroys_read_tails() {
        use crate::bucket::GlobalBucket;
        use crate::cost::{CostModel, LoadMix};
        use crate::scheduler::{QosScheduler, SchedulerParams};
        use crate::slo::SloSpec;
        use std::sync::Arc;

        let reader = TenantId(1);
        let writer = TenantId(2);
        let run = |use_cost_model: bool| -> f64 {
            let mut dev_profile = device_a();
            dev_profile.sq_depth = 1 << 20;
            let mut dev = FlashDevice::new(dev_profile, SimRng::seed(5));
            dev.precondition();
            let qp = dev.create_queue_pair();
            let mut rng = SimRng::seed(6);

            let mut fair: FairScheduler<u64> =
                FairScheduler::new(FOUR_KB_QUANTUM, 330_000.0 * 4096.0, SimTime::ZERO);
            let bucket = Arc::new(GlobalBucket::new(1));
            let mut qos: QosScheduler<u64> = QosScheduler::new(
                0,
                bucket,
                CostModel::for_device_a(),
                SchedulerParams::default(),
                SimTime::ZERO,
            );
            fair.register(reader).unwrap();
            fair.register(writer).unwrap();
            qos.register_lc(
                reader,
                SloSpec::new(100_000, 100, SimDuration::from_micros(500)),
                4096,
            )
            .unwrap();
            qos.register_be(writer).unwrap();
            // 330K tokens/s capacity; reader reserves 100K; writer gets the
            // 230K leftover (23K writes/s at cost 10).
            qos.set_be_rate(crate::tokens::TokenRate::per_sec(230_000));

            // Reader: paced 100K IOPS. Writer: backlogged writes.
            let mut submit_times: HashMap<u64, SimTime> = HashMap::new();
            let mut read_lat = reflex_sim::Histogram::new();
            let mut now = SimTime::ZERO;
            let end = SimTime::from_millis(300);
            let mut seq = 0u64;
            let mut next_read = SimTime::ZERO;
            while now < end {
                now += SimDuration::from_micros(10);
                while next_read <= now {
                    let i = seq;
                    seq += 1;
                    if use_cost_model {
                        qos.enqueue(reader, read_req(i)).unwrap();
                    } else {
                        fair.enqueue(reader, read_req(i)).unwrap();
                    }
                    submit_times.insert(i, next_read);
                    next_read += SimDuration::from_micros(10);
                }
                // Keep the writer's queue deep.
                for _ in 0..4 {
                    let i = seq;
                    seq += 1;
                    if use_cost_model {
                        qos.enqueue(writer, write_req(i)).unwrap();
                    } else {
                        fair.enqueue(writer, write_req(i)).unwrap();
                    }
                }
                let dispatched: Vec<(TenantId, CostedRequest<u64>)> = if use_cost_model {
                    qos.schedule(now, LoadMix::Mixed).submitted
                } else {
                    fair.schedule(now)
                };
                let pages = dev.profile().capacity_bytes / 4096;
                for (id, req) in dispatched {
                    let addr = rng.below(pages) * 4096;
                    let cmd = match req.op {
                        IoType::Read => NvmeCommand::read(CmdId(req.payload), addr, 4096),
                        IoType::Write => NvmeCommand::write(CmdId(req.payload), addr, 4096),
                    };
                    let done = dev.submit(now, qp, cmd).expect("deep sq");
                    if id == reader {
                        if let Some(&at) = submit_times.get(&req.payload) {
                            read_lat.record(done.saturating_since(at));
                        }
                    }
                }
                let _ = dev.poll_completions(now, qp, usize::MAX);
            }
            read_lat.p95().as_micros_f64()
        };

        let p95_fair = run(false);
        let p95_qos = run(true);
        assert!(
            p95_qos < 800.0,
            "cost-model scheduler should protect the reader: p95 {p95_qos:.0}us"
        );
        assert!(
            p95_fair > 3.0 * p95_qos,
            "request-fair DRR should collapse the reader's tail: fair {p95_fair:.0}us vs qos {p95_qos:.0}us"
        );
    }
}
