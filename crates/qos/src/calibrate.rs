//! Cost-model calibration (paper §3.2.1).
//!
//! The paper calibrates `C(I/O type, r)` per device by measuring tail
//! latency versus throughput for several read/write ratios and curve-fitting
//! a linear model. This module implements the pure fitting math; the control
//! plane (reflex-core) feeds it measured sweeps of the simulated device.

use serde::{Deserialize, Serialize};

use crate::cost::CostModel;
use crate::tokens::Tokens;

/// One measured point of a latency-vs-load curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Offered load in I/O operations per second.
    pub iops: f64,
    /// Measured p95 read latency in microseconds.
    pub p95_read_us: f64,
}

/// The maximum IOPS a ratio sustains at a target tail latency, obtained by
/// linear interpolation along the measured sweep.
///
/// Returns `None` if even the lowest measured load misses the target.
pub fn max_iops_at_latency(sweep: &[SweepPoint], target_us: f64) -> Option<f64> {
    // Measured sweeps are noisy (GC-induced spikes can cross the target
    // transiently), so take the *last* upward crossing: the highest load
    // still under the bound before latency departs for good.
    let mut best: Option<f64> = None;
    for pair in sweep.windows(2) {
        let (a, b) = (pair[0], pair[1]);
        if a.p95_read_us <= target_us {
            best = Some(a.iops);
            if b.p95_read_us > target_us {
                let frac = (target_us - a.p95_read_us) / (b.p95_read_us - a.p95_read_us);
                best = Some(a.iops + frac * (b.iops - a.iops));
            }
        }
    }
    if let Some(last) = sweep.last() {
        if last.p95_read_us <= target_us {
            best = Some(last.iops);
        }
    }
    best
}

/// One per-ratio capacity observation: the max IOPS sustaining the target
/// latency for a given read percentage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RatioCapacity {
    /// Read percentage of the workload (0-100).
    pub read_pct: u8,
    /// Max sustainable IOPS at the calibration target latency.
    pub max_iops: f64,
}

/// Result of the linear cost-model fit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FittedCosts {
    /// Fitted write cost in tokens (reads cost 1 by definition).
    pub write_cost: f64,
    /// Fitted device token capacity at the target latency, tokens/sec.
    pub token_rate: f64,
    /// Fitted read cost when the device load is read-only.
    pub read_only_cost: f64,
    /// Root-mean-square relative error of the fit over the mixed ratios.
    pub rms_rel_error: f64,
}

impl FittedCosts {
    /// Rounds the fit into a usable [`CostModel`] (millitoken resolution).
    pub fn to_cost_model(&self, page_size: u32) -> CostModel {
        CostModel::new(
            page_size,
            Tokens::from_tokens(1),
            Tokens::from_millitokens(((self.read_only_cost * 1000.0).round() as i64).max(1)),
            Tokens::from_millitokens(((self.write_cost * 1000.0).round() as i64).max(1)),
        )
    }
}

/// Error returned when a fit cannot be computed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CalibrationError {
    /// Fewer than two mixed-ratio observations were supplied.
    NotEnoughRatios,
    /// Observations were degenerate (zero/negative capacity).
    DegenerateData,
}

impl std::fmt::Display for CalibrationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CalibrationError::NotEnoughRatios => {
                f.write_str("need at least two mixed read/write ratios to fit the model")
            }
            CalibrationError::DegenerateData => f.write_str("capacity observations degenerate"),
        }
    }
}

impl std::error::Error for CalibrationError {}

/// Fits the linear cost model from per-ratio capacities.
///
/// The model is `IOPS_r × (r·1 + (1−r)·C_w) = T` for mixed ratios
/// (`r < 100%`), solved for `C_w` and `T` by least squares on the linear
/// system `T/IOPS_r = r + (1−r)·C_w`. The read-only observation (if
/// present) then yields `C(read, 100%) = T / IOPS_100`.
///
/// # Errors
///
/// [`CalibrationError::NotEnoughRatios`] without two mixed ratios;
/// [`CalibrationError::DegenerateData`] for non-positive capacities.
pub fn fit_cost_model(observations: &[RatioCapacity]) -> Result<FittedCosts, CalibrationError> {
    let mixed: Vec<&RatioCapacity> = observations.iter().filter(|o| o.read_pct < 100).collect();
    if mixed.len() < 2 {
        return Err(CalibrationError::NotEnoughRatios);
    }
    if observations
        .iter()
        .any(|o| o.max_iops.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater))
    {
        return Err(CalibrationError::DegenerateData);
    }

    // Least squares over pairs: for ratios i, j,
    //   C_w = (IOPS_i·r_i − IOPS_j·r_j) / (IOPS_j·w_j − IOPS_i·w_i)
    // where w = 1 − r. Average estimates over all pairs weighted by the
    // write-fraction contrast (pairs with similar ratios are noisy).
    let mut num = 0.0;
    let mut den = 0.0;
    for i in 0..mixed.len() {
        for j in (i + 1)..mixed.len() {
            let (a, b) = (mixed[i], mixed[j]);
            let ra = a.read_pct as f64 / 100.0;
            let rb = b.read_pct as f64 / 100.0;
            let (wa, wb) = (1.0 - ra, 1.0 - rb);
            let denom = b.max_iops * wb - a.max_iops * wa;
            if denom.abs() < 1e-9 {
                continue;
            }
            let est = (a.max_iops * ra - b.max_iops * rb) / denom;
            let weight = (wa - wb).abs();
            if est.is_finite() && est > 0.0 {
                num += est * weight;
                den += weight;
            }
        }
    }
    if den <= 0.0 {
        return Err(CalibrationError::DegenerateData);
    }
    let write_cost = num / den;

    // Token capacity: average of IOPS_r × cost-per-IO over mixed ratios.
    let mut t_sum = 0.0;
    for o in &mixed {
        let r = o.read_pct as f64 / 100.0;
        t_sum += o.max_iops * (r + (1.0 - r) * write_cost);
    }
    let token_rate = t_sum / mixed.len() as f64;

    // Fit quality.
    let mut sq = 0.0;
    for o in &mixed {
        let r = o.read_pct as f64 / 100.0;
        let predicted = token_rate / (r + (1.0 - r) * write_cost);
        let rel = (predicted - o.max_iops) / o.max_iops;
        sq += rel * rel;
    }
    let rms_rel_error = (sq / mixed.len() as f64).sqrt();

    // Read-only read cost from the r=100% observation (default 1.0).
    let read_only_cost = observations
        .iter()
        .find(|o| o.read_pct == 100)
        .map(|o| (token_rate / o.max_iops).min(1.0))
        .unwrap_or(1.0);

    Ok(FittedCosts {
        write_cost,
        token_rate,
        read_only_cost,
        rms_rel_error,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_recovers_synthetic_model() {
        // Perfect data generated from C_w = 10, T = 650K, RO cost 0.5.
        let obs: Vec<RatioCapacity> = [
            (50u8, 5.5f64),
            (75, 3.25),
            (90, 1.9),
            (95, 1.45),
            (99, 1.09),
        ]
        .iter()
        .map(|&(read_pct, cost)| RatioCapacity {
            read_pct,
            max_iops: 650_000.0 / cost,
        })
        .chain(std::iter::once(RatioCapacity {
            read_pct: 100,
            max_iops: 1_300_000.0,
        }))
        .collect();
        let fit = fit_cost_model(&obs).expect("fit succeeds");
        assert!(
            (fit.write_cost - 10.0).abs() < 0.2,
            "C_w = {}",
            fit.write_cost
        );
        assert!((fit.token_rate - 650_000.0).abs() / 650_000.0 < 0.02);
        assert!((fit.read_only_cost - 0.5).abs() < 0.02);
        assert!(fit.rms_rel_error < 0.01);
    }

    #[test]
    fn fit_tolerates_noise() {
        let noisy = [
            RatioCapacity {
                read_pct: 50,
                max_iops: 650_000.0 / 5.5 * 1.06,
            },
            RatioCapacity {
                read_pct: 75,
                max_iops: 650_000.0 / 3.25 * 0.95,
            },
            RatioCapacity {
                read_pct: 90,
                max_iops: 650_000.0 / 1.9 * 1.03,
            },
            RatioCapacity {
                read_pct: 99,
                max_iops: 650_000.0 / 1.09 * 0.97,
            },
        ];
        let fit = fit_cost_model(&noisy).expect("fit succeeds");
        assert!(
            (7.0..13.0).contains(&fit.write_cost),
            "C_w = {}",
            fit.write_cost
        );
        assert!(fit.rms_rel_error < 0.15);
    }

    #[test]
    fn fit_requires_two_mixed_ratios() {
        let one = [RatioCapacity {
            read_pct: 90,
            max_iops: 100_000.0,
        }];
        assert_eq!(fit_cost_model(&one), Err(CalibrationError::NotEnoughRatios));
        let ro_only = [
            RatioCapacity {
                read_pct: 100,
                max_iops: 1e6,
            },
            RatioCapacity {
                read_pct: 90,
                max_iops: 3e5,
            },
        ];
        assert_eq!(
            fit_cost_model(&ro_only),
            Err(CalibrationError::NotEnoughRatios)
        );
    }

    #[test]
    fn fit_rejects_degenerate() {
        let bad = [
            RatioCapacity {
                read_pct: 50,
                max_iops: 0.0,
            },
            RatioCapacity {
                read_pct: 90,
                max_iops: 1e5,
            },
        ];
        assert_eq!(fit_cost_model(&bad), Err(CalibrationError::DegenerateData));
    }

    #[test]
    fn interpolated_knee() {
        let sweep = [
            SweepPoint {
                iops: 100_000.0,
                p95_read_us: 200.0,
            },
            SweepPoint {
                iops: 200_000.0,
                p95_read_us: 400.0,
            },
            SweepPoint {
                iops: 300_000.0,
                p95_read_us: 1_200.0,
            },
        ];
        let knee = max_iops_at_latency(&sweep, 500.0).expect("crosses 500us");
        assert!((knee - 212_500.0).abs() < 1.0, "knee {knee}");
        // Target below the first point: no capacity.
        assert_eq!(max_iops_at_latency(&sweep, 100.0), None);
        // Target above all points: the last load sustains it.
        let knee = max_iops_at_latency(&sweep, 5_000.0).expect("all under");
        assert_eq!(knee, 300_000.0);
    }

    #[test]
    fn fitted_costs_round_into_cost_model() {
        let fit = FittedCosts {
            write_cost: 9.97,
            token_rate: 650_000.0,
            read_only_cost: 0.5004,
            rms_rel_error: 0.01,
        };
        let m = fit.to_cost_model(4096);
        assert_eq!(m.write_cost(), Tokens::from_millitokens(9_970));
        assert_eq!(
            m.read_cost(crate::cost::LoadMix::ReadOnly),
            Tokens::from_millitokens(500)
        );
    }
}
