//! # reflex-qos — the ReFlex QoS scheduler
//!
//! The paper's core contribution: a request cost model plus a token-based
//! scheduling algorithm (Algorithm 1) that enforces tail-latency and
//! throughput SLOs for latency-critical tenants while letting best-effort
//! tenants consume all remaining Flash bandwidth, fairly, across all
//! dataplane threads.
//!
//! * [`Tokens`], [`TokenRate`], [`TokenGen`] — exact fixed-point token
//!   accounting (1 token = one 4KB mixed-load read).
//! * [`CostModel`] / [`LoadMix`] — `cost = ceil(size/4KB) × C(type, r)`.
//! * [`TenantId`], [`SloSpec`], [`TenantClass`] — tenants and SLOs.
//! * [`GlobalBucket`] — the lock-free shared bucket for spare tokens.
//! * [`LeaseLedger`] / [`TokenPool`] — deterministic per-shard token
//!   leases for split-dataplane sharded runs.
//! * [`QosScheduler`] — Algorithm 1, one instance per dataplane thread.
//! * [`fit_cost_model`] — the §3.2.1 calibration fit.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bucket;
mod calibrate;
mod cost;
mod fair;
mod lease;
#[cfg(feature = "mutation-hooks")]
pub mod mutation;
mod scheduler;
mod slo;
mod tokens;

pub use bucket::GlobalBucket;
pub use calibrate::{
    fit_cost_model, max_iops_at_latency, CalibrationError, FittedCosts, RatioCapacity, SweepPoint,
};
pub use cost::{CostModel, LoadMix};
pub use fair::{FairScheduler, FOUR_KB_QUANTUM};
pub use lease::{LeaseEntry, LeaseLedger, LeaseOp, TokenPool};
pub use scheduler::{
    CostedRequest, QosError, QosScheduler, ScheduleOutcome, SchedulerParams, TenantSchedStats,
};
pub use slo::{SloSpec, TenantClass, TenantId};
pub use tokens::{TokenGen, TokenRate, Tokens};
