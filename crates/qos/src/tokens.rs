//! Token arithmetic.
//!
//! The scheduler accounts I/O cost in *tokens*, where one token is the cost
//! of a 4KB random read under mixed load (paper §3.2.1). Tokens are kept as
//! signed fixed-point **millitokens** so that `C(read, r=100%) = ½` is exact
//! and LC tenants can run a bounded deficit (the paper's `NEG_LIMIT`).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Neg, Sub, SubAssign};

use reflex_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// A signed token amount in fixed-point millitokens.
///
/// # Examples
///
/// ```
/// use reflex_qos::Tokens;
///
/// let one = Tokens::from_tokens(1);
/// let half = Tokens::from_millitokens(500);
/// assert_eq!(one + half, Tokens::from_millitokens(1_500));
/// assert_eq!((one - one - half).as_tokens_f64(), -0.5);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Tokens(i64);

impl Tokens {
    /// Zero tokens.
    pub const ZERO: Tokens = Tokens(0);

    /// Creates an amount from whole tokens.
    pub const fn from_tokens(tokens: i64) -> Self {
        Tokens(tokens * 1_000)
    }

    /// Creates an amount from millitokens.
    pub const fn from_millitokens(mt: i64) -> Self {
        Tokens(mt)
    }

    /// The raw millitoken count.
    pub const fn as_millitokens(self) -> i64 {
        self.0
    }

    /// The amount in fractional tokens.
    pub fn as_tokens_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// `true` when strictly positive.
    pub const fn is_positive(self) -> bool {
        self.0 > 0
    }

    /// Clamps negative amounts to zero.
    pub fn max_zero(self) -> Tokens {
        Tokens(self.0.max(0))
    }

    /// The smaller of two amounts.
    pub fn min(self, other: Tokens) -> Tokens {
        Tokens(self.0.min(other.0))
    }

    /// Multiplies by a non-negative fraction, truncating to millitokens.
    pub fn mul_f64(self, f: f64) -> Tokens {
        debug_assert!(f >= 0.0);
        Tokens((self.0 as f64 * f) as i64)
    }
}

impl Add for Tokens {
    type Output = Tokens;
    fn add(self, rhs: Tokens) -> Tokens {
        Tokens(self.0 + rhs.0)
    }
}
impl AddAssign for Tokens {
    fn add_assign(&mut self, rhs: Tokens) {
        self.0 += rhs.0;
    }
}
impl Sub for Tokens {
    type Output = Tokens;
    fn sub(self, rhs: Tokens) -> Tokens {
        Tokens(self.0 - rhs.0)
    }
}
impl SubAssign for Tokens {
    fn sub_assign(&mut self, rhs: Tokens) {
        self.0 -= rhs.0;
    }
}
impl Neg for Tokens {
    type Output = Tokens;
    fn neg(self) -> Tokens {
        Tokens(-self.0)
    }
}
impl Sum for Tokens {
    fn sum<I: Iterator<Item = Tokens>>(iter: I) -> Tokens {
        Tokens(iter.map(|t| t.0).sum())
    }
}

impl fmt::Display for Tokens {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}tok", self.as_tokens_f64())
    }
}

/// A token generation rate in millitokens per second.
///
/// Generation over an elapsed interval is computed exactly with a
/// nanosecond-granularity remainder carried in [`TokenGen`], so no fraction
/// of a token is ever lost to rounding — scheduling rounds can be as short
/// as 0.5µs (paper §3.2.2) and typically generate well under one token.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct TokenRate(u64);

impl TokenRate {
    /// Zero rate.
    pub const ZERO: TokenRate = TokenRate(0);

    /// Creates a rate of whole tokens per second.
    pub const fn per_sec(tokens: u64) -> Self {
        TokenRate(tokens * 1_000)
    }

    /// Creates a rate of millitokens per second.
    pub const fn millitokens_per_sec(mt: u64) -> Self {
        TokenRate(mt)
    }

    /// The rate in millitokens per second.
    pub const fn as_millitokens_per_sec(self) -> u64 {
        self.0
    }

    /// The rate in fractional tokens per second.
    pub fn as_tokens_per_sec_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Saturating subtraction of two rates.
    pub fn saturating_sub(self, other: TokenRate) -> TokenRate {
        TokenRate(self.0.saturating_sub(other.0))
    }

    /// Sum of two rates.
    pub fn checked_add(self, other: TokenRate) -> Option<TokenRate> {
        self.0.checked_add(other.0).map(TokenRate)
    }

    /// Divides the rate into `n` equal shares (floor).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn share(self, n: u64) -> TokenRate {
        assert!(n > 0, "cannot share among zero tenants");
        TokenRate(self.0 / n)
    }
}

/// Exact token generation at a [`TokenRate`] with a carried remainder.
///
/// # Examples
///
/// ```
/// use reflex_qos::{TokenGen, TokenRate, Tokens};
/// use reflex_sim::SimDuration;
///
/// let mut gen = TokenGen::new();
/// let rate = TokenRate::per_sec(420_000);
/// // 1us at 420K tokens/s = 0.42 tokens = 420 millitokens.
/// let t = gen.generate(rate, SimDuration::from_micros(1));
/// assert_eq!(t, Tokens::from_millitokens(420));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TokenGen {
    /// Remainder in millitoken-nanoseconds (< 1e9).
    carry: u64,
}

impl TokenGen {
    /// Creates a generator with no carried remainder.
    pub fn new() -> Self {
        TokenGen::default()
    }

    /// Generates tokens for `elapsed` at `rate`, carrying the sub-millitoken
    /// remainder into the next call. Over any sequence of calls the total
    /// generated equals `rate × total_elapsed` exactly (within 1 mt).
    pub fn generate(&mut self, rate: TokenRate, elapsed: SimDuration) -> Tokens {
        let numer =
            rate.as_millitokens_per_sec() as u128 * elapsed.as_nanos() as u128 + self.carry as u128;
        let mt = (numer / 1_000_000_000) as i64;
        self.carry = (numer % 1_000_000_000) as u64;
        Tokens::from_millitokens(mt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_arithmetic() {
        let a = Tokens::from_tokens(3);
        let b = Tokens::from_millitokens(500);
        assert_eq!(a + b, Tokens::from_millitokens(3_500));
        assert_eq!(a - b, Tokens::from_millitokens(2_500));
        assert_eq!(-b, Tokens::from_millitokens(-500));
        assert!(a.is_positive());
        assert!(!Tokens::ZERO.is_positive());
        assert_eq!((b - a).max_zero(), Tokens::ZERO);
        assert_eq!(a.min(b), b);
        assert_eq!(a.mul_f64(0.9), Tokens::from_millitokens(2_700));
    }

    #[test]
    fn token_sum_and_display() {
        let total: Tokens = [Tokens::from_tokens(1), Tokens::from_millitokens(250)]
            .into_iter()
            .sum();
        assert_eq!(total, Tokens::from_millitokens(1_250));
        assert_eq!(total.to_string(), "1.250tok");
    }

    #[test]
    fn rate_shares_and_subtraction() {
        let r = TokenRate::per_sec(420_000);
        assert_eq!(r.share(4), TokenRate::per_sec(105_000));
        let lc = TokenRate::per_sec(316_000);
        assert_eq!(r.saturating_sub(lc), TokenRate::per_sec(104_000));
        assert_eq!(lc.saturating_sub(r), TokenRate::ZERO);
        assert_eq!(r.checked_add(lc), Some(TokenRate::per_sec(736_000)));
    }

    #[test]
    fn generation_is_exact_over_many_small_rounds() {
        // 1000 rounds of 700ns at 420K tokens/s = 0.7ms * 420K = 294 tokens.
        let mut gen = TokenGen::new();
        let rate = TokenRate::per_sec(420_000);
        let mut total = Tokens::ZERO;
        for _ in 0..1_000 {
            total += gen.generate(rate, SimDuration::from_nanos(700));
        }
        assert_eq!(total, Tokens::from_tokens(294));
    }

    #[test]
    fn generation_handles_fractional_millitokens() {
        // 1 token/s over 1ns rounds: each round generates 0 but the carry
        // accumulates; after 1e6 rounds (1ms) exactly 1 millitoken.
        let mut gen = TokenGen::new();
        let rate = TokenRate::per_sec(1);
        let mut total = Tokens::ZERO;
        for _ in 0..1_000_000 {
            total += gen.generate(rate, SimDuration::from_nanos(1));
        }
        assert_eq!(total, Tokens::from_millitokens(1));
    }

    #[test]
    fn zero_rate_generates_nothing() {
        let mut gen = TokenGen::new();
        assert_eq!(
            gen.generate(TokenRate::ZERO, SimDuration::from_secs(100)),
            Tokens::ZERO
        );
    }

    #[test]
    #[should_panic(expected = "zero tenants")]
    fn share_zero_panics() {
        let _ = TokenRate::per_sec(1).share(0);
    }
}
