//! Per-shard token leases: deterministic cross-shard sharing of the
//! global donation pool.
//!
//! When the server's dataplane threads are distributed across simulation
//! shards, the lock-free [`GlobalBucket`](crate::GlobalBucket) stops being
//! usable: its grant order would depend on OS-thread interleaving, which
//! must never influence simulated results. The [`LeaseLedger`] replaces it
//! with an *event-sourced* bucket:
//!
//! * every `give`/`take`/`mark_round` **stages** a [`LeaseEntry`] stamped
//!   with its simulated time, thread id, and a per-thread sequence number;
//! * grants are decided against the calling thread's **lease** — its carve
//!   of the pool from the last window rebalance — minus its own pending
//!   takes, so a grant is a pure function of local state;
//! * at each lookahead-window boundary every replica applies the merged
//!   (local + remote) entries in canonical `(at, thread, seq)` order and
//!   then re-carves the pool into per-thread leases proportional to the
//!   window's observed unmet demand (`Want` entries), remainder to a
//!   global residue.
//!
//! Each shard owns a replica of the ledger; entries flow between replicas
//! as ordinary lookahead-bounded flights, so every replica applies the
//! same entry sequence at the same boundaries and all replicas agree on
//! every lease at every window — grant order becomes a pure function of
//! simulated time and tenant/thread id. Windows with no staged entries are
//! skipped entirely, which makes the applied state a function of the
//! applied entry *set* (not of how many boundaries were crossed while
//! applying) and keeps adaptive-lookahead barrier skipping sound.
//!
//! Conservation invariant (checked by the crate's proptests): at every
//! applied boundary,
//! `gives == residue + Σ leases + taken + discarded`.

use std::sync::{Arc, Mutex};

use reflex_sim::{SimDuration, SimTime};

use crate::bucket::GlobalBucket;
use crate::tokens::Tokens;

/// The spare-token pool a [`QosScheduler`](crate::QosScheduler) draws
/// from: either the lock-free [`GlobalBucket`] (single-shard and
/// machine-granular sharding — bit-identical to the historical path) or a
/// per-shard [`LeaseLedger`] replica (split-dataplane sharding). The
/// `Mutex` in the leased arm is never contended across OS threads: each
/// shard owns its replica and only that shard's event loop touches it —
/// the lock exists so the scheduler (inside the server) and the shard's
/// event dispatcher can share one handle.
#[derive(Debug, Clone)]
pub enum TokenPool {
    /// Lock-free shared bucket; `now`/`thread` arguments are ignored.
    Shared(Arc<GlobalBucket>),
    /// Event-sourced per-shard ledger replica.
    Leased(Arc<Mutex<LeaseLedger>>),
}

impl TokenPool {
    /// Donates tokens to the pool. See [`GlobalBucket::give`].
    pub fn give(&self, now: SimTime, thread: u32, tokens: Tokens) {
        match self {
            TokenPool::Shared(b) => b.give(tokens),
            TokenPool::Leased(l) => l.lock().unwrap().give(now, thread, tokens),
        }
    }

    /// Claims up to `want` tokens, returning the grant. See
    /// [`GlobalBucket::take`].
    pub fn take(&self, now: SimTime, thread: u32, want: Tokens) -> Tokens {
        match self {
            TokenPool::Shared(b) => b.take(want),
            TokenPool::Leased(l) => l.lock().unwrap().take(now, thread, want),
        }
    }

    /// Marks a completed scheduling round. See [`GlobalBucket::mark_round`].
    pub fn mark_round(&self, now: SimTime, thread: u32) -> bool {
        match self {
            TokenPool::Shared(b) => b.mark_round(thread),
            TokenPool::Leased(l) => l.lock().unwrap().mark_round(now, thread),
        }
    }
}

/// What one staged ledger operation does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeaseOp {
    /// Donation into the pool (millitokens, positive).
    Give(i64),
    /// Tokens granted to the staging thread at stage time (millitokens);
    /// applied by deducting from that thread's lease.
    Take(i64),
    /// Unmet demand (millitokens) — the weight used by the next rebalance.
    Want(i64),
    /// The staging thread completed a scheduling round; when every active
    /// thread has marked since the last reset, the pool is discarded
    /// (the bucket's last-thread-resets rule).
    Mark,
}

/// One staged ledger operation, totally ordered by `(at, thread, seq)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeaseEntry {
    /// Simulated instant the operation was staged.
    pub at: SimTime,
    /// Staging dataplane thread (bit position in the active mask).
    pub thread: u32,
    /// Per-thread monotone sequence number (tie-break within one instant).
    pub seq: u64,
    /// The operation.
    pub op: LeaseOp,
}

/// Deterministically-mergeable replacement for the global token bucket.
/// See the module documentation.
#[derive(Debug, Clone)]
pub struct LeaseLedger {
    window: SimDuration,
    active_mask: u64,
    /// Boundary up to which staged entries have been applied.
    applied_until: SimTime,
    /// Per-thread lease (millitokens) as of the last applied boundary.
    lease: Vec<i64>,
    /// Pool remainder not carved into any lease.
    residue: i64,
    /// Unmet demand observed since the last rebalance (cleared by it).
    wanted: Vec<i64>,
    /// Round marks since the last reset.
    marks: u64,
    /// Working balance each thread grants against: `lease − pending takes`.
    avail: Vec<i64>,
    /// Sum of staged-but-unapplied `Take` amounts per thread.
    pending_take: Vec<i64>,
    /// Merged local + remote entries awaiting application.
    staged: Vec<LeaseEntry>,
    /// Locally staged entries awaiting broadcast to peer replicas.
    outbound: Vec<LeaseEntry>,
    /// Per-thread staging sequence counters.
    seqs: Vec<u64>,
    gives: i64,
    taken: i64,
    discarded: i64,
}

impl LeaseLedger {
    /// Creates a ledger for `threads` dataplane threads re-balanced every
    /// `window` (the sharded engine's lookahead window).
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero or exceeds 64, or `window` is zero.
    pub fn new(threads: u32, window: SimDuration) -> Self {
        assert!(
            (1..=64).contains(&threads),
            "ledger supports 1..=64 threads, got {threads}"
        );
        assert!(!window.is_zero(), "ledger window must be positive");
        let mask = if threads == 64 {
            u64::MAX
        } else {
            (1u64 << threads) - 1
        };
        let n = threads as usize;
        LeaseLedger {
            window,
            active_mask: mask,
            applied_until: SimTime::ZERO,
            lease: vec![0; n],
            residue: 0,
            wanted: vec![0; n],
            marks: 0,
            avail: vec![0; n],
            pending_take: vec![0; n],
            staged: Vec::new(),
            outbound: Vec::new(),
            seqs: vec![0; n],
            gives: 0,
            taken: 0,
            discarded: 0,
        }
    }

    /// The rebalance window.
    pub fn window(&self) -> SimDuration {
        self.window
    }

    /// Updates the active thread set (mirrors
    /// [`GlobalBucket::set_active_threads`](crate::GlobalBucket::set_active_threads)).
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero or exceeds the ledger's thread capacity.
    pub fn set_active_threads(&mut self, count: u32) {
        assert!(
            (1..=self.lease.len() as u32).contains(&count),
            "active count outside ledger capacity"
        );
        self.active_mask = if count == 64 {
            u64::MAX
        } else {
            (1u64 << count) - 1
        };
        self.marks = 0;
    }

    fn stage(&mut self, at: SimTime, thread: u32, op: LeaseOp) {
        debug_assert!(
            at >= self.applied_until,
            "staging at {at} behind applied boundary {}",
            self.applied_until
        );
        let t = thread as usize;
        let entry = LeaseEntry {
            at,
            thread,
            seq: self.seqs[t],
            op,
        };
        self.seqs[t] += 1;
        self.staged.push(entry);
        self.outbound.push(entry);
    }

    /// Donates tokens to the pool at instant `now`. Negative or zero
    /// amounts are ignored. The donation becomes grantable after the next
    /// window boundary's rebalance.
    pub fn give(&mut self, now: SimTime, thread: u32, tokens: Tokens) {
        let mt = tokens.as_millitokens();
        if mt > 0 {
            self.stage(now, thread, LeaseOp::Give(mt));
        }
    }

    /// Claims up to `want` tokens against `thread`'s current lease,
    /// returning what was granted; unmet demand is staged as a `Want` to
    /// skew the next rebalance toward this thread.
    pub fn take(&mut self, now: SimTime, thread: u32, want: Tokens) -> Tokens {
        let want_mt = want.as_millitokens();
        if want_mt <= 0 {
            return Tokens::ZERO;
        }
        let t = thread as usize;
        let grant = want_mt.min(self.avail[t]).max(0);
        if grant > 0 {
            self.avail[t] -= grant;
            self.pending_take[t] += grant;
            self.stage(now, thread, LeaseOp::Take(grant));
        }
        let unmet = want_mt - grant;
        if unmet > 0 {
            self.stage(now, thread, LeaseOp::Want(unmet));
        }
        Tokens::from_millitokens(grant)
    }

    /// Marks that `thread` completed a scheduling round. Unlike the lock-
    /// free bucket, the reset is deferred to the boundary application, so
    /// this never reports the caller as the resetting thread. (Safe: the
    /// dataplane never consumes `reset_bucket`.) Marks from threads outside
    /// the active set are ignored.
    pub fn mark_round(&mut self, now: SimTime, thread: u32) -> bool {
        if (1u64 << thread) & self.active_mask == 0 {
            return false;
        }
        self.stage(now, thread, LeaseOp::Mark);
        false
    }

    /// Accepts entries broadcast by a peer replica.
    pub fn accept(&mut self, entries: &[LeaseEntry]) {
        self.staged.extend_from_slice(entries);
    }

    /// Drains the locally staged entries awaiting broadcast.
    pub fn take_outbound(&mut self) -> Vec<LeaseEntry> {
        std::mem::take(&mut self.outbound)
    }

    /// Applies all staged entries before `now`'s window boundary in
    /// canonical `(at, thread, seq)` order and re-carves leases at each
    /// window boundary that had entries. Driven by the event dispatcher so
    /// every replica applies the same prefix at the same simulated time.
    pub fn observe(&mut self, now: SimTime) {
        let w = self.window.as_nanos();
        let boundary = SimTime::from_nanos(now.as_nanos() / w * w);
        if boundary <= self.applied_until {
            return;
        }
        self.applied_until = boundary;
        if self.staged.iter().all(|e| e.at >= boundary) {
            return;
        }
        self.staged.sort_by_key(|e| (e.at, e.thread, e.seq));
        let cut = self.staged.partition_point(|e| e.at < boundary);
        let rest = self.staged.split_off(cut);
        let todo = std::mem::replace(&mut self.staged, rest);

        let mut current_window = todo[0].at.as_nanos() / w;
        for e in todo {
            let win = e.at.as_nanos() / w;
            if win != current_window {
                self.rebalance();
                current_window = win;
            }
            let t = e.thread as usize;
            match e.op {
                LeaseOp::Give(mt) => {
                    self.gives += mt;
                    self.residue += mt;
                }
                LeaseOp::Take(mt) => {
                    self.lease[t] -= mt;
                    self.pending_take[t] -= mt;
                    self.taken += mt;
                }
                LeaseOp::Want(mt) => {
                    self.wanted[t] += mt;
                }
                LeaseOp::Mark => {
                    let bit = 1u64 << e.thread;
                    if bit & self.active_mask != 0 {
                        self.marks |= bit;
                        if self.marks & self.active_mask == self.active_mask {
                            // Last thread marked: discard the pool, exactly
                            // like the bucket's last-thread reset.
                            let pool = self.residue + self.lease.iter().sum::<i64>();
                            self.discarded += pool;
                            self.residue = 0;
                            self.lease.fill(0);
                            self.marks = 0;
                        }
                    }
                }
            }
        }
        self.rebalance();
    }

    /// Re-carves the pool (`residue + Σ leases`) into per-thread leases
    /// proportional to the window's unmet demand, floor shares with the
    /// remainder kept in the residue; with no demand the whole pool parks
    /// in the residue. Then refreshes every thread's working balance.
    fn rebalance(&mut self) {
        let pool = self.residue + self.lease.iter().sum::<i64>();
        let total_want: i64 = self.wanted.iter().sum();
        if total_want > 0 && pool > 0 {
            let mut allotted = 0i64;
            for t in 0..self.lease.len() {
                let share = ((pool as i128 * self.wanted[t] as i128) / total_want as i128) as i64;
                self.lease[t] = share;
                allotted += share;
            }
            self.residue = pool - allotted;
        } else {
            self.lease.fill(0);
            self.residue = pool;
        }
        self.wanted.fill(0);
        #[cfg(feature = "mutation-hooks")]
        if crate::mutation::lease_skim() {
            // Deliberately wrong: leak one millitoken per rebalance out of
            // the largest lease (or the residue), so the conservation
            // identity `gives == residue + Σ leases + taken + discarded`
            // drifts. Exists only so the swarm's mutation check can prove
            // the lease oracle has teeth.
            if let Some(l) = self
                .lease
                .iter_mut()
                .max_by_key(|l| **l)
                .filter(|l| **l > 0)
            {
                *l -= 1;
            } else if self.residue > 0 {
                self.residue -= 1;
            }
        }
        for t in 0..self.lease.len() {
            self.avail[t] = self.lease[t] - self.pending_take[t];
        }
    }

    /// `thread`'s lease as of the last applied boundary.
    pub fn lease_of(&self, thread: u32) -> Tokens {
        Tokens::from_millitokens(self.lease[thread as usize])
    }

    /// Pool remainder not carved into any lease.
    pub fn residue(&self) -> Tokens {
        Tokens::from_millitokens(self.residue)
    }

    /// Cumulative applied donations (millitokens).
    pub fn gives_cum(&self) -> i64 {
        self.gives
    }

    /// Cumulative applied grants (millitokens).
    pub fn taken_cum(&self) -> i64 {
        self.taken
    }

    /// Cumulative millitokens discarded by round resets.
    pub fn discarded_cum(&self) -> i64 {
        self.discarded
    }

    /// Left-hand side of the conservation identity:
    /// `residue + Σ leases + taken + discarded` (must equal
    /// [`gives_cum`](Self::gives_cum) at every applied boundary).
    pub fn accounted(&self) -> i64 {
        self.residue + self.lease.iter().sum::<i64>() + self.taken + self.discarded
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const W: SimDuration = SimDuration::from_micros(1);

    fn at(us: u64, ns: u64) -> SimTime {
        SimTime::from_nanos(us * 1_000 + ns)
    }

    #[test]
    fn give_then_take_crosses_one_window() {
        let mut l = LeaseLedger::new(2, W);
        l.give(at(0, 100), 0, Tokens::from_tokens(10));
        // Nothing grantable before the boundary applies the give.
        assert_eq!(l.take(at(0, 200), 1, Tokens::from_tokens(4)), Tokens::ZERO);
        l.observe(at(1, 0));
        // The unmet want skewed the carve: thread 1 got the whole pool.
        assert_eq!(l.lease_of(1), Tokens::from_tokens(10));
        assert_eq!(
            l.take(at(1, 50), 1, Tokens::from_tokens(4)),
            Tokens::from_tokens(4)
        );
        assert_eq!(l.gives_cum(), l.accounted());
    }

    #[test]
    fn takes_bounded_by_lease() {
        let mut l = LeaseLedger::new(2, W);
        l.give(at(0, 0), 0, Tokens::from_tokens(3));
        l.take(at(0, 1), 1, Tokens::from_tokens(1)); // wants, gets 0
        l.observe(at(1, 0));
        assert_eq!(
            l.take(at(1, 0), 1, Tokens::from_tokens(10)),
            Tokens::from_tokens(3)
        );
        assert_eq!(l.take(at(1, 1), 1, Tokens::from_tokens(1)), Tokens::ZERO);
        l.observe(at(2, 0));
        assert_eq!(l.gives_cum(), l.accounted());
        assert_eq!(l.taken_cum(), 3_000);
    }

    #[test]
    fn all_marks_discard_pool() {
        let mut l = LeaseLedger::new(2, W);
        l.give(at(0, 0), 0, Tokens::from_tokens(5));
        l.observe(at(1, 0));
        assert!(!l.mark_round(at(1, 10), 0));
        assert!(!l.mark_round(at(1, 20), 1));
        l.observe(at(2, 0));
        assert_eq!(l.residue(), Tokens::ZERO);
        assert_eq!(l.lease_of(0) + l.lease_of(1), Tokens::ZERO);
        assert_eq!(l.discarded_cum(), 5_000);
        assert_eq!(l.gives_cum(), l.accounted());
    }

    #[test]
    fn replicas_merging_each_others_entries_agree() {
        // Thread 0 lives on replica a, thread 1 on replica b; entries are
        // exchanged each window like cross-shard flights.
        let mut a = LeaseLedger::new(2, W);
        let mut b = LeaseLedger::new(2, W);
        a.give(at(0, 10), 0, Tokens::from_tokens(8));
        b.take(at(0, 20), 1, Tokens::from_tokens(2)); // unmet -> Want
        let fa = a.take_outbound();
        let fb = b.take_outbound();
        a.accept(&fb);
        b.accept(&fa);
        a.observe(at(1, 0));
        b.observe(at(1, 0));
        for t in 0..2 {
            assert_eq!(a.lease_of(t), b.lease_of(t));
        }
        assert_eq!(a.residue(), b.residue());
        let got = b.take(at(1, 5), 1, Tokens::from_tokens(6));
        assert_eq!(got, Tokens::from_tokens(6));
        let fb = b.take_outbound();
        a.accept(&fb);
        a.observe(at(2, 0));
        b.observe(at(2, 0));
        assert_eq!(a.accounted(), a.gives_cum());
        assert_eq!(b.accounted(), b.gives_cum());
        assert_eq!(a.taken_cum(), b.taken_cum());
    }

    #[test]
    fn empty_windows_do_not_perturb_state() {
        let mut l = LeaseLedger::new(1, W);
        l.give(at(0, 0), 0, Tokens::from_tokens(2));
        l.take(at(0, 1), 0, Tokens::from_tokens(2)); // stage the demand
        l.observe(at(1, 0));
        let lease_before = l.lease_of(0);
        // Many empty boundaries: applied state must not change.
        l.observe(at(5, 0));
        l.observe(at(9, 500));
        assert_eq!(l.lease_of(0), lease_before);
        assert_eq!(l.gives_cum(), l.accounted());
    }
}
