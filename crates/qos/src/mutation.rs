//! Runtime switches for deliberately-wrong accounting (mutation testing).
//!
//! Compiled in only with the `mutation-hooks` feature and **off by
//! default even then** — a build with the feature but no switch flipped
//! behaves identically to a build without it. The swarm runner
//! (`reflex-swarm --mutate`) flips [`set_lease_skim`] and then asserts
//! that its lease-conservation oracle catches the drift; a CI job that
//! passes with mutation enabled means the oracle is vacuous.

use std::sync::atomic::{AtomicBool, Ordering};

static LEASE_SKIM: AtomicBool = AtomicBool::new(false);

/// Enables (or disables) the lease-skim mutation: every
/// [`LeaseLedger`](crate::LeaseLedger) rebalance silently leaks one
/// millitoken, violating the ledger's conservation identity.
pub fn set_lease_skim(on: bool) {
    LEASE_SKIM.store(on, Ordering::Relaxed);
}

pub(crate) fn lease_skim() -> bool {
    LEASE_SKIM.load(Ordering::Relaxed)
}
