//! Tenants and service-level objectives.

use std::fmt;

use reflex_sim::SimDuration;
use serde::{Deserialize, Serialize};

use crate::cost::CostModel;
use crate::tokens::TokenRate;

/// Globally unique tenant identifier.
///
/// A tenant is the paper's accounting/enforcement abstraction: one tenant
/// may be shared by thousands of connections from many client machines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TenantId(pub u32);

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tenant#{}", self.0)
    }
}

/// A latency-critical tenant's service-level objective: a tail-read-latency
/// limit at a given throughput and read/write ratio (paper §3.2).
///
/// # Examples
///
/// ```
/// use reflex_qos::{CostModel, SloSpec};
/// use reflex_sim::SimDuration;
///
/// // 50K IOPS with 200us p95 read latency at an 80% read ratio.
/// let slo = SloSpec::new(50_000, 80, SimDuration::from_micros(200));
/// let rate = slo.token_rate(&CostModel::for_device_a(), 4096);
/// // 0.8*50K*1 + 0.2*50K*10 = 140K tokens/s.
/// assert_eq!(rate.as_millitokens_per_sec(), 140_000_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SloSpec {
    /// Guaranteed I/O operations per second.
    pub iops: u64,
    /// Percentage of the tenant's requests that are reads (0–100).
    pub read_pct: u8,
    /// 95th-percentile read latency bound.
    pub p95_read_latency: SimDuration,
}

impl SloSpec {
    /// Creates an SLO.
    ///
    /// # Panics
    ///
    /// Panics if `read_pct > 100` or `iops == 0`.
    pub fn new(iops: u64, read_pct: u8, p95_read_latency: SimDuration) -> Self {
        assert!(read_pct <= 100, "read_pct is a percentage");
        assert!(iops > 0, "an SLO must reserve some throughput");
        SloSpec {
            iops,
            read_pct,
            p95_read_latency,
        }
    }

    /// The token rate this SLO reserves under `model` for requests of
    /// `io_size` bytes (paper §3.2.2 reservation formula).
    pub fn token_rate(&self, model: &CostModel, io_size: u32) -> TokenRate {
        TokenRate::millitokens_per_sec(model.reservation_tokens_per_sec(
            self.iops,
            self.read_pct,
            io_size,
        ))
    }
}

/// Tenant service class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TenantClass {
    /// Guaranteed tail latency and throughput.
    LatencyCritical(SloSpec),
    /// Opportunistically uses unallocated/unused bandwidth.
    BestEffort,
}

impl TenantClass {
    /// `true` for latency-critical tenants.
    pub fn is_latency_critical(&self) -> bool {
        matches!(self, TenantClass::LatencyCritical(_))
    }

    /// The SLO, if latency-critical.
    pub fn slo(&self) -> Option<&SloSpec> {
        match self {
            TenantClass::LatencyCritical(slo) => Some(slo),
            TenantClass::BestEffort => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slo_reservation_matches_paper_example() {
        let slo = SloSpec::new(100_000, 80, SimDuration::from_micros(500));
        let rate = slo.token_rate(&CostModel::for_device_a(), 4096);
        assert_eq!(rate.as_millitokens_per_sec(), 280_000_000);
    }

    #[test]
    fn hundred_percent_read_slo() {
        // Figure 5 tenant A: 120K IOPS at 100% read => 120K tokens/s.
        let slo = SloSpec::new(120_000, 100, SimDuration::from_micros(500));
        let rate = slo.token_rate(&CostModel::for_device_a(), 4096);
        assert_eq!(rate.as_millitokens_per_sec(), 120_000_000);
    }

    #[test]
    fn class_accessors() {
        let slo = SloSpec::new(1_000, 50, SimDuration::from_millis(1));
        let lc = TenantClass::LatencyCritical(slo);
        assert!(lc.is_latency_critical());
        assert_eq!(lc.slo(), Some(&slo));
        let be = TenantClass::BestEffort;
        assert!(!be.is_latency_critical());
        assert_eq!(be.slo(), None);
    }

    #[test]
    #[should_panic(expected = "percentage")]
    fn invalid_read_pct_panics() {
        let _ = SloSpec::new(1, 101, SimDuration::ZERO);
    }

    #[test]
    fn tenant_id_display() {
        assert_eq!(TenantId(3).to_string(), "tenant#3");
    }
}
