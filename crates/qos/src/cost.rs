//! The request cost model (paper §3.2.1).
//!
//! ```text
//! I/O cost = ceil(I/O size / 4KB) × C(I/O type, r)
//! ```
//!
//! Costs are expressed in tokens, where one token is the cost of a 4KB
//! random read under mixed load. `C(write, r < 100%)` is 10, 20 and 16
//! tokens for devices A, B and C; when the device-wide load is read-only
//! (`r = 100%`) reads get cheaper (½ token on device A).

use reflex_flash::{DeviceProfile, IoType};
use serde::{Deserialize, Serialize};

use crate::tokens::Tokens;

/// Device-wide read/write mix relevant to the cost model: the only
/// distinction the paper's linear model makes is *read-only* versus
/// *mixed* (`r = 100%` vs `r < 100%`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LoadMix {
    /// All tenants currently issue only reads.
    ReadOnly,
    /// At least one tenant issues writes.
    Mixed,
}

/// A calibrated request cost model for one device.
///
/// # Examples
///
/// ```
/// use reflex_flash::IoType;
/// use reflex_qos::{CostModel, LoadMix, Tokens};
///
/// let m = CostModel::for_device_a();
/// // 4KB mixed-load read: 1 token.
/// assert_eq!(m.cost(IoType::Read, 4096, LoadMix::Mixed), Tokens::from_tokens(1));
/// // 4KB read-only read: 1/2 token.
/// assert_eq!(
///     m.cost(IoType::Read, 4096, LoadMix::ReadOnly),
///     Tokens::from_millitokens(500)
/// );
/// // 32KB write on device A: 8 pages x 10 tokens.
/// assert_eq!(m.cost(IoType::Write, 32 * 1024, LoadMix::Mixed), Tokens::from_tokens(80));
/// // 1KB requests cost a full page (the device operates at 4KB granularity).
/// assert_eq!(m.cost(IoType::Read, 1024, LoadMix::Mixed), Tokens::from_tokens(1));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostModel {
    page_size: u32,
    read_mixed: Tokens,
    read_only: Tokens,
    write: Tokens,
}

impl CostModel {
    /// Builds a cost model from per-page costs.
    ///
    /// # Panics
    ///
    /// Panics if `page_size` is zero or any cost is non-positive.
    pub fn new(page_size: u32, read_mixed: Tokens, read_only: Tokens, write: Tokens) -> Self {
        assert!(page_size > 0, "page size must be non-zero");
        assert!(
            read_mixed.is_positive() && read_only.is_positive() && write.is_positive(),
            "costs must be positive"
        );
        CostModel {
            page_size,
            read_mixed,
            read_only,
            write,
        }
    }

    /// The paper's device A model: `C(write) = 10`, `C(read, 100%) = ½`.
    pub fn for_device_a() -> Self {
        CostModel::new(
            4096,
            Tokens::from_tokens(1),
            Tokens::from_millitokens(500),
            Tokens::from_tokens(10),
        )
    }

    /// The paper's device B model: `C(write) = 20`.
    pub fn for_device_b() -> Self {
        CostModel::new(
            4096,
            Tokens::from_tokens(1),
            Tokens::from_millitokens(800),
            Tokens::from_tokens(20),
        )
    }

    /// The paper's device C model: `C(write) = 16`.
    pub fn for_device_c() -> Self {
        CostModel::new(
            4096,
            Tokens::from_tokens(1),
            Tokens::from_millitokens(700),
            Tokens::from_tokens(16),
        )
    }

    /// Picks the published model matching a device profile's name, falling
    /// back to the mechanistic write cost for custom profiles.
    pub fn for_profile(profile: &DeviceProfile) -> Self {
        match profile.name.as_str() {
            "device-a" => Self::for_device_a(),
            "device-b" => Self::for_device_b(),
            "device-c" => Self::for_device_c(),
            _ => {
                let write_mt = (profile.write_cost_tokens() * 1000.0).round() as i64;
                let ro_mt = (profile.read_only_occupancy_factor * 1000.0).round() as i64;
                CostModel::new(
                    profile.page_size,
                    Tokens::from_tokens(1),
                    Tokens::from_millitokens(ro_mt.max(1)),
                    Tokens::from_millitokens(write_mt.max(1)),
                )
            }
        }
    }

    /// The device page size the model is expressed against.
    pub fn page_size(&self) -> u32 {
        self.page_size
    }

    /// Per-page write cost.
    pub fn write_cost(&self) -> Tokens {
        self.write
    }

    /// Per-page read cost under the given mix.
    pub fn read_cost(&self, mix: LoadMix) -> Tokens {
        match mix {
            LoadMix::ReadOnly => self.read_only,
            LoadMix::Mixed => self.read_mixed,
        }
    }

    /// Cost of a request: `ceil(len / page) × C(op, mix)`. Requests smaller
    /// than a page cost a full page.
    pub fn cost(&self, op: IoType, len: u32, mix: LoadMix) -> Tokens {
        let pages = len.div_ceil(self.page_size).max(1) as i64;
        let per_page = match op {
            IoType::Read => self.read_cost(mix),
            IoType::Write => self.write,
        };
        Tokens::from_millitokens(per_page.as_millitokens() * pages)
    }

    /// Token rate needed to sustain `iops` of requests of `len` bytes with
    /// `read_pct`% reads (the reservation formula from §3.2.2: e.g. 100K
    /// IOPS at 80% reads and `C(write)=10` ⇒ 280K tokens/s).
    ///
    /// # Panics
    ///
    /// Panics if `read_pct > 100`.
    pub fn reservation_tokens_per_sec(&self, iops: u64, read_pct: u8, len: u32) -> u64 {
        assert!(read_pct <= 100, "read_pct is a percentage");
        let pages = len.div_ceil(self.page_size).max(1) as u64;
        let read_mt = self.read_mixed.as_millitokens() as u64;
        let write_mt = self.write.as_millitokens() as u64;
        let reads = iops * read_pct as u64 / 100;
        let writes = iops - reads;
        (reads * read_mt + writes * write_mt) * pages
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_reservation_example() {
        // §3.2.2: 100K IOPS at 80% read, write cost 10 => 280K tokens/s.
        let m = CostModel::for_device_a();
        let mt = m.reservation_tokens_per_sec(100_000, 80, 4096);
        assert_eq!(mt, 280_000_000); // millitokens/s
    }

    #[test]
    fn figure5_tenant_b_reservation() {
        // §5.4: tenant B, 70K IOPS at 80% read => 196K tokens/s.
        let m = CostModel::for_device_a();
        let mt = m.reservation_tokens_per_sec(70_000, 80, 4096);
        assert_eq!(mt, 196_000_000);
    }

    #[test]
    fn cost_scales_with_pages() {
        let m = CostModel::for_device_a();
        let one = m.cost(IoType::Write, 4096, LoadMix::Mixed);
        let eight = m.cost(IoType::Write, 32 * 1024, LoadMix::Mixed);
        assert_eq!(eight.as_millitokens(), 8 * one.as_millitokens());
    }

    #[test]
    fn sub_page_requests_cost_a_full_page() {
        let m = CostModel::for_device_a();
        assert_eq!(
            m.cost(IoType::Read, 512, LoadMix::Mixed),
            m.cost(IoType::Read, 4096, LoadMix::Mixed)
        );
    }

    #[test]
    fn read_only_reads_are_cheaper() {
        for m in [
            CostModel::for_device_a(),
            CostModel::for_device_b(),
            CostModel::for_device_c(),
        ] {
            assert!(m.read_cost(LoadMix::ReadOnly) < m.read_cost(LoadMix::Mixed));
            assert!(m.write_cost() > m.read_cost(LoadMix::Mixed));
        }
    }

    #[test]
    fn device_write_costs_match_paper() {
        assert_eq!(
            CostModel::for_device_a().write_cost(),
            Tokens::from_tokens(10)
        );
        assert_eq!(
            CostModel::for_device_b().write_cost(),
            Tokens::from_tokens(20)
        );
        assert_eq!(
            CostModel::for_device_c().write_cost(),
            Tokens::from_tokens(16)
        );
    }

    #[test]
    fn for_profile_uses_published_models() {
        let m = CostModel::for_profile(&reflex_flash::device_a());
        assert_eq!(m, CostModel::for_device_a());
        let mut custom = reflex_flash::device_b();
        custom.name = "custom".into();
        let m = CostModel::for_profile(&custom);
        // Mechanistic fallback should land near 20 tokens per write.
        let wc = m.write_cost().as_tokens_f64();
        assert!((18.0..22.0).contains(&wc), "fallback write cost {wc}");
    }

    #[test]
    #[should_panic(expected = "costs must be positive")]
    fn zero_cost_rejected() {
        let _ = CostModel::new(4096, Tokens::ZERO, Tokens::ZERO, Tokens::ZERO);
    }
}
