//! The QoS scheduling algorithm (paper §3.2.2, Algorithm 1).
//!
//! Each dataplane thread owns one [`QosScheduler`]. Flash requests are
//! enqueued into per-tenant software queues; on every scheduling round the
//! scheduler generates tokens for latency-critical (LC) tenants from their
//! SLO rates, submits their requests while they remain above the deficit
//! limit (`NEG_LIMIT`), donates surpluses beyond `POS_LIMIT` to the shared
//! [`GlobalBucket`], and then serves best-effort (BE) tenants in round-robin
//! order from their fair share of unallocated throughput plus whatever the
//! bucket holds. BE tenants may not accumulate tokens while idle (the
//! Deficit-Round-Robin-inspired rule).

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use reflex_flash::IoType;
use reflex_sim::SimTime;
use reflex_telemetry::Telemetry;

use crate::bucket::GlobalBucket;
use crate::cost::{CostModel, LoadMix};
use crate::lease::TokenPool;
use crate::slo::{SloSpec, TenantId};
use crate::tokens::{TokenGen, TokenRate, Tokens};

/// Tuning parameters of Algorithm 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchedulerParams {
    /// Deficit at which an LC tenant is rate-limited and the control plane
    /// notified. The paper sets this to −50 tokens to bound the number of
    /// expensive writes in a burst.
    pub neg_limit: Tokens,
    /// Fraction of an LC tenant's above-`POS_LIMIT` accumulation donated to
    /// the global bucket (paper: 90%).
    pub donate_fraction: f64,
    /// `POS_LIMIT` is the tokens the tenant received over this many recent
    /// scheduling rounds (paper: 3).
    pub pos_history_rounds: usize,
}

impl Default for SchedulerParams {
    fn default() -> Self {
        SchedulerParams {
            neg_limit: Tokens::from_tokens(-50),
            donate_fraction: 0.9,
            pos_history_rounds: 3,
        }
    }
}

/// A Flash request waiting in a tenant's software queue. `R` is the
/// caller's opaque payload (connection, cookie, buffer handle, …).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostedRequest<R> {
    /// Read or write.
    pub op: IoType,
    /// Request length in bytes.
    pub len: u32,
    /// Caller context returned on submission.
    pub payload: R,
}

/// Everything a scheduling round decided.
#[derive(Debug)]
pub struct ScheduleOutcome<R> {
    /// Requests admitted to the device this round, in submission order.
    pub submitted: Vec<(TenantId, CostedRequest<R>)>,
    /// LC tenants that hit `NEG_LIMIT` — the control plane should consider
    /// renegotiating their SLOs (paper line 7).
    pub deficit_notifications: Vec<TenantId>,
    /// `true` if this thread was the last to mark the round and reset the
    /// global bucket.
    pub reset_bucket: bool,
}

/// Per-tenant scheduling statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantSchedStats {
    /// Requests submitted to the device.
    pub submitted: u64,
    /// Total token cost of submitted requests (millitokens).
    pub spent_millitokens: i64,
    /// Times this tenant hit the deficit limit.
    pub deficit_events: u64,
}

#[derive(Debug)]
struct LcState<R> {
    slo: SloSpec,
    rate: TokenRate,
    tokens: Tokens,
    gen: TokenGen,
    recent_gen: VecDeque<Tokens>,
    queue: VecDeque<CostedRequest<R>>,
    stats: TenantSchedStats,
}

#[derive(Debug)]
struct BeState<R> {
    tokens: Tokens,
    gen: TokenGen,
    queue: VecDeque<CostedRequest<R>>,
    /// Incremental demand totals so scheduling rounds stay O(1) per
    /// tenant even with deep queues (overloaded BE tenants accumulate
    /// hundreds of thousands of requests).
    demand_mixed: Tokens,
    demand_ro: Tokens,
    stats: TenantSchedStats,
}

/// Error returned by tenant registration and queueing operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QosError {
    /// The tenant id is already registered on this scheduler.
    DuplicateTenant(TenantId),
    /// The tenant id is not registered on this scheduler.
    UnknownTenant(TenantId),
    /// The client machine is not authorized to connect to the tenant.
    ConnectionDenied(TenantId),
}

impl std::fmt::Display for QosError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QosError::DuplicateTenant(t) => write!(f, "{t} already registered"),
            QosError::UnknownTenant(t) => write!(f, "{t} not registered"),
            QosError::ConnectionDenied(t) => write!(f, "client not authorized for {t}"),
        }
    }
}

impl std::error::Error for QosError {}

/// The per-thread QoS scheduler implementing Algorithm 1.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use reflex_flash::IoType;
/// use reflex_qos::{
///     CostModel, CostedRequest, GlobalBucket, LoadMix, QosScheduler, SchedulerParams,
///     SloSpec, TenantId,
/// };
/// use reflex_sim::{SimDuration, SimTime};
///
/// let bucket = Arc::new(GlobalBucket::new(1));
/// let model = CostModel::for_device_a();
/// let mut sched: QosScheduler<u64> =
///     QosScheduler::new(0, bucket, model, SchedulerParams::default(), SimTime::ZERO);
///
/// let lc = TenantId(1);
/// let slo = SloSpec::new(100_000, 100, SimDuration::from_micros(500));
/// sched.register_lc(lc, slo, 4096).unwrap();
///
/// sched.enqueue(lc, CostedRequest { op: IoType::Read, len: 4096, payload: 7 }).unwrap();
/// let out = sched.schedule(SimTime::from_micros(100), LoadMix::Mixed);
/// assert_eq!(out.submitted.len(), 1);
/// ```
#[derive(Debug)]
pub struct QosScheduler<R> {
    thread_idx: u32,
    pool: TokenPool,
    model: CostModel,
    params: SchedulerParams,
    prev_sched_time: SimTime,
    lc: HashMap<TenantId, LcState<R>>,
    lc_order: Vec<TenantId>,
    be: HashMap<TenantId, BeState<R>>,
    be_order: Vec<TenantId>,
    be_cursor: usize,
    be_rate_per_tenant: TokenRate,
    rounds: u64,
    telemetry: Telemetry,
}

impl<R> QosScheduler<R> {
    /// Creates a scheduler for dataplane thread `thread_idx` sharing
    /// `bucket` with its peers.
    pub fn new(
        thread_idx: u32,
        bucket: Arc<GlobalBucket>,
        model: CostModel,
        params: SchedulerParams,
        now: SimTime,
    ) -> Self {
        QosScheduler {
            thread_idx,
            pool: TokenPool::Shared(bucket),
            model,
            params,
            prev_sched_time: now,
            lc: HashMap::new(),
            lc_order: Vec::new(),
            be: HashMap::new(),
            be_order: Vec::new(),
            be_cursor: 0,
            be_rate_per_tenant: TokenRate::ZERO,
            rounds: 0,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Installs a telemetry handle; scheduling rounds then bump admission
    /// and deficit counters. Recording is purely passive — token flows and
    /// submission order are bit-for-bit unchanged.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Replaces the spare-token pool. The split-dataplane testbed swaps in
    /// a [`TokenPool::Leased`] ledger replica after construction; the
    /// default [`TokenPool::Shared`] arm is bit-identical to the historical
    /// direct-bucket path.
    pub fn set_pool(&mut self, pool: TokenPool) {
        self.pool = pool;
    }

    /// The cost model in force.
    pub fn cost_model(&self) -> &CostModel {
        &self.model
    }

    /// Replaces the cost model (control-plane recalibration) and rebuilds
    /// the incremental demand totals under the new costs.
    pub fn set_cost_model(&mut self, model: CostModel) {
        self.model = model;
        for s in self.be.values_mut() {
            s.demand_mixed = s
                .queue
                .iter()
                .map(|r| self.model.cost(r.op, r.len, LoadMix::Mixed))
                .sum();
            s.demand_ro = s
                .queue
                .iter()
                .map(|r| self.model.cost(r.op, r.len, LoadMix::ReadOnly))
                .sum();
        }
    }

    /// Registers a latency-critical tenant with its SLO; `io_size` is the
    /// request size its reservation is computed against.
    ///
    /// # Errors
    ///
    /// [`QosError::DuplicateTenant`] if the id is already registered.
    pub fn register_lc(
        &mut self,
        id: TenantId,
        slo: SloSpec,
        io_size: u32,
    ) -> Result<(), QosError> {
        if self.lc.contains_key(&id) || self.be.contains_key(&id) {
            return Err(QosError::DuplicateTenant(id));
        }
        let rate = slo.token_rate(&self.model, io_size);
        self.lc.insert(
            id,
            LcState {
                slo,
                rate,
                tokens: Tokens::ZERO,
                gen: TokenGen::new(),
                recent_gen: VecDeque::with_capacity(self.params.pos_history_rounds),
                queue: VecDeque::new(),
                stats: TenantSchedStats::default(),
            },
        );
        self.lc_order.push(id);
        Ok(())
    }

    /// Registers a best-effort tenant.
    ///
    /// # Errors
    ///
    /// [`QosError::DuplicateTenant`] if the id is already registered.
    pub fn register_be(&mut self, id: TenantId) -> Result<(), QosError> {
        if self.lc.contains_key(&id) || self.be.contains_key(&id) {
            return Err(QosError::DuplicateTenant(id));
        }
        self.be.insert(
            id,
            BeState {
                tokens: Tokens::ZERO,
                gen: TokenGen::new(),
                queue: VecDeque::new(),
                demand_mixed: Tokens::ZERO,
                demand_ro: Tokens::ZERO,
                stats: TenantSchedStats::default(),
            },
        );
        self.be_order.push(id);
        Ok(())
    }

    /// Unregisters a tenant, returning any requests still queued.
    ///
    /// # Errors
    ///
    /// [`QosError::UnknownTenant`] if the id is not registered.
    pub fn unregister(&mut self, id: TenantId) -> Result<Vec<CostedRequest<R>>, QosError> {
        if let Some(state) = self.lc.remove(&id) {
            self.lc_order.retain(|t| *t != id);
            return Ok(state.queue.into());
        }
        if let Some(state) = self.be.remove(&id) {
            self.be_order.retain(|t| *t != id);
            if self.be_cursor >= self.be_order.len() {
                self.be_cursor = 0;
            }
            return Ok(state.queue.into());
        }
        Err(QosError::UnknownTenant(id))
    }

    /// Sets each BE tenant's fair share of unallocated device throughput
    /// (computed by the control plane: device rate at the strictest SLO
    /// minus the sum of LC reservations, divided by the number of BE
    /// tenants system-wide).
    pub fn set_be_rate(&mut self, rate: TokenRate) {
        self.be_rate_per_tenant = rate;
    }

    /// The token rate reserved by LC tenant `id`, if registered here.
    pub fn lc_rate(&self, id: TenantId) -> Option<TokenRate> {
        self.lc.get(&id).map(|s| s.rate)
    }

    /// The SLO of LC tenant `id`, if registered here.
    pub fn lc_slo(&self, id: TenantId) -> Option<SloSpec> {
        self.lc.get(&id).map(|s| s.slo)
    }

    /// Replaces an LC tenant's SLO (renegotiation after repeated deficit
    /// notifications, paper §4.3). The token balance and queue carry over.
    ///
    /// # Errors
    ///
    /// [`QosError::UnknownTenant`] when `id` is not a registered LC tenant.
    pub fn renegotiate_lc(
        &mut self,
        id: TenantId,
        slo: SloSpec,
        io_size: u32,
    ) -> Result<(), QosError> {
        let s = self.lc.get_mut(&id).ok_or(QosError::UnknownTenant(id))?;
        s.slo = slo;
        s.rate = slo.token_rate(&self.model, io_size);
        Ok(())
    }

    /// Sum of LC reservations on this thread.
    pub fn lc_reserved_rate(&self) -> TokenRate {
        let mt = self
            .lc
            .values()
            .map(|s| s.rate.as_millitokens_per_sec())
            .sum();
        TokenRate::millitokens_per_sec(mt)
    }

    /// Numbers of (LC, BE) tenants registered on this thread.
    pub fn tenant_counts(&self) -> (usize, usize) {
        (self.lc.len(), self.be.len())
    }

    /// Queues a request for `id`.
    ///
    /// # Errors
    ///
    /// [`QosError::UnknownTenant`] if the id is not registered.
    pub fn enqueue(&mut self, id: TenantId, req: CostedRequest<R>) -> Result<(), QosError> {
        if let Some(s) = self.lc.get_mut(&id) {
            s.queue.push_back(req);
            return Ok(());
        }
        if let Some(s) = self.be.get_mut(&id) {
            s.demand_mixed += self.model.cost(req.op, req.len, LoadMix::Mixed);
            s.demand_ro += self.model.cost(req.op, req.len, LoadMix::ReadOnly);
            s.queue.push_back(req);
            return Ok(());
        }
        Err(QosError::UnknownTenant(id))
    }

    /// Total requests queued across all tenants.
    pub fn queued_requests(&self) -> usize {
        self.lc.values().map(|s| s.queue.len()).sum::<usize>()
            + self.be.values().map(|s| s.queue.len()).sum::<usize>()
    }

    /// Requests queued for one tenant.
    pub fn queued_for(&self, id: TenantId) -> usize {
        self.lc
            .get(&id)
            .map(|s| s.queue.len())
            .or_else(|| self.be.get(&id).map(|s| s.queue.len()))
            .unwrap_or(0)
    }

    /// Scheduling statistics for one tenant.
    pub fn stats_for(&self, id: TenantId) -> Option<TenantSchedStats> {
        self.lc
            .get(&id)
            .map(|s| s.stats)
            .or_else(|| self.be.get(&id).map(|s| s.stats))
    }

    /// Current token balance of a tenant.
    pub fn tokens_of(&self, id: TenantId) -> Option<Tokens> {
        self.lc
            .get(&id)
            .map(|s| s.tokens)
            .or_else(|| self.be.get(&id).map(|s| s.tokens))
    }

    /// Rounds executed so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Runs one scheduling round (Algorithm 1) at instant `now` under the
    /// device-wide load mix `mix`. Returns the admitted requests in order.
    pub fn schedule(&mut self, now: SimTime, mix: LoadMix) -> ScheduleOutcome<R> {
        let mut out = ScheduleOutcome {
            submitted: Vec::new(),
            deficit_notifications: Vec::new(),
            reset_bucket: false,
        };
        self.schedule_into(now, mix, &mut out);
        out
    }

    /// [`QosScheduler::schedule`] into a caller-owned outcome: `out`'s
    /// vectors are cleared and refilled, so a thread loop reusing one
    /// scratch [`ScheduleOutcome`] runs rounds without allocating in
    /// steady state.
    pub fn schedule_into(&mut self, now: SimTime, mix: LoadMix, out: &mut ScheduleOutcome<R>) {
        let elapsed = now.saturating_since(self.prev_sched_time);
        self.prev_sched_time = now;
        self.rounds += 1;

        out.submitted.clear();
        out.deficit_notifications.clear();
        out.reset_bucket = false;

        // --- Latency-critical tenants (Algorithm 1 lines 4-12) ---
        for &id in &self.lc_order {
            let s = self.lc.get_mut(&id).expect("lc_order tracks lc map");
            let generated = s.gen.generate(s.rate, elapsed);
            s.tokens += generated;
            if s.recent_gen.len() == self.params.pos_history_rounds {
                s.recent_gen.pop_front();
            }
            s.recent_gen.push_back(generated);

            if s.tokens < self.params.neg_limit {
                s.stats.deficit_events += 1;
                out.deficit_notifications.push(id);
            }

            while !s.queue.is_empty() && s.tokens > self.params.neg_limit {
                let req = s.queue.pop_front().expect("checked non-empty");
                let cost = self.model.cost(req.op, req.len, mix);
                s.tokens -= cost;
                s.stats.submitted += 1;
                s.stats.spent_millitokens += cost.as_millitokens();
                out.submitted.push((id, req));
            }

            let pos_limit: Tokens = s.recent_gen.iter().copied().sum();
            if s.tokens > pos_limit {
                let donation = s.tokens.mul_f64(self.params.donate_fraction);
                self.pool.give(now, self.thread_idx, donation);
                s.tokens -= donation;
            }
        }

        let lc_admitted = out.submitted.len();

        // --- Best-effort tenants, round-robin (lines 13-21) ---
        let n_be = self.be_order.len();
        for k in 0..n_be {
            let idx = (self.be_cursor + k) % n_be;
            let id = self.be_order[idx];
            let s = self.be.get_mut(&id).expect("be_order tracks be map");
            s.tokens += s.gen.generate(self.be_rate_per_tenant, elapsed);

            let demand = match mix {
                LoadMix::Mixed => s.demand_mixed,
                LoadMix::ReadOnly => s.demand_ro,
            };
            let deficit = demand - s.tokens;
            if deficit.is_positive() {
                s.tokens += self.pool.take(now, self.thread_idx, deficit);
            }

            // Conditional submission: only while the tenant can pay in full.
            while let Some(front) = s.queue.front() {
                let cost = self.model.cost(front.op, front.len, mix);
                if s.tokens < cost {
                    break;
                }
                let req = s.queue.pop_front().expect("checked non-empty");
                s.demand_mixed -= self.model.cost(req.op, req.len, LoadMix::Mixed);
                s.demand_ro -= self.model.cost(req.op, req.len, LoadMix::ReadOnly);
                s.tokens -= cost;
                s.stats.submitted += 1;
                s.stats.spent_millitokens += cost.as_millitokens();
                out.submitted.push((id, req));
            }

            // DRR rule: no token accumulation while idle.
            if s.tokens.is_positive() && s.queue.is_empty() {
                self.pool.give(now, self.thread_idx, s.tokens);
                s.tokens = Tokens::ZERO;
            }
        }
        if n_be > 0 {
            self.be_cursor = (self.be_cursor + 1) % n_be;
        }

        out.reset_bucket = self.pool.mark_round(now, self.thread_idx);

        if self.telemetry.is_enabled() {
            self.telemetry.count("qos.rounds", 1);
            if lc_admitted > 0 {
                self.telemetry.count("qos.lc_admitted", lc_admitted as u64);
            }
            let be_admitted = out.submitted.len() - lc_admitted;
            if be_admitted > 0 {
                self.telemetry.count("qos.be_admitted", be_admitted as u64);
            }
            if !out.deficit_notifications.is_empty() {
                self.telemetry
                    .count("qos.deficit_events", out.deficit_notifications.len() as u64);
            }
        }
    }
}

impl<R> Default for ScheduleOutcome<R> {
    fn default() -> Self {
        ScheduleOutcome {
            submitted: Vec::new(),
            deficit_notifications: Vec::new(),
            reset_bucket: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reflex_sim::SimDuration;

    fn sched(threads: u32) -> (QosScheduler<u32>, Arc<GlobalBucket>) {
        let bucket = Arc::new(GlobalBucket::new(threads));
        let s = QosScheduler::new(
            0,
            Arc::clone(&bucket),
            CostModel::for_device_a(),
            SchedulerParams::default(),
            SimTime::ZERO,
        );
        (s, bucket)
    }

    fn read_req(payload: u32) -> CostedRequest<u32> {
        CostedRequest {
            op: IoType::Read,
            len: 4096,
            payload,
        }
    }

    fn write_req(payload: u32) -> CostedRequest<u32> {
        CostedRequest {
            op: IoType::Write,
            len: 4096,
            payload,
        }
    }

    #[test]
    fn lc_tenant_receives_its_reservation() {
        let (mut s, _b) = sched(1);
        let id = TenantId(1);
        // 100K IOPS, 100% read -> 100K tokens/s = 1 token / 10us.
        s.register_lc(
            id,
            SloSpec::new(100_000, 100, SimDuration::from_micros(500)),
            4096,
        )
        .unwrap();
        let mut submitted = 0;
        let mut t = SimTime::ZERO;
        for i in 0..1_000 {
            s.enqueue(id, read_req(i)).unwrap();
            t += SimDuration::from_micros(10);
            submitted += s.schedule(t, LoadMix::Mixed).submitted.len();
        }
        // 10ms at 100K IOPS = 1000 requests; all should be admitted.
        assert!(submitted >= 950, "only {submitted}/1000 admitted");
    }

    #[test]
    fn lc_burst_rate_limited_at_neg_limit() {
        let (mut s, _b) = sched(1);
        let id = TenantId(1);
        // Tiny reservation: 1K IOPS at 100% read = 1 token/ms.
        s.register_lc(
            id,
            SloSpec::new(1_000, 100, SimDuration::from_millis(2)),
            4096,
        )
        .unwrap();
        // Enqueue a huge burst; with ~0 tokens, the tenant may run to a
        // deficit of 50 tokens but no further.
        for i in 0..500 {
            s.enqueue(id, read_req(i)).unwrap();
        }
        let out = s.schedule(SimTime::from_micros(1), LoadMix::Mixed);
        assert!(
            (50..=52).contains(&out.submitted.len()),
            "burst admitted {} requests; NEG_LIMIT should cap near 50",
            out.submitted.len()
        );
        // The tenant is now in deficit; the next round must notify.
        let out = s.schedule(SimTime::from_micros(2), LoadMix::Mixed);
        assert_eq!(out.submitted.len(), 0);
        assert_eq!(out.deficit_notifications, vec![id]);
    }

    #[test]
    fn lc_deficit_recovers_with_time() {
        let (mut s, _b) = sched(1);
        let id = TenantId(1);
        // 100K tokens/s => recovers 50 tokens in 0.5ms.
        s.register_lc(
            id,
            SloSpec::new(100_000, 100, SimDuration::from_micros(500)),
            4096,
        )
        .unwrap();
        for i in 0..200 {
            s.enqueue(id, read_req(i)).unwrap();
        }
        let first = s
            .schedule(SimTime::from_nanos(1), LoadMix::Mixed)
            .submitted
            .len();
        assert!(first < 60);
        // After 1ms the tenant earned 100 more tokens.
        let second = s
            .schedule(SimTime::from_millis(1), LoadMix::Mixed)
            .submitted
            .len();
        assert!((95..=105).contains(&second), "recovered {second}");
    }

    #[test]
    fn writes_cost_ten_reads_on_device_a() {
        let (mut s, _b) = sched(1);
        let id = TenantId(1);
        // 80% read SLO at 10K IOPS -> 0.8*10K*1 + 0.2*10K*10 = 28K tokens/s.
        s.register_lc(
            id,
            SloSpec::new(10_000, 80, SimDuration::from_millis(1)),
            4096,
        )
        .unwrap();
        assert_eq!(s.lc_rate(id).unwrap().as_millitokens_per_sec(), 28_000_000);
        // In 1ms the tenant earns 28 tokens: 2 writes (20) + 8 reads fit
        // exactly; the burst allowance (NEG_LIMIT) admits ~50 more tokens.
        for i in 0..2 {
            s.enqueue(id, write_req(i)).unwrap();
        }
        for i in 0..8 {
            s.enqueue(id, read_req(100 + i)).unwrap();
        }
        let out = s.schedule(SimTime::from_millis(1), LoadMix::Mixed);
        assert_eq!(out.submitted.len(), 10);
        let balance = s.tokens_of(id).unwrap();
        assert_eq!(balance, Tokens::ZERO);
    }

    #[test]
    fn lc_surplus_donated_to_bucket() {
        let (mut s, b) = sched(1);
        let id = TenantId(1);
        s.register_lc(
            id,
            SloSpec::new(100_000, 100, SimDuration::from_micros(500)),
            4096,
        )
        .unwrap();
        // Idle tenant earns 100 tokens over 1ms in one round; POS_LIMIT is
        // the last 3 rounds' generation (= 100 here), so nothing donated yet.
        s.schedule(SimTime::from_millis(1), LoadMix::Mixed);
        assert_eq!(b.balance(), Tokens::ZERO);
        // Keep idling with small rounds: once the balance exceeds the
        // last-3-rounds income (POS_LIMIT), 90% of it flows to the bucket.
        let peak = s.tokens_of(id).unwrap();
        let mut t = SimTime::from_millis(1);
        for _ in 0..5 {
            t += SimDuration::from_micros(30);
            s.schedule(t, LoadMix::Mixed);
        }
        let after = s.tokens_of(id).unwrap();
        assert!(
            after < peak.mul_f64(0.2),
            "surplus should be donated: peak={peak} after={after}"
        );
    }

    #[test]
    fn be_tenant_uses_fair_share_and_bucket() {
        let (mut s, b) = sched(2); // two threads: bucket won't reset here
        let id = TenantId(7);
        s.register_be(id).unwrap();
        s.set_be_rate(TokenRate::per_sec(10_000)); // 10 tokens/ms
        for i in 0..100 {
            s.enqueue(id, read_req(i)).unwrap();
        }
        // 1ms of fair share = 10 tokens -> 10 reads.
        let out = s.schedule(SimTime::from_millis(1), LoadMix::Mixed);
        assert_eq!(out.submitted.len(), 10);
        // Donate 30 tokens into the bucket; BE should claim them next round.
        b.give(Tokens::from_tokens(30));
        let out = s.schedule(SimTime::from_millis(2), LoadMix::Mixed);
        assert_eq!(out.submitted.len(), 40); // 10 fair share + 30 bucket
        assert_eq!(b.balance(), Tokens::ZERO);
    }

    #[test]
    fn be_cannot_accumulate_while_idle() {
        let (mut s, _b) = sched(2);
        // (peer thread emulated below via mark_round)
        let id = TenantId(7);
        s.register_be(id).unwrap();
        s.set_be_rate(TokenRate::per_sec(100_000));
        // Idle for 10ms: would be 1000 tokens if accumulation were allowed.
        // Emulate the peer thread also completing rounds so the shared
        // bucket resets periodically (its normal operating mode).
        let mut t = SimTime::ZERO;
        for _ in 0..10 {
            t += SimDuration::from_millis(1);
            s.schedule(t, LoadMix::Mixed);
            _b.mark_round(1);
        }
        assert_eq!(s.tokens_of(id).unwrap(), Tokens::ZERO);
        // A burst after idling gets only one round's generation...
        for i in 0..1_000 {
            s.enqueue(id, read_req(i)).unwrap();
        }
        t += SimDuration::from_millis(1);
        let out = s.schedule(t, LoadMix::Mixed);
        assert!(
            out.submitted.len() <= 110,
            "idle BE burst admitted {} requests",
            out.submitted.len()
        );
    }

    #[test]
    fn be_conditional_submission_blocks_unaffordable_writes() {
        let (mut s, _b) = sched(2);
        let id = TenantId(7);
        s.register_be(id).unwrap();
        s.set_be_rate(TokenRate::per_sec(5_000)); // 5 tokens/ms
        s.enqueue(id, write_req(0)).unwrap(); // costs 10
        let out = s.schedule(SimTime::from_millis(1), LoadMix::Mixed);
        assert!(
            out.submitted.is_empty(),
            "5 tokens cannot pay a 10-token write"
        );
        // Tokens were retained (demand exists), so next ms it can afford it.
        let out = s.schedule(SimTime::from_millis(2), LoadMix::Mixed);
        assert_eq!(out.submitted.len(), 1);
    }

    #[test]
    fn be_round_robin_rotates_priority() {
        let (mut s, b) = sched(2);
        let a = TenantId(1);
        let c = TenantId(2);
        s.register_be(a).unwrap();
        s.register_be(c).unwrap();
        s.set_be_rate(TokenRate::ZERO); // tenants live off the bucket only
        let mut t = SimTime::ZERO;
        let mut first_of_round = Vec::new();
        for round in 0..4 {
            for i in 0..4 {
                s.enqueue(a, read_req(round * 10 + i)).unwrap();
                s.enqueue(c, read_req(100 + round * 10 + i)).unwrap();
            }
            b.give(Tokens::from_tokens(1)); // only one request affordable
            t += SimDuration::from_micros(10);
            let out = s.schedule(t, LoadMix::Mixed);
            assert_eq!(out.submitted.len(), 1);
            first_of_round.push(out.submitted[0].0);
        }
        // Round-robin start position alternates between the two tenants.
        assert_eq!(first_of_round[0], a);
        assert_eq!(first_of_round[1], c);
        assert_eq!(first_of_round[2], a);
        assert_eq!(first_of_round[3], c);
    }

    #[test]
    fn read_only_mix_halves_read_cost() {
        let (mut s, _b) = sched(1);
        let id = TenantId(1);
        // 10K IOPS 100% read = 10 tokens/ms.
        s.register_lc(
            id,
            SloSpec::new(10_000, 100, SimDuration::from_millis(1)),
            4096,
        )
        .unwrap();
        // Drain the initial burst allowance so counting is exact: consume
        // the NEG_LIMIT credit with a first big round.
        for i in 0..200 {
            s.enqueue(id, read_req(i)).unwrap();
        }
        let first = s
            .schedule(SimTime::from_millis(1), LoadMix::ReadOnly)
            .submitted
            .len();
        // 10 tokens at 0.5/read = 20 reads, plus the 50-token deficit
        // allowance at 0.5/read = 100 more.
        assert!((118..=122).contains(&first), "got {first}");
    }

    #[test]
    fn registration_errors() {
        let (mut s, _b) = sched(1);
        let id = TenantId(1);
        s.register_be(id).unwrap();
        assert_eq!(s.register_be(id), Err(QosError::DuplicateTenant(id)));
        assert_eq!(
            s.register_lc(id, SloSpec::new(1, 100, SimDuration::ZERO), 4096),
            Err(QosError::DuplicateTenant(id))
        );
        assert_eq!(
            s.enqueue(TenantId(9), read_req(0)),
            Err(QosError::UnknownTenant(TenantId(9)))
        );
        assert!(s.unregister(TenantId(9)).is_err());
    }

    #[test]
    fn unregister_returns_queued_requests() {
        let (mut s, _b) = sched(1);
        let id = TenantId(1);
        s.register_be(id).unwrap();
        for i in 0..5 {
            s.enqueue(id, read_req(i)).unwrap();
        }
        let leftovers = s.unregister(id).unwrap();
        assert_eq!(leftovers.len(), 5);
        assert_eq!(s.tenant_counts(), (0, 0));
    }

    #[test]
    fn stats_track_submissions_and_spend() {
        let (mut s, _b) = sched(1);
        let id = TenantId(1);
        s.register_lc(
            id,
            SloSpec::new(100_000, 100, SimDuration::from_micros(500)),
            4096,
        )
        .unwrap();
        s.enqueue(id, read_req(0)).unwrap();
        s.enqueue(id, write_req(1)).unwrap();
        s.schedule(SimTime::from_millis(1), LoadMix::Mixed);
        let st = s.stats_for(id).unwrap();
        assert_eq!(st.submitted, 2);
        assert_eq!(st.spent_millitokens, 11_000); // 1 read + 1 write (10)
    }

    #[test]
    fn token_conservation_across_lc_and_be() {
        // Generated tokens = spent + held + bucket (+donations consumed by
        // BE). With one thread the bucket resets every round, so run rounds and
        // check the inequality: spent <= generated + NEG allowance.
        let (mut s, _b) = sched(2);
        let lc = TenantId(1);
        let be = TenantId(2);
        s.register_lc(
            lc,
            SloSpec::new(50_000, 80, SimDuration::from_micros(500)),
            4096,
        )
        .unwrap();
        s.register_be(be).unwrap();
        s.set_be_rate(TokenRate::per_sec(20_000));
        let mut t = SimTime::ZERO;
        let mut rng = 1u64;
        for i in 0..2_000u32 {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
            t += SimDuration::from_micros(20);
            if !rng.is_multiple_of(3) {
                let req = if rng % 10 < 8 {
                    read_req(i)
                } else {
                    write_req(i)
                };
                s.enqueue(lc, req).unwrap();
            }
            if rng.is_multiple_of(2) {
                s.enqueue(be, read_req(i)).unwrap();
            }
            s.schedule(t, LoadMix::Mixed);
        }
        let elapsed_s = t.as_secs_f64();
        let lc_gen = 130_000.0 * elapsed_s; // 50K*0.8 + 50K*0.2*10 = 130K tok/s
        let be_gen = 20_000.0 * elapsed_s;
        let lc_spent = s.stats_for(lc).unwrap().spent_millitokens as f64 / 1000.0;
        let be_spent = s.stats_for(be).unwrap().spent_millitokens as f64 / 1000.0;
        assert!(
            lc_spent <= lc_gen + 50.0 + 1.0,
            "LC overspent: {lc_spent} > {lc_gen}"
        );
        // BE can also consume LC donations, so its bound includes LC slack.
        assert!(
            be_spent <= be_gen + (lc_gen - lc_spent) + 1.0,
            "BE overspent: {be_spent} vs gen {be_gen} + slack {}",
            lc_gen - lc_spent
        );
    }
}
