//! Named regressions promoted from `properties.proptest-regressions`.
//!
//! See `crates/dataplane/tests/regressions.rs` for why shrunk proptest
//! failures get promoted to named tests instead of living only in the
//! seed file.

use std::sync::Arc;

use reflex_flash::IoType;
use reflex_qos::{
    CostModel, CostedRequest, GlobalBucket, LoadMix, QosScheduler, SchedulerParams, SloSpec,
    TenantId,
};
use reflex_sim::{SimDuration, SimTime};

/// Shrunk by proptest (cc dff5d75c…): sixteen back-to-back enqueues at
/// the smallest admissible SLO (1000 IOPS, 1% reads — an almost
/// all-write reservation), then a single 1µs scheduling round. With
/// near-zero token generation, everything admitted in that round is paid
/// for by the deficit allowance alone; the spend bound must hold at the
/// allowance edge, where an off-by-one-request overshoot first shows.
#[test]
fn burst_at_minimal_slo_stays_within_deficit_allowance() {
    let bucket = Arc::new(GlobalBucket::new(2)); // never resets in-test
    let mut sched: QosScheduler<u64> = QosScheduler::new(
        0,
        bucket,
        CostModel::for_device_a(),
        SchedulerParams::default(),
        SimTime::ZERO,
    );
    let id = TenantId(1);
    let slo = SloSpec::new(1_000, 1, SimDuration::from_millis(1));
    sched.register_lc(id, slo, 4096).expect("fresh tenant");
    let rate = sched
        .lc_rate(id)
        .expect("registered")
        .as_millitokens_per_sec();

    // ops = [(0, 1) x 16, (1, 1)]: sixteen enqueues, one schedule round.
    for seq in 0u64..16 {
        let op = if seq.is_multiple_of(5) {
            IoType::Write
        } else {
            IoType::Read
        };
        sched
            .enqueue(
                id,
                CostedRequest {
                    op,
                    len: 4096,
                    payload: seq,
                },
            )
            .expect("registered");
    }
    let now = SimTime::ZERO + SimDuration::from_micros(1);
    let _ = sched.schedule(now, LoadMix::Mixed);

    let stats = sched.stats_for(id).expect("registered");
    let generated = (rate as i128 * now.as_nanos() as i128) / 1_000_000_000;
    // Algorithm 1 admits while the balance is above NEG_LIMIT and only
    // then subtracts the cost, so the final admitted request may overshoot
    // by up to one request's cost (a 10-token write here).
    let allowance = 50_000i128 + 10_000;
    assert!(
        (stats.spent_millitokens as i128) <= generated + allowance + 1,
        "spent {} > generated {generated} + allowance {allowance}",
        stats.spent_millitokens
    );
    // The case only bites if the allowance was actually dipped into.
    assert!(
        stats.spent_millitokens > 0,
        "regression case admitted nothing — it no longer exercises the allowance edge"
    );
}
