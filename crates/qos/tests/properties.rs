//! Property-based tests of the QoS scheduler's invariants.

use std::sync::Arc;

use proptest::prelude::*;
use reflex_flash::IoType;
use reflex_qos::{
    CostModel, CostedRequest, GlobalBucket, LeaseEntry, LeaseLedger, LoadMix, QosScheduler,
    SchedulerParams, SloSpec, TenantId, TokenGen, TokenRate, Tokens,
};
use reflex_sim::{SimDuration, SimTime};

proptest! {
    /// Token generation is exact: any partition of an interval into rounds
    /// generates the same total as one big round (within 1 millitoken).
    #[test]
    fn token_generation_partition_invariant(
        rate_mt in 1u64..10_000_000_000,
        gaps in prop::collection::vec(1u64..10_000_000, 1..50),
    ) {
        let rate = TokenRate::millitokens_per_sec(rate_mt);
        let mut split = TokenGen::new();
        let mut total_split = Tokens::ZERO;
        let mut total_ns = 0u64;
        for g in &gaps {
            total_split += split.generate(rate, SimDuration::from_nanos(*g));
            total_ns += g;
        }
        let mut whole = TokenGen::new();
        let total_whole = whole.generate(rate, SimDuration::from_nanos(total_ns));
        let diff = (total_split.as_millitokens() - total_whole.as_millitokens()).abs();
        prop_assert!(diff <= 1, "partitioned {total_split} vs whole {total_whole}");
    }

    /// Cost model: cost is monotone in length and writes never cost less
    /// than reads.
    #[test]
    fn cost_monotone(len_a in 1u32..1_000_000, len_b in 1u32..1_000_000) {
        let m = CostModel::for_device_a();
        let (small, large) = if len_a <= len_b { (len_a, len_b) } else { (len_b, len_a) };
        for mix in [LoadMix::Mixed, LoadMix::ReadOnly] {
            prop_assert!(m.cost(IoType::Read, small, mix) <= m.cost(IoType::Read, large, mix));
            prop_assert!(m.cost(IoType::Write, small, mix) <= m.cost(IoType::Write, large, mix));
            prop_assert!(m.cost(IoType::Read, small, mix) <= m.cost(IoType::Write, small, mix));
        }
    }

    /// Reservation formula: splitting an SLO into two tenants with the
    /// same ratio reserves the same total rate.
    #[test]
    fn reservation_additive(iops in 2u64..1_000_000, read_pct in 0u8..=100) {
        // Use an even IOPS split so integer division is exact.
        let iops = iops & !1;
        prop_assume!(iops >= 2);
        let m = CostModel::for_device_a();
        let whole = m.reservation_tokens_per_sec(iops, read_pct, 4096);
        let half = m.reservation_tokens_per_sec(iops / 2, read_pct, 4096);
        // Halving can round the read/write split by at most one IO each.
        let diff = whole as i128 - 2 * half as i128;
        let bound = 2 * m.write_cost().as_millitokens() as i128;
        prop_assert!(diff.abs() <= bound, "whole {whole} vs 2x half {half}");
    }

    /// Scheduler conservation: an LC tenant's spend never exceeds its
    /// generation plus the deficit allowance, for any request/round
    /// interleaving.
    #[test]
    fn lc_spend_bounded_by_generation(
        ops in prop::collection::vec((0u8..2, 1u64..200), 1..120),
        slo_iops in 1_000u64..200_000,
        read_pct in 1u8..=100,
    ) {
        let bucket = Arc::new(GlobalBucket::new(2)); // never resets in-test
        let mut sched: QosScheduler<u64> = QosScheduler::new(
            0,
            bucket,
            CostModel::for_device_a(),
            SchedulerParams::default(),
            SimTime::ZERO,
        );
        let id = TenantId(1);
        let slo = SloSpec::new(slo_iops, read_pct, SimDuration::from_millis(1));
        sched.register_lc(id, slo, 4096).expect("fresh tenant");
        let rate = sched.lc_rate(id).expect("registered").as_millitokens_per_sec();

        let mut now = SimTime::ZERO;
        let mut seq = 0u64;
        for (kind, gap_us) in ops {
            if kind == 0 {
                let op = if seq.is_multiple_of(5) { IoType::Write } else { IoType::Read };
                sched
                    .enqueue(id, CostedRequest { op, len: 4096, payload: seq })
                    .expect("registered");
                seq += 1;
            } else {
                now += SimDuration::from_micros(gap_us);
                let _ = sched.schedule(now, LoadMix::Mixed);
            }
        }
        let stats = sched.stats_for(id).expect("registered");
        let generated = (rate as i128 * now.as_nanos() as i128) / 1_000_000_000;
        // Algorithm 1 admits while the balance is above NEG_LIMIT and only
        // then subtracts the cost, so the final admitted request may
        // overshoot by up to one request's cost (a 10-token write here).
        let allowance = 50_000i128 + 10_000;
        prop_assert!(
            (stats.spent_millitokens as i128) <= generated + allowance + 1,
            "spent {} > generated {generated} + allowance",
            stats.spent_millitokens
        );
    }

    /// Global bucket conservation under arbitrary give/take sequences.
    #[test]
    fn bucket_conserves(ops in prop::collection::vec((0u8..2, 1i64..100_000), 1..200)) {
        let bucket = GlobalBucket::new(2); // no resets
        let mut given = 0i64;
        let mut taken = 0i64;
        for (kind, amount) in ops {
            if kind == 0 {
                bucket.give(Tokens::from_millitokens(amount));
                given += amount;
            } else {
                taken += bucket.take(Tokens::from_millitokens(amount)).as_millitokens();
            }
            prop_assert!(bucket.balance().as_millitokens() >= 0);
        }
        prop_assert_eq!(given - taken, bucket.balance().as_millitokens());
    }

    /// Lease conservation across carve / re-balance / merge: for any
    /// give/take/mark sequence over any replica split, every replica's
    /// per-thread leases and residue equal the monolithic ledger's at
    /// every window boundary (Σ shard leases + residue == monolithic
    /// pool), grants agree at stage time, and the conservation identity
    /// `gives == residue + Σ leases + taken + discarded` holds.
    #[test]
    fn lease_ledger_replicas_match_monolithic(
        windows in prop::collection::vec(
            prop::collection::vec((0u32..4, 0u8..3, 1i64..50_000), 0..12),
            1..20,
        ),
        replicas in 1usize..4,
    ) {
        let threads = 4u32;
        let w = SimDuration::from_micros(1);
        let mut mono = LeaseLedger::new(threads, w);
        let mut reps: Vec<LeaseLedger> =
            (0..replicas).map(|_| LeaseLedger::new(threads, w)).collect();
        for (k, ops) in windows.iter().enumerate() {
            for (i, (thread, kind, amount)) in ops.iter().enumerate() {
                let at = SimTime::from_nanos(k as u64 * 1_000 + i as u64);
                let owner = (*thread as usize) % replicas;
                match kind {
                    0 => {
                        mono.give(at, *thread, Tokens::from_millitokens(*amount));
                        reps[owner].give(at, *thread, Tokens::from_millitokens(*amount));
                    }
                    1 => {
                        let g_mono = mono.take(at, *thread, Tokens::from_millitokens(*amount));
                        let g_rep =
                            reps[owner].take(at, *thread, Tokens::from_millitokens(*amount));
                        prop_assert_eq!(g_mono, g_rep, "grant divergence at window {}", k);
                    }
                    _ => {
                        mono.mark_round(at, *thread);
                        reps[owner].mark_round(at, *thread);
                    }
                }
            }
            // Window boundary: exchange staged entries (the flight
            // broadcast) and apply everywhere at the same instant.
            let boundary = SimTime::from_nanos((k as u64 + 1) * 1_000);
            let outs: Vec<Vec<LeaseEntry>> =
                reps.iter_mut().map(LeaseLedger::take_outbound).collect();
            for (i, rep) in reps.iter_mut().enumerate() {
                for (j, out) in outs.iter().enumerate() {
                    if i != j {
                        rep.accept(out);
                    }
                }
                rep.observe(boundary);
            }
            mono.observe(boundary);
            for rep in &reps {
                for t in 0..threads {
                    prop_assert_eq!(rep.lease_of(t), mono.lease_of(t));
                }
                prop_assert_eq!(rep.residue(), mono.residue());
                prop_assert_eq!(rep.gives_cum(), mono.gives_cum());
                prop_assert_eq!(rep.taken_cum(), mono.taken_cum());
                prop_assert_eq!(rep.discarded_cum(), mono.discarded_cum());
                prop_assert_eq!(rep.accounted(), rep.gives_cum());
            }
        }
    }

    /// BE fairness: two identical BE tenants served from the same rate for
    /// the same demand receive submission counts within one round of each
    /// other, for any number of rounds.
    #[test]
    fn be_fairness(rounds in 1u32..100, per_round in 1u32..5) {
        let bucket = Arc::new(GlobalBucket::new(2));
        let mut sched: QosScheduler<u32> = QosScheduler::new(
            0,
            bucket,
            CostModel::for_device_a(),
            SchedulerParams::default(),
            SimTime::ZERO,
        );
        let a = TenantId(1);
        let b = TenantId(2);
        sched.register_be(a).expect("fresh");
        sched.register_be(b).expect("fresh");
        sched.set_be_rate(TokenRate::per_sec(10_000));
        let mut now = SimTime::ZERO;
        for i in 0..rounds {
            for j in 0..per_round {
                let payload = i * 10 + j;
                sched.enqueue(a, CostedRequest { op: IoType::Read, len: 4096, payload }).unwrap();
                sched.enqueue(b, CostedRequest { op: IoType::Read, len: 4096, payload }).unwrap();
            }
            now += SimDuration::from_micros(100);
            let _ = sched.schedule(now, LoadMix::Mixed);
        }
        let sa = sched.stats_for(a).expect("registered").submitted as i64;
        let sb = sched.stats_for(b).expect("registered").submitted as i64;
        prop_assert!((sa - sb).abs() <= 1, "unfair: {sa} vs {sb}");
    }
}
