//! End-to-end recovery tests: a faulted testbed returns to service.

use reflex_core::{RetryPolicy, Testbed, WorkloadSpec};
use reflex_faults::{install, FaultKind, FaultPlan};
use reflex_qos::{SloSpec, TenantClass, TenantId};
use reflex_sim::{SimDuration, SimTime};

const OFFERED: f64 = 40_000.0;

fn testbed_with_retry(retry: RetryPolicy) -> Testbed<reflex_core::ReflexServer> {
    let mut tb = Testbed::builder().seed(5).server_threads(1).build();
    let slo = SloSpec::new(OFFERED as u64, 100, SimDuration::from_micros(500));
    tb.add_workload(
        WorkloadSpec::open_loop(
            "app",
            TenantId(1),
            TenantClass::LatencyCritical(slo),
            OFFERED,
        )
        .with_retry(retry),
    )
    .expect("workload accepted");
    tb
}

#[test]
fn transient_errors_recovered_with_bounded_p95_inflation() {
    let run = |rate: f64| {
        let mut tb = testbed_with_retry(RetryPolicy::standard());
        let plan = if rate > 0.0 {
            FaultPlan::seeded(11).with_event(
                SimTime::ZERO + SimDuration::from_millis(20),
                FaultKind::TransientDeviceErrors {
                    rate,
                    duration: SimDuration::from_millis(60),
                },
            )
        } else {
            FaultPlan::none()
        };
        let stats = install(&plan, &mut tb);
        tb.run(SimDuration::from_millis(20));
        tb.begin_measurement();
        tb.run(SimDuration::from_millis(60));
        (tb.report(), stats.snapshot())
    };

    let (healthy, _) = run(0.0);
    let (faulted, snap) = run(0.05);
    let h = healthy.workload("app");
    let f = faulted.workload("app");

    assert!(snap.transient_errors > 0, "no faults injected");
    assert!(f.retries > 0 && f.retry_success > 0, "retries must fire");
    assert_eq!(
        f.exhausted, 0,
        "5% error rate must never exhaust 4 attempts"
    );
    // Goodput holds (retries refill the lost completions)...
    assert!(
        f.iops > 0.95 * h.iops,
        "faulted {} vs healthy {}",
        f.iops,
        h.iops
    );
    // ...and the tail inflates by at most the backoff budget, not
    // unboundedly (one retry after 50us backoff ~ doubles the RTT).
    assert!(
        f.p95_read_us() < 5.0 * h.p95_read_us(),
        "p95 inflated {} -> {}",
        h.p95_read_us(),
        f.p95_read_us()
    );
}

#[test]
fn link_flap_tears_down_and_rebinds_connections() {
    let mut tb = testbed_with_retry(RetryPolicy::standard());
    let down_for = SimDuration::from_millis(3);
    let plan = FaultPlan::seeded(13).with_event(
        SimTime::ZERO + SimDuration::from_millis(30),
        FaultKind::LinkFlap {
            client: 0,
            down_for,
        },
    );
    let stats = install(&plan, &mut tb);
    tb.run(SimDuration::from_millis(20));
    tb.begin_measurement();
    tb.run(SimDuration::from_millis(80));
    let report = tb.report();
    let w = report.workload("app");
    let snap = stats.snapshot();

    assert_eq!(snap.link_downs, 1);
    assert!(
        snap.conns_torn_down > 0,
        "server must tear connections down"
    );
    assert_eq!(
        snap.conns_rebound, snap.conns_torn_down,
        "every torn connection must re-register"
    );
    assert!(snap.dropped > 0, "blackout must drop traffic");
    assert_eq!(snap.downtime, down_for);
    // Requests lost in the blackout come back via timeout + retry.
    assert!(w.timeouts > 0 && w.retry_success > 0);
    assert_eq!(w.exhausted, 0, "a 3ms flap is inside the retry budget");
    // Goodput over the window barely notices a 3ms outage in 80ms.
    assert!(w.iops > 0.9 * OFFERED, "iops {}", w.iops);
}

#[test]
fn thread_stall_backs_up_and_drains() {
    let run = |stall_us: u64| {
        let mut tb = testbed_with_retry(RetryPolicy::standard());
        let plan = if stall_us > 0 {
            FaultPlan::seeded(17).with_event(
                SimTime::ZERO + SimDuration::from_millis(30),
                FaultKind::ThreadStall {
                    thread: 0,
                    stall: SimDuration::from_micros(stall_us),
                },
            )
        } else {
            FaultPlan::none()
        };
        let stats = install(&plan, &mut tb);
        tb.run(SimDuration::from_millis(20));
        tb.begin_measurement();
        tb.run(SimDuration::from_millis(60));
        (tb.report(), stats.snapshot())
    };

    let (healthy, _) = run(0);
    let (stalled, snap) = run(2_000);
    let h = healthy.workload("app");
    let s = stalled.workload("app");

    assert_eq!(snap.thread_stalls, 1);
    // The stall shows up in the tail (queued requests wait it out)...
    assert!(
        s.p95_read_us() > h.p95_read_us(),
        "stall must inflate the tail: {} vs {}",
        s.p95_read_us(),
        h.p95_read_us()
    );
    // ...but the backlog drains: goodput over the window holds and
    // nothing is abandoned.
    assert!(s.iops > 0.95 * h.iops, "iops {} vs {}", s.iops, h.iops);
    assert_eq!(s.exhausted, 0);
}

#[test]
fn device_death_exhausts_retries() {
    let mut tb = testbed_with_retry(RetryPolicy::standard());
    let plan = FaultPlan::seeded(19).with_event(
        SimTime::ZERO + SimDuration::from_millis(40),
        FaultKind::DeviceDeath,
    );
    let stats = install(&plan, &mut tb);
    tb.run(SimDuration::from_millis(20));
    tb.begin_measurement();
    tb.run(SimDuration::from_millis(60));
    let report = tb.report();
    let w = report.workload("app");
    let snap = stats.snapshot();

    assert!(snap.dead_aborts > 0, "dead device must abort commands");
    assert!(w.retries > 0, "clients must try to recover");
    assert!(
        w.exhausted > 0,
        "a dead device is unrecoverable; retries must exhaust"
    );
}

#[test]
fn same_plan_same_seed_is_bit_identical() {
    let run = || {
        let mut tb = testbed_with_retry(RetryPolicy::standard());
        let plan = FaultPlan::seeded(23)
            .with_event(
                SimTime::ZERO + SimDuration::from_millis(25),
                FaultKind::TransientDeviceErrors {
                    rate: 0.03,
                    duration: SimDuration::from_millis(30),
                },
            )
            .with_event(
                SimTime::ZERO + SimDuration::from_millis(35),
                FaultKind::PacketLoss {
                    rate: 0.01,
                    duration: SimDuration::from_millis(20),
                },
            );
        let stats = install(&plan, &mut tb);
        tb.run(SimDuration::from_millis(20));
        tb.begin_measurement();
        tb.run(SimDuration::from_millis(50));
        let report = tb.report();
        let w = report.workload("app");
        (
            w.iops.to_bits(),
            w.p95_read_us().to_bits(),
            w.retries,
            w.retry_success,
            w.timeouts,
            stats.snapshot(),
        )
    };
    assert_eq!(run(), run());
}
