//! Hook implementations that execute a [`FaultPlan`](crate::FaultPlan).
//!
//! Each hook holds a list of precomputed fault *windows* plus one private
//! [`SimRng`] stream per probabilistic window. The streams never touch
//! the component RNGs (device media-error draws, NIC jitter draws), so a
//! hook whose windows are all in the past — or a run with no hook at all
//! — produces byte-identical results.

use std::sync::Arc;

use reflex_flash::{DeviceFaultAction, DeviceFaultHook, NvmeCommand};
use reflex_net::{MachineId, NetFaultAction, NetFaultHook};
use reflex_sim::{SimDuration, SimRng, SimTime};

use crate::stats::FaultStats;

#[derive(Debug)]
struct RateWindow {
    start: SimTime,
    end: SimTime,
    rate: f64,
    rng: SimRng,
}

impl RateWindow {
    fn new(start: SimTime, duration: SimDuration, rate: f64, seed: u64) -> Self {
        RateWindow {
            start,
            end: start + duration,
            rate,
            rng: SimRng::seed(seed),
        }
    }

    fn fires(&mut self, now: SimTime) -> bool {
        now >= self.start && now < self.end && self.rng.chance(self.rate)
    }
}

#[derive(Debug, Clone, Copy)]
struct DelayWindow {
    start: SimTime,
    end: SimTime,
    extra: SimDuration,
}

impl DelayWindow {
    fn active(&self, now: SimTime) -> Option<SimDuration> {
        (now >= self.start && now < self.end).then_some(self.extra)
    }
}

/// Executes the device-side schedule of a fault plan: transient error
/// windows, GC storms, and whole-device death.
#[derive(Debug)]
pub struct PlannedDeviceHook {
    transient: Vec<RateWindow>,
    gc: Vec<DelayWindow>,
    death_at: Option<SimTime>,
    stats: Arc<FaultStats>,
}

impl PlannedDeviceHook {
    /// An empty device schedule reporting into `stats`.
    pub fn new(stats: Arc<FaultStats>) -> Self {
        PlannedDeviceHook {
            transient: Vec::new(),
            gc: Vec::new(),
            death_at: None,
            stats,
        }
    }

    /// Adds a transient-error window: commands in `[start, start+duration)`
    /// fail with probability `rate`, drawn from a stream seeded by `seed`.
    pub fn add_transient(&mut self, start: SimTime, duration: SimDuration, rate: f64, seed: u64) {
        self.transient
            .push(RateWindow::new(start, duration, rate, seed));
    }

    /// Adds a GC storm: commands in the window complete `extra` late.
    pub fn add_gc_storm(&mut self, start: SimTime, duration: SimDuration, extra: SimDuration) {
        self.gc.push(DelayWindow {
            start,
            end: start + duration,
            extra,
        });
    }

    /// Kills the device at `at` (earliest death wins if called twice).
    pub fn set_death(&mut self, at: SimTime) {
        self.death_at = Some(self.death_at.map_or(at, |t| t.min(at)));
    }

    /// True if any window or death is scheduled — an unarmed hook need
    /// not be installed at all.
    pub fn is_armed(&self) -> bool {
        !self.transient.is_empty() || !self.gc.is_empty() || self.death_at.is_some()
    }
}

impl DeviceFaultHook for PlannedDeviceHook {
    fn on_command(&mut self, now: SimTime, _cmd: &NvmeCommand) -> DeviceFaultAction {
        if self.death_at.is_some_and(|t| now >= t) {
            FaultStats::bump(&self.stats.dead_aborts);
            return DeviceFaultAction::Dead;
        }
        for w in &mut self.transient {
            if w.fires(now) {
                FaultStats::bump(&self.stats.transient_errors);
                return DeviceFaultAction::TransientError;
            }
        }
        // GC storms stack if windows overlap: each adds its own delay.
        let extra: u64 = self
            .gc
            .iter()
            .filter_map(|w| w.active(now))
            .map(SimDuration::as_nanos)
            .sum();
        if extra > 0 {
            FaultStats::bump(&self.stats.gc_delays);
            return DeviceFaultAction::ExtraLatency(SimDuration::from_nanos(extra));
        }
        DeviceFaultAction::None
    }
}

/// Executes the network-side schedule of a fault plan: packet loss and
/// duplication windows, latency storms, and link-down blackouts.
#[derive(Debug)]
pub struct PlannedNetHook {
    loss: Vec<RateWindow>,
    dup: Vec<RateWindow>,
    storm: Vec<DelayWindow>,
    link_down: Vec<(SimTime, SimTime, MachineId)>,
    stats: Arc<FaultStats>,
}

impl PlannedNetHook {
    /// An empty network schedule reporting into `stats`.
    pub fn new(stats: Arc<FaultStats>) -> Self {
        PlannedNetHook {
            loss: Vec::new(),
            dup: Vec::new(),
            storm: Vec::new(),
            link_down: Vec::new(),
            stats,
        }
    }

    /// Adds a loss window: messages in it are dropped with probability
    /// `rate`, drawn from a stream seeded by `seed`.
    pub fn add_loss(&mut self, start: SimTime, duration: SimDuration, rate: f64, seed: u64) {
        self.loss.push(RateWindow::new(start, duration, rate, seed));
    }

    /// Adds a duplication window: messages in it are duplicated with
    /// probability `rate`.
    pub fn add_dup(&mut self, start: SimTime, duration: SimDuration, rate: f64, seed: u64) {
        self.dup.push(RateWindow::new(start, duration, rate, seed));
    }

    /// Adds a latency storm: messages in the window arrive `extra` late.
    pub fn add_storm(&mut self, start: SimTime, duration: SimDuration, extra: SimDuration) {
        self.storm.push(DelayWindow {
            start,
            end: start + duration,
            extra,
        });
    }

    /// Adds a link blackout: every message to or from `machine` in the
    /// window is dropped.
    pub fn add_link_down(&mut self, start: SimTime, duration: SimDuration, machine: MachineId) {
        self.link_down.push((start, start + duration, machine));
    }

    /// True if any window is scheduled.
    pub fn is_armed(&self) -> bool {
        !self.loss.is_empty()
            || !self.dup.is_empty()
            || !self.storm.is_empty()
            || !self.link_down.is_empty()
    }
}

impl NetFaultHook for PlannedNetHook {
    fn on_send(
        &mut self,
        now: SimTime,
        from: MachineId,
        to: MachineId,
        _size: u32,
    ) -> NetFaultAction {
        for &(start, end, machine) in &self.link_down {
            if now >= start && now < end && (from == machine || to == machine) {
                FaultStats::bump(&self.stats.dropped);
                return NetFaultAction::Drop;
            }
        }
        for w in &mut self.loss {
            if w.fires(now) {
                FaultStats::bump(&self.stats.dropped);
                return NetFaultAction::Drop;
            }
        }
        for w in &mut self.dup {
            if w.fires(now) {
                FaultStats::bump(&self.stats.duplicated);
                return NetFaultAction::Duplicate;
            }
        }
        let extra: u64 = self
            .storm
            .iter()
            .filter_map(|w| w.active(now))
            .map(SimDuration::as_nanos)
            .sum();
        if extra > 0 {
            FaultStats::bump(&self.stats.delayed);
            return NetFaultAction::Delay(SimDuration::from_nanos(extra));
        }
        NetFaultAction::Deliver
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reflex_flash::CmdId;

    fn cmd() -> NvmeCommand {
        NvmeCommand::read(CmdId(1), 0, 4096)
    }

    #[test]
    fn device_hook_death_overrides_everything() {
        let stats = Arc::new(FaultStats::default());
        let mut hook = PlannedDeviceHook::new(Arc::clone(&stats));
        hook.add_transient(SimTime::ZERO, SimDuration::from_secs(10), 1.0, 42);
        hook.set_death(SimTime::ZERO + SimDuration::from_millis(1));
        let before = SimTime::ZERO + SimDuration::from_micros(10);
        let after = SimTime::ZERO + SimDuration::from_millis(2);
        assert_eq!(
            hook.on_command(before, &cmd()),
            DeviceFaultAction::TransientError
        );
        assert_eq!(hook.on_command(after, &cmd()), DeviceFaultAction::Dead);
        let snap = stats.snapshot();
        assert_eq!(snap.transient_errors, 1);
        assert_eq!(snap.dead_aborts, 1);
    }

    #[test]
    fn device_hook_windows_are_inactive_outside_their_span() {
        let stats = Arc::new(FaultStats::default());
        let mut hook = PlannedDeviceHook::new(stats);
        let start = SimTime::ZERO + SimDuration::from_millis(5);
        hook.add_transient(start, SimDuration::from_millis(1), 1.0, 9);
        hook.add_gc_storm(
            start,
            SimDuration::from_millis(1),
            SimDuration::from_micros(200),
        );
        assert_eq!(
            hook.on_command(SimTime::ZERO, &cmd()),
            DeviceFaultAction::None
        );
        assert_eq!(
            hook.on_command(start + SimDuration::from_millis(2), &cmd()),
            DeviceFaultAction::None
        );
    }

    #[test]
    fn net_hook_link_down_blackholes_both_directions() {
        let stats = Arc::new(FaultStats::default());
        let mut hook = PlannedNetHook::new(Arc::clone(&stats));
        let m = MachineId(3);
        hook.add_link_down(SimTime::ZERO, SimDuration::from_millis(1), m);
        let inside = SimTime::ZERO + SimDuration::from_micros(10);
        assert_eq!(
            hook.on_send(inside, m, MachineId(0), 64),
            NetFaultAction::Drop
        );
        assert_eq!(
            hook.on_send(inside, MachineId(0), m, 64),
            NetFaultAction::Drop
        );
        assert_eq!(
            hook.on_send(inside, MachineId(0), MachineId(1), 64),
            NetFaultAction::Deliver
        );
        let after = SimTime::ZERO + SimDuration::from_millis(2);
        assert_eq!(
            hook.on_send(after, m, MachineId(0), 64),
            NetFaultAction::Deliver
        );
        assert_eq!(stats.snapshot().dropped, 2);
    }

    #[test]
    fn rate_windows_are_reproducible_across_hook_instances() {
        let mk = || {
            let stats = Arc::new(FaultStats::default());
            let mut h = PlannedNetHook::new(stats);
            h.add_loss(SimTime::ZERO, SimDuration::from_secs(1), 0.3, 77);
            h
        };
        let (mut a, mut b) = (mk(), mk());
        for i in 0..200u64 {
            let t = SimTime::ZERO + SimDuration::from_micros(i);
            assert_eq!(
                a.on_send(t, MachineId(0), MachineId(1), 64),
                b.on_send(t, MachineId(0), MachineId(1), 64)
            );
        }
    }
}
