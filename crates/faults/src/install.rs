//! Wiring a [`FaultPlan`] into a live [`Testbed`].

use std::sync::Arc;

use reflex_core::{ReflexServer, Testbed, World};

use crate::hooks::{PlannedDeviceHook, PlannedNetHook};
use crate::plan::{FaultKind, FaultPlan};
use crate::stats::FaultStats;

/// Installs `plan` into `tb`: arms the device and fabric fault hooks for
/// the windowed faults and schedules the discrete ones (link flaps,
/// thread stalls) as engine events. Returns the shared counter handle.
///
/// Installing [`FaultPlan::none`] (or any empty plan) arms nothing — the
/// run is byte-identical to one without fault injection.
///
/// # Panics
///
/// Panics if a [`FaultKind::LinkFlap`] names a client index outside
/// `tb.world().client_count()`, or on a [`FaultKind::ServerDeath`] —
/// killing a whole server only makes sense on the multi-server
/// replication testbed (`reflex-replication`), which has its own
/// installer. A [`FaultKind::ThreadStall`] naming an inactive thread
/// panics later, when the event fires.
pub fn install(plan: &FaultPlan, tb: &mut Testbed<ReflexServer>) -> Arc<FaultStats> {
    let stats = Arc::new(FaultStats::default());
    let mut dev = PlannedDeviceHook::new(Arc::clone(&stats));
    let mut net = PlannedNetHook::new(Arc::clone(&stats));
    for ev in &plan.events {
        let seed = plan.stream_seed(ev.id);
        match ev.kind {
            FaultKind::TransientDeviceErrors { rate, duration } => {
                dev.add_transient(ev.at, duration, rate, seed);
            }
            FaultKind::GcStorm { extra, duration } => {
                dev.add_gc_storm(ev.at, duration, extra);
            }
            FaultKind::DeviceDeath => dev.set_death(ev.at),
            FaultKind::PacketLoss { rate, duration } => {
                net.add_loss(ev.at, duration, rate, seed);
            }
            FaultKind::PacketDup { rate, duration } => {
                net.add_dup(ev.at, duration, rate, seed);
            }
            FaultKind::LatencyStorm { extra, duration } => {
                net.add_storm(ev.at, duration, extra);
            }
            FaultKind::LinkFlap { client, down_for } => {
                assert!(
                    client < tb.world().client_count(),
                    "LinkFlap names client {client} but the testbed has {}",
                    tb.world().client_count()
                );
                let machine = tb.world().client_machine(client);
                // Packets already in flight or sent during the outage are
                // black-holed by the fabric hook...
                net.add_link_down(ev.at, down_for, machine);
                stats.add_downtime(down_for);
                // ...and the server tears the client's connections down,
                // re-registering them when the link returns.
                let s = Arc::clone(&stats);
                tb.schedule_at(ev.at, move |w: &mut World<ReflexServer>, _ctx| {
                    FaultStats::bump(&s.link_downs);
                    let torn = w.server_mut().on_link_down(machine) as u64;
                    s.conns_torn_down
                        .fetch_add(torn, std::sync::atomic::Ordering::Relaxed);
                });
                let s = Arc::clone(&stats);
                tb.schedule_at(
                    ev.at + down_for,
                    move |w: &mut World<ReflexServer>, _ctx| {
                        let rebound = w.server_mut().rebind_client(machine) as u64;
                        s.conns_rebound
                            .fetch_add(rebound, std::sync::atomic::Ordering::Relaxed);
                    },
                );
            }
            FaultKind::ThreadStall { thread, stall } => {
                stats.add_downtime(stall);
                let s = Arc::clone(&stats);
                tb.schedule_at(ev.at, move |w: &mut World<ReflexServer>, ctx| {
                    FaultStats::bump(&s.thread_stalls);
                    let now = ctx.now();
                    w.server_mut().thread_mut(thread).inject_stall(now, stall);
                });
            }
            FaultKind::ServerDeath { server } => {
                panic!(
                    "ServerDeath of site {server} needs a multi-server testbed: \
                     install the plan through reflex-replication's ReplTestbed"
                );
            }
        }
    }
    if dev.is_armed() {
        tb.world_mut().device_mut().set_fault_hook(Box::new(dev));
    }
    if net.is_armed() {
        tb.world_mut().fabric_mut().set_fault_hook(Box::new(net));
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use reflex_sim::{SimDuration, SimTime};

    #[test]
    fn empty_plan_installs_nothing() {
        let mut tb = Testbed::builder().server_threads(1).build();
        let stats = install(&FaultPlan::none(), &mut tb);
        assert!(tb.world_mut().device_mut().clear_fault_hook().is_none());
        assert!(tb.world_mut().fabric_mut().clear_fault_hook().is_none());
        assert_eq!(stats.snapshot().injected(), 0);
    }

    #[test]
    fn windowed_faults_arm_the_hooks() {
        let mut tb = Testbed::builder().server_threads(1).build();
        let plan = FaultPlan::seeded(1)
            .with_event(
                SimTime::ZERO + SimDuration::from_millis(1),
                FaultKind::TransientDeviceErrors {
                    rate: 0.5,
                    duration: SimDuration::from_millis(2),
                },
            )
            .with_event(
                SimTime::ZERO + SimDuration::from_millis(1),
                FaultKind::PacketLoss {
                    rate: 0.1,
                    duration: SimDuration::from_millis(2),
                },
            );
        let _stats = install(&plan, &mut tb);
        assert!(tb.world_mut().device_mut().clear_fault_hook().is_some());
        assert!(tb.world_mut().fabric_mut().clear_fault_hook().is_some());
    }

    #[test]
    #[should_panic(expected = "LinkFlap names client")]
    fn link_flap_bounds_checked_at_install() {
        let mut tb = Testbed::builder().server_threads(1).build();
        let plan = FaultPlan::seeded(1).with_event(
            SimTime::ZERO,
            FaultKind::LinkFlap {
                client: 99,
                down_for: SimDuration::from_millis(1),
            },
        );
        let _ = install(&plan, &mut tb);
    }
}
