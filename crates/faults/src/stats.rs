//! Shared fault counters.
//!
//! The injector hooks live inside the device / fabric / engine once
//! installed, so the harness keeps an [`Arc<FaultStats>`] handle and the
//! hooks bump the shared atomics. Reads use relaxed ordering — the
//! simulation is single-threaded per testbed; the atomics only exist so
//! the handle is `Send` across sweep worker threads.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

use reflex_sim::SimDuration;

/// Live counters for every injected fault, shared between the installed
/// hooks and the chaos harness. See [`FaultStats::snapshot`] for a plain
/// copy.
#[derive(Debug, Default)]
pub struct FaultStats {
    /// NVMe commands failed by `TransientDeviceErrors` windows.
    pub transient_errors: AtomicU64,
    /// NVMe commands delayed by `GcStorm` windows.
    pub gc_delays: AtomicU64,
    /// NVMe commands aborted because the device was dead.
    pub dead_aborts: AtomicU64,
    /// Messages dropped (packet loss + link-down windows).
    pub dropped: AtomicU64,
    /// Messages duplicated.
    pub duplicated: AtomicU64,
    /// Messages delayed by latency storms.
    pub delayed: AtomicU64,
    /// Link-flap outages fired.
    pub link_downs: AtomicU64,
    /// Connections the server tore down on link death.
    pub conns_torn_down: AtomicU64,
    /// Connections the server re-registered after links returned.
    pub conns_rebound: AtomicU64,
    /// Dataplane thread stalls fired.
    pub thread_stalls: AtomicU64,
    /// Nanoseconds of scheduled unavailability (link-down windows plus
    /// thread stalls).
    pub downtime_ns: AtomicU64,
}

/// A plain copy of [`FaultStats`] at one instant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// See [`FaultStats::transient_errors`].
    pub transient_errors: u64,
    /// See [`FaultStats::gc_delays`].
    pub gc_delays: u64,
    /// See [`FaultStats::dead_aborts`].
    pub dead_aborts: u64,
    /// See [`FaultStats::dropped`].
    pub dropped: u64,
    /// See [`FaultStats::duplicated`].
    pub duplicated: u64,
    /// See [`FaultStats::delayed`].
    pub delayed: u64,
    /// See [`FaultStats::link_downs`].
    pub link_downs: u64,
    /// See [`FaultStats::conns_torn_down`].
    pub conns_torn_down: u64,
    /// See [`FaultStats::conns_rebound`].
    pub conns_rebound: u64,
    /// See [`FaultStats::thread_stalls`].
    pub thread_stalls: u64,
    /// See [`FaultStats::downtime_ns`].
    pub downtime: SimDuration,
}

impl FaultCounts {
    /// Total individual fault injections (commands failed/delayed/aborted,
    /// messages dropped/duplicated/delayed, stalls) — the "injected" count
    /// reported in the chaos artifacts.
    pub fn injected(&self) -> u64 {
        self.transient_errors
            + self.gc_delays
            + self.dead_aborts
            + self.dropped
            + self.duplicated
            + self.delayed
            + self.thread_stalls
    }
}

impl FaultStats {
    /// Copies the live counters.
    pub fn snapshot(&self) -> FaultCounts {
        FaultCounts {
            transient_errors: self.transient_errors.load(Relaxed),
            gc_delays: self.gc_delays.load(Relaxed),
            dead_aborts: self.dead_aborts.load(Relaxed),
            dropped: self.dropped.load(Relaxed),
            duplicated: self.duplicated.load(Relaxed),
            delayed: self.delayed.load(Relaxed),
            link_downs: self.link_downs.load(Relaxed),
            conns_torn_down: self.conns_torn_down.load(Relaxed),
            conns_rebound: self.conns_rebound.load(Relaxed),
            thread_stalls: self.thread_stalls.load(Relaxed),
            downtime: SimDuration::from_nanos(self.downtime_ns.load(Relaxed)),
        }
    }

    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Relaxed);
    }

    /// Adds planned downtime to the accumulated total (used by fault
    /// installers — this crate's and `reflex-replication`'s).
    pub fn add_downtime(&self, d: SimDuration) {
        self.downtime_ns.fetch_add(d.as_nanos(), Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_injected_total() {
        let stats = FaultStats::default();
        FaultStats::bump(&stats.transient_errors);
        FaultStats::bump(&stats.dropped);
        FaultStats::bump(&stats.dropped);
        FaultStats::bump(&stats.link_downs);
        stats.add_downtime(SimDuration::from_millis(3));
        let snap = stats.snapshot();
        assert_eq!(snap.transient_errors, 1);
        assert_eq!(snap.dropped, 2);
        // link_downs is an outage count, not a per-injection count.
        assert_eq!(snap.injected(), 3);
        assert_eq!(snap.downtime, SimDuration::from_millis(3));
    }
}
