//! # reflex-faults — deterministic fault injection + failure recovery
//!
//! ReFlex's value proposition is that remote Flash behaves like local
//! Flash; this crate stresses the *"behaves"* part. It injects faults
//! into every layer of the reproduction — NVMe device errors, GC storms
//! and device death ([`reflex_flash::DeviceFaultHook`]), packet loss,
//! duplication, latency storms and link blackouts
//! ([`reflex_net::NetFaultHook`]), and dataplane thread stalls — from a
//! declarative, fully deterministic [`FaultPlan`], then measures how the
//! recovery machinery (client retry with exponential backoff, server
//! connection teardown/re-registration, control-plane tenant
//! re-placement) restores service.
//!
//! Determinism is the design center: every probabilistic fault draws
//! from a private RNG stream keyed by `(plan.seed, event.id)`, never
//! from the component RNGs, so a plan replays bit-identically and a run
//! with [`FaultPlan::none`] is byte-identical to a build without fault
//! injection at all.
//!
//! # Example
//!
//! ```
//! use reflex_core::{RetryPolicy, Testbed, WorkloadSpec};
//! use reflex_faults::{install, FaultKind, FaultPlan};
//! use reflex_qos::{SloSpec, TenantClass, TenantId};
//! use reflex_sim::{SimDuration, SimTime};
//!
//! let mut tb = Testbed::builder().server_threads(1).build();
//! let slo = SloSpec::new(20_000, 100, SimDuration::from_micros(500));
//! tb.add_workload(
//!     WorkloadSpec::open_loop("app", TenantId(1), TenantClass::LatencyCritical(slo), 20_000.0)
//!         .with_retry(RetryPolicy::standard()),
//! )?;
//! let plan = FaultPlan::seeded(42).with_event(
//!     SimTime::ZERO + SimDuration::from_millis(10),
//!     FaultKind::TransientDeviceErrors {
//!         rate: 0.05,
//!         duration: SimDuration::from_millis(20),
//!     },
//! );
//! let stats = install(&plan, &mut tb);
//! tb.run(SimDuration::from_millis(50));
//! let report = tb.report();
//! let app = report.workload("app");
//! assert!(stats.snapshot().transient_errors > 0);
//! assert!(app.retry_success > 0); // errors were recovered by retries
//! # Ok::<(), reflex_core::TestbedError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod hooks;
mod install;
mod parse;
mod plan;
mod stats;

pub use hooks::{PlannedDeviceHook, PlannedNetHook};
pub use install::install;
pub use parse::PlanParseError;
pub use plan::{FaultEvent, FaultKind, FaultPlan};
pub use stats::{FaultCounts, FaultStats};
