//! Fault plans: *what* goes wrong, *when*, and for *how long*.
//!
//! A [`FaultPlan`] is a declarative schedule of [`FaultEvent`]s. Nothing
//! in a plan is random at plan-build time; probabilistic faults (packet
//! loss, transient device errors) carry a *rate* and draw from a private
//! RNG stream keyed by `(plan.seed, event.id)` at injection time, so two
//! runs of the same plan against the same workload are bit-identical —
//! regardless of how many sweep threads execute neighbouring points.

use reflex_sim::{SimDuration, SimTime};

/// One kind of injected fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// While active, each NVMe command fails with probability `rate`
    /// (completes with a media-error status; the ReFlex wire protocol
    /// reports it to the client as a retryable error).
    TransientDeviceErrors {
        /// Per-command failure probability in `[0, 1]`.
        rate: f64,
        /// How long the error window lasts.
        duration: SimDuration,
    },
    /// A garbage-collection storm: while active, every command's
    /// completion is pushed out by `extra` (stuck-GC latency spike).
    GcStorm {
        /// Added device latency per command.
        extra: SimDuration,
        /// How long the storm lasts.
        duration: SimDuration,
    },
    /// The device dies at the event instant and never recovers: every
    /// later command aborts with `DeviceUnavailable`.
    DeviceDeath,
    /// The link to client machine `client` (index into the testbed's
    /// client list) drops for `down_for`: in-flight and new packets
    /// to/from that machine are lost, and the server tears down its
    /// connections, re-registering them when the link returns.
    LinkFlap {
        /// Client index (see `Testbed::client_count`).
        client: usize,
        /// Length of the outage.
        down_for: SimDuration,
    },
    /// While active, each message is dropped with probability `rate`.
    PacketLoss {
        /// Per-message drop probability in `[0, 1]`.
        rate: f64,
        /// How long the lossy window lasts.
        duration: SimDuration,
    },
    /// While active, each message is duplicated with probability `rate`
    /// (the copy trails the original; receivers must de-duplicate).
    PacketDup {
        /// Per-message duplication probability in `[0, 1]`.
        rate: f64,
        /// How long the window lasts.
        duration: SimDuration,
    },
    /// A latency storm: while active, every message is delayed by
    /// `extra` on top of its modelled wire time.
    LatencyStorm {
        /// Added one-way latency per message.
        extra: SimDuration,
        /// How long the storm lasts.
        duration: SimDuration,
    },
    /// Dataplane thread `thread` stops polling for `stall` (e.g. it was
    /// preempted or wedged); its queues back up and drain afterwards.
    ThreadStall {
        /// Server thread index.
        thread: usize,
        /// Length of the stall.
        stall: SimDuration,
    },
    /// A whole server dies: its NIC links go permanently dark and its
    /// device aborts every queued and future command. Only meaningful on
    /// multi-server testbeds — the replication testbed
    /// (`reflex-replication`) installs it and drives failover; the
    /// single-server [`install`](crate::install) rejects it.
    ServerDeath {
        /// Site index (server machine) to kill.
        server: usize,
    },
}

/// One scheduled fault: a [`FaultKind`] firing at instant `at`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Stable id, used to key the event's private RNG stream.
    pub id: u32,
    /// Simulation instant the fault begins.
    pub at: SimTime,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic schedule of faults.
///
/// Build one with [`FaultPlan::seeded`] + [`FaultPlan::with_event`], or
/// use [`FaultPlan::none`] for a guaranteed-healthy run (installing an
/// empty plan arms no hooks and schedules no events, so the simulation
/// is byte-identical to one that never heard of fault injection).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Master seed; each event's RNG stream is derived from
    /// `(seed, event.id)`.
    pub seed: u64,
    /// The schedule, in insertion order (ids are assigned sequentially).
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// The empty plan: no faults, no hooks, zero overhead.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            events: Vec::new(),
        }
    }

    /// An empty plan carrying `seed` for the events added later.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            events: Vec::new(),
        }
    }

    /// Appends an event starting at `at`; ids are assigned in insertion
    /// order so a plan built the same way always keys the same streams.
    #[must_use]
    pub fn with_event(mut self, at: SimTime, kind: FaultKind) -> Self {
        let id = u32::try_from(self.events.len()).expect("fault plan too large");
        self.events.push(FaultEvent { id, at, kind });
        self
    }

    /// True if the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The RNG seed for event `id`'s private stream (splitmix64 finalizer
    /// over the master seed, so neighbouring ids decorrelate).
    pub fn stream_seed(&self, id: u32) -> u64 {
        let mut z = self
            .seed
            .wrapping_add(u64::from(id) + 1)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_sequential_and_streams_decorrelate() {
        let plan = FaultPlan::seeded(7)
            .with_event(SimTime::ZERO, FaultKind::DeviceDeath)
            .with_event(
                SimTime::ZERO + SimDuration::from_millis(1),
                FaultKind::ThreadStall {
                    thread: 0,
                    stall: SimDuration::from_micros(100),
                },
            );
        assert_eq!(plan.events[0].id, 0);
        assert_eq!(plan.events[1].id, 1);
        assert_ne!(plan.stream_seed(0), plan.stream_seed(1));
        // Same plan, same streams.
        assert_eq!(plan.stream_seed(0), FaultPlan::seeded(7).stream_seed(0));
        // Different master seed, different streams.
        assert_ne!(plan.stream_seed(0), FaultPlan::seeded(8).stream_seed(0));
    }

    #[test]
    fn none_is_empty() {
        assert!(FaultPlan::none().is_empty());
        assert!(!FaultPlan::none()
            .with_event(SimTime::ZERO, FaultKind::DeviceDeath)
            .is_empty());
    }
}
