//! A textual form for [`FaultPlan`]s: one event per line, durations in
//! explicit units, rates as plain floats.
//!
//! ```text
//! seed=42
//! @1ms transient rate=0.1 for=10ms
//! @2ms gc extra=500us for=2ms
//! @3ms device-death
//! @4ms link-flap client=1 down=3ms
//! @5ms loss rate=0.05 for=10ms
//! @5ms dup rate=0.01 for=10ms
//! @6ms latency extra=100us for=5ms
//! @7ms stall thread=0 for=1ms
//! @8ms server-death server=2
//! ```
//!
//! [`FaultPlan::parse`] reads the form (blank lines and `#` comments
//! allowed); `Display` writes it back with nanosecond-exact durations, so
//! `parse(plan.to_string()) == plan` for every valid plan — the
//! round-trip property the swarm fuzzer holds the parser to.

use std::fmt;

use reflex_sim::{SimDuration, SimTime};

use crate::plan::{FaultKind, FaultPlan};

/// Why a fault-plan string failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for PlanParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fault plan line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for PlanParseError {}

fn err(line: usize, message: impl Into<String>) -> PlanParseError {
    PlanParseError {
        line,
        message: message.into(),
    }
}

fn fmt_dur(d: SimDuration) -> String {
    format!("{}ns", d.as_nanos())
}

fn parse_dur(line: usize, s: &str) -> Result<SimDuration, PlanParseError> {
    let (digits, mult) = if let Some(d) = s.strip_suffix("ns") {
        (d, 1u64)
    } else if let Some(d) = s.strip_suffix("us") {
        (d, 1_000)
    } else if let Some(d) = s.strip_suffix("ms") {
        (d, 1_000_000)
    } else if let Some(d) = s.strip_suffix('s') {
        (d, 1_000_000_000)
    } else {
        return Err(err(line, format!("duration `{s}` needs a ns/us/ms/s unit")));
    };
    let n: u64 = digits
        .parse()
        .map_err(|_| err(line, format!("bad duration `{s}`")))?;
    let nanos = n
        .checked_mul(mult)
        .ok_or_else(|| err(line, format!("duration `{s}` overflows")))?;
    Ok(SimDuration::from_nanos(nanos))
}

fn parse_rate(line: usize, s: &str) -> Result<f64, PlanParseError> {
    let rate: f64 = s
        .parse()
        .map_err(|_| err(line, format!("bad rate `{s}`")))?;
    if !rate.is_finite() || !(0.0..=1.0).contains(&rate) {
        return Err(err(line, format!("rate `{s}` outside [0, 1]")));
    }
    Ok(rate)
}

/// Pulls `key=value` off the front of `fields`, erroring if the next
/// field has a different key (events have a fixed field order).
fn take_kv<'a>(
    line: usize,
    fields: &mut std::str::SplitWhitespace<'a>,
    key: &str,
) -> Result<&'a str, PlanParseError> {
    let field = fields
        .next()
        .ok_or_else(|| err(line, format!("missing `{key}=`")))?;
    field
        .strip_prefix(key)
        .and_then(|rest| rest.strip_prefix('='))
        .ok_or_else(|| err(line, format!("expected `{key}=`, got `{field}`")))
}

fn parse_index(line: usize, s: &str) -> Result<usize, PlanParseError> {
    s.parse().map_err(|_| err(line, format!("bad index `{s}`")))
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "seed={}", self.seed)?;
        for e in &self.events {
            write!(f, "@{} ", fmt_dur(SimDuration::from_nanos(e.at.as_nanos())))?;
            match e.kind {
                FaultKind::TransientDeviceErrors { rate, duration } => {
                    writeln!(f, "transient rate={rate} for={}", fmt_dur(duration))?;
                }
                FaultKind::GcStorm { extra, duration } => {
                    writeln!(f, "gc extra={} for={}", fmt_dur(extra), fmt_dur(duration))?;
                }
                FaultKind::DeviceDeath => writeln!(f, "device-death")?,
                FaultKind::LinkFlap { client, down_for } => {
                    writeln!(f, "link-flap client={client} down={}", fmt_dur(down_for))?;
                }
                FaultKind::PacketLoss { rate, duration } => {
                    writeln!(f, "loss rate={rate} for={}", fmt_dur(duration))?;
                }
                FaultKind::PacketDup { rate, duration } => {
                    writeln!(f, "dup rate={rate} for={}", fmt_dur(duration))?;
                }
                FaultKind::LatencyStorm { extra, duration } => {
                    writeln!(
                        f,
                        "latency extra={} for={}",
                        fmt_dur(extra),
                        fmt_dur(duration)
                    )?;
                }
                FaultKind::ThreadStall { thread, stall } => {
                    writeln!(f, "stall thread={thread} for={}", fmt_dur(stall))?;
                }
                FaultKind::ServerDeath { server } => {
                    writeln!(f, "server-death server={server}")?;
                }
            }
        }
        Ok(())
    }
}

impl FaultPlan {
    /// Parses the textual form written by the plan's `Display` impl.
    ///
    /// # Errors
    ///
    /// [`PlanParseError`] (with a 1-based line number) on unknown event
    /// names, malformed or missing fields, rates outside `[0, 1]`, or
    /// trailing junk on a line.
    pub fn parse(text: &str) -> Result<FaultPlan, PlanParseError> {
        let mut plan = FaultPlan::none();
        for (idx, raw) in text.lines().enumerate() {
            let line = idx + 1;
            let trimmed = raw.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            if let Some(seed) = trimmed.strip_prefix("seed=") {
                plan.seed = seed
                    .parse()
                    .map_err(|_| err(line, format!("bad seed `{seed}`")))?;
                continue;
            }
            let mut fields = trimmed.split_whitespace();
            let at_field = fields.next().expect("non-empty line has a first field");
            let at_str = at_field
                .strip_prefix('@')
                .ok_or_else(|| err(line, format!("expected `@<time>`, got `{at_field}`")))?;
            let at = SimTime::ZERO + parse_dur(line, at_str)?;
            let name = fields
                .next()
                .ok_or_else(|| err(line, "missing event name"))?;
            let kind = match name {
                "transient" => FaultKind::TransientDeviceErrors {
                    rate: parse_rate(line, take_kv(line, &mut fields, "rate")?)?,
                    duration: parse_dur(line, take_kv(line, &mut fields, "for")?)?,
                },
                "gc" => FaultKind::GcStorm {
                    extra: parse_dur(line, take_kv(line, &mut fields, "extra")?)?,
                    duration: parse_dur(line, take_kv(line, &mut fields, "for")?)?,
                },
                "device-death" => FaultKind::DeviceDeath,
                "link-flap" => FaultKind::LinkFlap {
                    client: parse_index(line, take_kv(line, &mut fields, "client")?)?,
                    down_for: parse_dur(line, take_kv(line, &mut fields, "down")?)?,
                },
                "loss" => FaultKind::PacketLoss {
                    rate: parse_rate(line, take_kv(line, &mut fields, "rate")?)?,
                    duration: parse_dur(line, take_kv(line, &mut fields, "for")?)?,
                },
                "dup" => FaultKind::PacketDup {
                    rate: parse_rate(line, take_kv(line, &mut fields, "rate")?)?,
                    duration: parse_dur(line, take_kv(line, &mut fields, "for")?)?,
                },
                "latency" => FaultKind::LatencyStorm {
                    extra: parse_dur(line, take_kv(line, &mut fields, "extra")?)?,
                    duration: parse_dur(line, take_kv(line, &mut fields, "for")?)?,
                },
                "stall" => FaultKind::ThreadStall {
                    thread: parse_index(line, take_kv(line, &mut fields, "thread")?)?,
                    stall: parse_dur(line, take_kv(line, &mut fields, "for")?)?,
                },
                "server-death" => FaultKind::ServerDeath {
                    server: parse_index(line, take_kv(line, &mut fields, "server")?)?,
                },
                other => return Err(err(line, format!("unknown event `{other}`"))),
            };
            if let Some(junk) = fields.next() {
                return Err(err(line, format!("trailing junk `{junk}`")));
            }
            plan = plan.with_event(at, kind);
        }
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FaultPlan {
        FaultPlan::seeded(42)
            .with_event(
                SimTime::ZERO + SimDuration::from_millis(1),
                FaultKind::TransientDeviceErrors {
                    rate: 0.1,
                    duration: SimDuration::from_millis(10),
                },
            )
            .with_event(
                SimTime::ZERO + SimDuration::from_millis(2),
                FaultKind::LinkFlap {
                    client: 1,
                    down_for: SimDuration::from_millis(3),
                },
            )
            .with_event(
                SimTime::ZERO + SimDuration::from_millis(4),
                FaultKind::ServerDeath { server: 2 },
            )
    }

    #[test]
    fn display_round_trips() {
        let plan = sample();
        let text = plan.to_string();
        assert_eq!(FaultPlan::parse(&text).expect("parses"), plan);
    }

    #[test]
    fn parse_accepts_units_and_comments() {
        let plan = FaultPlan::parse(
            "# a comment\nseed=7\n\n@1ms gc extra=500us for=2ms\n@2s stall thread=1 for=1us\n",
        )
        .expect("parses");
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.events.len(), 2);
        assert_eq!(
            plan.events[0].kind,
            FaultKind::GcStorm {
                extra: SimDuration::from_micros(500),
                duration: SimDuration::from_millis(2),
            }
        );
        assert_eq!(plan.events[1].at, SimTime::ZERO + SimDuration::from_secs(2));
    }

    #[test]
    fn parse_rejects_malformed() {
        for (text, needle) in [
            ("@1ms nope", "unknown event"),
            ("1ms gc extra=1ns for=1ns", "expected `@<time>`"),
            ("@1ms loss rate=1.5 for=1ms", "outside [0, 1]"),
            ("@1ms loss rate=nan for=1ms", "outside [0, 1]"),
            ("@1ms transient rate=0.1 for=10", "needs a ns/us/ms/s unit"),
            ("@1ms device-death junk", "trailing junk"),
            ("@1ms stall thread=x for=1ms", "bad index"),
            ("seed=abc", "bad seed"),
        ] {
            let e = FaultPlan::parse(text).expect_err(text);
            assert!(e.to_string().contains(needle), "{text}: {e}");
        }
    }
}
