//! Control-plane thread scaling (paper §4.3): "If latency and load are
//! high, it allocates resources for additional threads and rebalances
//! tenants. If load is low, it deallocates threads."

use reflex_core::{ServerConfig, Testbed, WorkloadSpec};
use reflex_net::{LinkConfig, StackProfile};
use reflex_qos::{TenantClass, TenantId};
use reflex_sim::SimDuration;

fn blast_spec(i: u32, iops: f64) -> WorkloadSpec {
    let mut spec = WorkloadSpec::open_loop(
        &format!("blast{i}"),
        TenantId(i + 1),
        TenantClass::BestEffort,
        iops,
    );
    spec.io_size = 1024;
    spec.conns = 32;
    spec.client_threads = 8;
    spec.client_machine = i as usize % 2;
    spec
}

#[test]
fn overload_triggers_scale_up_and_raises_throughput() {
    let mut tb = Testbed::builder()
        .seed(71)
        .server(ServerConfig {
            threads: 1,
            max_threads: 4,
            auto_scale: true,
            ..ServerConfig::default()
        })
        .client_machines(vec![StackProfile::ix_tcp(), StackProfile::ix_tcp()])
        .link(LinkConfig::forty_gbe())
        .build();
    // Two tenants together offering well beyond one core's ~850K ceiling.
    tb.add_workload(blast_spec(0, 600_000.0)).expect("accepted");
    tb.add_workload(blast_spec(1, 600_000.0)).expect("accepted");

    tb.run(SimDuration::from_millis(100)); // control ticks every 10ms
    assert!(
        tb.world().server().active_threads() >= 2,
        "control plane should have scaled up; still {} thread(s)",
        tb.world().server().active_threads()
    );

    tb.begin_measurement();
    tb.run(SimDuration::from_millis(200));
    let report = tb.report();
    let total: f64 = report.workloads.iter().map(|w| w.iops).sum();
    assert!(
        total > 950_000.0,
        "after scale-up throughput should approach the device limit; got {total:.0}"
    );
}

#[test]
fn idle_server_scales_back_down() {
    let mut tb = Testbed::builder()
        .seed(72)
        .server(ServerConfig {
            threads: 3,
            max_threads: 4,
            auto_scale: true,
            ..ServerConfig::default()
        })
        .build();
    // A trickle of load: three threads are overkill.
    let mut spec =
        WorkloadSpec::open_loop("trickle", TenantId(1), TenantClass::BestEffort, 5_000.0);
    spec.conns = 2;
    tb.add_workload(spec).expect("accepted");
    tb.run(SimDuration::from_millis(300));
    assert!(
        tb.world().server().active_threads() < 3,
        "idle threads should be retired; still {}",
        tb.world().server().active_threads()
    );
    // The remaining thread still serves the trickle.
    tb.begin_measurement();
    tb.run(SimDuration::from_millis(100));
    let report = tb.report();
    assert!(report.workload("trickle").iops > 4_500.0);
    assert_eq!(report.workload("trickle").errors, 0);
}

#[test]
fn rebalanced_connections_are_not_dropped() {
    // Force a scale-up mid-run and verify no requests are lost: issued
    // requests all eventually complete (forwarding covers in-flight ones).
    let mut tb = Testbed::builder()
        .seed(73)
        .server(ServerConfig {
            threads: 1,
            max_threads: 2,
            auto_scale: true,
            ..ServerConfig::default()
        })
        .client_machines(vec![StackProfile::ix_tcp(), StackProfile::ix_tcp()])
        .link(LinkConfig::forty_gbe())
        .build();
    tb.add_workload(blast_spec(0, 500_000.0)).expect("accepted");
    tb.add_workload(blast_spec(1, 500_000.0)).expect("accepted");
    tb.run(SimDuration::from_millis(150));
    assert!(
        tb.world().server().active_threads() == 2,
        "scale-up expected"
    );
    // Stop issuing: run the queues dry and compare totals.
    tb.world_mut().stop_all_workloads();
    tb.run(SimDuration::from_millis(400));
    // (The drain window may have scaled back down; inspect whatever
    // threads remain active — counters are cumulative.)
    let report = tb.report();
    let mut unanswered = 0u64;
    for t in &report.threads {
        if let Some(stats) = t.stats {
            unanswered += stats.unbound_conns;
        }
    }
    assert_eq!(unanswered, 0, "rebalancing must not drop messages");
}
