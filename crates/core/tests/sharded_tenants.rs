//! Multi-thread (sharded) tenants — the paper's §4.1 limitation removed:
//! "we will load balance connections for individual tenants across threads
//! if their overall demands exceed a single thread's throughput."

use reflex_core::{ServerConfig, Testbed, WorkloadSpec};
use reflex_net::{LinkConfig, StackProfile};
use reflex_qos::{SloSpec, TenantClass, TenantId};
use reflex_sim::SimDuration;

fn blast(shards: u32, threads: u32) -> f64 {
    let mut tb = Testbed::builder()
        .seed(81)
        .server(ServerConfig {
            threads,
            max_threads: threads,
            ..ServerConfig::default()
        })
        .client_machines(vec![StackProfile::ix_tcp(), StackProfile::ix_tcp()])
        .link(LinkConfig::forty_gbe())
        .build();
    let mut spec =
        WorkloadSpec::open_loop("big", TenantId(1), TenantClass::BestEffort, 1_200_000.0);
    spec.io_size = 1024;
    spec.conns = 64;
    spec.client_threads = 16;
    spec.shards = shards;
    tb.add_workload(spec).expect("accepted");
    tb.run(SimDuration::from_millis(60));
    tb.begin_measurement();
    tb.run(SimDuration::from_millis(150));
    tb.report().workload("big").iops
}

#[test]
fn one_tenant_exceeds_single_core_with_shards() {
    // The paper's limitation: one tenant = one thread, capped at ~850K.
    let single = blast(1, 2);
    assert!(
        (700_000.0..900_000.0).contains(&single),
        "single-shard tenant should cap at one core: {single:.0}"
    );
    // Sharded across 2 threads: the device limit (~1M) becomes the cap.
    let sharded = blast(2, 2);
    assert!(
        sharded > single + 100_000.0,
        "sharding should lift the cap: {single:.0} -> {sharded:.0}"
    );
}

#[test]
fn sharded_lc_tenant_keeps_its_slo() {
    let mut tb = Testbed::builder()
        .seed(82)
        .server(ServerConfig {
            threads: 2,
            max_threads: 2,
            ..ServerConfig::default()
        })
        .build();
    // 200K IOPS, 100% read, 500us SLO: within capacity but beyond what a
    // busy single thread could comfortably schedule alongside others.
    let slo = SloSpec::new(200_000, 100, SimDuration::from_micros(500));
    let mut spec = WorkloadSpec::open_loop(
        "wide",
        TenantId(1),
        TenantClass::LatencyCritical(slo),
        200_000.0,
    );
    spec.conns = 16;
    spec.client_threads = 4;
    spec.shards = 2;
    tb.add_workload(spec).expect("admitted");
    tb.run(SimDuration::from_millis(100));
    tb.begin_measurement();
    tb.run(SimDuration::from_millis(300));
    let report = tb.report();
    let w = report.workload("wide");
    assert!(w.iops > 190_000.0, "sharded LC got {:.0}", w.iops);
    assert!(
        w.p95_read_us() < 550.0,
        "sharded LC p95 {:.0}us breaks the 500us SLO",
        w.p95_read_us()
    );
    assert_eq!(w.errors, 0);
    // Token accounting aggregates the shards. The workload is read-only,
    // so the device is in read-only mode and each 4KB read costs 1/2
    // token: 200K IOPS = ~100K tokens/s.
    assert!(
        (90_000.0..110_000.0).contains(&report.token_usage_per_sec),
        "token usage {:.0}",
        report.token_usage_per_sec
    );
}

#[test]
fn sharding_spreads_work_across_both_threads() {
    let mut tb = Testbed::builder()
        .seed(83)
        .server(ServerConfig {
            threads: 2,
            max_threads: 2,
            ..ServerConfig::default()
        })
        .build();
    let mut spec = WorkloadSpec::open_loop("wide", TenantId(1), TenantClass::BestEffort, 200_000.0);
    spec.conns = 8;
    spec.client_threads = 4;
    spec.shards = 2;
    tb.add_workload(spec).expect("accepted");
    tb.run(SimDuration::from_millis(50));
    tb.begin_measurement();
    tb.run(SimDuration::from_millis(200));
    let report = tb.report();
    let rx: Vec<u64> = report
        .threads
        .iter()
        .map(|t| t.stats.map(|s| s.rx_msgs).unwrap_or(0))
        .collect();
    assert_eq!(rx.len(), 2);
    let ratio = rx[0] as f64 / rx[1].max(1) as f64;
    assert!(
        (0.7..1.4).contains(&ratio),
        "shard traffic should split roughly evenly: {rx:?}"
    );
}
