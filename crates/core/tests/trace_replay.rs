//! Trace-replay workloads: recorded I/O schedules drive the testbed with
//! exact timing and addresses.

use std::sync::Arc;

use reflex_core::{Testbed, TraceOp, WorkloadSpec};
use reflex_qos::{SloSpec, TenantClass, TenantId};
use reflex_sim::SimDuration;

fn synthetic_trace(ops: usize, gap_us: u64, write_every: usize) -> Arc<[TraceOp]> {
    (0..ops)
        .map(|i| TraceOp {
            at: SimDuration::from_micros(i as u64 * gap_us),
            is_read: write_every == 0 || i % write_every != 0,
            addr: (i as u64 * 7919 % 1_000_000) * 4096,
            len: 4096,
        })
        .collect::<Vec<_>>()
        .into()
}

#[test]
fn trace_replays_exact_op_count_and_mix() {
    let mut tb = Testbed::builder().seed(141).build();
    let trace = synthetic_trace(2_000, 20, 5); // 50K IOPS, 20% writes
    let slo = SloSpec::new(60_000, 80, SimDuration::from_millis(1));
    let mut spec = WorkloadSpec::from_trace(
        "replay",
        TenantId(1),
        TenantClass::LatencyCritical(slo),
        trace,
    );
    spec.conns = 4;
    tb.begin_measurement();
    tb.run(SimDuration::from_millis(100));
    tb.add_workload(spec).expect("admitted");
    tb.run(SimDuration::from_millis(100));
    let report = tb.report();
    let w = report.workload("replay");
    let reads = w.read_latency.count();
    let writes = w.write_latency.count();
    assert_eq!(reads + writes + w.errors, 2_000, "every op answered once");
    assert_eq!(writes, 400, "exact write interleave (every 5th op)");
    assert_eq!(w.errors, 0);
}

#[test]
fn trace_timing_is_respected() {
    // A bursty trace: 100 ops at t=0, then 100 at t=50ms. The completion
    // series must show the two bursts.
    let mut ops = Vec::new();
    for i in 0..100u64 {
        ops.push(TraceOp {
            at: SimDuration::from_micros(i),
            is_read: true,
            addr: i * 4096,
            len: 4096,
        });
    }
    for i in 0..100u64 {
        ops.push(TraceOp {
            at: SimDuration::from_millis(50) + SimDuration::from_micros(i),
            is_read: true,
            addr: (1_000 + i) * 4096,
            len: 4096,
        });
    }
    let mut tb = Testbed::builder().seed(142).build();
    let spec = WorkloadSpec::from_trace("bursts", TenantId(1), TenantClass::BestEffort, ops.into());
    tb.begin_measurement();
    tb.add_workload(spec).expect("accepted");
    tb.run(SimDuration::from_millis(100));
    let report = tb.report();
    let w = report.workload("bursts");
    assert_eq!(w.read_latency.count(), 200);
    // Completions cluster in the first and sixth 10ms buckets.
    let series = &w.iops_series;
    let busy: Vec<usize> = series
        .iter()
        .enumerate()
        .filter(|(_, p)| p.count > 10)
        .map(|(i, _)| i)
        .collect();
    assert_eq!(busy, vec![0, 5], "bursts in wrong buckets: {busy:?}");
}

#[test]
fn malformed_traces_are_rejected() {
    let mut tb = Testbed::builder().seed(143).build();
    // Decreasing offsets.
    let bad: Arc<[TraceOp]> = vec![
        TraceOp {
            at: SimDuration::from_micros(10),
            is_read: true,
            addr: 0,
            len: 4096,
        },
        TraceOp {
            at: SimDuration::from_micros(5),
            is_read: true,
            addr: 0,
            len: 4096,
        },
    ]
    .into();
    let spec = WorkloadSpec::from_trace("bad", TenantId(1), TenantClass::BestEffort, bad);
    assert!(tb.add_workload(spec).is_err());
    // Empty trace.
    let empty: Arc<[TraceOp]> = Vec::new().into();
    let spec = WorkloadSpec::from_trace("empty", TenantId(2), TenantClass::BestEffort, empty);
    assert!(tb.add_workload(spec).is_err());
}
