//! UDP transport (paper §4.1 future work): "both tail latency and
//! throughput will improve when we implement UDP or other, lighter-weight
//! transport protocols."

use reflex_core::{ServerConfig, Testbed, WorkloadSpec};
use reflex_dataplane::DataplaneConfig;
use reflex_net::StackProfile;
use reflex_qos::{SloSpec, TenantClass, TenantId};
use reflex_sim::SimDuration;

fn unloaded_read(client: StackProfile, server_stack: StackProfile, dp: DataplaneConfig) -> f64 {
    let mut tb = Testbed::builder()
        .seed(61)
        .client_machines(vec![client])
        .server_stack(server_stack)
        .server(ServerConfig {
            dataplane: dp,
            ..ServerConfig::default()
        })
        .build();
    let slo = SloSpec::new(20_000, 100, SimDuration::from_micros(500));
    tb.add_workload(WorkloadSpec::closed_loop(
        "probe",
        TenantId(1),
        TenantClass::LatencyCritical(slo),
        1,
    ))
    .expect("admitted");
    tb.run(SimDuration::from_millis(50));
    tb.begin_measurement();
    tb.run(SimDuration::from_millis(300));
    tb.report().workload("probe").mean_read_us()
}

#[test]
fn udp_cuts_unloaded_latency() {
    let tcp = unloaded_read(
        StackProfile::ix_tcp(),
        StackProfile::dataplane_raw(),
        DataplaneConfig::default(),
    );
    let udp = unloaded_read(
        StackProfile::ix_udp(),
        StackProfile::dataplane_raw_udp(),
        DataplaneConfig::udp(),
    );
    assert!(
        udp + 1.0 < tcp,
        "udp ({udp:.1}us) should beat tcp ({tcp:.1}us)"
    );
    assert!(
        tcp - udp < 15.0,
        "udp saving implausibly large: {}",
        tcp - udp
    );
}

#[test]
fn udp_raises_per_core_throughput() {
    let run = |client: StackProfile, server_stack: StackProfile, dp: DataplaneConfig| {
        let mut tb = Testbed::builder()
            .seed(62)
            .client_machines(vec![client.clone(), client])
            .server_stack(server_stack)
            .server(ServerConfig {
                dataplane: dp,
                ..ServerConfig::default()
            })
            .link(reflex_net::LinkConfig::forty_gbe())
            .build();
        for i in 0..2u32 {
            let mut spec = WorkloadSpec::open_loop(
                &format!("blast{i}"),
                TenantId(i + 1),
                TenantClass::BestEffort,
                700_000.0,
            );
            spec.io_size = 1024;
            spec.conns = 64;
            spec.client_threads = 8;
            spec.client_machine = i as usize;
            tb.add_workload(spec).expect("accepted");
        }
        tb.run(SimDuration::from_millis(60));
        tb.begin_measurement();
        tb.run(SimDuration::from_millis(150));
        tb.report().workloads.iter().map(|w| w.iops).sum::<f64>()
    };
    let tcp = run(
        StackProfile::ix_tcp(),
        StackProfile::dataplane_raw(),
        DataplaneConfig::default(),
    );
    let udp = run(
        StackProfile::ix_udp(),
        StackProfile::dataplane_raw_udp(),
        DataplaneConfig::udp(),
    );
    // TCP one core ~850K; UDP should add >10% (device read-only limit ~1M
    // caps the gain).
    assert!(
        udp > tcp * 1.08,
        "udp throughput {udp:.0} should clearly beat tcp {tcp:.0}"
    );
}
