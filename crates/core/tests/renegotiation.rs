//! SLO renegotiation: the control plane flags tenants that persistently
//! exceed their reservation (NEG_LIMIT notifications, paper Algorithm 1
//! line 7 and §4.3) and the operator renegotiates them in place.

use reflex_core::{Testbed, WorkloadSpec};
use reflex_qos::{SloSpec, TenantClass, TenantId};
use reflex_sim::SimDuration;

#[test]
fn renegotiation_cures_a_flagged_tenant() {
    let mut tb = Testbed::builder().seed(95).build();
    // Reserved 20K, offered 60K: persistent deficits.
    let slo = SloSpec::new(20_000, 100, SimDuration::from_micros(500));
    let mut spec = WorkloadSpec::open_loop(
        "greedy",
        TenantId(1),
        TenantClass::LatencyCritical(slo),
        60_000.0,
    );
    spec.conns = 8;
    tb.add_workload(spec).expect("admitted");
    tb.begin_measurement();
    tb.run(SimDuration::from_millis(200));
    let before = tb.report();
    assert!(
        before.renegotiations.contains(&TenantId(1)),
        "over-issuing tenant should be flagged"
    );
    // The workload is read-only, so the device enters read-only mode and
    // reads cost 1/2 token: the 20K-token reservation buys ~40K IOPS —
    // still well short of the offered 60K.
    let throttled = before.workload("greedy").iops;
    assert!(
        throttled < 45_000.0,
        "rate limiting should hold: {throttled:.0}"
    );

    // The operator accepts the renegotiation: raise the SLO to 70K.
    let new_slo = SloSpec::new(70_000, 100, SimDuration::from_micros(500));
    tb.world_mut()
        .server_mut()
        .renegotiate_tenant(TenantId(1), new_slo)
        .expect("70K fits in 330K");

    // Let the backlog accumulated while throttled drain, then measure.
    tb.run(SimDuration::from_millis(150));
    tb.begin_measurement();
    tb.run(SimDuration::from_millis(300));
    let after = tb.report();
    let healthy = after.workload("greedy").iops;
    assert!(
        healthy > 55_000.0,
        "renegotiated tenant should get its offered 60K: {healthy:.0}"
    );
    assert!(
        after.workload("greedy").p95_read_us() < 500.0,
        "and meet its tail bound: {}",
        after.workload("greedy").p95_read_us()
    );
}

#[test]
fn renegotiation_respects_admission_control() {
    let mut tb = Testbed::builder().seed(96).build();
    let slo_a = SloSpec::new(100_000, 80, SimDuration::from_micros(500)); // 280K tokens
    tb.add_workload(WorkloadSpec::open_loop(
        "a",
        TenantId(1),
        TenantClass::LatencyCritical(slo_a),
        10_000.0,
    ))
    .expect("fits");
    let slo_b = SloSpec::new(40_000, 100, SimDuration::from_micros(500)); // 40K tokens
    tb.add_workload(WorkloadSpec::open_loop(
        "b",
        TenantId(2),
        TenantClass::LatencyCritical(slo_b),
        10_000.0,
    ))
    .expect("fits (320K of 330K)");

    // b asks to grow to 100K tokens: 280K + 100K > 330K -> rejected.
    let too_big = SloSpec::new(100_000, 100, SimDuration::from_micros(500));
    assert!(tb
        .world_mut()
        .server_mut()
        .renegotiate_tenant(TenantId(2), too_big)
        .is_err());

    // Shrinking a is allowed; then b's growth fits.
    let smaller_a = SloSpec::new(50_000, 80, SimDuration::from_micros(500)); // 140K
    tb.world_mut()
        .server_mut()
        .renegotiate_tenant(TenantId(1), smaller_a)
        .expect("shrinking always fits");
    tb.world_mut()
        .server_mut()
        .renegotiate_tenant(TenantId(2), too_big)
        .expect("now 140K + 100K fits");
}

#[test]
fn renegotiating_unknown_or_be_tenants_fails() {
    let mut tb = Testbed::builder().seed(97).build();
    tb.add_workload(WorkloadSpec::open_loop(
        "be",
        TenantId(1),
        TenantClass::BestEffort,
        1_000.0,
    ))
    .expect("accepted");
    let slo = SloSpec::new(1_000, 100, SimDuration::from_millis(1));
    assert!(tb
        .world_mut()
        .server_mut()
        .renegotiate_tenant(TenantId(1), slo)
        .is_err());
    assert!(tb
        .world_mut()
        .server_mut()
        .renegotiate_tenant(TenantId(9), slo)
        .is_err());
}
