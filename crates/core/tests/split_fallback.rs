//! Typed fallback reasons for split-dataplane and sharding.
//!
//! `enable_split_dataplane()` and `with_shards()` fall back to the
//! unified/single-shard paths when the scenario cannot be split safely.
//! PR 8 only announced those falls on stderr; these tests pin the typed
//! [`SplitFallback`] / [`ShardClamp`] reasons so harnesses (the swarm
//! runner in particular) can branch on *why* a knob was refused instead
//! of scraping logs.

use reflex_core::{ServerConfig, ShardClamp, SplitFallback, Testbed};
use reflex_net::{MachineId, NetFaultAction, NetFaultHook, StackProfile};
use reflex_sim::SimTime;

/// A hook that never actually faults — its mere presence must disable
/// splitting, because split shards exchange flights on the healthy path
/// only.
struct InertNetHook;

impl NetFaultHook for InertNetHook {
    fn on_send(
        &mut self,
        _now: SimTime,
        _from: MachineId,
        _to: MachineId,
        _size: u32,
    ) -> NetFaultAction {
        NetFaultAction::Deliver
    }
}

struct InertDeviceHook;

impl reflex_flash::DeviceFaultHook for InertDeviceHook {
    fn on_command(
        &mut self,
        _now: SimTime,
        _cmd: &reflex_flash::NvmeCommand,
    ) -> reflex_flash::DeviceFaultAction {
        reflex_flash::DeviceFaultAction::None
    }
}

fn testbed(clients: usize) -> Testbed {
    Testbed::builder()
        .seed(9)
        .server_threads(2)
        .client_machines(vec![StackProfile::ix_tcp(); clients])
        .build()
}

#[test]
fn net_fault_hook_reports_typed_reason() {
    let mut tb = testbed(2);
    tb.world_mut()
        .fabric_mut()
        .set_fault_hook(Box::new(InertNetHook));
    assert_eq!(
        tb.enable_split_dataplane(),
        Err(SplitFallback::NetFaultHook)
    );
    assert!(!tb.split_dataplane());
}

#[test]
fn device_fault_hook_reports_typed_reason() {
    let mut tb = testbed(2);
    tb.world_mut()
        .device_mut()
        .set_fault_hook(Box::new(InertDeviceHook));
    assert_eq!(
        tb.enable_split_dataplane(),
        Err(SplitFallback::DeviceFaultHook)
    );
}

#[test]
fn autoscaling_server_reports_unsupported() {
    let mut tb = Testbed::builder()
        .seed(9)
        .server(ServerConfig {
            threads: 2,
            max_threads: 4,
            auto_scale: true,
            ..ServerConfig::default()
        })
        .client_machines(vec![StackProfile::ix_tcp(); 2])
        .build();
    assert_eq!(
        tb.enable_split_dataplane(),
        Err(SplitFallback::ServerUnsupported)
    );
}

#[test]
fn healthy_scenario_splits_and_reports_state() {
    let mut tb = testbed(2);
    assert_eq!(tb.enable_split_dataplane(), Ok(()));
    assert!(tb.split_dataplane());
    // Lease accounting only becomes observable once the ledger exists.
    let (gives, accounted) = tb.lease_accounting().expect("split installs a ledger");
    assert_eq!(gives, accounted, "conservation holds before any window");
}

#[test]
fn shard_clamp_is_recorded() {
    // 16 shards over 2 client machines clamps to 3 (server + 2 clients).
    let tb = testbed(2).with_shards(16);
    assert_eq!(
        tb.shard_clamp(),
        Some(ShardClamp::Clamped {
            requested: 16,
            effective: 3,
        })
    );
    assert_eq!(tb.shards(), 3);
}

#[test]
fn shard_clamp_fault_hook() {
    let mut tb = testbed(2);
    tb.world_mut()
        .fabric_mut()
        .set_fault_hook(Box::new(InertNetHook));
    let tb = tb.with_shards(4);
    assert_eq!(tb.shard_clamp(), Some(ShardClamp::FaultHook));
    assert_eq!(tb.shards(), 1);
}

#[test]
fn shard_clamp_dynamic_routing() {
    let tb = Testbed::builder()
        .seed(9)
        .server(ServerConfig {
            threads: 2,
            max_threads: 4,
            auto_scale: true,
            ..ServerConfig::default()
        })
        .client_machines(vec![StackProfile::ix_tcp(); 2])
        .build()
        .with_shards(4);
    assert_eq!(tb.shard_clamp(), Some(ShardClamp::ServerDynamicRouting));
    assert_eq!(tb.shards(), 1);
}
