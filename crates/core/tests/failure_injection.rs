//! End-to-end failure injection: media errors surface to clients as error
//! responses while healthy traffic is unaffected.

use reflex_core::{Testbed, WorkloadSpec};
use reflex_qos::{SloSpec, TenantClass, TenantId};
use reflex_sim::SimDuration;

#[test]
fn media_errors_reach_the_client_as_error_responses() {
    let mut profile = reflex_flash::device_a();
    profile.media_error_rate = 0.02;
    let mut tb = Testbed::builder().seed(91).device(profile).build();
    let slo = SloSpec::new(50_000, 100, SimDuration::from_micros(500));
    let mut spec = WorkloadSpec::open_loop(
        "app",
        TenantId(1),
        TenantClass::LatencyCritical(slo),
        50_000.0,
    );
    spec.conns = 8;
    tb.add_workload(spec).expect("admitted");
    tb.run(SimDuration::from_millis(50));
    tb.begin_measurement();
    tb.run(SimDuration::from_millis(300));
    let report = tb.report();
    let w = report.workload("app");
    let total = w.read_latency.count() + w.errors;
    let rate = w.errors as f64 / total.max(1) as f64;
    assert!(
        (0.012..0.032).contains(&rate),
        "client-observed error rate {rate} ({} of {total})",
        w.errors
    );
    // Healthy requests keep their latency profile.
    assert!(w.p95_read_us() < 500.0, "p95 {}", w.p95_read_us());
}
