//! End-to-end tests of the assembled ReFlex system: unloaded latency
//! (Table 2 ReFlex rows), per-core throughput (§5.3), SLO enforcement
//! (Figure 5 behaviours), admission control and determinism.

use reflex_core::{CapacityProfile, ServerConfig, Testbed, TestbedError, WorkloadSpec};
use reflex_net::StackProfile;
use reflex_qos::{SloSpec, TenantClass, TenantId};
use reflex_sim::SimDuration;

fn lc(iops: u64, read_pct: u8, p95_us: u64) -> TenantClass {
    TenantClass::LatencyCritical(SloSpec::new(
        iops,
        read_pct,
        SimDuration::from_micros(p95_us),
    ))
}

#[test]
fn reflex_unloaded_read_latency_ix_client() {
    // Paper Table 2: ReFlex (IX client) read 99 avg / 113 p95.
    let mut tb = Testbed::builder().seed(5).build();
    let spec = WorkloadSpec::closed_loop("probe", TenantId(1), lc(20_000, 100, 500), 1);
    tb.add_workload(spec).expect("admitted");
    tb.run(SimDuration::from_millis(50));
    tb.begin_measurement();
    tb.run(SimDuration::from_millis(400));
    let report = tb.report();
    let w = report.workload("probe");
    let avg = w.mean_read_us();
    let p95 = w.p95_read_us();
    assert!((88.0..112.0).contains(&avg), "reflex/ix read avg {avg}");
    assert!((100.0..130.0).contains(&p95), "reflex/ix read p95 {p95}");
}

#[test]
fn reflex_unloaded_write_latency_ix_client() {
    // Paper Table 2: ReFlex (IX client) write 31 avg / 34 p95.
    let mut tb = Testbed::builder().seed(6).build();
    let mut spec = WorkloadSpec::closed_loop("probe", TenantId(1), lc(40_000, 0, 2_000), 1);
    spec.read_pct = 0;
    tb.add_workload(spec).expect("admitted");
    tb.run(SimDuration::from_millis(50));
    tb.begin_measurement();
    tb.run(SimDuration::from_millis(400));
    let report = tb.report();
    let w = report.workload("probe");
    let avg = w.write_latency.mean().as_micros_f64();
    assert!((22.0..45.0).contains(&avg), "reflex/ix write avg {avg}");
}

#[test]
fn reflex_unloaded_latency_linux_client_slightly_higher() {
    let run = |stack: StackProfile, seed: u64| {
        let mut tb = Testbed::builder()
            .client_machines(vec![stack])
            .seed(seed)
            .build();
        let spec = WorkloadSpec::closed_loop("probe", TenantId(1), lc(20_000, 100, 500), 1);
        tb.add_workload(spec).expect("admitted");
        tb.run(SimDuration::from_millis(50));
        tb.begin_measurement();
        tb.run(SimDuration::from_millis(300));
        tb.report().workload("probe").mean_read_us()
    };
    let ix = run(StackProfile::ix_tcp(), 7);
    let linux = run(StackProfile::linux_tcp(), 7);
    // Paper: 117 vs 99 — Linux client adds ~18us.
    let delta = linux - ix;
    assert!(
        (10.0..40.0).contains(&delta),
        "linux-client delta {delta}us (ix {ix}, linux {linux})"
    );
}

#[test]
fn reflex_single_core_approaches_850k_iops_1kb() {
    // Paper §5.3: up to 850K IOPS per core for 1KB read-only requests.
    let mut tb = Testbed::builder()
        .seed(8)
        .client_machines(vec![StackProfile::ix_tcp(), StackProfile::ix_tcp()])
        .build();
    for (i, machine) in [(0u32, 0usize), (1, 1)] {
        let mut spec = WorkloadSpec::open_loop(
            &format!("blast{i}"),
            TenantId(i + 1),
            TenantClass::BestEffort,
            600_000.0,
        );
        spec.io_size = 1024;
        spec.conns = 64;
        spec.client_threads = 8;
        spec.client_machine = machine;
        tb.add_workload(spec).expect("admitted");
    }
    tb.run(SimDuration::from_millis(60));
    tb.begin_measurement();
    tb.run(SimDuration::from_millis(150));
    let report = tb.report();
    let total: f64 = report.workloads.iter().map(|w| w.iops).sum();
    assert!(
        (750_000.0..950_000.0).contains(&total),
        "single-core ReFlex 1KB IOPS {total}"
    );
}

#[test]
fn slo_enforced_against_write_heavy_interference() {
    // Miniature Figure 5: an LC reader sharing the device with a
    // write-heavy best-effort tenant keeps its p95 under the SLO.
    let mut tb = Testbed::builder().seed(9).build();
    let slo_us = 500;
    let mut lc_spec =
        WorkloadSpec::open_loop("lc", TenantId(1), lc(120_000, 100, slo_us), 120_000.0);
    lc_spec.conns = 16;
    lc_spec.client_threads = 4;
    tb.add_workload(lc_spec).expect("LC admitted");

    let mut be_spec =
        WorkloadSpec::open_loop("be-writer", TenantId(2), TenantClass::BestEffort, 200_000.0);
    be_spec.read_pct = 25;
    be_spec.conns = 16;
    be_spec.client_threads = 4;
    tb.add_workload(be_spec).expect("BE always admitted");

    tb.run(SimDuration::from_millis(100));
    tb.begin_measurement();
    tb.run(SimDuration::from_millis(400));
    let report = tb.report();
    let lc_w = report.workload("lc");
    assert!(
        lc_w.iops > 110_000.0,
        "LC throughput {} below its 120K reservation",
        lc_w.iops
    );
    let p95 = lc_w.p95_read_us();
    assert!(
        p95 < slo_us as f64 * 1.1,
        "LC p95 {p95}us violates the {slo_us}us SLO"
    );
    // The BE tenant is heavily rate-limited but not starved.
    let be_w = report.workload("be-writer");
    assert!(be_w.iops > 5_000.0, "BE starved: {}", be_w.iops);
}

#[test]
fn without_qos_interference_destroys_tail_latency() {
    // Same scenario with the scheduler effectively disabled: tokens are
    // unlimited, so the write burst floods the device and the reader's
    // p95 collapses (Figure 5a, "I/O sched disabled").
    let mut tb = Testbed::builder()
        .seed(9)
        .capacity(CapacityProfile::unlimited())
        .build();
    let mut lc_spec = WorkloadSpec::open_loop("lc", TenantId(1), lc(120_000, 100, 500), 120_000.0);
    lc_spec.conns = 16;
    lc_spec.client_threads = 4;
    tb.add_workload(lc_spec).expect("admitted");
    let mut be_spec =
        WorkloadSpec::open_loop("be-writer", TenantId(2), TenantClass::BestEffort, 200_000.0);
    be_spec.read_pct = 25;
    be_spec.conns = 16;
    be_spec.client_threads = 4;
    tb.add_workload(be_spec).expect("admitted");

    tb.run(SimDuration::from_millis(100));
    tb.begin_measurement();
    tb.run(SimDuration::from_millis(400));
    let report = tb.report();
    let p95 = report.workload("lc").p95_read_us();
    assert!(
        p95 > 1_000.0,
        "without QoS the reader's p95 should collapse; got {p95}us"
    );
}

#[test]
fn admission_control_rejects_oversubscription() {
    let mut tb = Testbed::builder().seed(10).build();
    // 330K tokens/s available at 500us (simulated device A). The first
    // tenant reserves 0.8*100K*1 + 0.2*100K*10 = 280K tokens/s.
    tb.add_workload(WorkloadSpec::open_loop(
        "a",
        TenantId(1),
        lc(100_000, 80, 500),
        10_000.0,
    ))
    .expect("280K of 330K fits");
    // Another 280K would oversubscribe: rejected.
    let err = tb.add_workload(WorkloadSpec::open_loop(
        "b",
        TenantId(2),
        lc(100_000, 80, 500),
        10_000.0,
    ));
    assert!(
        matches!(err, Err(TestbedError::Admission(_))),
        "oversubscription must be rejected"
    );
    // A modest third tenant still fits (40K more -> 320K total).
    tb.add_workload(WorkloadSpec::open_loop(
        "c",
        TenantId(3),
        lc(40_000, 100, 500),
        10_000.0,
    ))
    .expect("40K more fits in 330K");
}

#[test]
fn multi_thread_server_scales_throughput() {
    let mut tb = Testbed::builder()
        .seed(11)
        .server(ServerConfig {
            threads: 2,
            max_threads: 2,
            ..ServerConfig::default()
        })
        .client_machines(vec![StackProfile::ix_tcp(), StackProfile::ix_tcp()])
        .link(reflex_net::LinkConfig::forty_gbe())
        .build();
    for i in 0..2u32 {
        let mut spec = WorkloadSpec::open_loop(
            &format!("t{i}"),
            TenantId(i + 1),
            TenantClass::BestEffort,
            700_000.0,
        );
        spec.io_size = 1024;
        spec.conns = 64;
        spec.client_threads = 8;
        spec.client_machine = i as usize;
        tb.add_workload(spec).expect("admitted");
    }
    tb.run(SimDuration::from_millis(60));
    tb.begin_measurement();
    tb.run(SimDuration::from_millis(150));
    let report = tb.report();
    let total: f64 = report.workloads.iter().map(|w| w.iops).sum();
    // Two cores: the device's ~1M read-only IOPS becomes the limit
    // (queueing keeps the achieved rate slightly below the ceiling).
    assert!(
        (850_000.0..1_100_000.0).contains(&total),
        "2-core ReFlex should approach the device limit; got {total}"
    );
}

#[test]
fn identical_seeds_give_identical_results() {
    let run = || {
        let mut tb = Testbed::builder().seed(123).build();
        let mut spec = WorkloadSpec::open_loop("x", TenantId(1), lc(100_000, 90, 1_000), 90_000.0);
        spec.read_pct = 90;
        spec.conns = 8;
        tb.add_workload(spec).expect("admitted");
        tb.run(SimDuration::from_millis(50));
        tb.begin_measurement();
        tb.run(SimDuration::from_millis(100));
        let r = tb.report();
        let w = r.workload("x");
        (
            w.iops.to_bits(),
            w.read_latency.count(),
            w.p95_read_us().to_bits(),
            w.write_latency.count(),
        )
    };
    assert_eq!(run(), run(), "simulation must be deterministic");
}

#[test]
fn sequential_pattern_walks_the_namespace() {
    let mut tb = Testbed::builder().seed(12).build();
    let mut spec = WorkloadSpec::closed_loop("seq", TenantId(1), TenantClass::BestEffort, 4);
    spec.addr_pattern = reflex_core::AddrPattern::Sequential;
    spec.namespace = (0, 64 * 4096);
    tb.add_workload(spec).expect("admitted");
    tb.run(SimDuration::from_millis(20));
    tb.begin_measurement();
    tb.run(SimDuration::from_millis(50));
    let report = tb.report();
    let w = report.workload("seq");
    assert!(w.errors == 0, "sequential wraparound must stay in range");
    assert!(w.iops > 1_000.0);
}

#[test]
fn deficit_notifications_surface_in_report() {
    // A tenant whose SLO reserves far less than it issues hits NEG_LIMIT
    // and gets flagged for renegotiation.
    let mut tb = Testbed::builder().seed(13).build();
    let mut spec = WorkloadSpec::open_loop("greedy", TenantId(1), lc(10_000, 100, 500), 80_000.0);
    spec.conns = 8;
    tb.add_workload(spec).expect("admitted");
    tb.run(SimDuration::from_millis(50));
    tb.begin_measurement();
    tb.run(SimDuration::from_millis(200));
    let report = tb.report();
    assert!(
        report.renegotiations.contains(&TenantId(1)),
        "greedy tenant should be flagged; got {:?}",
        report.renegotiations
    );
    // And it must have been rate-limited to roughly its reservation.
    let w = report.workload("greedy");
    assert!(
        w.iops < 30_000.0,
        "rate limiting failed: greedy got {} IOPS on a 10K SLO",
        w.iops
    );
}
