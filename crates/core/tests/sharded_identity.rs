//! Sharded execution must be invisible in the results: running the same
//! testbed on 1, 2 or 4 shards produces byte-identical reports (the
//! conservative-PDES window exchange delivers cross-shard messages in a
//! deterministic total order, and every generator draws from its own RNG
//! stream).

use reflex_core::{AddrPattern, ArrivalProcess, ServerConfig, Testbed, WorkloadSpec};
use reflex_net::{LinkConfig, StackProfile};
use reflex_qos::{SloSpec, TenantClass, TenantId};
use reflex_sim::{LookaheadPolicy, SimDuration};

fn lc(iops: u64, read_pct: u8, p95_us: u64) -> TenantClass {
    TenantClass::LatencyCritical(SloSpec::new(
        iops,
        read_pct,
        SimDuration::from_micros(p95_us),
    ))
}

/// A deliberately messy scenario: four client machines, two server
/// threads, open- and closed-loop generators, uniform/zipfian/sequential
/// address patterns, mixed read ratios.
fn run_signature(shards: usize) -> String {
    run_signature_policy(shards, LookaheadPolicy::Adaptive)
}

fn run_signature_policy(shards: usize, policy: LookaheadPolicy) -> String {
    run_signature_with(shards, policy, false)
}

/// Same scenario with the split-dataplane flag: dataplane threads (not
/// just client machines) distribute across shards, the token bucket is a
/// lease ledger, and the device applies staged commands on the window
/// grid. Split-mode signatures are compared only against split-mode
/// signatures — the lease quantization legitimately differs from the
/// shared-bucket results.
fn run_split_signature(shards: usize) -> String {
    run_signature_with(shards, LookaheadPolicy::Adaptive, true)
}

fn run_signature_with(shards: usize, policy: LookaheadPolicy, split: bool) -> String {
    let mut tb = Testbed::builder()
        .seed(2027)
        .server_threads(2)
        .client_machines(vec![StackProfile::ix_tcp(); 4])
        .build();
    if split {
        assert_eq!(
            tb.enable_split_dataplane(),
            Ok(()),
            "scenario supports splitting"
        );
    }
    let mut tb = tb.with_shards(shards);
    tb.set_lookahead_policy(policy);

    let mut w0 = WorkloadSpec::open_loop("lc-zipf", TenantId(1), lc(80_000, 95, 1_000), 80_000.0);
    w0.conns = 8;
    w0.client_threads = 2;
    w0.client_machine = 0;
    w0.addr_pattern = AddrPattern::Zipfian {
        theta_permille: 900,
    };
    tb.add_workload(w0).expect("admitted");

    let mut w1 = WorkloadSpec::closed_loop("be-closed", TenantId(2), TenantClass::BestEffort, 8);
    w1.conns = 4;
    w1.client_machine = 1;
    w1.read_pct = 70;
    tb.add_workload(w1).expect("admitted");

    let mut w2 =
        WorkloadSpec::open_loop("be-paced", TenantId(3), TenantClass::BestEffort, 40_000.0);
    w2.conns = 4;
    w2.client_machine = 2;
    w2.arrival = ArrivalProcess::Paced;
    w2.addr_pattern = AddrPattern::Sequential;
    tb.add_workload(w2).expect("admitted");

    let mut w3 =
        WorkloadSpec::open_loop("be-writer", TenantId(4), TenantClass::BestEffort, 30_000.0);
    w3.conns = 4;
    w3.client_machine = 3;
    w3.read_pct = 20;
    tb.add_workload(w3).expect("admitted");

    tb.run(SimDuration::from_millis(20));
    tb.begin_measurement();
    tb.run(SimDuration::from_millis(60));
    let r = tb.report();
    // `engine_events` is deliberately excluded: it counts dispatched wake
    // events, and two same-instant wakes merge into one dispatch when
    // their machines share a world but not when a shard boundary
    // separates them. Simulation *results* are unaffected.
    format!(
        "window={:?} workloads={:?} threads={:?} tokens={} device={:?} renegs={:?}",
        r.window,
        r.workloads,
        r.threads,
        r.token_usage_per_sec.to_bits(),
        r.device,
        r.renegotiations,
    )
}

/// The fig4-shaped hot scenario: 1KB open-loop requests from four client
/// machines driving one dataplane thread near saturation over 40GbE. At
/// this rate the thread's `core_busy` horizon runs ahead of arrival
/// bounds, which is the regime where the mono run's folded wake hint
/// (`max(next_arrival, core_busy)`) and the window exchange's raw-bound
/// arm must still produce identical pump instants.
fn run_hot_signature(shards: usize) -> String {
    run_hot_signature_with(shards, false)
}

fn run_hot_signature_with(shards: usize, split: bool) -> String {
    let mut tb = Testbed::builder()
        .seed(31)
        .server(ServerConfig {
            threads: 1,
            max_threads: 1,
            ..ServerConfig::default()
        })
        .client_machines(vec![StackProfile::ix_tcp(); 4])
        .link(LinkConfig::forty_gbe())
        .build();
    if split {
        assert_eq!(
            tb.enable_split_dataplane(),
            Ok(()),
            "scenario supports splitting"
        );
    }
    let mut tb = tb.with_shards(shards);
    for i in 0..4 {
        let mut spec = WorkloadSpec::open_loop(
            &format!("load{i}"),
            TenantId(i as u32 + 1),
            TenantClass::BestEffort,
            90_000.0,
        );
        spec.io_size = 1024;
        spec.conns = 8;
        spec.client_threads = 1;
        spec.client_machine = i;
        tb.add_workload(spec).expect("admitted");
    }
    tb.run(SimDuration::from_millis(10));
    tb.begin_measurement();
    tb.run(SimDuration::from_millis(50));
    let r = tb.report();
    format!(
        "workloads={:?} threads={:?} tokens={} device={:?}",
        r.workloads,
        r.threads,
        r.token_usage_per_sec.to_bits(),
        r.device,
    )
}

#[test]
fn two_shards_match_single_shard() {
    assert_eq!(run_signature(1), run_signature(2));
}

#[test]
fn four_shards_match_single_shard() {
    assert_eq!(run_signature(1), run_signature(4));
}

#[test]
fn repeated_sharded_runs_are_stable() {
    // Thread scheduling must not leak into results: the same sharded run
    // twice gives the same bytes.
    assert_eq!(run_signature(4), run_signature(4));
}

#[test]
fn shard_count_beyond_clients_clamps() {
    // More shards than client machines just clamps; still identical.
    assert_eq!(run_signature(1), run_signature(16));
}

#[test]
fn hot_single_thread_matches() {
    assert_eq!(run_hot_signature(1), run_hot_signature(2));
}

// Split-dataplane identity: with `enable_split_dataplane` the two server
// threads get their own shards (plus NIC lanes, device replicas and lease
// ledgers), and the results must still be byte-identical to the
// split-mode single-shard run at every shard count.

#[test]
fn split_two_shards_match_split_single_shard() {
    assert_eq!(run_split_signature(1), run_split_signature(2));
}

#[test]
fn split_four_shards_match_split_single_shard() {
    assert_eq!(run_split_signature(1), run_split_signature(4));
}

#[test]
fn split_shard_count_beyond_entities_clamps() {
    // 16 shards requested, 2 threads + 4 clients available: clamps to 6,
    // still identical.
    assert_eq!(run_split_signature(1), run_split_signature(16));
}

#[test]
fn split_hot_single_thread_matches() {
    // The near-saturation single-thread regime from
    // `hot_single_thread_matches`, with the split machinery (lanes,
    // windowed device, lease ledger) switched on.
    assert_eq!(
        run_hot_signature_with(1, true),
        run_hot_signature_with(2, true)
    );
}

#[test]
fn lookahead_policy_is_invisible_in_results() {
    // The adaptive event-horizon extension only changes *when* shards
    // rendezvous, never what they compute: both policies must match the
    // single-shard bytes exactly.
    let single = run_signature(1);
    assert_eq!(single, run_signature_policy(4, LookaheadPolicy::GlobalMin));
    assert_eq!(single, run_signature_policy(4, LookaheadPolicy::Adaptive));
}
