//! Error paths of the testbed and server configuration.

use reflex_core::{LoadPattern, Testbed, TestbedError, WorkloadSpec};
use reflex_qos::{SloSpec, TenantClass, TenantId};
use reflex_sim::SimDuration;

#[test]
fn duplicate_tenant_ids_rejected() {
    let mut tb = Testbed::builder().seed(1).build();
    tb.add_workload(WorkloadSpec::open_loop(
        "a",
        TenantId(1),
        TenantClass::BestEffort,
        1_000.0,
    ))
    .expect("first registration fine");
    let err = tb.add_workload(WorkloadSpec::open_loop(
        "b",
        TenantId(1),
        TenantClass::BestEffort,
        1_000.0,
    ));
    assert!(matches!(err, Err(TestbedError::Admission(_))), "{err:?}");
}

#[test]
fn unknown_client_machine_rejected() {
    let mut tb = Testbed::builder().seed(2).build();
    let mut spec = WorkloadSpec::open_loop("a", TenantId(1), TenantClass::BestEffort, 1_000.0);
    spec.client_machine = 7;
    assert!(matches!(
        tb.add_workload(spec),
        Err(TestbedError::NoSuchClient(7))
    ));
}

#[test]
fn invalid_specs_rejected_with_reasons() {
    let mut tb = Testbed::builder().seed(3).build();
    let base = || WorkloadSpec::open_loop("x", TenantId(1), TenantClass::BestEffort, 1_000.0);

    let mut s = base();
    s.io_size = 0;
    assert!(matches!(
        tb.add_workload(s),
        Err(TestbedError::InvalidSpec(_))
    ));

    let mut s = base();
    s.conns = 0;
    assert!(matches!(
        tb.add_workload(s),
        Err(TestbedError::InvalidSpec(_))
    ));

    let mut s = base();
    s.pattern = LoadPattern::ClosedLoop { queue_depth: 0 };
    assert!(matches!(
        tb.add_workload(s),
        Err(TestbedError::InvalidSpec(_))
    ));

    let mut s = base();
    s.namespace = (u64::MAX - 4096, 8192);
    assert!(matches!(
        tb.add_workload(s),
        Err(TestbedError::InvalidSpec(_))
    ));
}

#[test]
fn rejected_workload_leaves_no_tenant_behind() {
    let mut tb = Testbed::builder().seed(4).build();
    // Oversubscribe: rejected by admission...
    let slo = SloSpec::new(1_000_000, 50, SimDuration::from_micros(200));
    let err = tb.add_workload(WorkloadSpec::open_loop(
        "huge",
        TenantId(1),
        TenantClass::LatencyCritical(slo),
        10_000.0,
    ));
    assert!(err.is_err());
    // ...and the id is immediately reusable.
    tb.add_workload(WorkloadSpec::open_loop(
        "ok",
        TenantId(1),
        TenantClass::BestEffort,
        1_000.0,
    ))
    .expect("id was not leaked by the failed registration");
}

#[test]
fn error_display_is_informative() {
    let mut tb = Testbed::builder().seed(5).build();
    let mut spec = WorkloadSpec::open_loop("x", TenantId(1), TenantClass::BestEffort, 1_000.0);
    spec.io_size = 0;
    let msg = tb.add_workload(spec).unwrap_err().to_string();
    assert!(msg.contains("io_size"), "unhelpful error: {msg}");

    let slo = SloSpec::new(1_000_000, 50, SimDuration::from_micros(200));
    let msg = tb
        .add_workload(WorkloadSpec::open_loop(
            "huge",
            TenantId(2),
            TenantClass::LatencyCritical(slo),
            1.0,
        ))
        .unwrap_err()
        .to_string();
    assert!(msg.contains("tokens/s"), "unhelpful admission error: {msg}");
}
