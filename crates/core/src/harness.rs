//! The server-side interface the [`Testbed`](crate::Testbed) drives.
//!
//! The ReFlex server implements it natively; the baseline servers (iSCSI,
//! libaio+libevent) in `reflex-baselines` implement it too, so every
//! comparison in the evaluation runs through the *same* clients, fabric,
//! device and measurement code — only the server under test changes.

use std::collections::HashMap;

use reflex_dataplane::{AclEntry, ThreadStats, WireMsg};
use reflex_flash::FlashDevice;
use reflex_net::{ConnId, Fabric, MachineId, NicQueueId};
use reflex_qos::{TenantClass, TenantId, TokenPool};
use reflex_sim::{SimDuration, SimTime};
use reflex_telemetry::Telemetry;

use crate::server::AdmissionError;

/// A server under test: owns its dataplane/worker threads and NVMe queue
/// pairs, serves requests arriving on its machine's NIC queues, and sends
/// responses back over the fabric.
pub trait ServerHarness: Send {
    /// The server's machine on the fabric.
    fn machine(&self) -> MachineId;

    /// Whether the server's connection → thread routing is static for the
    /// whole run, which is what sharded execution needs: client shards
    /// cache routes at bind time and never see later rebalancing. Servers
    /// that migrate connections at runtime (e.g. autoscaling) return
    /// `false`, and [`Testbed::with_shards`](crate::Testbed::with_shards)
    /// silently stays single-shard.
    fn supports_sharding(&self) -> bool {
        true
    }

    /// Whether the server supports split-dataplane sharding: one shard per
    /// worker thread, with the QoS token state carried as deterministic
    /// per-shard leases. Requires static thread/queue/qp assignment
    /// (`thread i` ↔ `NicQueueId(i)` ↔ `QpId(i)`) for the whole run and a
    /// server that can be [`replicate`](Self::replicate)d. Defaults to
    /// `false`; [`Testbed::enable_split_dataplane`]
    /// (crate::Testbed::enable_split_dataplane) falls back to the unified
    /// dataplane (with a stderr note) when unsupported.
    fn supports_split(&self) -> bool {
        false
    }

    /// Replaces the token pool shared by the server's worker schedulers
    /// (split-dataplane mode installs per-shard lease ledgers here).
    /// Servers without a QoS scheduler ignore it.
    fn set_token_pool(&mut self, _pool: TokenPool) {}

    /// Clones this server into a pristine replica for another shard:
    /// same configuration and thread layout, no tenants or connections.
    /// Only meaningful before any workload is registered; servers that do
    /// not support splitting return `None`.
    fn replicate(&self, _now: SimTime) -> Option<Self>
    where
        Self: Sized,
    {
        None
    }

    /// Number of active worker threads.
    fn active_threads(&self) -> usize;

    /// Upper bound on worker threads over the run (for wake bookkeeping).
    fn max_threads(&self) -> usize {
        self.active_threads()
    }

    /// The NIC receive queue thread `i` polls.
    fn nic_queue(&self, thread: usize) -> NicQueueId;

    /// Registers a tenant (admission control where supported). Returns the
    /// worker thread the tenant was placed on.
    ///
    /// # Errors
    ///
    /// [`AdmissionError`] on duplicates or SLO rejection.
    fn register_tenant(
        &mut self,
        id: TenantId,
        class: TenantClass,
        acl: AclEntry,
        io_size: u32,
    ) -> Result<usize, AdmissionError>;

    /// Registers a tenant sharded across `shards` worker threads (the
    /// ReFlex server implements this; harness servers without sharding
    /// support fall back to single-thread registration when `shards == 1`
    /// and reject otherwise).
    ///
    /// # Errors
    ///
    /// [`AdmissionError`] on duplicates, rejection, or lack of support.
    fn register_tenant_sharded(
        &mut self,
        id: TenantId,
        class: TenantClass,
        acl: AclEntry,
        io_size: u32,
        shards: u32,
    ) -> Result<Vec<usize>, AdmissionError> {
        if shards == 1 {
            return self
                .register_tenant(id, class, acl, io_size)
                .map(|t| vec![t]);
        }
        Err(AdmissionError::NotAdmissible {
            required: shards as f64,
            available: 1.0,
        })
    }

    /// Binds a client connection to a tenant; returns (thread, queue).
    ///
    /// # Errors
    ///
    /// [`AdmissionError::Unknown`] for unknown tenants.
    fn bind_connection(
        &mut self,
        conn: ConnId,
        tenant: TenantId,
        client: MachineId,
    ) -> Result<(usize, NicQueueId), AdmissionError>;

    /// The NIC queue currently serving `conn`.
    fn route(&self, conn: ConnId) -> Option<NicQueueId>;

    /// The worker thread currently serving `conn`.
    fn thread_of_conn(&self, conn: ConnId) -> Option<usize>;

    /// Runs worker `i`'s processing loop at `now`; returns the next wake.
    fn pump_thread(
        &mut self,
        i: usize,
        now: SimTime,
        fabric: &mut Fabric<WireMsg>,
        device: &mut FlashDevice,
    ) -> Option<SimTime>;

    /// Periodic control-plane tick; returns tenants flagged for SLO
    /// renegotiation. Servers without a control plane do nothing.
    fn control_tick(&mut self, _now: SimTime, _window: SimDuration) -> Vec<TenantId> {
        Vec::new()
    }

    /// Installs a telemetry handle on the server's workers. Servers
    /// without instrumentation ignore it (the testbed still records
    /// client-side and fabric telemetry around them).
    fn set_telemetry(&mut self, _telemetry: Telemetry) {}

    /// Cumulative CPU time of worker `i`.
    fn busy_time(&self, i: usize) -> SimDuration;

    /// Cumulative QoS-scheduling CPU time of worker `i` (zero when the
    /// server has no scheduler).
    fn sched_time(&self, _i: usize) -> SimDuration {
        SimDuration::ZERO
    }

    /// Dataplane-style statistics for worker `i`, when available.
    fn thread_stats(&self, _i: usize) -> Option<ThreadStats> {
        None
    }

    /// Cumulative millitokens spent per tenant (empty without a QoS
    /// scheduler).
    fn tenants_spent_millitokens(&self) -> HashMap<TenantId, i64> {
        HashMap::new()
    }

    /// Tenants flagged for renegotiation so far.
    fn renegotiations(&self) -> Vec<TenantId> {
        Vec::new()
    }
}
