//! # reflex-core — the assembled ReFlex system
//!
//! Brings the reproduction together: the multi-thread [`ReflexServer`] with
//! its local control plane (admission control, token-rate management,
//! deficit monitoring, thread scaling), device capacity calibration, the
//! client models, and the [`Testbed`] that wires clients ↔ fabric ↔ server
//! ↔ Flash into one deterministic simulation for every experiment in the
//! paper's evaluation.
//!
//! # Examples
//!
//! ```
//! use reflex_core::{LoadPattern, Testbed, WorkloadSpec};
//! use reflex_qos::{SloSpec, TenantClass, TenantId};
//! use reflex_sim::SimDuration;
//!
//! let mut tb = Testbed::builder().server_threads(1).build();
//! let slo = SloSpec::new(50_000, 100, SimDuration::from_micros(500));
//! tb.add_workload(WorkloadSpec::open_loop(
//!     "reader",
//!     TenantId(1),
//!     TenantClass::LatencyCritical(slo),
//!     50_000.0,
//! ))?;
//! tb.run(SimDuration::from_millis(20)); // warmup
//! tb.begin_measurement();
//! tb.run(SimDuration::from_millis(50));
//! let report = tb.report();
//! let reader = report.workload("reader");
//! assert!(reader.iops > 40_000.0);
//! # Ok::<(), reflex_core::TestbedError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod capacity;
mod client;
mod cluster;
mod harness;
mod replica;
mod server;
mod testbed;

pub use capacity::{
    calibrate_capacity, sweep_device, sweep_device_point, sweep_device_sized, CapacityProfile,
};
pub use client::{
    AddrPattern, ArrivalProcess, LoadPattern, MixProcess, RetryPolicy, TraceOp, WorkloadReport,
    WorkloadSpec,
};
pub use cluster::{
    ClusterPlanner, FailoverReport, Migration, PlacementError, ServerDescriptor, ServerId,
    MIGRATION_STEP,
};
pub use harness::ServerHarness;
pub use replica::{
    quorum, FailoverAction, ReadPolicy, ReplicaFailover, ReplicaSet, ReplicaSets, MAX_REPLICAS,
};
pub use server::{AdmissionError, ControlPlaneStats, ReflexServer, ServerConfig};
pub use testbed::{
    ShardClamp, SplitFallback, Testbed, TestbedBuilder, TestbedError, TestbedReport, ThreadReport,
    World, WorldEvent,
};
