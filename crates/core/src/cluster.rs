//! The global control plane (paper §4.3, future work): manages Flash
//! resources across a cluster of ReFlex servers.
//!
//! The paper sketches two responsibilities we implement here:
//!
//! 1. **SLO-aware placement** — "the global control plane should try to
//!    co-locate tenants with similar tail latency requirements such that
//!    strict requirements of one tenant do not limit the IOPS available to
//!    other tenants." Because a server generates tokens at the capacity of
//!    its *strictest* registered SLO, putting a 200µs tenant on a server
//!    full of 2ms tenants collapses everyone's throughput; the planner
//!    scores that loss explicitly.
//! 2. **Capacity management** — admission against each server's capacity
//!    table, preferring the placement that preserves the most usable
//!    tokens cluster-wide.
//!
//! The planner is pure logic over server descriptors; driving actual
//! [`Testbed`](crate::Testbed)s from its decisions is up to the caller
//! (see `tests/cluster_planning.rs`).

use std::collections::HashMap;

use reflex_qos::{CostModel, SloSpec, TenantId};
use reflex_sim::SimDuration;
use reflex_telemetry::Telemetry;
use serde::{Deserialize, Serialize};

use crate::capacity::CapacityProfile;

/// Identifier of a ReFlex server within the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ServerId(pub u32);

/// The global control plane's view of one ReFlex server.
#[derive(Debug, Clone)]
pub struct ServerDescriptor {
    /// Server identity.
    pub id: ServerId,
    /// The server's device capacity table.
    pub capacity: CapacityProfile,
    /// Cost model of the server's device.
    pub cost_model: CostModel,
    /// LC tenants currently placed there.
    tenants: HashMap<TenantId, SloSpec>,
}

impl ServerDescriptor {
    /// Describes a server with no tenants.
    pub fn new(id: ServerId, capacity: CapacityProfile, cost_model: CostModel) -> Self {
        ServerDescriptor {
            id,
            capacity,
            cost_model,
            tenants: HashMap::new(),
        }
    }

    /// The strictest latency bound among placed tenants.
    pub fn strictest_slo(&self) -> Option<SimDuration> {
        self.tenants.values().map(|s| s.p95_read_latency).min()
    }

    /// Total tokens/sec reserved by placed tenants (4KB basis).
    pub fn reserved_tokens_per_sec(&self) -> f64 {
        self.tenants
            .values()
            .map(|s| s.token_rate(&self.cost_model, 4096).as_tokens_per_sec_f64())
            .sum()
    }

    /// Usable token rate given the (hypothetical) strictest bound.
    fn usable_at(&self, strictest: Option<SimDuration>) -> f64 {
        match strictest {
            Some(bound) => self.capacity.tokens_per_sec_at(bound),
            None => self.capacity.max_rate().as_tokens_per_sec_f64(),
        }
    }

    /// Unreserved tokens/sec at the current strictest bound.
    pub fn headroom_tokens_per_sec(&self) -> f64 {
        (self.usable_at(self.strictest_slo()) - self.reserved_tokens_per_sec()).max(0.0)
    }

    /// Number of placed tenants.
    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }
}

/// Why a tenant could not be placed anywhere in the cluster.
#[derive(Debug, Clone, PartialEq)]
pub enum PlacementError {
    /// No server can honour the SLO without violating existing ones.
    NoCapacity {
        /// Tokens/sec the SLO needs.
        required: f64,
        /// Largest compatible headroom found.
        best_available: f64,
    },
    /// The tenant id is already placed.
    Duplicate(TenantId),
    /// The tenant id is unknown (removal).
    Unknown(TenantId),
    /// The server id is unknown (failure handling).
    UnknownServer(ServerId),
}

impl std::fmt::Display for PlacementError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlacementError::NoCapacity {
                required,
                best_available,
            } => write!(
                f,
                "no server can host the SLO: needs {required:.0} tokens/s, best {best_available:.0}"
            ),
            PlacementError::Duplicate(t) => write!(f, "{t} already placed"),
            PlacementError::Unknown(t) => write!(f, "{t} not placed"),
            PlacementError::UnknownServer(s) => write!(f, "no server {}", s.0),
        }
    }
}

/// One tenant's re-placement after a server death.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Migration {
    /// The displaced tenant.
    pub tenant: TenantId,
    /// The surviving server it moved to.
    pub to: ServerId,
    /// Estimated time from failure *detection* until this tenant is
    /// re-admitted on `to`: migrations are processed strictest-SLO first
    /// through one control-plane work queue, so the k-th migration queues
    /// behind k-1 re-admissions at [`MIGRATION_STEP`] each.
    pub latency_estimate: SimDuration,
}

/// Modelled control-plane re-admission time per migrated tenant:
/// re-running admission control, installing token schedules, and
/// rebinding connections on the new home.
pub const MIGRATION_STEP: SimDuration = SimDuration::from_millis(1);

/// Outcome of a server failure: where every displaced tenant went.
#[derive(Debug, Clone, PartialEq)]
pub struct FailoverReport {
    /// The server that died.
    pub failed: ServerId,
    /// Tenants re-placed, in re-placement order (strictest SLO first),
    /// with their new server and a migration latency estimate.
    pub migrated: Vec<Migration>,
    /// Tenants no surviving server could host without violating an SLO;
    /// they are evicted from the cluster and must be re-admitted later.
    pub stranded: Vec<(TenantId, PlacementError)>,
}

impl FailoverReport {
    /// Estimated time from the failure itself until the *last* migrated
    /// tenant is serving again: failure detection plus the queued
    /// re-admission work (zero migrations estimate as `detection` alone).
    pub fn total_recovery_estimate(&self, detection: SimDuration) -> SimDuration {
        detection
            + self
                .migrated
                .last()
                .map_or(SimDuration::ZERO, |m| m.latency_estimate)
    }
}

impl std::error::Error for PlacementError {}

/// The cluster-wide tenant placer.
///
/// # Examples
///
/// ```
/// use reflex_core::{CapacityProfile, ClusterPlanner, ServerDescriptor, ServerId};
/// use reflex_qos::{CostModel, SloSpec, TenantId};
/// use reflex_sim::SimDuration;
///
/// let mut planner = ClusterPlanner::new(vec![
///     ServerDescriptor::new(ServerId(0), CapacityProfile::device_a_default(), CostModel::for_device_a()),
///     ServerDescriptor::new(ServerId(1), CapacityProfile::device_a_default(), CostModel::for_device_a()),
/// ]);
/// let slo = SloSpec::new(100_000, 100, SimDuration::from_micros(500));
/// let placed_on = planner.place(TenantId(1), slo).expect("cluster has room");
/// assert!(placed_on == ServerId(0) || placed_on == ServerId(1));
/// ```
#[derive(Debug)]
pub struct ClusterPlanner {
    servers: Vec<ServerDescriptor>,
    placements: HashMap<TenantId, ServerId>,
    telemetry: Telemetry,
}

impl ClusterPlanner {
    /// Creates a planner over the given servers.
    ///
    /// # Panics
    ///
    /// Panics if `servers` is empty or contains duplicate ids.
    pub fn new(servers: Vec<ServerDescriptor>) -> Self {
        assert!(!servers.is_empty(), "a cluster needs servers");
        let mut ids: Vec<ServerId> = servers.iter().map(|s| s.id).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), servers.len(), "duplicate server ids");
        ClusterPlanner {
            servers,
            placements: HashMap::new(),
            telemetry: Telemetry::disabled(),
        }
    }

    /// Installs a telemetry handle; failovers then surface
    /// `cluster.migrations_total` / `cluster.stranded_total` counters in
    /// snapshots.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// The server descriptors.
    pub fn servers(&self) -> &[ServerDescriptor] {
        &self.servers
    }

    /// Where a tenant is placed, if anywhere.
    pub fn placement_of(&self, id: TenantId) -> Option<ServerId> {
        self.placements.get(&id).copied()
    }

    /// Cluster-wide usable tokens/sec (each server at its own strictest
    /// bound) minus reservations — the quantity placement tries to
    /// preserve.
    pub fn total_headroom(&self) -> f64 {
        self.servers
            .iter()
            .map(|s| s.headroom_tokens_per_sec())
            .sum()
    }

    /// Places an LC tenant on the server that (a) can honour the SLO and
    /// (b) loses the least cluster-wide headroom by accepting it — which
    /// naturally co-locates tenants with similar latency bounds, because
    /// putting a strict tenant on a relaxed server shrinks that server's
    /// whole token budget.
    ///
    /// # Errors
    ///
    /// See [`PlacementError`].
    pub fn place(&mut self, id: TenantId, slo: SloSpec) -> Result<ServerId, PlacementError> {
        self.place_excluding(id, slo, &[])
    }

    /// [`place`](Self::place) restricted to servers outside `exclude` —
    /// the anti-affinity primitive replica placement needs: a tenant's
    /// R-th copy must not share a server with its first R-1.
    ///
    /// # Errors
    ///
    /// See [`PlacementError`]; excluding every server reports
    /// [`PlacementError::NoCapacity`] with zero available.
    pub fn place_excluding(
        &mut self,
        id: TenantId,
        slo: SloSpec,
        exclude: &[ServerId],
    ) -> Result<ServerId, PlacementError> {
        if self.placements.contains_key(&id) {
            return Err(PlacementError::Duplicate(id));
        }
        let required =
            |s: &ServerDescriptor| slo.token_rate(&s.cost_model, 4096).as_tokens_per_sec_f64();

        let mut best: Option<(usize, (f64, f64))> = None;
        let mut best_available = 0.0f64;
        for (i, s) in self.servers.iter().enumerate() {
            if exclude.contains(&s.id) {
                continue;
            }
            let req = required(s);
            let new_strictest = match s.strictest_slo() {
                Some(cur) => cur.min(slo.p95_read_latency),
                None => slo.p95_read_latency,
            };
            let usable_after = s.usable_at(Some(new_strictest));
            let available = usable_after - s.reserved_tokens_per_sec();
            best_available = best_available.max(available);
            if available < req {
                continue; // would violate someone's SLO
            }
            // Primary score: headroom existing tenants lose when the
            // server's budget tightens (zero on an empty server), plus the
            // reservation itself. Secondary: latency-class affinity — how
            // much looser this tenant is than the server's (new) strictest
            // bound; similar classes pack together.
            let tightening_loss = match s.strictest_slo() {
                Some(_) => s.usable_at(s.strictest_slo()) - usable_after,
                None => 0.0,
            };
            let loss = tightening_loss + req;
            let affinity =
                (slo.p95_read_latency.as_micros_f64() - new_strictest.as_micros_f64()).abs();
            let score = (loss, affinity);
            match best {
                Some((_, best_score)) if best_score <= score => {}
                _ => best = Some((i, score)),
            }
        }
        let Some((idx, _)) = best else {
            return Err(PlacementError::NoCapacity {
                required: required(&self.servers[0]),
                best_available,
            });
        };
        self.servers[idx].tenants.insert(id, slo);
        let sid = self.servers[idx].id;
        self.placements.insert(id, sid);
        Ok(sid)
    }

    /// Handles the death of a whole server (paper §4.3: "the control
    /// plane ... reassigns tenants when a server or device fails").
    ///
    /// The dead server is dropped from the cluster and each of its tenants
    /// is re-placed through the normal SLO-aware [`place`](Self::place)
    /// path — so the survivor chosen for each tenant is the feasible
    /// server that preserves the most cluster-wide tokens. Tenants are
    /// re-placed strictest SLO first (ties broken by tenant id) so the
    /// hardest placements get first pick of the remaining headroom; the
    /// order is fully deterministic. Tenants that no survivor can host are
    /// evicted and returned as stranded.
    ///
    /// # Errors
    ///
    /// [`PlacementError::UnknownServer`] if `dead` is not in the cluster;
    /// nothing is modified in that case.
    pub fn fail_server(&mut self, dead: ServerId) -> Result<FailoverReport, PlacementError> {
        let idx = self
            .servers
            .iter()
            .position(|s| s.id == dead)
            .ok_or(PlacementError::UnknownServer(dead))?;
        let dead_server = self.servers.remove(idx);
        let mut orphans: Vec<(TenantId, SloSpec)> = dead_server.tenants.into_iter().collect();
        orphans.sort_by_key(|(id, slo)| (slo.p95_read_latency, *id));
        for (id, _) in &orphans {
            self.placements.remove(id);
        }
        let mut report = FailoverReport {
            failed: dead,
            migrated: Vec::new(),
            stranded: Vec::new(),
        };
        for (id, slo) in orphans {
            if self.servers.is_empty() {
                report.stranded.push((
                    id,
                    PlacementError::NoCapacity {
                        required: slo
                            .token_rate(&dead_server.cost_model, 4096)
                            .as_tokens_per_sec_f64(),
                        best_available: 0.0,
                    },
                ));
                continue;
            }
            match self.place(id, slo) {
                Ok(sid) => report.migrated.push(Migration {
                    tenant: id,
                    to: sid,
                    latency_estimate: MIGRATION_STEP.mul_f64(report.migrated.len() as f64 + 1.0),
                }),
                Err(e) => report.stranded.push((id, e)),
            }
        }
        self.telemetry
            .count("cluster.migrations_total", report.migrated.len() as u64);
        self.telemetry
            .count("cluster.stranded_total", report.stranded.len() as u64);
        Ok(report)
    }

    /// Removes a tenant from the cluster.
    ///
    /// # Errors
    ///
    /// [`PlacementError::Unknown`] for unplaced ids.
    pub fn remove(&mut self, id: TenantId) -> Result<(), PlacementError> {
        let sid = self
            .placements
            .remove(&id)
            .ok_or(PlacementError::Unknown(id))?;
        let server = self
            .servers
            .iter_mut()
            .find(|s| s.id == sid)
            .expect("placement refers to a live server");
        server.tenants.remove(&id);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(n: u32) -> ClusterPlanner {
        ClusterPlanner::new(
            (0..n)
                .map(|i| {
                    ServerDescriptor::new(
                        ServerId(i),
                        CapacityProfile::device_a_default(),
                        CostModel::for_device_a(),
                    )
                })
                .collect(),
        )
    }

    fn slo(iops: u64, p95_us: u64) -> SloSpec {
        SloSpec::new(iops, 100, SimDuration::from_micros(p95_us))
    }

    #[test]
    fn strict_tenants_co_locate() {
        let mut planner = cluster(2);
        // A relaxed tenant seeds server A; a strict one seeds server B.
        let s_relaxed = planner.place(TenantId(1), slo(100_000, 2_000)).unwrap();
        let s_strict = planner.place(TenantId(2), slo(50_000, 300)).unwrap();
        assert_ne!(s_relaxed, s_strict, "mixed latency classes should separate");
        // Another strict tenant joins the strict server; another relaxed
        // one joins the relaxed server.
        assert_eq!(
            planner.place(TenantId(3), slo(50_000, 300)).unwrap(),
            s_strict
        );
        assert_eq!(
            planner.place(TenantId(4), slo(100_000, 2_000)).unwrap(),
            s_relaxed
        );
    }

    #[test]
    fn capacity_is_respected() {
        let mut planner = cluster(1);
        // 330K tokens/s at 500us on device A; 280K fits, another 280K not.
        planner
            .place(
                TenantId(1),
                SloSpec::new(100_000, 80, SimDuration::from_micros(500)),
            )
            .expect("280K of 330K");
        let err = planner
            .place(
                TenantId(2),
                SloSpec::new(100_000, 80, SimDuration::from_micros(500)),
            )
            .unwrap_err();
        assert!(matches!(err, PlacementError::NoCapacity { .. }), "{err}");
    }

    #[test]
    fn second_server_absorbs_overflow() {
        let mut planner = cluster(2);
        let a = planner
            .place(
                TenantId(1),
                SloSpec::new(100_000, 80, SimDuration::from_micros(500)),
            )
            .unwrap();
        let b = planner
            .place(
                TenantId(2),
                SloSpec::new(100_000, 80, SimDuration::from_micros(500)),
            )
            .unwrap();
        assert_ne!(a, b, "overflow should spill to the other server");
    }

    #[test]
    fn removal_frees_capacity() {
        let mut planner = cluster(1);
        planner
            .place(
                TenantId(1),
                SloSpec::new(100_000, 80, SimDuration::from_micros(500)),
            )
            .unwrap();
        assert!(planner
            .place(
                TenantId(2),
                SloSpec::new(100_000, 80, SimDuration::from_micros(500))
            )
            .is_err());
        planner.remove(TenantId(1)).unwrap();
        planner
            .place(
                TenantId(2),
                SloSpec::new(100_000, 80, SimDuration::from_micros(500)),
            )
            .expect("freed capacity is reusable");
        assert!(planner.remove(TenantId(1)).is_err());
    }

    #[test]
    fn duplicate_placement_rejected() {
        let mut planner = cluster(2);
        planner.place(TenantId(1), slo(10_000, 500)).unwrap();
        assert_eq!(
            planner.place(TenantId(1), slo(10_000, 500)),
            Err(PlacementError::Duplicate(TenantId(1)))
        );
    }

    #[test]
    fn fail_server_migrates_to_token_preserving_server() {
        let mut planner = cluster(3);
        // Two relaxed tenants seed one server; a strict tenant seeds
        // another; the third stays empty.
        let relaxed_home = planner.place(TenantId(1), slo(100_000, 2_000)).unwrap();
        assert_eq!(
            planner.place(TenantId(2), slo(100_000, 2_000)).unwrap(),
            relaxed_home
        );
        let strict_home = planner.place(TenantId(3), slo(50_000, 300)).unwrap();
        assert_ne!(relaxed_home, strict_home);

        let report = planner.fail_server(strict_home).unwrap();
        assert_eq!(report.failed, strict_home);
        assert!(report.stranded.is_empty(), "{:?}", report.stranded);
        assert_eq!(report.migrated.len(), 1);
        let Migration {
            tenant: id,
            to: new_home,
            latency_estimate,
        } = report.migrated[0];
        assert_eq!(id, TenantId(3));
        assert_eq!(latency_estimate, MIGRATION_STEP);
        assert_eq!(
            report.total_recovery_estimate(SimDuration::from_millis(30)),
            SimDuration::from_millis(31)
        );
        // Co-locating the strict tenant with the relaxed pair would
        // tighten their whole token budget; the empty server preserves
        // more cluster-wide tokens and must win.
        assert_ne!(new_home, relaxed_home);
        assert_ne!(new_home, strict_home);
        assert_eq!(planner.placement_of(TenantId(3)), Some(new_home));
    }

    #[test]
    fn fail_server_strands_tenants_no_server_can_honour() {
        let mut planner = cluster(2);
        // Each server takes one tenant close to its 500us capacity;
        // neither can absorb the other's.
        let big = SloSpec::new(100_000, 80, SimDuration::from_micros(500));
        let a = planner.place(TenantId(1), big).unwrap();
        let b = planner.place(TenantId(2), big).unwrap();
        assert_ne!(a, b);

        let report = planner.fail_server(b).unwrap();
        assert!(report.migrated.is_empty(), "{:?}", report.migrated);
        assert_eq!(report.stranded.len(), 1);
        let (id, ref err) = report.stranded[0];
        assert_eq!(id, TenantId(2));
        assert!(matches!(err, PlacementError::NoCapacity { .. }), "{err}");
        assert_eq!(planner.placement_of(TenantId(2)), None);
        // The survivor is untouched.
        assert_eq!(planner.placement_of(TenantId(1)), Some(a));
    }

    #[test]
    fn fail_server_re_places_strictest_tenants_first() {
        let mut planner = cluster(2);
        // A relaxed tenant anchors one server; two strict tenants of
        // different strictness co-locate on the other (joining the
        // relaxed server would tighten its whole budget).
        let relaxed_home = planner.place(TenantId(1), slo(100_000, 2_000)).unwrap();
        let doomed = planner.place(TenantId(2), slo(40_000, 300)).unwrap();
        assert_ne!(relaxed_home, doomed);
        assert_eq!(
            planner.place(TenantId(3), slo(40_000, 400)).unwrap(),
            doomed
        );

        let report = planner.fail_server(doomed).unwrap();
        // Both displaced tenants are accounted for, and the 300us tenant
        // is processed (and thus grabs surviving capacity) before the
        // 400us one.
        let mut order: Vec<TenantId> = report.migrated.iter().map(|m| m.tenant).collect();
        order.extend(report.stranded.iter().map(|&(id, _)| id));
        // Queued re-admission: the k-th migration waits behind the first
        // k-1, so estimates are strictly increasing.
        for pair in report.migrated.windows(2) {
            assert!(pair[0].latency_estimate < pair[1].latency_estimate);
        }
        assert_eq!(order.len(), 2, "{report:?}");
        let pos_strict = order.iter().position(|&id| id == TenantId(2)).unwrap();
        let pos_laxer = order.iter().position(|&id| id == TenantId(3)).unwrap();
        assert!(pos_strict < pos_laxer, "{report:?}");
    }

    #[test]
    fn fail_server_unknown_and_last_server() {
        let mut planner = cluster(1);
        assert_eq!(
            planner.fail_server(ServerId(9)),
            Err(PlacementError::UnknownServer(ServerId(9)))
        );
        planner.place(TenantId(1), slo(10_000, 500)).unwrap();
        // Killing the only server strands everything deterministically.
        let report = planner.fail_server(ServerId(0)).unwrap();
        assert!(report.migrated.is_empty());
        assert_eq!(report.stranded.len(), 1);
        assert!(planner.servers().is_empty());
    }

    #[test]
    fn headroom_accounts_for_strictness() {
        let mut planner = cluster(1);
        let before = planner.total_headroom();
        // Placing a strict tenant shrinks headroom by more than its own
        // reservation (the whole server budget tightens).
        planner.place(TenantId(1), slo(10_000, 200)).unwrap();
        let after = planner.total_headroom();
        let loss = before - after;
        assert!(
            loss > 10_000.0 * 2.0,
            "strict placement should cost more than its reservation: lost {loss:.0}"
        );
    }
}
