//! Client models and workload specifications.
//!
//! Two client shapes from the paper are modelled:
//!
//! * the **user-level client library** (§4.2) — applications open TCP
//!   connections and issue block reads/writes directly; client-side cost is
//!   the network stack's per-message CPU (IX clients are nearly free, Linux
//!   clients are bounded at ~70K msgs/s per thread);
//! * the **remote block device driver** (§4.2) — one hardware context
//!   (thread + socket) per core, no coalescing; modelled as a client with
//!   `threads` Linux-stack workers.
//!
//! A [`WorkloadSpec`] describes one tenant-bound stream of requests:
//! open-loop (mutilate-style Poisson arrivals) or closed-loop (FIO-style
//! fixed queue depth), with its read ratio, request size and address
//! pattern.

use std::sync::Arc;

use reflex_net::ConnId;
use reflex_qos::{TenantClass, TenantId};
use reflex_sim::{Histogram, RatePoint, RateSeries, SimDuration, SimRng, SimTime};
use serde::{Deserialize, Serialize};

/// One operation of a recorded I/O trace (offsets are relative to the
/// workload's start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceOp {
    /// Issue instant relative to trace start.
    pub at: SimDuration,
    /// `true` for reads.
    pub is_read: bool,
    /// Device byte address.
    pub addr: u64,
    /// Length in bytes.
    pub len: u32,
}

/// Inter-arrival process of an open-loop generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Exponential gaps (a Poisson process) — maximally bursty.
    Poisson,
    /// Fixed gaps with ±10% uniform jitter — mutilate-style paced load.
    /// A tenant offered exactly its SLO reservation only meets its tail
    /// bound with paced arrivals; Poisson load at the reservation rate is
    /// critically loaded against the token limiter by construction.
    Paced,
}

/// How requests are generated.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LoadPattern {
    /// Poisson arrivals at a target rate, spread over the workload's
    /// connections (mutilate-style load generation).
    OpenLoop {
        /// Offered I/O operations per second.
        iops: f64,
    },
    /// Each connection keeps a fixed number of requests in flight
    /// (FIO-style). `queue_depth = 1` is the paper's unloaded-latency
    /// prober.
    ClosedLoop {
        /// Outstanding requests per connection.
        queue_depth: u32,
    },
}

/// How the read/write mix is realized by the generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MixProcess {
    /// Each request is independently a read with probability `read_pct`.
    /// With expensive writes (10-20 tokens) this makes a tenant's token
    /// spend a random walk that repeatedly hits the deficit limit even at
    /// exactly the reserved rate.
    Bernoulli,
    /// Writes are interleaved deterministically at the exact ratio
    /// (e.g. every 5th request for an 80% read mix) — how paced load
    /// generators behave.
    Deterministic,
}

/// How request addresses are chosen within the tenant's namespace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AddrPattern {
    /// Uniformly random, aligned to the request size.
    UniformRandom,
    /// Sequential per connection with wraparound.
    Sequential,
    /// Zipfian popularity over the namespace's blocks (KV-store style
    /// skew); `theta_permille` is the skew × 1000, e.g. 990 for the
    /// YCSB-default 0.99.
    Zipfian {
        /// Skew parameter in thousandths (1..=999).
        theta_permille: u16,
    },
}

/// Client-side failure-recovery policy: per-request timeout plus bounded
/// retry with deterministic exponential backoff.
///
/// Attempt `k` (1-based) that fails — an error response, or no response
/// within [`timeout`](Self::timeout) — is retried after
/// `base_backoff * 2^(k-1)` until [`max_attempts`](Self::max_attempts)
/// attempts have been made; the request is then abandoned and counted in
/// [`WorkloadReport::exhausted`]. Latency histograms always measure from
/// the *first* attempt's issue instant, so retries show up as tail
/// inflation exactly as an application would observe them.
///
/// The default ([`RetryPolicy::disabled`]) performs no retries and arms no
/// timers, so workloads that do not opt in behave — event for event —
/// exactly as they did before this type existed.
///
/// # Examples
///
/// ```
/// use reflex_core::RetryPolicy;
/// use reflex_sim::SimDuration;
///
/// let policy = RetryPolicy::standard();
/// assert!(policy.is_active());
/// assert_eq!(policy.backoff_after(1), SimDuration::from_micros(50));
/// assert_eq!(policy.backoff_after(3), SimDuration::from_micros(200));
/// assert!(!RetryPolicy::disabled().is_active());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Total attempts per request, including the first (minimum 1).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles on each further retry.
    pub base_backoff: SimDuration,
    /// Per-attempt response deadline. `None` waits forever (errors can
    /// still trigger retries; lost messages hang the request slot).
    pub timeout: Option<SimDuration>,
}

impl RetryPolicy {
    /// No retries, no timeouts — the zero-cost default.
    pub fn disabled() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_backoff: SimDuration::ZERO,
            timeout: None,
        }
    }

    /// Sane production defaults: 4 attempts, 50µs base backoff, 10ms
    /// per-attempt timeout. The timeout sits far above healthy p999
    /// latency (hundreds of µs) while still bounding recovery from a lost
    /// message to ~10ms.
    pub fn standard() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: SimDuration::from_micros(50),
            timeout: Some(SimDuration::from_millis(10)),
        }
    }

    /// `true` when the policy can retry or time out (i.e. is not the
    /// disabled default).
    pub fn is_active(&self) -> bool {
        self.max_attempts > 1 || self.timeout.is_some()
    }

    /// Backoff delay after a failed attempt `attempt` (1-based):
    /// `base_backoff * 2^(attempt-1)`, saturating.
    pub fn backoff_after(&self, attempt: u32) -> SimDuration {
        self.base_backoff
            .mul_f64((1u64 << (attempt - 1).min(32) as u64) as f64)
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self::disabled()
    }
}

/// One tenant-bound request stream.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Human-readable label used in reports.
    pub name: String,
    /// Tenant identity (registered with the server at setup).
    pub tenant: TenantId,
    /// LC (with SLO) or BE.
    pub class: TenantClass,
    /// Request generation shape.
    pub pattern: LoadPattern,
    /// Percentage of requests that are reads (0–100).
    pub read_pct: u8,
    /// Request size in bytes.
    pub io_size: u32,
    /// Number of TCP connections.
    pub conns: u32,
    /// Client threads the connections are spread over (bounds Linux-client
    /// message rates).
    pub client_threads: u32,
    /// Index of the client machine issuing this workload.
    pub client_machine: usize,
    /// Threads the tenant's SLO is sharded across (1 = the paper's
    /// single-thread-per-tenant limitation; >1 removes it, §4.1 future
    /// work).
    pub shards: u32,
    /// Inter-arrival process for open-loop generation.
    pub arrival: ArrivalProcess,
    /// Read/write interleaving discipline.
    pub mix: MixProcess,
    /// Address pattern within the namespace.
    pub addr_pattern: AddrPattern,
    /// Namespace (byte offset, byte length) on the device.
    pub namespace: (u64, u64),
    /// When set, replay this recorded trace instead of generating
    /// requests from `pattern` (connections are used round-robin; `at`
    /// offsets must be non-decreasing).
    pub trace: Option<Arc<[TraceOp]>>,
    /// Client-side timeout/retry policy (default:
    /// [`RetryPolicy::disabled`]).
    pub retry: RetryPolicy,
}

impl WorkloadSpec {
    /// A convenient open-loop workload with sensible defaults: uniform
    /// random 4KB requests on one connection from client machine 0 over
    /// the whole first terabyte.
    pub fn open_loop(name: &str, tenant: TenantId, class: TenantClass, iops: f64) -> Self {
        WorkloadSpec {
            name: name.to_owned(),
            tenant,
            class,
            pattern: LoadPattern::OpenLoop { iops },
            read_pct: 100,
            io_size: 4096,
            conns: 1,
            client_threads: 1,
            client_machine: 0,
            shards: 1,
            arrival: ArrivalProcess::Paced,
            mix: MixProcess::Deterministic,
            addr_pattern: AddrPattern::UniformRandom,
            namespace: (0, 1 << 40),
            trace: None,
            retry: RetryPolicy::disabled(),
        }
    }

    /// Sets the client-side timeout/retry policy (builder style).
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// A workload that replays a recorded trace.
    pub fn from_trace(
        name: &str,
        tenant: TenantId,
        class: TenantClass,
        trace: Arc<[TraceOp]>,
    ) -> Self {
        WorkloadSpec {
            trace: Some(trace),
            ..Self::open_loop(name, tenant, class, 1.0)
        }
    }

    /// A closed-loop workload (queue depth per connection).
    pub fn closed_loop(name: &str, tenant: TenantId, class: TenantClass, queue_depth: u32) -> Self {
        WorkloadSpec {
            pattern: LoadPattern::ClosedLoop { queue_depth },
            ..Self::open_loop(name, tenant, class, 0.0)
        }
    }

    /// Validates the spec.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.read_pct > 100 {
            return Err("read_pct must be 0..=100".into());
        }
        if self.io_size == 0 {
            return Err("io_size must be non-zero".into());
        }
        if self.conns == 0 {
            return Err("need at least one connection".into());
        }
        if self.client_threads == 0 {
            return Err("need at least one client thread".into());
        }
        if self.shards == 0 {
            return Err("need at least one shard".into());
        }
        if let LoadPattern::OpenLoop { iops } = self.pattern {
            if iops.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
                return Err("open-loop iops must be positive".into());
            }
        }
        if let LoadPattern::ClosedLoop { queue_depth } = self.pattern {
            if queue_depth == 0 {
                return Err("queue depth must be positive".into());
            }
        }
        if self.namespace.1 < self.io_size as u64 {
            return Err("namespace smaller than one request".into());
        }
        if self.retry.max_attempts == 0 {
            return Err("retry max_attempts must be at least 1".into());
        }
        if let Some(trace) = &self.trace {
            if trace.is_empty() {
                return Err("trace must not be empty".into());
            }
            if trace.windows(2).any(|w| w[1].at < w[0].at) {
                return Err("trace offsets must be non-decreasing".into());
            }
            if trace.iter().any(|op| op.len == 0) {
                return Err("trace ops must have non-zero length".into());
            }
        }
        Ok(())
    }
}

/// Measured results of one workload over the measurement window.
#[derive(Debug, Clone)]
pub struct WorkloadReport {
    /// The workload's label.
    pub name: String,
    /// Its tenant.
    pub tenant: TenantId,
    /// Read-latency histogram (request issue → response at client app).
    pub read_latency: Histogram,
    /// Write-latency histogram.
    pub write_latency: Histogram,
    /// Completed reads + writes per second of measured time.
    pub iops: f64,
    /// Completed reads per second.
    pub read_iops: f64,
    /// Completed writes per second.
    pub write_iops: f64,
    /// Goodput in bytes/second (reads returned + writes sent).
    pub bytes_per_sec: f64,
    /// Error responses received (after retries, when a policy is active).
    pub errors: u64,
    /// Requests issued during measurement.
    pub issued: u64,
    /// Retransmissions performed by the retry policy.
    pub retries: u64,
    /// Requests that ultimately succeeded after at least one retry.
    pub retry_success: u64,
    /// Requests abandoned with all attempts spent.
    pub exhausted: u64,
    /// Per-attempt timeouts that fired.
    pub timeouts: u64,
    /// Completion-rate time series over the measurement window (10ms
    /// buckets) — the raw material for Figure-6a-style plots.
    pub iops_series: Vec<RatePoint>,
}

impl WorkloadReport {
    /// p95 read latency in microseconds — the paper's headline metric.
    pub fn p95_read_us(&self) -> f64 {
        self.read_latency.p95().as_micros_f64()
    }

    /// p95 write latency in microseconds.
    pub fn p95_write_us(&self) -> f64 {
        self.write_latency.p95().as_micros_f64()
    }

    /// Mean read latency in microseconds.
    pub fn mean_read_us(&self) -> f64 {
        self.read_latency.mean().as_micros_f64()
    }
}

/// Internal per-workload runtime state (used by the testbed).
///
/// `Clone` because sharded testbeds replicate every workload's state onto
/// every shard (indices must align across engines); only the copy on the
/// shard owning the workload's client machine ever advances.
#[derive(Debug, Clone)]
pub(crate) struct WorkloadState {
    pub spec: WorkloadSpec,
    /// This workload's private randomness (address pattern, read/write
    /// mix, open-loop gaps). Keyed by the workload's registration index via
    /// [`SimRng::stream`] rather than forked from a shared generator, so
    /// the stream is a stable function of the workload's identity — draws
    /// by one workload (or by the fabric/device) can never shift another's
    /// stream, which is what keeps sharded runs byte-identical.
    pub rng: SimRng,
    pub conns: Vec<ConnId>,
    /// Client thread index serving each connection.
    pub conn_thread: Vec<u32>,
    /// Sequential cursors per connection.
    pub seq_cursor: Vec<u64>,
    /// Deterministic-mix accumulator (percent units).
    pub read_debt: u32,
    pub read_hist: Histogram,
    pub write_hist: Histogram,
    pub completed_reads: u64,
    pub completed_writes: u64,
    pub read_bytes: u64,
    pub write_bytes: u64,
    pub errors: u64,
    pub issued: u64,
    pub retries: u64,
    pub retry_success: u64,
    pub exhausted: u64,
    pub timeouts: u64,
    pub stopped: bool,
    pub iops_series: RateSeries,
}

impl WorkloadState {
    pub fn new(spec: WorkloadSpec, rng: SimRng) -> Self {
        WorkloadState {
            spec,
            rng,
            conns: Vec::new(),
            conn_thread: Vec::new(),
            seq_cursor: Vec::new(),
            read_debt: 0,
            read_hist: Histogram::new(),
            write_hist: Histogram::new(),
            completed_reads: 0,
            completed_writes: 0,
            read_bytes: 0,
            write_bytes: 0,
            errors: 0,
            issued: 0,
            retries: 0,
            retry_success: 0,
            exhausted: 0,
            timeouts: 0,
            stopped: false,
            iops_series: RateSeries::new(SimDuration::from_millis(10)),
        }
    }

    pub fn reset_measurement(&mut self) {
        self.iops_series = RateSeries::new(SimDuration::from_millis(10));
        self.read_hist.reset();
        self.write_hist.reset();
        self.completed_reads = 0;
        self.completed_writes = 0;
        self.read_bytes = 0;
        self.write_bytes = 0;
        self.errors = 0;
        self.issued = 0;
        self.retries = 0;
        self.retry_success = 0;
        self.exhausted = 0;
        self.timeouts = 0;
    }

    pub fn report(&self, window: SimDuration) -> WorkloadReport {
        let secs = window.as_secs_f64().max(1e-12);
        let mut series = self.iops_series.clone();
        series.finish(SimTime::ZERO + window);
        WorkloadReport {
            name: self.spec.name.clone(),
            tenant: self.spec.tenant,
            read_latency: self.read_hist.clone(),
            write_latency: self.write_hist.clone(),
            iops: (self.completed_reads + self.completed_writes) as f64 / secs,
            read_iops: self.completed_reads as f64 / secs,
            write_iops: self.completed_writes as f64 / secs,
            bytes_per_sec: (self.read_bytes + self.write_bytes) as f64 / secs,
            errors: self.errors,
            issued: self.issued,
            retries: self.retries,
            retry_success: self.retry_success,
            exhausted: self.exhausted,
            timeouts: self.timeouts,
            iops_series: series.points().to_vec(),
        }
    }
}

/// A request outstanding at a client, awaiting its response.
#[derive(Debug, Clone, Copy)]
pub(crate) struct OutstandingReq {
    pub workload: usize,
    pub conn_idx: usize,
    /// Issue instant of the *first* attempt — latency is measured from
    /// here so retries surface as tail inflation.
    pub sent_at: SimTime,
    pub is_read: bool,
    pub addr: u64,
    pub len: u32,
    pub measured: bool,
    /// 1-based attempt number of the in-flight transmission.
    pub attempt: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> WorkloadSpec {
        WorkloadSpec::open_loop("t", TenantId(1), TenantClass::BestEffort, 1000.0)
    }

    #[test]
    fn default_specs_validate() {
        spec().validate().expect("open loop default valid");
        WorkloadSpec::closed_loop("c", TenantId(2), TenantClass::BestEffort, 4)
            .validate()
            .expect("closed loop default valid");
    }

    #[test]
    fn validation_rejects_nonsense() {
        let mut s = spec();
        s.read_pct = 101;
        assert!(s.validate().is_err());
        let mut s = spec();
        s.io_size = 0;
        assert!(s.validate().is_err());
        let mut s = spec();
        s.conns = 0;
        assert!(s.validate().is_err());
        let mut s = spec();
        s.pattern = LoadPattern::OpenLoop { iops: 0.0 };
        assert!(s.validate().is_err());
        let mut s = spec();
        s.pattern = LoadPattern::ClosedLoop { queue_depth: 0 };
        assert!(s.validate().is_err());
        let mut s = spec();
        s.namespace = (0, 100);
        assert!(s.validate().is_err());
    }

    #[test]
    fn report_computes_rates() {
        let mut st = WorkloadState::new(spec(), SimRng::stream(0, 0));
        st.completed_reads = 500;
        st.completed_writes = 100;
        st.read_bytes = 500 * 4096;
        st.write_bytes = 100 * 4096;
        let rep = st.report(SimDuration::from_millis(100));
        assert!((rep.iops - 6_000.0).abs() < 1e-6);
        assert!((rep.read_iops - 5_000.0).abs() < 1e-6);
        let expected_bps = 600.0 * 4096.0 / 0.1;
        assert!((rep.bytes_per_sec - expected_bps).abs() < 1e-3);
    }
}
