//! Replica-set coordination for client-driven replicated remote flash.
//!
//! ReFlex itself replicates nothing — a server death loses the tenant's
//! data. FlexBSO-style deployments (PAPERS.md) make replication the
//! client's job: every write fans out to R servers and is acknowledged
//! once a majority quorum of W = ⌊R/2⌋+1 acks arrive; reads go to the
//! primary alone or to a read quorum of Q = ⌊R/2⌋+1 replicas. Because
//! 2·(⌊R/2⌋+1) > R, any write quorum intersects any read quorum in at
//! least one replica, so a quorum read always observes the newest
//! quorum-acknowledged write.
//!
//! [`ReplicaSets`] is the control-plane half: it owns per-tenant replica
//! membership, places the R copies on distinct servers through
//! [`ClusterPlanner::place_excluding`] (anti-affinity — a copy that
//! shares a server with another copy survives nothing), and on a server
//! death promotes a surviving replica and re-places the lost slot. The
//! data-plane half — actual fan-out, ack counting and re-sync traffic —
//! lives in `reflex-replication` and drives this type.

use std::collections::BTreeMap;

use reflex_qos::{SloSpec, TenantId};
use reflex_sim::SimDuration;
use reflex_telemetry::Telemetry;

use crate::cluster::{ClusterPlanner, PlacementError, ServerId, MIGRATION_STEP};

/// Upper bound on the replication factor: fan-out state on the client hot
/// path lives in fixed `[_; MAX_REPLICAS]` arrays, never a heap `Vec`.
pub const MAX_REPLICAS: usize = 8;

/// Slot indices are packed into the high bits of per-slot pseudo-tenant
/// ids, so real tenant ids must fit below this shift.
const SLOT_SHIFT: u32 = 28;

/// Majority quorum size for `r` replicas: ⌊r/2⌋+1 = ⌈(r+1)/2⌉. Both the
/// write-ack quorum and the read quorum use it, which is what makes any
/// two quorums intersect (2·quorum(r) > r).
pub fn quorum(r: usize) -> usize {
    r / 2 + 1
}

/// How a replicated tenant serves reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadPolicy {
    /// Read the primary replica only: one sub-request, lowest cost, but a
    /// primary death stalls reads until failover promotes a survivor.
    Primary,
    /// Read from a quorum of ⌊R/2⌋+1 replicas and complete when *all* of
    /// them answer — latency is the max of the quorum, buying freshness
    /// and death-tolerance with extra load and a fatter tail.
    Quorum,
}

impl ReadPolicy {
    /// Sub-requests a read issues under this policy with `r` replicas.
    pub fn fanout(self, r: usize) -> usize {
        match self {
            ReadPolicy::Primary => 1,
            ReadPolicy::Quorum => quorum(r),
        }
    }
}

/// One tenant's replica membership.
#[derive(Debug, Clone)]
pub struct ReplicaSet {
    /// The tenant.
    pub tenant: TenantId,
    /// The SLO each replica reserves on its server.
    pub slo: SloSpec,
    /// Member servers by slot. Slot order is stable across failovers —
    /// a replaced member reuses the dead member's slot.
    pub members: Vec<ServerId>,
    /// Slot index of the current primary.
    pub primary: usize,
    /// Bumped on every membership change; stale data-plane messages and
    /// re-sync completions carry the epoch they were issued under and are
    /// ignored if it no longer matches.
    pub epoch: u32,
}

impl ReplicaSet {
    /// Replication factor (current member count; shrinks when a slot
    /// strands unreplaced).
    pub fn replication(&self) -> usize {
        self.members.len()
    }

    /// Acks a write needs before completing.
    pub fn write_quorum(&self) -> usize {
        quorum(self.members.len())
    }
}

/// What the coordinator did for one tenant when a member server died.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FailoverAction {
    /// The affected tenant.
    pub tenant: TenantId,
    /// Slot that held the dead member.
    pub replaced_slot: usize,
    /// Primary slot after promotion (unchanged if the dead member was not
    /// primary).
    pub promoted_primary: usize,
    /// Replacement server, or `None` if no survivor could host the slot —
    /// the set then runs degraded at R-1.
    pub new_member: Option<ServerId>,
    /// Control-plane re-admission estimate for the replacement (queued
    /// behind earlier actions of the same failover, [`MIGRATION_STEP`]
    /// each), measured from failure detection.
    pub latency_estimate: SimDuration,
    /// Membership epoch after this action.
    pub epoch: u32,
}

/// Outcome of [`ReplicaSets::fail_server`]: per-tenant actions in tenant
/// order.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicaFailover {
    /// The dead server.
    pub dead: ServerId,
    /// One action per tenant that had a replica there.
    pub actions: Vec<FailoverAction>,
}

impl ReplicaFailover {
    /// Estimated time from the failure itself until the last replacement
    /// is re-admitted (detection plus queued re-admission work; re-sync
    /// transfer time comes on top and is the data plane's to model).
    pub fn total_recovery_estimate(&self, detection: SimDuration) -> SimDuration {
        detection
            + self
                .actions
                .iter()
                .filter(|a| a.new_member.is_some())
                .map(|a| a.latency_estimate)
                .max()
                .unwrap_or(SimDuration::ZERO)
    }
}

/// Per-tenant replica membership over a [`ClusterPlanner`].
///
/// Each replica slot reserves the tenant's full SLO on its server via a
/// per-slot pseudo-tenant id, so admission control sees the true load of
/// R-way replication (every write runs R times cluster-wide).
#[derive(Debug)]
pub struct ReplicaSets {
    planner: ClusterPlanner,
    r: usize,
    sets: BTreeMap<TenantId, ReplicaSet>,
    telemetry: Telemetry,
}

fn slot_tenant(tenant: TenantId, slot: usize) -> TenantId {
    TenantId(tenant.0 | ((slot as u32) << SLOT_SHIFT))
}

impl ReplicaSets {
    /// Wraps a planner with replication factor `r`.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= r <= MAX_REPLICAS`.
    pub fn new(planner: ClusterPlanner, r: usize) -> Self {
        assert!((1..=MAX_REPLICAS).contains(&r), "replication factor {r}");
        ReplicaSets {
            planner,
            r,
            sets: BTreeMap::new(),
            telemetry: Telemetry::disabled(),
        }
    }

    /// Installs a telemetry handle on the coordinator *and* its planner;
    /// failovers then count `replication.failovers`,
    /// `replication.promotions` and `cluster.migrations_total`.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.planner.set_telemetry(telemetry.clone());
        self.telemetry = telemetry;
    }

    /// Configured replication factor.
    pub fn replication(&self) -> usize {
        self.r
    }

    /// The underlying planner.
    pub fn planner(&self) -> &ClusterPlanner {
        &self.planner
    }

    /// A tenant's current membership.
    pub fn set_of(&self, tenant: TenantId) -> Option<&ReplicaSet> {
        self.sets.get(&tenant)
    }

    /// Places `r` replicas of a tenant on `r` distinct servers, strictest
    /// placement first (slot 0 — the initial primary — gets first pick).
    /// All-or-nothing: a failed slot rolls back the earlier ones.
    ///
    /// # Errors
    ///
    /// [`PlacementError::Duplicate`] if the tenant already has a set, or
    /// the planner's error for the first unplaceable slot.
    ///
    /// # Panics
    ///
    /// Panics if `tenant.0` overflows the slot-id encoding (needs the top
    /// four bits free).
    pub fn place(&mut self, tenant: TenantId, slo: SloSpec) -> Result<&ReplicaSet, PlacementError> {
        assert!(
            tenant.0 < (1 << SLOT_SHIFT),
            "tenant id {} collides with replica-slot encoding",
            tenant.0
        );
        if self.sets.contains_key(&tenant) {
            return Err(PlacementError::Duplicate(tenant));
        }
        let mut members: Vec<ServerId> = Vec::with_capacity(self.r);
        for slot in 0..self.r {
            match self
                .planner
                .place_excluding(slot_tenant(tenant, slot), slo, &members)
            {
                Ok(sid) => members.push(sid),
                Err(e) => {
                    for s in 0..slot {
                        let _ = self.planner.remove(slot_tenant(tenant, s));
                    }
                    return Err(e);
                }
            }
        }
        self.sets.insert(
            tenant,
            ReplicaSet {
                tenant,
                slo,
                members,
                primary: 0,
                epoch: 0,
            },
        );
        Ok(&self.sets[&tenant])
    }

    /// Handles a member server's death: for every tenant with a replica
    /// there (in tenant order), promotes the lowest surviving slot if the
    /// primary died, then re-places the lost slot on a survivor hosting
    /// none of the tenant's other copies. Unreplaceable slots are dropped
    /// and the set runs degraded.
    ///
    /// # Errors
    ///
    /// [`PlacementError::UnknownServer`] if `dead` is not in the cluster;
    /// nothing is modified in that case.
    pub fn fail_server(&mut self, dead: ServerId) -> Result<ReplicaFailover, PlacementError> {
        if !self.planner.servers().iter().any(|s| s.id == dead) {
            return Err(PlacementError::UnknownServer(dead));
        }
        // Tenants with a replica on the dead server, in BTreeMap order.
        let affected: Vec<(TenantId, usize)> = self
            .sets
            .iter()
            .filter_map(|(t, set)| {
                set.members
                    .iter()
                    .position(|&m| m == dead)
                    .map(|slot| (*t, slot))
            })
            .collect();
        // Pull the dead slots' reservations out first so the planner's own
        // fail_server sees no orphans — replica re-placement (below) is
        // slot-aware in a way the planner's generic migration is not.
        for &(t, slot) in &affected {
            let _ = self.planner.remove(slot_tenant(t, slot));
        }
        let _ = self.planner.fail_server(dead)?;

        let mut actions = Vec::with_capacity(affected.len());
        let mut replaced = 0usize;
        for (tenant, slot) in affected {
            let set = self.sets.get_mut(&tenant).expect("affected tenant has set");
            if set.primary == slot {
                set.primary = (0..set.members.len()).find(|&s| s != slot).unwrap_or(0);
                self.telemetry.count("replication.promotions", 1);
            }
            let survivors: Vec<ServerId> = set
                .members
                .iter()
                .enumerate()
                .filter(|&(s, _)| s != slot)
                .map(|(_, &m)| m)
                .collect();
            let new_member =
                match self
                    .planner
                    .place_excluding(slot_tenant(tenant, slot), set.slo, &survivors)
                {
                    Ok(sid) => {
                        set.members[slot] = sid;
                        replaced += 1;
                        Some(sid)
                    }
                    Err(_) => {
                        set.members.remove(slot);
                        if set.primary > slot {
                            set.primary -= 1;
                        }
                        None
                    }
                };
            set.epoch += 1;
            let latency_estimate = if new_member.is_some() {
                MIGRATION_STEP.mul_f64(replaced as f64)
            } else {
                SimDuration::ZERO
            };
            actions.push(FailoverAction {
                tenant,
                replaced_slot: slot,
                promoted_primary: set.primary,
                new_member,
                latency_estimate,
                epoch: set.epoch,
            });
        }
        self.telemetry.count("replication.failovers", 1);
        self.telemetry
            .count("cluster.migrations_total", replaced as u64);
        self.telemetry.count(
            "cluster.stranded_total",
            actions.iter().filter(|a| a.new_member.is_none()).count() as u64,
        );
        Ok(ReplicaFailover { dead, actions })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capacity::CapacityProfile;
    use crate::cluster::ServerDescriptor;
    use reflex_qos::CostModel;

    fn sets(n_servers: u32, r: usize) -> ReplicaSets {
        let planner = ClusterPlanner::new(
            (0..n_servers)
                .map(|i| {
                    ServerDescriptor::new(
                        ServerId(i),
                        CapacityProfile::device_a_default(),
                        CostModel::for_device_a(),
                    )
                })
                .collect(),
        );
        ReplicaSets::new(planner, r)
    }

    fn slo() -> SloSpec {
        SloSpec::new(20_000, 80, SimDuration::from_micros(500))
    }

    #[test]
    fn quorum_majority() {
        assert_eq!(quorum(1), 1);
        assert_eq!(quorum(2), 2);
        assert_eq!(quorum(3), 2);
        assert_eq!(quorum(4), 3);
        assert_eq!(quorum(5), 3);
        for r in 1..=MAX_REPLICAS {
            assert!(2 * quorum(r) > r, "quorums of {r} must intersect");
            assert_eq!(quorum(r), (r + 1).div_ceil(2), "⌈(R+1)/2⌉ identity");
        }
    }

    #[test]
    fn place_spreads_replicas_across_servers() {
        let mut sets = sets(4, 3);
        let set = sets.place(TenantId(1), slo()).unwrap().clone();
        assert_eq!(set.members.len(), 3);
        let mut uniq = set.members.clone();
        uniq.sort();
        uniq.dedup();
        assert_eq!(uniq.len(), 3, "anti-affinity: {:?}", set.members);
        assert_eq!(set.primary, 0);
        assert_eq!(set.write_quorum(), 2);
    }

    #[test]
    fn place_rolls_back_when_cluster_too_small() {
        let mut sets = sets(2, 3);
        let err = sets.place(TenantId(1), slo()).unwrap_err();
        assert!(matches!(err, PlacementError::NoCapacity { .. }), "{err}");
        assert!(sets.set_of(TenantId(1)).is_none());
        // The rollback freed the partial slots: R=2 now fits.
        let mut sets2 = ReplicaSets::new(ClusterPlanner::new(sets.planner().servers().to_vec()), 2);
        sets2.place(TenantId(1), slo()).unwrap();
    }

    #[test]
    fn fail_server_promotes_and_replaces() {
        let mut sets = sets(4, 3);
        let members = sets.place(TenantId(1), slo()).unwrap().members.clone();
        let dead = members[0]; // the primary's server
        let fo = sets.fail_server(dead).unwrap();
        assert_eq!(fo.dead, dead);
        assert_eq!(fo.actions.len(), 1);
        let a = fo.actions[0];
        assert_eq!(a.replaced_slot, 0);
        assert_eq!(a.promoted_primary, 1, "lowest surviving slot");
        let new = a.new_member.expect("a spare server exists");
        assert!(!members.contains(&new), "replacement must be the spare");
        let set = sets.set_of(TenantId(1)).unwrap();
        assert_eq!(set.members[0], new);
        assert_eq!(set.epoch, 1);
        assert_eq!(
            fo.total_recovery_estimate(SimDuration::from_millis(30)),
            SimDuration::from_millis(31)
        );
    }

    #[test]
    fn fail_server_without_spare_degrades() {
        let mut sets = sets(3, 3);
        let members = sets.place(TenantId(1), slo()).unwrap().members.clone();
        let fo = sets.fail_server(members[1]).unwrap();
        let a = fo.actions[0];
        assert_eq!(a.new_member, None, "no spare: degraded");
        assert_eq!(a.promoted_primary, 0, "primary survived");
        let set = sets.set_of(TenantId(1)).unwrap();
        assert_eq!(set.members.len(), 2);
        assert_eq!(set.write_quorum(), 2);
    }

    #[test]
    fn fail_server_unknown_is_untouched() {
        let mut sets = sets(3, 2);
        sets.place(TenantId(1), slo()).unwrap();
        assert_eq!(
            sets.fail_server(ServerId(9)),
            Err(PlacementError::UnknownServer(ServerId(9)))
        );
        assert_eq!(sets.set_of(TenantId(1)).unwrap().epoch, 0);
    }
}
