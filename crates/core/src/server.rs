//! The ReFlex server: dataplane threads plus the local control plane.
//!
//! [`ReflexServer`] owns one dataplane thread per core (each with its own
//! NIC receive queue and NVMe queue pair), the shared global token bucket,
//! and the control-plane state: tenant admission, token-rate management,
//! deficit monitoring and thread scaling (paper §4.1, §4.3).

use std::collections::HashMap;
use std::sync::Arc;

use reflex_dataplane::{AclEntry, DataplaneConfig, DataplaneThread, WireMsg};
use reflex_flash::FlashDevice;
use reflex_net::{ConnId, Fabric, MachineId, NicQueueId};
use reflex_qos::{
    CostModel, GlobalBucket, SchedulerParams, SloSpec, TenantClass, TenantId, TokenRate,
};
use reflex_sim::{SimDuration, SimTime};

use crate::capacity::CapacityProfile;

/// Server-wide configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Dataplane threads active initially.
    pub threads: u32,
    /// Maximum threads the control plane may scale up to.
    pub max_threads: u32,
    /// Per-thread dataplane CPU costs.
    pub dataplane: DataplaneConfig,
    /// Algorithm 1 tuning parameters.
    pub sched_params: SchedulerParams,
    /// Enables control-plane thread scaling.
    pub auto_scale: bool,
    /// Busy fraction above which a thread is added.
    pub scale_up_threshold: f64,
    /// Busy fraction below which a thread is retired.
    pub scale_down_threshold: f64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            threads: 1,
            max_threads: 12,
            dataplane: DataplaneConfig::default(),
            sched_params: SchedulerParams::default(),
            auto_scale: false,
            scale_up_threshold: 0.85,
            scale_down_threshold: 0.20,
        }
    }
}

/// Why a tenant could not be registered.
#[derive(Debug, Clone, PartialEq)]
pub enum AdmissionError {
    /// Admitting the SLO would violate the strictest-latency capacity
    /// constraint; carries (required, available) tokens/sec.
    NotAdmissible {
        /// Token rate the new SLO would reserve.
        required: f64,
        /// Unreserved token rate at the would-be strictest SLO.
        available: f64,
    },
    /// The tenant id is already registered.
    Duplicate(TenantId),
    /// The tenant id is unknown (unregister/bind).
    Unknown(TenantId),
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::NotAdmissible {
                required,
                available,
            } => write!(
                f,
                "SLO not admissible: needs {required:.0} tokens/s, {available:.0} available"
            ),
            AdmissionError::Duplicate(t) => write!(f, "{t} already registered"),
            AdmissionError::Unknown(t) => write!(f, "{t} unknown"),
        }
    }
}

impl std::error::Error for AdmissionError {}

#[derive(Debug, Clone)]
struct TenantInfo {
    class: TenantClass,
    thread: usize,
    acl: AclEntry,
    io_size: u32,
    conns: Vec<ConnId>,
    /// (thread, internal shard id) pairs; a single entry for ordinary
    /// tenants. Sharded tenants (paper §4.1 future work) split their SLO
    /// across threads and spread connections round-robin.
    shards: Vec<(usize, TenantId)>,
    shard_rr: usize,
}

/// Control-plane bookkeeping published for reports.
#[derive(Debug, Clone, Default)]
pub struct ControlPlaneStats {
    /// Tenants flagged for SLO renegotiation (persistent deficits).
    pub renegotiations: Vec<TenantId>,
    /// Tenants whose measured server-side p95 read latency exceeded their
    /// SLO in some monitoring window.
    pub slo_violations: Vec<TenantId>,
    /// Thread scale-up events.
    pub scale_ups: u64,
    /// Thread scale-down events.
    pub scale_downs: u64,
}

/// The ReFlex server with its local control plane.
#[derive(Debug)]
pub struct ReflexServer {
    machine: MachineId,
    threads: Vec<DataplaneThread>,
    active_threads: usize,
    bucket: Arc<GlobalBucket>,
    cost_model: CostModel,
    capacity: CapacityProfile,
    config: ServerConfig,
    tenants: HashMap<TenantId, TenantInfo>,
    conn_route: HashMap<ConnId, (usize, MachineId)>,
    /// Connections torn down because their client's link died, awaiting
    /// re-registration when the link returns.
    parked: HashMap<MachineId, Vec<(ConnId, TenantId)>>,
    next_shard_id: u32,
    last_busy: Vec<SimDuration>,
    last_deficits: HashMap<TenantId, u64>,
    cp_stats: ControlPlaneStats,
}

impl ReflexServer {
    /// Builds a server on `machine`, creating one NIC queue and one NVMe
    /// queue pair per potential thread.
    ///
    /// # Panics
    ///
    /// Panics if `config.threads` is zero or exceeds `config.max_threads`.
    pub fn new(
        machine: MachineId,
        fabric: &mut Fabric<WireMsg>,
        device: &mut FlashDevice,
        cost_model: CostModel,
        capacity: CapacityProfile,
        config: ServerConfig,
        now: SimTime,
    ) -> Self {
        assert!(config.threads >= 1, "server needs at least one thread");
        assert!(
            config.threads <= config.max_threads,
            "threads exceed max_threads"
        );
        let bucket = Arc::new(GlobalBucket::new(config.threads));
        let mut threads = Vec::new();
        for i in 0..config.max_threads {
            // Thread 0 polls the machine's default queue 0; later threads
            // get dedicated queues.
            let queue = if i == 0 {
                NicQueueId(0)
            } else {
                fabric.add_queue(machine)
            };
            let qp = device.create_queue_pair();
            threads.push(DataplaneThread::new(
                i,
                machine,
                queue,
                qp,
                Arc::clone(&bucket),
                cost_model.clone(),
                config.sched_params,
                config.dataplane,
                now,
            ));
        }
        let last_busy = vec![SimDuration::ZERO; threads.len()];
        ReflexServer {
            machine,
            threads,
            active_threads: config.threads as usize,
            bucket,
            cost_model,
            capacity,
            config,
            tenants: HashMap::new(),
            conn_route: HashMap::new(),
            parked: HashMap::new(),
            next_shard_id: 0x8000_0000,
            last_busy,
            last_deficits: HashMap::new(),
            cp_stats: ControlPlaneStats::default(),
        }
    }

    /// The server's machine id on the fabric.
    pub fn machine(&self) -> MachineId {
        self.machine
    }

    /// Clones this server into a pristine replica for another shard of a
    /// split-dataplane run: identical configuration and thread layout
    /// (thread `i` on `NicQueueId(i)` / `QpId(i)`), a fresh — and, under
    /// token leases, inert — global bucket, and no tenants. The testbed
    /// replays every registration and binding on each replica so placement
    /// decisions agree everywhere.
    ///
    /// # Panics
    ///
    /// Panics if any tenant is already registered (replicas must be carved
    /// before workloads exist).
    pub fn replicate(&self, now: SimTime) -> ReflexServer {
        assert!(
            self.tenants.is_empty(),
            "replicate the server before registering tenants"
        );
        let bucket = Arc::new(GlobalBucket::new(self.config.threads));
        let threads: Vec<DataplaneThread> = (0..self.config.max_threads)
            .map(|i| {
                DataplaneThread::new(
                    i,
                    self.machine,
                    NicQueueId(i),
                    reflex_flash::QpId(i),
                    Arc::clone(&bucket),
                    self.cost_model.clone(),
                    self.config.sched_params,
                    self.config.dataplane,
                    now,
                )
            })
            .collect();
        let last_busy = vec![SimDuration::ZERO; threads.len()];
        ReflexServer {
            machine: self.machine,
            threads,
            active_threads: self.active_threads,
            bucket,
            cost_model: self.cost_model.clone(),
            capacity: self.capacity.clone(),
            config: self.config.clone(),
            tenants: HashMap::new(),
            conn_route: HashMap::new(),
            parked: HashMap::new(),
            next_shard_id: 0x8000_0000,
            last_busy,
            last_deficits: HashMap::new(),
            cp_stats: ControlPlaneStats::default(),
        }
    }

    /// Currently active dataplane threads.
    pub fn active_threads(&self) -> usize {
        self.active_threads
    }

    /// All dataplane threads (active first).
    pub fn threads(&self) -> &[DataplaneThread] {
        &self.threads
    }

    /// Exclusive access to thread `i`.
    pub fn thread_mut(&mut self, i: usize) -> &mut DataplaneThread {
        &mut self.threads[i]
    }

    /// The capacity profile used for admission control.
    pub fn capacity(&self) -> &CapacityProfile {
        &self.capacity
    }

    /// The cost model in force.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost_model
    }

    /// Control-plane statistics so far.
    pub fn control_stats(&self) -> &ControlPlaneStats {
        &self.cp_stats
    }

    /// The strictest (smallest) p95 bound among registered LC tenants.
    pub fn strictest_slo(&self) -> Option<SimDuration> {
        self.tenants
            .values()
            .filter_map(|t| t.class.slo().map(|s| s.p95_read_latency))
            .min()
    }

    /// Total token rate reserved by LC tenants (tokens/sec).
    pub fn lc_reserved_tokens_per_sec(&self) -> f64 {
        self.tenants
            .values()
            .filter_map(|t| {
                t.class.slo().map(|s| {
                    s.token_rate(&self.cost_model, t.io_size)
                        .as_tokens_per_sec_f64()
                })
            })
            .sum()
    }

    fn be_count(&self) -> usize {
        self.tenants
            .values()
            .filter(|t| !t.class.is_latency_critical())
            .count()
    }

    /// The token rate the scheduler generates in total: the device capacity
    /// at the strictest registered latency SLO (or the device max when only
    /// best-effort tenants exist).
    pub fn total_token_rate(&self) -> f64 {
        match self.strictest_slo() {
            Some(slo) => self.capacity.tokens_per_sec_at(slo),
            None => self.capacity.max_rate().as_tokens_per_sec_f64(),
        }
    }

    /// Recomputes BE fair shares and pushes them to every thread
    /// (invoked on every registration change, paper §4.3).
    pub fn recompute_rates(&mut self) {
        let total = self.total_token_rate();
        let lc = self.lc_reserved_tokens_per_sec();
        let spare = (total - lc).max(0.0);
        let n_be = self.be_count();
        let per_tenant = if n_be == 0 { 0.0 } else { spare / n_be as f64 };
        let rate = TokenRate::millitokens_per_sec((per_tenant * 1_000.0) as u64);
        // Scheduling rounds must stay within 5% of the strictest SLO
        // (paper §3.2.2); default to 500us spacing with no LC tenants.
        let max_interval = self
            .strictest_slo()
            .map(|s| s.mul_f64(0.05))
            .unwrap_or(SimDuration::from_micros(500));
        for t in &mut self.threads {
            t.set_be_rate(rate);
            t.set_max_sched_interval(max_interval);
        }
    }

    /// Admission check for a prospective LC SLO (no state change).
    ///
    /// # Errors
    ///
    /// [`AdmissionError::NotAdmissible`] when the reservation cannot be
    /// honoured at the would-be strictest latency bound.
    pub fn check_admission(&self, slo: &SloSpec, io_size: u32) -> Result<(), AdmissionError> {
        let strictest = self
            .strictest_slo()
            .map_or(slo.p95_read_latency, |s| s.min(slo.p95_read_latency));
        let capacity = self.capacity.tokens_per_sec_at(strictest);
        let required = slo
            .token_rate(&self.cost_model, io_size)
            .as_tokens_per_sec_f64();
        let reserved = self.lc_reserved_tokens_per_sec();
        if reserved + required > capacity {
            return Err(AdmissionError::NotAdmissible {
                required,
                available: (capacity - reserved).max(0.0),
            });
        }
        Ok(())
    }

    /// Registers a tenant: admission control, thread placement (least
    /// reserved load), scheduler registration and rate recomputation.
    /// Returns the thread index the tenant landed on.
    ///
    /// # Errors
    ///
    /// See [`AdmissionError`].
    pub fn register_tenant(
        &mut self,
        id: TenantId,
        class: TenantClass,
        acl: AclEntry,
        io_size: u32,
    ) -> Result<usize, AdmissionError> {
        if self.tenants.contains_key(&id) {
            return Err(AdmissionError::Duplicate(id));
        }
        if let TenantClass::LatencyCritical(slo) = &class {
            self.check_admission(slo, io_size)?;
        }
        // Placement: the active thread with the least reserved token rate,
        // breaking ties by tenant count so best-effort tenants (zero
        // reservation) spread across threads.
        let thread = (0..self.active_threads)
            .min_by(|&a, &b| {
                let ra = self.threads[a]
                    .scheduler()
                    .lc_reserved_rate()
                    .as_millitokens_per_sec();
                let rb = self.threads[b]
                    .scheduler()
                    .lc_reserved_rate()
                    .as_millitokens_per_sec();
                let (la, ba) = self.threads[a].scheduler().tenant_counts();
                let (lb, bb) = self.threads[b].scheduler().tenant_counts();
                ra.cmp(&rb).then((la + ba).cmp(&(lb + bb))).then(a.cmp(&b))
            })
            .expect("at least one active thread");
        self.threads[thread]
            .register_tenant(id, class, acl.clone(), io_size)
            .map_err(|_| AdmissionError::Duplicate(id))?;
        self.tenants.insert(
            id,
            TenantInfo {
                class,
                thread,
                acl,
                io_size,
                conns: Vec::new(),
                shards: vec![(thread, id)],
                shard_rr: 0,
            },
        );
        self.recompute_rates();
        Ok(thread)
    }

    /// Registers a tenant whose demand exceeds one thread: the SLO is
    /// split across `shards` threads and connections are spread over them
    /// round-robin (removing the paper's single-thread-per-tenant
    /// limitation, §4.1). Returns the threads used.
    ///
    /// # Errors
    ///
    /// See [`AdmissionError`]; admission checks the *full* SLO.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero or exceeds the active thread count.
    pub fn register_tenant_sharded(
        &mut self,
        id: TenantId,
        class: TenantClass,
        acl: AclEntry,
        io_size: u32,
        shards: u32,
    ) -> Result<Vec<usize>, AdmissionError> {
        assert!(shards >= 1, "need at least one shard");
        assert!(
            shards as usize <= self.active_threads,
            "more shards than active threads"
        );
        if shards == 1 {
            return self
                .register_tenant(id, class, acl, io_size)
                .map(|t| vec![t]);
        }
        if self.tenants.contains_key(&id) {
            return Err(AdmissionError::Duplicate(id));
        }
        if let TenantClass::LatencyCritical(slo) = &class {
            self.check_admission(slo, io_size)?;
        }
        // Shard the SLO: each shard reserves an equal fraction (shard 0
        // absorbs the rounding remainder).
        let mut shard_list = Vec::new();
        for k in 0..shards {
            let shard_id = TenantId(self.next_shard_id);
            self.next_shard_id += 1;
            let shard_class = match &class {
                TenantClass::LatencyCritical(slo) => {
                    let base = slo.iops / shards as u64;
                    let iops = if k == 0 {
                        base + slo.iops % shards as u64
                    } else {
                        base
                    };
                    TenantClass::LatencyCritical(SloSpec::new(
                        iops.max(1),
                        slo.read_pct,
                        slo.p95_read_latency,
                    ))
                }
                TenantClass::BestEffort => TenantClass::BestEffort,
            };
            let thread = k as usize; // one shard per thread, lowest first
            self.threads[thread]
                .register_tenant(shard_id, shard_class, acl.clone(), io_size)
                .map_err(|_| AdmissionError::Duplicate(id))?;
            shard_list.push((thread, shard_id));
        }
        let threads_used = shard_list.iter().map(|&(t, _)| t).collect();
        self.tenants.insert(
            id,
            TenantInfo {
                class,
                thread: 0,
                acl,
                io_size,
                conns: Vec::new(),
                shards: shard_list,
                shard_rr: 0,
            },
        );
        self.recompute_rates();
        Ok(threads_used)
    }

    /// Renegotiates an LC tenant's SLO in place (the control plane's
    /// answer to persistent deficit notifications). Admission is
    /// re-checked against the new reservation; connections and queued
    /// requests are untouched.
    ///
    /// # Errors
    ///
    /// [`AdmissionError::Unknown`] for unknown or best-effort tenants;
    /// [`AdmissionError::NotAdmissible`] when the new SLO does not fit.
    pub fn renegotiate_tenant(
        &mut self,
        id: TenantId,
        new_slo: SloSpec,
    ) -> Result<(), AdmissionError> {
        let info = self.tenants.get(&id).ok_or(AdmissionError::Unknown(id))?;
        if !info.class.is_latency_critical() {
            return Err(AdmissionError::Unknown(id));
        }
        let io_size = info.io_size;
        // Admission against the cluster minus this tenant's old share.
        let old_rate = info
            .class
            .slo()
            .map(|s| {
                s.token_rate(&self.cost_model, io_size)
                    .as_tokens_per_sec_f64()
            })
            .unwrap_or(0.0);
        let strictest = self
            .tenants
            .iter()
            .filter(|(tid, _)| **tid != id)
            .filter_map(|(_, t)| t.class.slo().map(|s| s.p95_read_latency))
            .chain(std::iter::once(new_slo.p95_read_latency))
            .min()
            .expect("at least the new bound");
        let capacity = self.capacity.tokens_per_sec_at(strictest);
        let required = new_slo
            .token_rate(&self.cost_model, io_size)
            .as_tokens_per_sec_f64();
        let reserved_others = self.lc_reserved_tokens_per_sec() - old_rate;
        if reserved_others + required > capacity {
            return Err(AdmissionError::NotAdmissible {
                required,
                available: (capacity - reserved_others).max(0.0),
            });
        }
        let shards: Vec<(usize, TenantId, u64)> = {
            let info = self.tenants.get(&id).expect("checked above");
            let n = info.shards.len() as u64;
            info.shards
                .iter()
                .enumerate()
                .map(|(k, &(thread, shard_id))| {
                    let base = new_slo.iops / n;
                    let iops = if k == 0 {
                        base + new_slo.iops % n
                    } else {
                        base
                    };
                    (thread, shard_id, iops.max(1))
                })
                .collect()
        };
        for (thread, shard_id, iops) in shards {
            let shard_slo = SloSpec::new(iops, new_slo.read_pct, new_slo.p95_read_latency);
            self.threads[thread]
                .scheduler_mut()
                .renegotiate_lc(shard_id, shard_slo, io_size)
                .map_err(|_| AdmissionError::Unknown(id))?;
        }
        self.tenants.get_mut(&id).expect("checked above").class =
            TenantClass::LatencyCritical(new_slo);
        self.recompute_rates();
        Ok(())
    }

    /// Unregisters a tenant and all its connections.
    ///
    /// # Errors
    ///
    /// [`AdmissionError::Unknown`] for unknown ids.
    pub fn unregister_tenant(&mut self, id: TenantId) -> Result<(), AdmissionError> {
        let info = self
            .tenants
            .remove(&id)
            .ok_or(AdmissionError::Unknown(id))?;
        for &(thread, shard_id) in &info.shards {
            let _ = self.threads[thread].unregister_tenant(shard_id);
        }
        for conn in info.conns {
            self.conn_route.remove(&conn);
        }
        self.recompute_rates();
        Ok(())
    }

    /// Binds a client connection to a tenant; returns the (thread index,
    /// NIC queue) the client must steer the connection's traffic to.
    ///
    /// # Errors
    ///
    /// [`AdmissionError::Unknown`] for unknown tenants.
    pub fn bind_connection(
        &mut self,
        conn: ConnId,
        tenant: TenantId,
        client: MachineId,
    ) -> Result<(usize, NicQueueId), AdmissionError> {
        let info = self
            .tenants
            .get_mut(&tenant)
            .ok_or(AdmissionError::Unknown(tenant))?;
        // Spread connections round-robin across the tenant's shards.
        let (thread, shard_id) = info.shards[info.shard_rr % info.shards.len()];
        info.shard_rr += 1;
        info.conns.push(conn);
        self.threads[thread]
            .bind_connection(conn, shard_id, client)
            .map_err(|_| AdmissionError::Unknown(tenant))?;
        self.conn_route.insert(conn, (thread, client));
        Ok((thread, self.threads[thread].nic_queue()))
    }

    /// The NIC queue currently serving `conn` (clients re-query after
    /// rebalancing; stale sends are forwarded by the old thread).
    pub fn route(&self, conn: ConnId) -> Option<NicQueueId> {
        self.conn_route
            .get(&conn)
            .map(|&(t, _)| self.threads[t].nic_queue())
    }

    /// The dataplane thread currently serving `conn`.
    pub fn thread_of_conn(&self, conn: ConnId) -> Option<usize> {
        self.conn_route.get(&conn).map(|&(t, _)| t)
    }

    /// Tears down every connection belonging to `client` — its link died.
    ///
    /// The connections are unbound from their dataplane threads (messages
    /// still in flight for them are dropped and counted in the thread's
    /// `unbound_conns` stat) and parked for re-registration when the link
    /// returns via [`Self::rebind_client`]. Returns the number of
    /// connections torn down. Clients are expected to recover the lost
    /// requests through their retry policy.
    pub fn on_link_down(&mut self, client: MachineId) -> usize {
        // Walk tenants in sorted order so the parked list (and therefore
        // the rebind order) is independent of hash-map iteration order.
        let mut ids: Vec<TenantId> = self.tenants.keys().copied().collect();
        ids.sort();
        let mut parked = Vec::new();
        for id in ids {
            for &conn in &self.tenants[&id].conns {
                if self
                    .conn_route
                    .get(&conn)
                    .is_some_and(|&(_, c)| c == client)
                {
                    parked.push((conn, id));
                }
            }
        }
        for &(conn, _) in &parked {
            if let Some((thread, _)) = self.conn_route.remove(&conn) {
                self.threads[thread].unbind_connection(conn);
            }
        }
        let n = parked.len();
        if n > 0 {
            self.parked.entry(client).or_default().extend(parked);
        }
        n
    }

    /// Re-registers every connection parked for `client` after its link
    /// came back, binding each to the thread currently serving its tenant
    /// (the tenant may have been rebalanced while the link was down).
    /// Returns the number of connections re-bound.
    pub fn rebind_client(&mut self, client: MachineId) -> usize {
        let Some(mut parked) = self.parked.remove(&client) else {
            return 0;
        };
        parked.sort_by_key(|&(conn, _)| conn);
        let mut rebound = 0;
        for (conn, tenant) in parked {
            // Tenant may have been unregistered while the link was down.
            let Some(info) = self.tenants.get_mut(&tenant) else {
                continue;
            };
            let (thread, shard_id) = info.shards[info.shard_rr % info.shards.len()];
            info.shard_rr += 1;
            if self.threads[thread]
                .bind_connection(conn, shard_id, client)
                .is_ok()
            {
                self.conn_route.insert(conn, (thread, client));
                rebound += 1;
            }
        }
        rebound
    }

    /// Cumulative millitokens spent per tenant (for token-usage reports).
    pub fn all_tenants_spent_millitokens(&self) -> HashMap<TenantId, i64> {
        let mut out = HashMap::new();
        for (&id, info) in &self.tenants {
            let spent = info
                .shards
                .iter()
                .map(|&(thread, shard_id)| {
                    self.threads[thread]
                        .scheduler()
                        .stats_for(shard_id)
                        .map(|s| s.spent_millitokens)
                        .unwrap_or(0)
                })
                .sum();
            out.insert(id, spent);
        }
        out
    }

    /// Moves a tenant (and its connections) to another active thread,
    /// forwarding in-flight traffic. Used by control-plane rebalancing.
    ///
    /// # Errors
    ///
    /// [`AdmissionError::Unknown`] for unknown tenants.
    ///
    /// # Panics
    ///
    /// Panics if `to` is not an active thread.
    pub fn move_tenant(&mut self, id: TenantId, to: usize) -> Result<(), AdmissionError> {
        assert!(to < self.active_threads, "target thread inactive");
        let info = self
            .tenants
            .get_mut(&id)
            .ok_or(AdmissionError::Unknown(id))?;
        assert!(info.shards.len() == 1, "sharded tenants are not moved");
        let from = info.thread;
        if from == to {
            return Ok(());
        }
        // Drain queued requests from the old scheduler and hand them to
        // the new thread; in-flight wire traffic is forwarded as well, so
        // nothing is ever dropped during rebalancing.
        let pending = self.threads[from].unregister_tenant(id).unwrap_or_default();
        let class = info.class;
        let acl = info.acl.clone();
        let io_size = info.io_size;
        let conns = info.conns.clone();
        info.thread = to;
        info.shards = vec![(to, id)];
        self.threads[to]
            .register_tenant(id, class, acl, io_size)
            .map_err(|_| AdmissionError::Duplicate(id))?;
        let _ = self.threads[to].adopt_pending(id, pending);
        let to_queue = self.threads[to].nic_queue();
        for conn in conns {
            self.threads[from].forward_connection(conn, to_queue);
            if let Some(route) = self.conn_route.get_mut(&conn) {
                let client = route.1;
                route.0 = to;
                let _ = self.threads[to].bind_connection(conn, id, client);
            }
        }
        Ok(())
    }

    /// Pumps dataplane thread `i`; returns its requested next wake instant.
    pub fn pump_thread(
        &mut self,
        i: usize,
        now: SimTime,
        fabric: &mut Fabric<WireMsg>,
        device: &mut FlashDevice,
    ) -> Option<SimTime> {
        self.threads[i].pump(now, fabric, device)
    }

    /// Control-plane tick: deficit detection and (optionally) thread
    /// scaling based on per-thread busy fractions over the elapsed window.
    /// Returns tenants newly flagged for renegotiation.
    pub fn control_tick(&mut self, _now: SimTime, window: SimDuration) -> Vec<TenantId> {
        // Deficit detection: tenants whose deficit counter advanced since
        // the last tick are candidates for renegotiation (paper line 7).
        let mut flagged = Vec::new();
        let mut latency_hot = false;
        let mut to_reset = Vec::new();
        // Deterministic traversal: HashMap order varies per process and
        // several decisions below depend on visit order.
        let mut ids: Vec<TenantId> = self.tenants.keys().copied().collect();
        ids.sort();
        for id in ids {
            let info = &self.tenants[&id];
            if !info.class.is_latency_critical() {
                continue;
            }
            let current: u64 = info
                .shards
                .iter()
                .map(|&(thread, shard_id)| {
                    self.threads[thread]
                        .scheduler()
                        .stats_for(shard_id)
                        .map(|s| s.deficit_events)
                        .unwrap_or(0)
                })
                .sum();
            let prev = self.last_deficits.insert(id, current).unwrap_or(0);
            if current > prev {
                flagged.push(id);
                if !self.cp_stats.renegotiations.contains(&id) {
                    self.cp_stats.renegotiations.push(id);
                }
            }
            // SLO compliance monitoring (server-side read p95 per window).
            if let Some(slo) = info.class.slo() {
                for &(thread, shard_id) in &info.shards {
                    if let Some(hist) = self.threads[thread].tenant_read_latency(shard_id) {
                        if hist.count() >= 50 && hist.p95() > slo.p95_read_latency {
                            latency_hot = true;
                            if !self.cp_stats.slo_violations.contains(&id) {
                                self.cp_stats.slo_violations.push(id);
                            }
                        }
                        to_reset.push((thread, shard_id));
                    }
                }
            }
        }
        for (thread, id) in to_reset {
            self.threads[thread].reset_tenant_read_latency(id);
        }

        if self.config.auto_scale && !window.is_zero() {
            let mut fractions = Vec::new();
            for i in 0..self.active_threads {
                let busy = self.threads[i].busy_time();
                let delta = busy.saturating_sub(self.last_busy[i]);
                self.last_busy[i] = busy;
                fractions.push(delta.as_secs_f64() / window.as_secs_f64());
            }
            let max_frac = fractions.iter().cloned().fold(0.0f64, f64::max);
            let avg_frac = fractions.iter().sum::<f64>() / fractions.len() as f64;
            // Scale up when a core is saturated or an SLO is being missed;
            // scale down only when everyone is idle (paper §4.3).
            if (max_frac > self.config.scale_up_threshold || latency_hot)
                && self.active_threads < self.config.max_threads as usize
            {
                self.scale_up();
            } else if avg_frac < self.config.scale_down_threshold
                && !latency_hot
                && self.active_threads > 1
            {
                self.scale_down();
            }
        }
        flagged
    }

    fn scale_up(&mut self) {
        let new_idx = self.active_threads;
        self.active_threads += 1;
        self.bucket.set_active_threads(self.active_threads as u32);
        self.cp_stats.scale_ups += 1;
        // Rebalance: move tenants from the most loaded thread until the
        // reserved rates are roughly even.
        let busiest = (0..new_idx)
            .max_by_key(|&i| {
                self.threads[i]
                    .scheduler()
                    .lc_reserved_rate()
                    .as_millitokens_per_sec()
            })
            .expect("threads exist");
        let mut movable: Vec<TenantId> = self
            .tenants
            .iter()
            .filter(|(_, info)| info.shards.len() == 1 && info.thread == busiest)
            .map(|(&id, _)| id)
            .collect();
        movable.sort();
        // Prefer moving best-effort tenants: LC streams are latency
        // sensitive and BE backlogs migrate painlessly.
        movable.sort_by_key(|id| self.tenants[id].class.is_latency_critical());
        for id in movable.into_iter().take(1) {
            let _ = self.move_tenant(id, new_idx);
        }
    }

    fn scale_down(&mut self) {
        let retiring = self.active_threads - 1;
        let mut movable: Vec<TenantId> = self
            .tenants
            .iter()
            .filter(|(_, info)| info.shards.len() == 1 && info.thread == retiring)
            .map(|(&id, _)| id)
            .collect();
        movable.sort();
        for id in movable {
            let target = 0;
            let _ = self.move_tenant(id, target);
        }
        self.active_threads -= 1;
        self.bucket.set_active_threads(self.active_threads as u32);
        self.cp_stats.scale_downs += 1;
    }
}

impl crate::harness::ServerHarness for ReflexServer {
    fn machine(&self) -> MachineId {
        ReflexServer::machine(self)
    }

    fn supports_sharding(&self) -> bool {
        // Autoscaling migrates connections between threads at runtime;
        // client shards cache routes at bind time, so the two compose only
        // when routing is static.
        !self.config.auto_scale
    }

    fn supports_split(&self) -> bool {
        // Thread-granular sharding additionally needs the identity
        // thread ↔ queue ↔ qp layout replicas are reconstructed with.
        !self.config.auto_scale
            && self.threads.iter().enumerate().all(|(i, t)| {
                t.nic_queue() == NicQueueId(i as u32) && t.qp() == reflex_flash::QpId(i as u32)
            })
    }

    fn set_token_pool(&mut self, pool: reflex_qos::TokenPool) {
        for t in &mut self.threads {
            t.scheduler_mut().set_pool(pool.clone());
        }
    }

    fn replicate(&self, now: SimTime) -> Option<Self> {
        Some(ReflexServer::replicate(self, now))
    }

    fn active_threads(&self) -> usize {
        ReflexServer::active_threads(self)
    }

    fn max_threads(&self) -> usize {
        self.threads.len()
    }

    fn nic_queue(&self, thread: usize) -> NicQueueId {
        self.threads[thread].nic_queue()
    }

    fn register_tenant(
        &mut self,
        id: TenantId,
        class: TenantClass,
        acl: AclEntry,
        io_size: u32,
    ) -> Result<usize, AdmissionError> {
        ReflexServer::register_tenant(self, id, class, acl, io_size)
    }

    fn register_tenant_sharded(
        &mut self,
        id: TenantId,
        class: TenantClass,
        acl: AclEntry,
        io_size: u32,
        shards: u32,
    ) -> Result<Vec<usize>, AdmissionError> {
        ReflexServer::register_tenant_sharded(self, id, class, acl, io_size, shards)
    }

    fn bind_connection(
        &mut self,
        conn: ConnId,
        tenant: TenantId,
        client: MachineId,
    ) -> Result<(usize, NicQueueId), AdmissionError> {
        ReflexServer::bind_connection(self, conn, tenant, client)
    }

    fn route(&self, conn: ConnId) -> Option<NicQueueId> {
        ReflexServer::route(self, conn)
    }

    fn thread_of_conn(&self, conn: ConnId) -> Option<usize> {
        ReflexServer::thread_of_conn(self, conn)
    }

    fn pump_thread(
        &mut self,
        i: usize,
        now: SimTime,
        fabric: &mut Fabric<reflex_dataplane::WireMsg>,
        device: &mut FlashDevice,
    ) -> Option<SimTime> {
        ReflexServer::pump_thread(self, i, now, fabric, device)
    }

    fn control_tick(&mut self, now: SimTime, window: SimDuration) -> Vec<TenantId> {
        ReflexServer::control_tick(self, now, window)
    }

    fn set_telemetry(&mut self, telemetry: reflex_telemetry::Telemetry) {
        // Every dataplane thread (active or not — scale-up may activate
        // more later) shares the one sink.
        for t in &mut self.threads {
            t.set_telemetry(telemetry.clone());
        }
    }

    fn busy_time(&self, i: usize) -> SimDuration {
        self.threads[i].busy_time()
    }

    fn sched_time(&self, i: usize) -> SimDuration {
        self.threads[i].sched_cpu_time()
    }

    fn thread_stats(&self, i: usize) -> Option<reflex_dataplane::ThreadStats> {
        Some(self.threads[i].stats())
    }

    fn tenants_spent_millitokens(&self) -> std::collections::HashMap<TenantId, i64> {
        self.all_tenants_spent_millitokens()
    }

    fn renegotiations(&self) -> Vec<TenantId> {
        self.cp_stats.renegotiations.clone()
    }
}
