//! The Testbed: clients ↔ fabric ↔ ReFlex server ↔ Flash, in one engine.
//!
//! [`Testbed`] wires every component of the reproduction into a single
//! deterministic discrete-event simulation, mirroring the paper's
//! experimental setup (§5.1): client machines running load generators, a
//! 10GbE switch fabric, and a server machine with NVMe Flash running the
//! ReFlex dataplane. Workloads are described declaratively
//! ([`WorkloadSpec`](crate::WorkloadSpec)) and measured with
//! warmup-then-measure windows, exactly like mutilate.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use reflex_dataplane::WireMsg;
use reflex_flash::{DeviceProfile, DeviceStats, FlashDevice, StagedCmd};
use reflex_net::{
    ConnId, Delivery, Fabric, Flight, LinkConfig, MachineId, NicQueueId, Opcode, ReflexHeader,
    StackProfile,
};
use reflex_qos::{CostModel, LeaseEntry, LeaseLedger, TenantId, TokenPool};
use reflex_sim::{
    Ctx, Engine, EventHandle, LookaheadPolicy, PoolKey, ShardStats, ShardTopology, ShardWorld,
    ShardedEngine, SimDuration, SimRng, SimTime, SlabPool, TypedEvent, Zipf,
};
use reflex_telemetry::{ShardCounter, Stage, Telemetry, TelemetrySnapshot, TenantKey};

use crate::capacity::CapacityProfile;
use crate::client::{
    AddrPattern, ArrivalProcess, LoadPattern, MixProcess, OutstandingReq, WorkloadReport,
    WorkloadSpec, WorkloadState,
};
use crate::harness::ServerHarness;
use crate::server::{AdmissionError, ReflexServer, ServerConfig};

/// Errors configuring a testbed.
#[derive(Debug)]
pub enum TestbedError {
    /// The workload spec failed validation.
    InvalidSpec(String),
    /// The spec referenced a client machine that does not exist.
    NoSuchClient(usize),
    /// Tenant registration failed.
    Admission(AdmissionError),
}

impl std::fmt::Display for TestbedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestbedError::InvalidSpec(s) => write!(f, "invalid workload: {s}"),
            TestbedError::NoSuchClient(i) => write!(f, "no client machine {i}"),
            TestbedError::Admission(e) => write!(f, "admission: {e}"),
        }
    }
}

impl std::error::Error for TestbedError {}

impl From<AdmissionError> for TestbedError {
    fn from(e: AdmissionError) -> Self {
        TestbedError::Admission(e)
    }
}

#[derive(Clone)]
struct ClientMachine {
    machine: MachineId,
    stack: StackProfile,
}

/// The recurring simulation events, dispatched through the engine's typed
/// event path so the request loop — including the retry/backoff path,
/// which can become hot under adversarial overload — allocates no
/// per-event closures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorldEvent {
    /// Wake server thread `i` and run its dataplane pump loop.
    PumpThread(usize),
    /// Poll client machine `i` for delivered responses.
    ClientPoll(usize),
    /// Response deadline for the request whose slab key packs to `cookie`.
    /// Generation checking makes a stale deadline (request already
    /// answered, slot reused) a no-op.
    Timeout(u64),
    /// Open-loop generator tick for workload `i`.
    OpenLoopGen(usize),
    /// Replay step `pos` of workload `w_idx`'s trace (replay began at
    /// `started`).
    TraceReplay {
        /// Workload index.
        w_idx: usize,
        /// Position in the trace.
        pos: usize,
        /// Simulated instant replay began.
        started: SimTime,
    },
    /// Periodic control-plane tick.
    Control(SimDuration),
    /// Issue one request on `conn_idx` of workload `w_idx` (closed-loop
    /// kickoff).
    Issue {
        /// Workload index.
        w_idx: usize,
        /// Connection index within the workload.
        conn_idx: usize,
    },
    /// Fire every staged retransmission whose backoff has elapsed, in
    /// canonical order (see [`World::retry_fire_event`]).
    RetryFire,
}

/// A staged retransmission. Typed instead of a boxed closure so the retry
/// path neither allocates per attempt nor depends on event insertion
/// order — due records are drained in an order derived from the request
/// itself, which is the same in a mono run and a sharded run.
#[derive(Clone, Copy)]
struct RetryRec {
    fire_at: SimTime,
    w_idx: usize,
    conn_idx: usize,
    is_read: bool,
    addr: u64,
    len: u32,
    first_sent_at: SimTime,
    measured: bool,
    attempt: u32,
}

impl<S: ServerHarness + 'static> TypedEvent<World<S>> for WorldEvent {
    fn dispatch(self, world: &mut World<S>, ctx: &mut Ctx<'_, World<S>, WorldEvent>) {
        // Windowed delivery: raise the fabric's resolution horizon to this
        // event's scheduled instant before any handler looks at arrivals.
        // (The event's *scheduled* time, not a busy-advanced one, so the
        // horizon is a pure function of the event timeline.)
        world.fabric.observe(ctx.now());
        if world.split {
            // Split mode: the device and the lease ledger apply staged
            // entries on the same event-driven horizon, so the applied set
            // at any instant is a pure function of the event timeline —
            // identical at every shard count.
            if let Some(device) = world.device.as_mut() {
                device.observe(ctx.now());
            }
            if let Some(ledger) = &world.ledger {
                ledger
                    .lock()
                    .expect("lease ledger poisoned")
                    .observe(ctx.now());
            }
        }
        match self {
            WorldEvent::PumpThread(i) => world.pump_event(i, ctx),
            WorldEvent::ClientPoll(i) => world.client_poll_event(i, ctx),
            WorldEvent::Timeout(cookie) => world.timeout_event(cookie, ctx),
            WorldEvent::OpenLoopGen(i) => world.open_loop_gen_event(i, ctx),
            WorldEvent::TraceReplay {
                w_idx,
                pos,
                started,
            } => world.trace_replay_event(w_idx, pos, started, ctx),
            WorldEvent::Control(interval) => world.control_event(interval, ctx),
            WorldEvent::Issue { w_idx, conn_idx } => world.issue_request(w_idx, conn_idx, ctx),
            WorldEvent::RetryFire => world.retry_fire_event(ctx),
        }
    }
}

/// The simulation world: every component plus scheduling bookkeeping.
pub struct World<S: ServerHarness = ReflexServer> {
    fabric: Fabric<WireMsg>,
    // Device and server live on shard 0 only; client shards carry `None`
    // and route requests through `route_table` instead. Single-shard runs
    // always hold both.
    device: Option<FlashDevice>,
    server: Option<S>,
    /// The server's machine id, known to every shard.
    server_machine: MachineId,
    /// Static conn → NIC-queue routes cached at bind time, consulted by
    /// shards that do not hold the server (sharding requires servers whose
    /// routing is static — see [`ServerHarness::supports_sharding`]).
    route_table: HashMap<ConnId, NicQueueId>,
    /// Whether client machine `i` is simulated by this world (all true in
    /// a single-shard run).
    client_local: Vec<bool>,
    /// Seed from which per-workload RNG streams derive
    /// ([`SimRng::stream`] keyed by registration index, so a workload's
    /// draws do not depend on what other workloads do).
    gen_seed: u64,
    clients: Vec<ClientMachine>,
    workloads: Vec<WorkloadState>,
    client_threads_busy: Vec<Vec<SimTime>>, // [workload][client thread]
    // In-flight requests live in a slab; the pool key (slot + generation)
    // packs into the wire cookie, so responses and timeouts look the
    // request up by index with no hashing and slot reuse recycles storage.
    outstanding: SlabPool<OutstandingReq>,
    // Recycled buffer for client-side response polling (a fresh Vec per
    // poll event would be the last per-IO allocation on the client path).
    poll_scratch: Vec<Delivery<WireMsg>>,
    // Staged retransmissions plus a recycled drain buffer (see
    // `retry_fire_event`). Both keep their capacity across a retry storm,
    // so sustained timeouts stay allocation-free.
    retries_pending: Vec<RetryRec>,
    retry_scratch: Vec<RetryRec>,
    // Pending wake per server thread / client machine: the instant plus a
    // handle to the scheduled event, so re-arming to an earlier instant
    // cancels the old wake instead of leaving a dead event in the queue.
    thread_wake: Vec<Option<(SimTime, EventHandle)>>,
    client_wake: Vec<Option<(SimTime, EventHandle)>>,
    measure_start: Option<SimTime>,
    busy_snapshot: Vec<SimDuration>,
    sched_snapshot: Vec<SimDuration>,
    spent_snapshot: HashMap<TenantId, i64>,
    gen_cursor: Vec<usize>,
    zipf: Vec<Option<Zipf>>,
    // Disabled by default: a single branch on the hot path. When enabled
    // (see [`Testbed::enable_telemetry`]) the same handle is shared by the
    // device, fabric, server threads and the client-side span/SLO probes.
    telemetry: Telemetry,
    /// Split-dataplane mode: the device stages commands, the token bucket
    /// is a lease ledger, and dataplane threads may live on different
    /// shards (see [`Testbed::enable_split_dataplane`]).
    split: bool,
    /// Whether worker thread `i` runs on this shard. All true in a
    /// single-shard run; in machine-granular sharding every thread lives
    /// on shard 0; in split mode threads round-robin over the shards.
    thread_local: Vec<bool>,
    /// This shard's lease-ledger replica (split mode only; shared with the
    /// local schedulers through [`TokenPool::Leased`]).
    ledger: Option<Arc<Mutex<LeaseLedger>>>,
    /// Peer shards holding device/ledger replicas that must receive this
    /// shard's staged commands and lease entries at window boundaries.
    dev_peers: Vec<usize>,
}

impl<S: ServerHarness> std::fmt::Debug for World<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("World")
            .field("workloads", &self.workloads.len())
            .field("outstanding", &self.outstanding.len())
            .finish()
    }
}

impl<S: ServerHarness + 'static> World<S> {
    /// The simulated Flash device.
    ///
    /// # Panics
    ///
    /// Panics on a client shard's world (the device lives on shard 0).
    pub fn device(&self) -> &FlashDevice {
        self.device
            .as_ref()
            .expect("device lives on the server shard")
    }

    /// Exclusive access to the device (fault injection installs hooks
    /// here).
    ///
    /// # Panics
    ///
    /// Panics on a client shard's world (the device lives on shard 0).
    pub fn device_mut(&mut self) -> &mut FlashDevice {
        self.device
            .as_mut()
            .expect("device lives on the server shard")
    }

    /// The network fabric.
    pub fn fabric(&self) -> &Fabric<WireMsg> {
        &self.fabric
    }

    /// Exclusive access to the fabric (fault injection installs hooks and
    /// swaps stack profiles here).
    pub fn fabric_mut(&mut self) -> &mut Fabric<WireMsg> {
        &mut self.fabric
    }

    /// The server under test.
    ///
    /// # Panics
    ///
    /// Panics on a client shard's world (the server lives on shard 0).
    pub fn server(&self) -> &S {
        self.server.as_ref().expect("server lives on shard 0")
    }

    /// Exclusive access to the server (tests and advanced harnesses).
    ///
    /// # Panics
    ///
    /// Panics on a client shard's world (the server lives on shard 0).
    pub fn server_mut(&mut self) -> &mut S {
        self.server.as_mut().expect("server lives on shard 0")
    }

    /// Machine id of client machine `idx` (panics if out of range).
    pub fn client_machine(&self, idx: usize) -> MachineId {
        self.clients[idx].machine
    }

    /// Number of client machines.
    pub fn client_count(&self) -> usize {
        self.clients.len()
    }

    /// Stops every workload generator: open-loop generators cease and
    /// closed-loop connections stop re-issuing, letting queues drain.
    pub fn stop_all_workloads(&mut self) {
        for w in &mut self.workloads {
            w.stopped = true;
        }
    }

    fn ensure_thread_wake(
        &mut self,
        ctx: &mut Ctx<World<S>, WorldEvent>,
        thread: usize,
        at: SimTime,
    ) {
        // Split mode: a thread only pumps on the shard that owns it. Every
        // wake funnels through here, so this is the single gate point.
        if !self.thread_local.get(thread).copied().unwrap_or(false) {
            return;
        }
        let at = at.max(ctx.now());
        if let Some((pending, _)) = self.thread_wake[thread] {
            if at >= pending {
                return; // an earlier (or equal) wake is already armed
            }
        }
        let handle = ctx.schedule_event_at_handle(at, WorldEvent::PumpThread(thread));
        if let Some((_, stale)) = self.thread_wake[thread].replace((at, handle)) {
            ctx.cancel(stale);
        }
    }

    fn ensure_client_wake(&mut self, ctx: &mut Ctx<World<S>, WorldEvent>, client: usize) {
        let machine = self.clients[client].machine;
        let Some(at) = self.fabric.next_arrival(machine) else {
            return;
        };
        let at = at.max(ctx.now());
        if let Some((pending, _)) = self.client_wake[client] {
            if at >= pending {
                return;
            }
        }
        let handle = ctx.schedule_event_at_handle(at, WorldEvent::ClientPoll(client));
        if let Some((_, stale)) = self.client_wake[client].replace((at, handle)) {
            ctx.cancel(stale);
        }
    }

    fn pump_event(&mut self, thread: usize, ctx: &mut Ctx<World<S>, WorldEvent>) {
        // Canonical same-instant order: wake *insertion* order can differ
        // between a single-shard run (wakes armed at send time) and a
        // sharded run (wakes armed at the window exchange), so one pump
        // event services every thread whose wake is due, in ascending
        // thread order, cancelling the siblings' queued events. The pump
        // sequence then depends only on the due set, never on insertion
        // order.
        let now = ctx.now();
        for i in 0..self.thread_wake.len() {
            let due = i == thread || self.thread_wake[i].is_some_and(|(at, _)| at <= now);
            if !due {
                continue;
            }
            if let Some((_, stale)) = self.thread_wake[i].take() {
                if i != thread {
                    ctx.cancel(stale);
                }
            }
            self.pump_one(i, ctx);
        }
    }

    fn pump_one(&mut self, thread: usize, ctx: &mut Ctx<World<S>, WorldEvent>) {
        let server = self.server.as_mut().expect("pump runs on the server shard");
        let device = self.device.as_mut().expect("device lives with the server");
        let wake = server.pump_thread(thread, ctx.now(), &mut self.fabric, device);
        if let Some(at) = wake {
            self.ensure_thread_wake(ctx, thread, at);
        }
        // Responses (and rebalance forwards) may now be in flight.
        for c in 0..self.clients.len() {
            if self.client_local[c] {
                self.ensure_client_wake(ctx, c);
            }
        }
        // Re-arm every active thread whose queue has pending arrivals —
        // including the thread just pumped. Its own `pump_thread` hint also
        // covers the next arrival, but folded together with the core-busy
        // horizon (`max(next_arrival, core_busy)`), whereas a sharded run's
        // window exchange arms the *raw* arrival bound. Arming the raw
        // bound here too makes the effective wake
        // `min(bound, max(other sources, core_busy))` in both modes, so
        // pump instants are identical at any shard count.
        let server = self.server.as_ref().expect("server shard");
        let n_active = server.active_threads();
        let machine = server.machine();
        for i in 0..n_active {
            let queue = self.server.as_ref().expect("server shard").nic_queue(i);
            if let Some(at) = self.fabric.next_arrival_queue(machine, queue) {
                self.ensure_thread_wake(ctx, i, at);
            }
        }
    }

    fn client_poll_event(&mut self, client: usize, ctx: &mut Ctx<World<S>, WorldEvent>) {
        self.poll_due_clients(Some(client), ctx);
    }

    /// Same canonicalization as `pump_event`: poll every local client
    /// whose wake is due, ascending, so the poll sequence at an instant
    /// is independent of wake insertion order. `forced` is the client
    /// whose own wake is the currently-dispatching event (its handle is
    /// already consumed, so it must not be cancelled).
    fn poll_due_clients(&mut self, forced: Option<usize>, ctx: &mut Ctx<World<S>, WorldEvent>) {
        let now = ctx.now();
        for c in 0..self.clients.len() {
            if !self.client_local[c] {
                continue;
            }
            let due = forced == Some(c) || self.client_wake[c].is_some_and(|(at, _)| at <= now);
            if !due {
                continue;
            }
            if let Some((_, stale)) = self.client_wake[c].take() {
                if forced != Some(c) {
                    ctx.cancel(stale);
                }
            }
            self.poll_client(c, ctx);
        }
    }

    /// Stages a retransmission and schedules its backoff deadline.
    fn stage_retry(&mut self, rec: RetryRec, ctx: &mut Ctx<World<S>, WorldEvent>) {
        self.retries_pending.push(rec);
        ctx.schedule_event_at(rec.fire_at, WorldEvent::RetryFire);
    }

    /// Fires every staged retransmission whose backoff has elapsed.
    ///
    /// Canonical same-instant order, across event types: completions beat
    /// retransmissions. Both contend for the client thread's send slot
    /// (`client_threads_busy`), and whether a backoff deadline dispatches
    /// before or after a poll wake at the same instant depends on event
    /// insertion order — which differs between a mono run (wakes re-armed
    /// at every send) and a sharded run (wakes armed at the window
    /// exchange). So: drain every due delivery first, then fire due
    /// retries sorted by a key derived from the request itself. Records
    /// with identical keys are interchangeable, so the result is a pure
    /// function of the event timeline at any shard count.
    fn retry_fire_event(&mut self, ctx: &mut Ctx<World<S>, WorldEvent>) {
        let now = ctx.now();
        self.poll_due_clients(None, ctx);
        let mut due = std::mem::take(&mut self.retry_scratch);
        let mut i = 0;
        while i < self.retries_pending.len() {
            if self.retries_pending[i].fire_at <= now {
                due.push(self.retries_pending.swap_remove(i));
            } else {
                i += 1;
            }
        }
        due.sort_unstable_by_key(|r| {
            (
                r.w_idx,
                r.conn_idx,
                r.attempt,
                r.first_sent_at,
                r.addr,
                r.is_read,
            )
        });
        for r in due.drain(..) {
            self.transmit_attempt(
                r.w_idx,
                r.conn_idx,
                r.is_read,
                r.addr,
                r.len,
                r.first_sent_at,
                r.measured,
                r.attempt,
                ctx,
            );
        }
        self.retry_scratch = due;
    }

    fn poll_client(&mut self, client: usize, ctx: &mut Ctx<World<S>, WorldEvent>) {
        let machine = self.clients[client].machine;
        let mut deliveries = std::mem::take(&mut self.poll_scratch);
        self.fabric
            .poll_into(ctx.now(), machine, usize::MAX, &mut deliveries);
        for d in deliveries.drain(..) {
            let Ok(header) = ReflexHeader::decode(&d.payload) else {
                continue;
            };
            let Some(req) = self.outstanding.take(PoolKey::from_u64(header.cookie)) else {
                // Duplicate delivery, or the response to an attempt that
                // already timed out — a real client ignores both.
                continue;
            };
            let w = &mut self.workloads[req.workload];
            let policy = w.spec.retry;
            if header.opcode == Opcode::Error && req.attempt < policy.max_attempts {
                // Retryable failure: back off and retransmit instead of
                // surfacing the error (the retry keeps closed-loop depth).
                w.retries += 1;
                let backoff = policy.backoff_after(req.attempt);
                self.stage_retry(
                    RetryRec {
                        fire_at: ctx.now() + backoff,
                        w_idx: req.workload,
                        conn_idx: req.conn_idx,
                        is_read: req.is_read,
                        addr: req.addr,
                        len: req.len,
                        first_sent_at: req.sent_at,
                        measured: req.measured,
                        attempt: req.attempt + 1,
                    },
                    ctx,
                );
                continue;
            }
            if header.opcode != Opcode::Error && req.attempt > 1 {
                w.retry_success += 1;
            }
            if header.opcode == Opcode::Error && policy.is_active() {
                // Final attempt still failed: the request is abandoned
                // with its retry budget spent.
                w.exhausted += 1;
            }
            let in_window = self.measure_start.is_some_and(|m| d.arrived_at >= m);
            if in_window {
                let since = d
                    .arrived_at
                    .saturating_since(self.measure_start.expect("checked in_window"));
                w.iops_series.add(SimTime::ZERO + since, 1);
                // Throughput counts every in-window completion — under
                // overload, responses to pre-window requests are still
                // served work (mutilate measures goodput the same way).
                if header.opcode == Opcode::Error {
                    w.errors += 1;
                } else if req.is_read {
                    w.completed_reads += 1;
                    w.read_bytes += req.len as u64;
                } else {
                    w.completed_writes += 1;
                    w.write_bytes += req.len as u64;
                }
                // Latency distributions only include requests issued within
                // the window (no warmup contamination).
                if req.measured && header.opcode != Opcode::Error {
                    let latency = d.arrived_at.saturating_since(req.sent_at);
                    if req.is_read {
                        w.read_hist.record(latency);
                        // Feed the SLO monitor: rolling p95 per tenant
                        // against the registered qos::slo target.
                        self.telemetry.slo_observe(
                            TenantKey(w.spec.tenant.0),
                            latency,
                            d.arrived_at,
                        );
                    } else {
                        w.write_hist.record(latency);
                    }
                }
            }
            // Closed-loop: keep the queue depth topped up.
            if matches!(w.spec.pattern, LoadPattern::ClosedLoop { .. }) && !w.stopped {
                self.issue_request(req.workload, req.conn_idx, ctx);
            }
        }
        self.poll_scratch = deliveries;
        self.ensure_client_wake(ctx, client);
    }

    fn next_addr(&mut self, w_idx: usize, conn_idx: usize) -> u64 {
        let w = &mut self.workloads[w_idx];
        let (ns_start, ns_len) = w.spec.namespace;
        let size = w.spec.io_size as u64;
        let slots = (ns_len / size).max(1);
        match w.spec.addr_pattern {
            AddrPattern::UniformRandom => ns_start + w.rng.below(slots) * size,
            AddrPattern::Sequential => {
                let cur = w.seq_cursor[conn_idx];
                w.seq_cursor[conn_idx] = (cur + 1) % slots;
                ns_start + cur * size
            }
            AddrPattern::Zipfian { .. } => {
                let z = self.zipf[w_idx].as_ref().expect("built at add_workload");
                // Scramble the rank so hot blocks scatter over the address
                // space (ranks map to blocks via a fixed permutation).
                let rank = z.sample(&mut w.rng);
                let block = rank.wrapping_mul(0x9e37_79b9_7f4a_7c15) % slots;
                ns_start + block * size
            }
        }
    }

    fn issue_request(
        &mut self,
        w_idx: usize,
        conn_idx: usize,
        ctx: &mut Ctx<World<S>, WorldEvent>,
    ) {
        let addr = self.next_addr(w_idx, conn_idx);
        let w = &mut self.workloads[w_idx];
        let spec = &w.spec;
        let read_pct = spec.read_pct;
        let is_read = match spec.mix {
            MixProcess::Bernoulli => w.rng.below(100) < read_pct as u64,
            MixProcess::Deterministic => {
                w.read_debt += spec.read_pct as u32;
                if w.read_debt >= 100 {
                    w.read_debt -= 100;
                    true
                } else {
                    false
                }
            }
        };
        let len = spec.io_size;
        self.issue_explicit(w_idx, conn_idx, is_read, addr, len, ctx);
    }

    /// Issues one fully-specified request (the trace-replay path and the
    /// generated path share everything from here on).
    fn issue_explicit(
        &mut self,
        w_idx: usize,
        conn_idx: usize,
        is_read: bool,
        addr: u64,
        io_size: u32,
        ctx: &mut Ctx<World<S>, WorldEvent>,
    ) {
        let now = ctx.now();
        let measured = self.measure_start.is_some_and(|m| now >= m);
        self.transmit_attempt(
            w_idx, conn_idx, is_read, addr, io_size, now, measured, 1, ctx,
        );
    }

    /// Transmits one attempt of a request. `attempt == 1` is a fresh issue;
    /// higher attempts are retransmissions carrying the original request's
    /// first-send instant and measurement flag.
    #[allow(clippy::too_many_arguments)]
    fn transmit_attempt(
        &mut self,
        w_idx: usize,
        conn_idx: usize,
        is_read: bool,
        addr: u64,
        io_size: u32,
        first_sent_at: SimTime,
        measured: bool,
        attempt: u32,
        ctx: &mut Ctx<World<S>, WorldEvent>,
    ) {
        let now = ctx.now();
        let w = &mut self.workloads[w_idx];
        let spec = &w.spec;
        let tenant = spec.tenant;
        let timeout = spec.retry.timeout;
        let client_idx = spec.client_machine;
        let conn = w.conns[conn_idx];
        let th = w.conn_thread[conn_idx] as usize;

        // Client thread gating: the stack's per-message CPU bounds the
        // thread's message rate (Linux: ~70K msgs/s). Retransmissions cost
        // CPU like any other message.
        let per_msg = self.clients[client_idx].stack.per_msg_cpu;
        let busy = &mut self.client_threads_busy[w_idx][th];
        let t_send = now.max(*busy);
        *busy = t_send + per_msg;
        // Ingress span: time the request waited for a client stack thread
        // before hitting the wire.
        self.telemetry.span(
            TenantKey(tenant.0),
            Stage::Ingress,
            t_send.saturating_since(now),
        );

        // Register the attempt first: the slab key becomes the wire cookie
        // (slot + generation), so the response and the timeout both find it
        // by index, and a reused slot invalidates stale cookies.
        let key = self.outstanding.insert(OutstandingReq {
            workload: w_idx,
            conn_idx,
            sent_at: first_sent_at,
            is_read,
            addr,
            len: io_size,
            measured,
            attempt,
        });
        let cookie = key.as_u64();
        let header = ReflexHeader {
            opcode: if is_read { Opcode::Get } else { Opcode::Put },
            tenant: tenant.0,
            cookie,
            addr,
            len: io_size,
        };
        let payload = if is_read { 0 } else { io_size };
        let client_machine = self.clients[client_idx].machine;
        let server_machine = self.server_machine;
        let queue = match &self.server {
            Some(s) => s.route(conn).unwrap_or_default(),
            // Client shard: static route cached at bind time. The
            // server-side wake is armed by the window exchange on the
            // shard that holds the server.
            None => self.route_table.get(&conn).copied().unwrap_or_default(),
        };
        let arrival = self.fabric.send_to_queue(
            t_send,
            client_machine,
            server_machine,
            queue,
            conn,
            payload,
            header.encode_array(),
        );
        if measured && attempt == 1 {
            self.workloads[w_idx].issued += 1;
        }
        let server_thread = self.server.as_ref().map(|s| s.thread_of_conn(conn));
        match server_thread {
            Some(Some(thread)) => self.ensure_thread_wake(ctx, thread, arrival),
            // Unbound connection (link currently down): the message still
            // lands on queue 0 where the dataplane drops it — wake thread 0
            // so the drop is processed even with no other traffic.
            Some(None) => self.ensure_thread_wake(ctx, 0, arrival),
            // No server on this shard: nothing to wake locally.
            None => {}
        }
        if let Some(timeout) = timeout {
            ctx.schedule_event_at(t_send + timeout, WorldEvent::Timeout(cookie));
        }
    }

    /// Fires when an attempt's response deadline passes. If the cookie is
    /// still outstanding the attempt is declared lost: retry with backoff
    /// while attempts remain, otherwise abandon the request (topping up
    /// closed-loop depth so the generator does not deflate).
    fn timeout_event(&mut self, cookie: u64, ctx: &mut Ctx<World<S>, WorldEvent>) {
        // Canonical same-instant order: a response that has *arrived* by
        // the timeout instant beats the timeout. Whether the client's poll
        // wake for that arrival dispatches before or after this event
        // depends on wake insertion order, which differs between a mono
        // run (wakes re-armed at every send) and a sharded run (wakes
        // armed at the window exchange) — so drain the owning client's due
        // deliveries first, then decide whether the attempt is lost.
        if let Some(req) = self.outstanding.get(PoolKey::from_u64(cookie)) {
            let client = self.workloads[req.workload].spec.client_machine;
            if self.client_local[client] {
                self.poll_client(client, ctx);
            }
        }
        let Some(req) = self.outstanding.take(PoolKey::from_u64(cookie)) else {
            return; // answered in time — nothing to do
        };
        let w = &mut self.workloads[req.workload];
        w.timeouts += 1;
        let policy = w.spec.retry;
        if req.attempt < policy.max_attempts {
            w.retries += 1;
            let backoff = policy.backoff_after(req.attempt);
            self.stage_retry(
                RetryRec {
                    fire_at: ctx.now() + backoff,
                    w_idx: req.workload,
                    conn_idx: req.conn_idx,
                    is_read: req.is_read,
                    addr: req.addr,
                    len: req.len,
                    first_sent_at: req.sent_at,
                    measured: req.measured,
                    attempt: req.attempt + 1,
                },
                ctx,
            );
        } else {
            w.exhausted += 1;
            let refill = matches!(w.spec.pattern, LoadPattern::ClosedLoop { .. }) && !w.stopped;
            if refill {
                self.issue_request(req.workload, req.conn_idx, ctx);
            }
        }
    }

    fn open_loop_gen_event(&mut self, w_idx: usize, ctx: &mut Ctx<World<S>, WorldEvent>) {
        let w = &self.workloads[w_idx];
        if w.stopped {
            return;
        }
        let LoadPattern::OpenLoop { iops } = w.spec.pattern else {
            return;
        };
        let conns = w.conns.len();
        let arrival = w.spec.arrival;
        let conn_idx = self.gen_cursor[w_idx] % conns;
        self.gen_cursor[w_idx] += 1;
        self.issue_request(w_idx, conn_idx, ctx);
        let mean = SimDuration::from_secs_f64(1.0 / iops);
        let w = &mut self.workloads[w_idx];
        let gap = match arrival {
            ArrivalProcess::Poisson => w.rng.exponential(mean),
            // ±10% uniform jitter around the nominal gap.
            ArrivalProcess::Paced => mean.mul_f64(0.9 + 0.2 * w.rng.f64()),
        };
        ctx.schedule_event_after(gap, WorldEvent::OpenLoopGen(w_idx));
    }

    fn trace_replay_event(
        &mut self,
        w_idx: usize,
        pos: usize,
        started: SimTime,
        ctx: &mut Ctx<World<S>, WorldEvent>,
    ) {
        let w = &self.workloads[w_idx];
        if w.stopped {
            return;
        }
        let trace = w.spec.trace.clone().expect("trace workloads carry a trace");
        let Some(op) = trace.get(pos) else { return };
        let conns = w.conns.len();
        let conn_idx = pos % conns;
        self.issue_explicit(w_idx, conn_idx, op.is_read, op.addr, op.len, ctx);
        if let Some(next) = trace.get(pos + 1) {
            let due = started + next.at;
            let at = due.max(ctx.now());
            ctx.schedule_event_at(
                at,
                WorldEvent::TraceReplay {
                    w_idx,
                    pos: pos + 1,
                    started,
                },
            );
        }
    }

    fn control_event(&mut self, interval: SimDuration, ctx: &mut Ctx<World<S>, WorldEvent>) {
        if let Some(server) = self.server.as_mut() {
            let _ = server.control_tick(ctx.now(), interval);
        }
        ctx.schedule_event_after(interval, WorldEvent::Control(interval));
    }
}

/// A cross-shard exchange item: a network flight, a batch of staged device
/// commands bound for peer device replicas, or a batch of lease-ledger
/// entries bound for peer ledger replicas. Device and lease batches carry
/// their conservative bound (the end of the window their earliest entry was
/// staged in) computed at flush time, because staged entries only take
/// effect at the *next* window boundary.
#[derive(Debug)]
pub enum WorldFlight {
    /// An in-flight network message.
    Net(Flight<WireMsg>),
    /// Staged NVMe commands replicated to a peer shard's device.
    Dev(SimTime, Vec<StagedCmd>),
    /// Staged lease-ledger operations replicated to a peer shard's ledger.
    Lease(SimTime, Vec<LeaseEntry>),
}

// Sharded execution: a `World` ships departed cross-shard flights at each
// window boundary and folds arrivals from peer shards back into its own
// fabric, arming the same wakes the sender would have armed locally. In
// split-dataplane mode the device and QoS token state cross shards the same
// way: staged commands and lease entries are flights too, bounded by the
// window boundary after their staging instant.
impl<S: ServerHarness + 'static> ShardWorld<WorldEvent> for World<S> {
    type Flight = WorldFlight;

    fn flush_outbound(&mut self, sink: &mut Vec<(usize, Self::Flight)>) {
        let mut nets = Vec::new();
        self.fabric.take_outbound(&mut nets);
        sink.extend(nets.into_iter().map(|(s, f)| (s, WorldFlight::Net(f))));
        if !self.split || self.dev_peers.is_empty() {
            return;
        }
        // Staged entries apply at the first window boundary after their
        // staging instant, so that boundary is their conservative bound.
        let w = self.fabric.lookahead().as_nanos();
        let grid_after = |at: SimTime| SimTime::from_nanos(at.as_nanos() / w * w + w);
        if let Some(device) = self.device.as_mut() {
            let cmds = device.take_staged_outbound();
            if !cmds.is_empty() {
                let bound = grid_after(cmds.iter().map(|c| c.at).min().expect("non-empty"));
                for &p in &self.dev_peers {
                    sink.push((p, WorldFlight::Dev(bound, cmds.clone())));
                }
            }
        }
        if let Some(ledger) = &self.ledger {
            let entries = ledger
                .lock()
                .expect("lease ledger poisoned")
                .take_outbound();
            if !entries.is_empty() {
                let bound = grid_after(entries.iter().map(|e| e.at).min().expect("non-empty"));
                for &p in &self.dev_peers {
                    sink.push((p, WorldFlight::Lease(bound, entries.clone())));
                }
            }
        }
    }

    fn flight_bound(flight: &Self::Flight) -> Option<SimTime> {
        match flight {
            WorldFlight::Net(f) => Some(f.bound()),
            WorldFlight::Dev(bound, _) | WorldFlight::Lease(bound, _) => Some(*bound),
        }
    }

    fn deliver(&mut self, ctx: &mut Ctx<'_, Self, WorldEvent>, flights: &mut Vec<Self::Flight>) {
        for flight in flights.drain(..) {
            match flight {
                WorldFlight::Net(flight) => {
                    let to = flight.to();
                    let conn = flight.conn();
                    let bound = flight.bound();
                    self.fabric.accept_flight(flight);
                    if to == self.server_machine {
                        // Unbound connections fall back to thread 0: the
                        // message lands on queue 0, owned by thread 0's
                        // shard.
                        let thread = self
                            .server
                            .as_ref()
                            .expect("flights to the server land on a server shard")
                            .thread_of_conn(conn)
                            .unwrap_or(0);
                        self.ensure_thread_wake(ctx, thread, bound);
                    } else if let Some(c) = self.clients.iter().position(|c| c.machine == to) {
                        self.ensure_client_wake(ctx, c);
                    }
                }
                // Replica sync carries no wakes: staged entries only take
                // effect at dispatch-time `observe` calls, which existing
                // events already drive.
                WorldFlight::Dev(_, cmds) => {
                    self.device
                        .as_mut()
                        .expect("device replicas live on thread shards")
                        .accept_staged(&cmds);
                }
                WorldFlight::Lease(_, entries) => {
                    self.ledger
                        .as_ref()
                        .expect("ledger replicas live on thread shards")
                        .lock()
                        .expect("lease ledger poisoned")
                        .accept(&entries);
                }
            }
        }
    }
}

/// Per-thread slice of a [`TestbedReport`].
#[derive(Debug, Clone)]
pub struct ThreadReport {
    /// Fraction of the measurement window the core was busy.
    pub busy_fraction: f64,
    /// Fraction of the window spent in QoS scheduling.
    pub sched_fraction: f64,
    /// Raw dataplane statistics (cumulative, not windowed), when the
    /// server exposes them.
    pub stats: Option<reflex_dataplane::ThreadStats>,
}

/// Results of a measurement window.
#[derive(Debug, Clone)]
pub struct TestbedReport {
    /// Length of the measured window.
    pub window: SimDuration,
    /// One report per workload, in registration order.
    pub workloads: Vec<WorkloadReport>,
    /// One report per active server thread.
    pub threads: Vec<ThreadReport>,
    /// Total token spend rate across all tenants (tokens/sec).
    pub token_usage_per_sec: f64,
    /// Device statistics (cumulative).
    pub device: DeviceStats,
    /// Tenants the control plane flagged for SLO renegotiation.
    pub renegotiations: Vec<TenantId>,
    /// Total events dispatched by the engine since the testbed was built
    /// (a proxy for simulation work; sweep harnesses report events/sec).
    pub engine_events: u64,
    /// Telemetry snapshot (counters, per-tenant per-stage spans, IO
    /// conservation counters, SLO windows/violations) — `None` unless
    /// [`Testbed::enable_telemetry`] was called.
    pub telemetry: Option<TelemetrySnapshot>,
}

impl TestbedReport {
    /// Finds a workload report by name.
    ///
    /// # Panics
    ///
    /// Panics if no workload has that name.
    pub fn workload(&self, name: &str) -> &WorkloadReport {
        self.workloads
            .iter()
            .find(|w| w.name == name)
            .unwrap_or_else(|| panic!("no workload named {name}"))
    }
}

/// Builder for a [`Testbed`].
#[derive(Debug)]
pub struct TestbedBuilder {
    device: DeviceProfile,
    link: LinkConfig,
    server: ServerConfig,
    server_stack: StackProfile,
    client_stacks: Vec<StackProfile>,
    cost_model: Option<CostModel>,
    capacity: Option<CapacityProfile>,
    control_interval: SimDuration,
    seed: u64,
}

impl Default for TestbedBuilder {
    fn default() -> Self {
        TestbedBuilder {
            device: reflex_flash::device_a(),
            link: LinkConfig::default(),
            server: ServerConfig::default(),
            server_stack: StackProfile::dataplane_raw(),
            client_stacks: vec![StackProfile::ix_tcp()],
            cost_model: None,
            capacity: None,
            control_interval: SimDuration::from_millis(10),
            seed: 42,
        }
    }
}

impl TestbedBuilder {
    /// Starts from defaults: device A, 10GbE, one IX client machine, one
    /// server thread.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the Flash device profile.
    pub fn device(mut self, profile: DeviceProfile) -> Self {
        self.device = profile;
        self
    }

    /// Sets the fabric link configuration.
    pub fn link(mut self, link: LinkConfig) -> Self {
        self.link = link;
        self
    }

    /// Sets the server configuration (threads, dataplane costs, scaling).
    pub fn server(mut self, server: ServerConfig) -> Self {
        self.server = server;
        self
    }

    /// Sets the number of active server threads (shorthand).
    pub fn server_threads(mut self, threads: u32) -> Self {
        self.server.threads = threads;
        self.server.max_threads = self.server.max_threads.max(threads);
        self
    }

    /// Replaces the client machines (one entry per machine).
    pub fn client_machines(mut self, stacks: Vec<StackProfile>) -> Self {
        self.client_stacks = stacks;
        self
    }

    /// Sets the server machine's network stack (baseline servers run on
    /// the Linux kernel stack; ReFlex polls raw NIC queues).
    pub fn server_stack(mut self, stack: StackProfile) -> Self {
        self.server_stack = stack;
        self
    }

    /// Overrides the cost model (default: matched to the device profile).
    pub fn cost_model(mut self, model: CostModel) -> Self {
        self.cost_model = Some(model);
        self
    }

    /// Overrides the capacity profile (default: matched to the device).
    pub fn capacity(mut self, capacity: CapacityProfile) -> Self {
        self.capacity = Some(capacity);
        self
    }

    /// Sets the RNG seed (default 42).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builds the testbed around a ReFlex server.
    ///
    /// # Panics
    ///
    /// Panics if no client machines are configured.
    pub fn build(self) -> Testbed<ReflexServer> {
        let cost_model = self
            .cost_model
            .clone()
            .unwrap_or_else(|| CostModel::for_profile(&self.device));
        let capacity = self
            .capacity
            .clone()
            .unwrap_or_else(|| CapacityProfile::for_profile(&self.device));
        let server_cfg = self.server.clone();
        self.build_with(move |fabric, device, machine| {
            ReflexServer::new(
                machine,
                fabric,
                device,
                cost_model,
                capacity,
                server_cfg,
                SimTime::ZERO,
            )
        })
    }

    /// Builds the testbed around any [`ServerHarness`] (used by the
    /// baseline servers). The constructor receives the fabric (to add NIC
    /// queues), the device (to create queue pairs) and the server machine.
    ///
    /// # Panics
    ///
    /// Panics if no client machines are configured.
    pub fn build_with<S, F>(self, make_server: F) -> Testbed<S>
    where
        S: ServerHarness + 'static,
        F: FnOnce(&mut Fabric<WireMsg>, &mut FlashDevice, MachineId) -> S,
    {
        assert!(
            !self.client_stacks.is_empty(),
            "need at least one client machine"
        );
        let mut rng = SimRng::seed(self.seed);
        let mut fabric = Fabric::new(self.link, rng.fork());
        let mut device = FlashDevice::new(self.device.clone(), rng.fork());
        device.precondition();
        let clients: Vec<ClientMachine> = self
            .client_stacks
            .into_iter()
            .map(|stack| ClientMachine {
                machine: fabric.add_machine(stack.clone()),
                stack,
            })
            .collect();
        let server_machine = fabric.add_machine(self.server_stack.clone());
        let server = make_server(&mut fabric, &mut device, server_machine);
        // Declare the physical topology: every client talks only to the
        // server (clients ↔ ToR switch ↔ server, §5.1). The link accounting
        // lets the sharded runner drop unlinked shard pairs from its
        // rendezvous math instead of assuming a full mesh.
        for c in &clients {
            fabric.declare_link(c.machine, server_machine);
        }
        // Windowed delivery is the testbed's delivery model: identical
        // semantics at one shard and at N, so splitting the world never
        // changes results.
        fabric.enable_windowed();
        let gen_seed = rng.next_u64();
        let n_threads = server.max_threads();
        let n_clients = clients.len();
        let world = World {
            fabric,
            device: Some(device),
            server: Some(server),
            server_machine,
            route_table: HashMap::new(),
            client_local: vec![true; n_clients],
            gen_seed,
            clients,
            workloads: Vec::new(),
            client_threads_busy: Vec::new(),
            outstanding: SlabPool::new(),
            poll_scratch: Vec::new(),
            retries_pending: Vec::new(),
            retry_scratch: Vec::new(),
            thread_wake: vec![None; n_threads],
            client_wake: vec![None; n_clients],
            measure_start: None,
            busy_snapshot: Vec::new(),
            sched_snapshot: Vec::new(),
            spent_snapshot: HashMap::new(),
            gen_cursor: Vec::new(),
            zipf: Vec::new(),
            telemetry: Telemetry::disabled(),
            split: false,
            thread_local: vec![true; n_threads],
            ledger: None,
            dev_peers: Vec::new(),
        };
        let mut engine = Engine::with_events(world);
        let interval = self.control_interval;
        engine.schedule_event_at(SimTime::ZERO + interval, WorldEvent::Control(interval));
        Testbed {
            engine: ShardedEngine::single(engine),
            measure_begin: SimTime::ZERO,
            control_interval: interval,
            owner: Vec::new(),
            exported: vec![ShardStats::default()],
            split: false,
            shard_note: None,
        }
    }
}

/// Why [`Testbed::enable_split_dataplane`] left the unified dataplane in
/// place. Returned (not just printed) so tests and the swarm harness can
/// assert the *reason* for a fallback instead of scraping stderr.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitFallback {
    /// The server under test does not support thread-granular sharding
    /// ([`ServerHarness::supports_split`] is `false`).
    ServerUnsupported,
    /// A network fault hook is armed; fault campaigns run unified.
    NetFaultHook,
    /// A device fault hook is armed; fault campaigns run unified.
    DeviceFaultHook,
    /// NIC queues are not laid out one-per-thread, so queues cannot be
    /// assigned to thread shards.
    QueueLayout,
}

impl std::fmt::Display for SplitFallback {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SplitFallback::ServerUnsupported => {
                "the server does not support thread-granular sharding"
            }
            SplitFallback::NetFaultHook => "a network fault hook is installed",
            SplitFallback::DeviceFaultHook => "a device fault hook is installed",
            SplitFallback::QueueLayout => "NIC queues are not one-per-thread",
        })
    }
}

impl std::error::Error for SplitFallback {}

/// Why [`Testbed::with_shards`] ran on fewer shards than requested (or on
/// one). Recorded on the testbed and queryable via
/// [`Testbed::shard_clamp`]; `None` means the request was honored exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardClamp {
    /// No client machines exist to split off; running single-shard.
    NoClients,
    /// A network fault hook is installed; fault campaigns are single-shard.
    FaultHook,
    /// The server rebalances routes at runtime
    /// ([`ServerHarness::supports_sharding`] is `false`).
    ServerDynamicRouting,
    /// Fewer placement entities than requested shards: clamped.
    Clamped {
        /// Shards the caller asked for.
        requested: usize,
        /// Shards the testbed actually runs on.
        effective: usize,
    },
}

impl std::fmt::Display for ShardClamp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardClamp::NoClients => f.write_str("no client machines to split off"),
            ShardClamp::FaultHook => f.write_str("a network fault hook is installed"),
            ShardClamp::ServerDynamicRouting => {
                f.write_str("the server rebalances routes at runtime")
            }
            ShardClamp::Clamped {
                requested,
                effective,
            } => write!(f, "{requested} shards requested, clamped to {effective}"),
        }
    }
}

/// The assembled simulation. See the module documentation.
pub struct Testbed<S: ServerHarness = ReflexServer> {
    engine: ShardedEngine<World<S>, WorldEvent>,
    measure_begin: SimTime,
    control_interval: SimDuration,
    /// Shard that owns each workload's generator, in registration order.
    owner: Vec<usize>,
    /// Per-shard counters already folded into telemetry, so repeated
    /// [`run`](Self::run) calls export deltas rather than double counting.
    exported: Vec<ShardStats>,
    /// Split-dataplane mode is armed (see
    /// [`enable_split_dataplane`](Self::enable_split_dataplane)).
    split: bool,
    /// Why the last [`with_shards`](Self::with_shards) fell back or
    /// clamped, if it did.
    shard_note: Option<ShardClamp>,
}

impl<S: ServerHarness + 'static> std::fmt::Debug for Testbed<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Testbed")
            .field("shards", &self.engine.shards())
            .field("now", &self.engine.now())
            .finish()
    }
}

impl Testbed<ReflexServer> {
    /// Starts building a testbed.
    pub fn builder() -> TestbedBuilder {
        TestbedBuilder::new()
    }
}

/// Shard→core placement. Pins each shard thread to its own core when the
/// host allows at least as many distinct cores as shards; on oversubscribed
/// hosts placement is skipped (stacking spinning shard threads on one core
/// fights the OS scheduler and is slower than floating).
///
/// `REFLEX_SIM_PIN=0`/`off` disables placement, `1`/`on` forces it even
/// when oversubscribed (shards round-robin over the allowed cores). Any
/// other value is a loud error — a typo silently changing the performance
/// envelope is worse than a panic.
fn plan_pinning(shards: usize) -> Option<Vec<usize>> {
    let knob = std::env::var("REFLEX_SIM_PIN").ok();
    let forced = match knob.as_deref() {
        Some("0") | Some("off") => return None,
        Some("1") | Some("on") => true,
        None | Some("") => false,
        Some(other) => panic!("invalid REFLEX_SIM_PIN={other:?} (expected 0/off or 1/on)"),
    };
    let cores = core_affinity::get_core_ids()?;
    if cores.is_empty() || (!forced && cores.len() < shards) {
        return None;
    }
    Some((0..shards).map(|i| cores[i % cores.len()].id).collect())
}

impl<S: ServerHarness + 'static> Testbed<S> {
    /// Current simulated instant.
    pub fn now(&self) -> SimTime {
        self.engine.now()
    }

    /// Number of shards the simulation runs on (1 unless
    /// [`with_shards`](Self::with_shards) split it).
    pub fn shards(&self) -> usize {
        self.engine.shards()
    }

    /// Why the last [`with_shards`](Self::with_shards) call fell back to
    /// fewer shards than requested; `None` when it was honored exactly
    /// (or never called).
    pub fn shard_clamp(&self) -> Option<ShardClamp> {
        self.shard_note
    }

    /// Whether split-dataplane mode is armed (see
    /// [`enable_split_dataplane`](Self::enable_split_dataplane)).
    pub fn split_dataplane(&self) -> bool {
        self.split
    }

    /// The lease ledger's conservation pair `(gives, accounted)` —
    /// cumulative donations vs `residue + Σ leases + taken + discarded` —
    /// from the first shard holding a ledger replica. `None` outside
    /// split-dataplane mode. Every replica agrees at applied boundaries,
    /// so one replica suffices; the swarm oracle asserts the two sides
    /// are equal at run exit.
    pub fn lease_accounting(&self) -> Option<(i64, i64)> {
        (0..self.engine.shards()).find_map(|s| {
            self.engine.engine(s).world().ledger.as_ref().map(|l| {
                let l = l.lock().expect("lease ledger poisoned");
                (l.gives_cum(), l.accounted())
            })
        })
    }

    /// Shared access to the world (shard 0 — the server's shard — when
    /// sharded).
    pub fn world(&self) -> &World<S> {
        self.engine.engine(0).world()
    }

    /// Exclusive access to the world (shard 0 when sharded).
    pub fn world_mut(&mut self) -> &mut World<S> {
        self.engine.engine_mut(0).world_mut()
    }

    /// Schedules an arbitrary event against the (shard 0) world at instant
    /// `at` — the hook fault injectors use to fire timed events (link
    /// flaps, thread stalls) inside the simulation.
    pub fn schedule_at<F>(&mut self, at: SimTime, f: F)
    where
        F: FnOnce(&mut World<S>, &mut Ctx<World<S>, WorldEvent>) + Send + 'static,
    {
        self.engine.engine_mut(0).schedule_at(at, f);
    }

    /// Splits the simulated world by machine across up to `n` OS threads:
    /// shard 0 keeps the server (and the Flash device); client machines
    /// round-robin over the remaining shards. Shards advance in lockstep
    /// windows equal to the link propagation delay (the conservative-PDES
    /// lookahead) and exchange in-flight messages at window boundaries in
    /// a deterministic total order, so results are **byte-identical** to
    /// the single-shard run.
    ///
    /// Silently stays single-shard when `n <= 1`, when there are no client
    /// machines to split off, when the server rebalances routes at runtime
    /// ([`ServerHarness::supports_sharding`] is `false`), or when a
    /// network fault hook is installed (fault campaigns are single-shard).
    ///
    /// # Panics
    ///
    /// Panics if called after a workload was added or after the simulation
    /// has started running.
    pub fn with_shards(mut self, n: usize) -> Self {
        if self.split {
            return self.with_shards_split(n);
        }
        let world0 = self.engine.engine(0).world();
        let n_clients = world0.clients.len();
        let n_eff = 1 + n.saturating_sub(1).min(n_clients);
        if self.engine.shards() != 1 || n_eff <= 1 {
            if n > 1 && self.engine.shards() == 1 && n_clients == 0 {
                self.shard_note = Some(ShardClamp::NoClients);
                eprintln!(
                    "reflex-sim: {n} shards requested but there are no client machines to \
                     split off; running single-shard"
                );
            }
            return self;
        }
        if !world0.server().supports_sharding() || world0.fabric.has_fault_hook() {
            let clamp = if world0.fabric.has_fault_hook() {
                ShardClamp::FaultHook
            } else {
                ShardClamp::ServerDynamicRouting
            };
            eprintln!("reflex-sim: {n} shards requested but {clamp}; running single-shard");
            self.shard_note = Some(clamp);
            return self;
        }
        if n_eff < n {
            self.shard_note = Some(ShardClamp::Clamped {
                requested: n,
                effective: n_eff,
            });
            eprintln!(
                "reflex-sim: {n} shards requested, clamped to {n_eff} \
                 (1 server shard + {n_clients} client machines)"
            );
        }
        assert!(
            world0.workloads.is_empty(),
            "with_shards must be called before add_workload"
        );
        assert_eq!(
            self.engine.now(),
            SimTime::ZERO,
            "with_shards must be called before the simulation runs"
        );
        let engine = self
            .engine
            .into_engines()
            .pop()
            .expect("single-shard testbed holds one engine");
        let mut world = engine.into_world();
        let mut shard_of = vec![0usize; world.fabric.machines()];
        for (i, c) in world.clients.iter().enumerate() {
            shard_of[c.machine.0 as usize] = 1 + i % (n_eff - 1);
        }
        let window = world.fabric.lookahead();
        let mut server = world.server.take();
        let mut device = world.device.take();
        let mut engines = Vec::with_capacity(n_eff);
        for s in 0..n_eff {
            let shard_world = World {
                fabric: world.fabric.split_for_shard(&shard_of, s),
                device: if s == 0 { device.take() } else { None },
                server: if s == 0 { server.take() } else { None },
                server_machine: world.server_machine,
                route_table: HashMap::new(),
                client_local: world
                    .clients
                    .iter()
                    .map(|c| shard_of[c.machine.0 as usize] == s)
                    .collect(),
                gen_seed: world.gen_seed,
                clients: world.clients.clone(),
                workloads: Vec::new(),
                client_threads_busy: Vec::new(),
                outstanding: SlabPool::new(),
                poll_scratch: Vec::new(),
                retries_pending: Vec::new(),
                retry_scratch: Vec::new(),
                thread_wake: vec![None; world.thread_wake.len()],
                client_wake: vec![None; world.client_wake.len()],
                measure_start: None,
                busy_snapshot: Vec::new(),
                sched_snapshot: Vec::new(),
                spent_snapshot: HashMap::new(),
                gen_cursor: Vec::new(),
                zipf: Vec::new(),
                telemetry: world.telemetry.clone(),
                split: false,
                // Machine-granular sharding: every thread lives with the
                // server on shard 0.
                thread_local: vec![s == 0; world.thread_wake.len()],
                ledger: None,
                dev_peers: Vec::new(),
            };
            let mut eng = Engine::with_events(shard_world);
            if s == 0 {
                // The control plane ticks with the server.
                eng.schedule_event_at(
                    SimTime::ZERO + self.control_interval,
                    WorldEvent::Control(self.control_interval),
                );
            }
            engines.push(eng);
        }
        let topology = world.fabric.shard_topology(&shard_of, n_eff);
        self.engine = ShardedEngine::new(engines, window);
        self.engine.set_topology(topology);
        self.engine.set_pinning(plan_pinning(n_eff));
        self.exported = vec![ShardStats::default(); n_eff];
        self
    }

    /// Switches the testbed to split-dataplane mode: the NIC serializes
    /// each queue on its own lane, the Flash device stages commands on the
    /// window grid, and the schedulers' shared token bucket is replaced by
    /// a deterministically-mergeable lease ledger. A subsequent
    /// [`with_shards`](Self::with_shards) then distributes dataplane
    /// *threads* (not just client machines) across shards — each thread
    /// shard carries replicas of the device and ledger, kept bit-identical
    /// by broadcasting staged entries at window boundaries.
    ///
    /// All three mechanisms are active even at one shard, so split-mode
    /// results are byte-identical at every shard count (but differ from
    /// unified-dataplane results: token grants quantize to the window
    /// grid). The default OFF keeps every existing figure untouched.
    ///
    /// # Errors
    ///
    /// Returns the typed [`SplitFallback`] reason (with a one-line stderr
    /// note, leaving the unified dataplane in place) when the server does
    /// not support splitting, a fault hook is installed, or NIC queues are
    /// not one-per-thread.
    ///
    /// # Panics
    ///
    /// Panics if called after [`with_shards`](Self::with_shards),
    /// [`add_workload`](Self::add_workload), or the first
    /// [`run`](Self::run).
    pub fn enable_split_dataplane(&mut self) -> Result<(), SplitFallback> {
        assert_eq!(
            self.engine.shards(),
            1,
            "enable_split_dataplane must precede with_shards"
        );
        assert_eq!(
            self.engine.now(),
            SimTime::ZERO,
            "enable_split_dataplane must precede the first run"
        );
        let world = self.engine.engine_mut(0).world_mut();
        assert!(
            world.workloads.is_empty(),
            "enable_split_dataplane must precede add_workload"
        );
        let server_machine = world.server_machine;
        let max_threads = world.server().max_threads();
        let reason = if !world.server().supports_split() {
            Some(SplitFallback::ServerUnsupported)
        } else if world.fabric.has_fault_hook() {
            Some(SplitFallback::NetFaultHook)
        } else if world.device().has_fault_hook() {
            Some(SplitFallback::DeviceFaultHook)
        } else if world.fabric.queue_count(server_machine) as usize != max_threads {
            Some(SplitFallback::QueueLayout)
        } else {
            None
        };
        if let Some(reason) = reason {
            eprintln!(
                "reflex-sim: split-dataplane disabled ({reason}); running the unified dataplane"
            );
            return Err(reason);
        }
        let window = world.fabric.lookahead();
        let active = world.server().active_threads();
        world.fabric.enable_lanes(server_machine);
        world.device_mut().enable_windowed(window);
        let mut ledger = LeaseLedger::new(max_threads as u32, window);
        ledger.set_active_threads(active as u32);
        let ledger = Arc::new(Mutex::new(ledger));
        world
            .server_mut()
            .set_token_pool(TokenPool::Leased(Arc::clone(&ledger)));
        world.ledger = Some(ledger);
        world.split = true;
        self.split = true;
        Ok(())
    }

    /// Thread-granular sharding for split-dataplane mode: each dataplane
    /// thread (with its NIC lane and NVMe queue pair) and each client
    /// machine is a placement entity, round-robined across up to `n`
    /// shards. Every thread-owning shard carries a pristine server replica
    /// plus device and lease-ledger replicas; staged NVMe commands and
    /// lease entries broadcast at window boundaries keep the replicas
    /// bit-identical, so results match the split-mode single-shard run
    /// byte for byte.
    fn with_shards_split(mut self, n: usize) -> Self {
        let world0 = self.engine.engine(0).world();
        let n_threads = world0.server().active_threads();
        let n_clients = world0.clients.len();
        let n_eff = n.min(n_threads + n_clients);
        if self.engine.shards() != 1 || n_eff <= 1 {
            return self;
        }
        assert!(
            world0.workloads.is_empty(),
            "with_shards must be called before add_workload"
        );
        assert_eq!(
            self.engine.now(),
            SimTime::ZERO,
            "with_shards must be called before the simulation runs"
        );
        if n_eff < n {
            self.shard_note = Some(ShardClamp::Clamped {
                requested: n,
                effective: n_eff,
            });
            eprintln!(
                "reflex-sim: {n} shards requested, clamped to {n_eff} \
                 ({n_threads} dataplane threads + {n_clients} client machines)"
            );
        }
        let engine = self
            .engine
            .into_engines()
            .pop()
            .expect("single-shard testbed holds one engine");
        let mut world = engine.into_world();
        let max_threads = world.thread_wake.len();
        // Placement entity k is thread k (k < n_threads) or client
        // machine k - n_threads, round-robined over the shards.
        let owner = |k: usize| k % n_eff;
        let mut shard_of = vec![0usize; world.fabric.machines()];
        for (i, c) in world.clients.iter().enumerate() {
            shard_of[c.machine.0 as usize] = owner(n_threads + i);
        }
        // Queue q belongs to thread q's shard (enable_split_dataplane
        // verified the one-queue-per-thread layout). Inactive threads'
        // queues never see traffic; park them on shard 0.
        let queue_map: Vec<usize> = (0..max_threads)
            .map(|q| if q < n_threads { owner(q) } else { 0 })
            .collect();
        let t_shards = n_eff.min(n_threads);
        let window = world.fabric.lookahead();
        let server0 = world.server.take().expect("split testbed holds the server");
        let device0 = world.device.take().expect("split testbed holds the device");
        let ledger0 = world.ledger.take().expect("split mode installed a ledger");
        let active = server0.active_threads();

        let mut servers: Vec<Option<S>> = (0..n_eff).map(|_| None).collect();
        let mut devices: Vec<Option<FlashDevice>> = (0..n_eff).map(|_| None).collect();
        let mut ledgers: Vec<Option<Arc<Mutex<LeaseLedger>>>> = (0..n_eff).map(|_| None).collect();
        for s in 1..t_shards {
            let mut replica = server0
                .replicate(SimTime::ZERO)
                .expect("supports_split implies replicate");
            let mut ledger = LeaseLedger::new(max_threads as u32, window);
            ledger.set_active_threads(active as u32);
            let ledger = Arc::new(Mutex::new(ledger));
            replica.set_token_pool(TokenPool::Leased(Arc::clone(&ledger)));
            servers[s] = Some(replica);
            devices[s] = Some(device0.replicate());
            ledgers[s] = Some(ledger);
        }
        servers[0] = Some(server0);
        devices[0] = Some(device0);
        ledgers[0] = Some(ledger0);
        // Each replica delivers completions only for the queue pairs its
        // shard owns (every replica still applies every command, keeping
        // device state bit-identical across shards).
        for (s, dev) in devices.iter_mut().enumerate().take(t_shards) {
            let mask: Vec<bool> = (0..max_threads)
                .map(|i| i < n_threads && owner(i) == s)
                .collect();
            dev.as_mut()
                .expect("thread shards hold a device")
                .set_local_qps(mask);
        }

        let mut engines = Vec::with_capacity(n_eff);
        for s in 0..n_eff {
            let shard_world = World {
                fabric: world.fabric.split_for_shard_with_queues(
                    &shard_of,
                    s,
                    Some((world.server_machine, queue_map.clone())),
                ),
                device: devices[s].take(),
                server: servers[s].take(),
                server_machine: world.server_machine,
                route_table: HashMap::new(),
                client_local: world
                    .clients
                    .iter()
                    .map(|c| shard_of[c.machine.0 as usize] == s)
                    .collect(),
                gen_seed: world.gen_seed,
                clients: world.clients.clone(),
                workloads: Vec::new(),
                client_threads_busy: Vec::new(),
                outstanding: SlabPool::new(),
                poll_scratch: Vec::new(),
                retries_pending: Vec::new(),
                retry_scratch: Vec::new(),
                thread_wake: vec![None; max_threads],
                client_wake: vec![None; world.client_wake.len()],
                measure_start: None,
                busy_snapshot: Vec::new(),
                sched_snapshot: Vec::new(),
                spent_snapshot: HashMap::new(),
                gen_cursor: Vec::new(),
                zipf: Vec::new(),
                telemetry: world.telemetry.clone(),
                split: true,
                thread_local: (0..max_threads)
                    .map(|i| i < n_threads && owner(i) == s)
                    .collect(),
                ledger: ledgers[s].take(),
                dev_peers: if s < t_shards {
                    (0..t_shards).filter(|&p| p != s).collect()
                } else {
                    Vec::new()
                },
            };
            let mut eng = Engine::with_events(shard_world);
            if s < t_shards {
                // The control plane ticks on every thread-owning shard:
                // deficit detection and SLO monitoring read local thread
                // state only, and the report unions the per-shard flags.
                eng.schedule_event_at(
                    SimTime::ZERO + self.control_interval,
                    WorldEvent::Control(self.control_interval),
                );
            }
            engines.push(eng);
        }
        // Queue-granular routing makes client↔thread-shard and
        // thread-shard↔thread-shard pairs all active: a full mesh.
        self.engine = ShardedEngine::new(engines, window);
        self.engine
            .set_topology(ShardTopology::full_mesh(n_eff, window));
        self.engine.set_pinning(plan_pinning(n_eff));
        self.exported = vec![ShardStats::default(); n_eff];
        self
    }

    /// Registers a workload: admits its tenant, opens and binds its
    /// connections, and starts its generator.
    ///
    /// # Errors
    ///
    /// See [`TestbedError`].
    pub fn add_workload(&mut self, spec: WorkloadSpec) -> Result<(), TestbedError> {
        let mut spec = spec;
        spec.validate().map_err(TestbedError::InvalidSpec)?;
        let shards = self.engine.shards();
        // Validation and tenant/connection registration run against the
        // server's shard (shard 0 — the only shard in a single-shard run).
        let world = self.engine.engine_mut(0).world_mut();
        if spec.client_machine >= world.clients.len() {
            return Err(TestbedError::NoSuchClient(spec.client_machine));
        }
        // Clamp the namespace to the device capacity so default specs work
        // on any profile.
        let capacity = world.device().profile().capacity_bytes;
        if spec.namespace.0 >= capacity {
            return Err(TestbedError::InvalidSpec(
                "namespace beyond device capacity".into(),
            ));
        }
        spec.namespace.1 = spec.namespace.1.min(capacity - spec.namespace.0);
        let acl = reflex_dataplane::AclEntry {
            ns_start: spec.namespace.0,
            ns_len: spec.namespace.1,
            allow_read: true,
            allow_write: true,
            allowed_clients: None,
        };
        if spec.shards > 1 {
            // Sharded registration goes through the concrete ReFlex path;
            // harness servers without sharding treat it as an error.
            world.server_mut().register_tenant_sharded(
                spec.tenant,
                spec.class,
                acl.clone(),
                spec.io_size,
                spec.shards,
            )?;
        } else {
            world.server_mut().register_tenant(
                spec.tenant,
                spec.class,
                acl.clone(),
                spec.io_size,
            )?;
        }
        // Latency-critical tenants get an SLO monitor entry keyed on their
        // p95 read-latency target (no-op while telemetry is disabled).
        if let Some(slo) = spec.class.slo() {
            world
                .telemetry
                .slo_register(TenantKey(spec.tenant.0), slo.p95_read_latency);
        }

        let client_machine = world.clients[spec.client_machine].machine;
        let w_idx = world.workloads.len();
        // Each workload draws from its own RNG stream, keyed by its stable
        // registration index — draws never depend on other workloads or on
        // event interleaving, so sharded runs replay the same sequences.
        let mut state =
            WorkloadState::new(spec.clone(), SimRng::stream(world.gen_seed, w_idx as u64));
        let mut routes = Vec::with_capacity(spec.conns as usize);
        for i in 0..spec.conns {
            let conn = world.fabric.new_conn();
            world
                .server_mut()
                .bind_connection(conn, spec.tenant, client_machine)
                .map_err(TestbedError::Admission)?;
            let queue = world.server().route(conn).unwrap_or_default();
            routes.push((conn, queue));
            state.conns.push(conn);
            state.conn_thread.push(i % spec.client_threads);
            state.seq_cursor.push(0);
        }
        let zipf = match spec.addr_pattern {
            AddrPattern::Zipfian { theta_permille } => {
                let slots = (spec.namespace.1 / spec.io_size as u64).max(2);
                Some(Zipf::new(
                    slots,
                    f64::from(theta_permille.clamp(1, 999)) / 1000.0,
                ))
            }
            _ => None,
        };
        // Open-loop kickoff offset comes out of the workload's own stream
        // *before* the state is replicated, so every shard's copy agrees
        // on the stream position.
        let open_loop_offset = match (&spec.trace, spec.pattern) {
            (None, LoadPattern::OpenLoop { iops }) => Some(
                state
                    .rng
                    .exponential(SimDuration::from_secs_f64(1.0 / iops)),
            ),
            _ => None,
        };

        // Replicate the workload's bookkeeping onto every shard so indices
        // line up everywhere; only the owner shard's copy ever advances.
        for s in 0..shards {
            let w = self.engine.engine_mut(s).world_mut();
            debug_assert_eq!(w.workloads.len(), w_idx);
            if s > 0 && w.server.is_some() {
                // Split replicas replay registration and binding so every
                // shard's placement bookkeeping (and conn → thread routes)
                // matches shard 0 bit for bit — placement is deterministic.
                if spec.shards > 1 {
                    w.server_mut().register_tenant_sharded(
                        spec.tenant,
                        spec.class,
                        acl.clone(),
                        spec.io_size,
                        spec.shards,
                    )?;
                } else {
                    w.server_mut().register_tenant(
                        spec.tenant,
                        spec.class,
                        acl.clone(),
                        spec.io_size,
                    )?;
                }
                for &(conn, queue) in &routes {
                    let (_, q) =
                        w.server_mut()
                            .bind_connection(conn, spec.tenant, client_machine)?;
                    debug_assert_eq!(q, queue, "replica placement diverged from shard 0");
                }
            }
            w.zipf.push(zipf.clone());
            w.workloads.push(state.clone());
            w.client_threads_busy
                .push(vec![SimTime::ZERO; spec.client_threads as usize]);
            w.gen_cursor.push(0);
            for &(conn, queue) in &routes {
                w.route_table.insert(conn, queue);
            }
        }
        // The generator runs on the shard simulating the client machine.
        let owner = (0..shards)
            .find(|&s| self.engine.engine(s).world().client_local[spec.client_machine])
            .expect("every client machine is local to exactly one shard");
        self.owner.push(owner);

        // Kick off the generator (trace replay overrides the pattern).
        let eng = self.engine.engine_mut(owner);
        if let Some(trace) = &spec.trace {
            let start = eng.now();
            let first_at = trace.first().expect("validated non-empty").at;
            eng.schedule_event_at(
                start + first_at,
                WorldEvent::TraceReplay {
                    w_idx,
                    pos: 0,
                    started: start,
                },
            );
            return Ok(());
        }
        match spec.pattern {
            LoadPattern::OpenLoop { .. } => {
                let offset = open_loop_offset.expect("drawn above for open-loop patterns");
                let at = eng.now() + offset;
                eng.schedule_event_at(at, WorldEvent::OpenLoopGen(w_idx));
            }
            LoadPattern::ClosedLoop { queue_depth } => {
                for conn_idx in 0..spec.conns as usize {
                    for q in 0..queue_depth {
                        // Stagger initial issues by a microsecond each so
                        // connections do not start in lockstep.
                        let offset = SimDuration::from_nanos(
                            (conn_idx as u64 * queue_depth as u64 + q as u64) * 1_000,
                        );
                        let at = eng.now() + offset;
                        eng.schedule_event_at(at, WorldEvent::Issue { w_idx, conn_idx });
                    }
                }
            }
        }
        Ok(())
    }

    /// Marks the end of warmup: clears all histograms and counters so the
    /// next [`report`](Self::report) covers only what follows.
    pub fn begin_measurement(&mut self) {
        let now = self.engine.now();
        self.measure_begin = now;
        for s in 0..self.engine.shards() {
            let world = self.engine.engine_mut(s).world_mut();
            world.measure_start = Some(now);
            for w in &mut world.workloads {
                w.reset_measurement();
            }
            if let Some(server) = world.server.as_ref() {
                world.busy_snapshot = (0..server.max_threads())
                    .map(|i| server.busy_time(i))
                    .collect();
                world.sched_snapshot = (0..server.max_threads())
                    .map(|i| server.sched_time(i))
                    .collect();
                world.spent_snapshot = server.tenants_spent_millitokens();
            }
        }
    }

    /// Advances the simulation by `span` (all shards in lockstep windows
    /// when sharded).
    pub fn run(&mut self, span: SimDuration) {
        self.engine.run_for(span);
        self.settle_split();
        self.export_shard_counters();
    }

    /// Split mode only: after a run, exchange any staged device commands
    /// and lease entries still in flight and advance every replica's
    /// apply horizon to the stop instant. Without this, a replica whose
    /// shard saw no event near the end of the run would report stale
    /// device statistics (the apply horizon only advances at event
    /// dispatch), and the reported state would depend on the shard count.
    /// Net flights are *not* exchanged — they stay queued for the next
    /// window like in any paused run.
    fn settle_split(&mut self) {
        if !self.split {
            return;
        }
        let shards = self.engine.shards();
        let now = self.engine.now();
        if shards > 1 {
            let mut dev_posts: Vec<(usize, Vec<StagedCmd>)> = Vec::new();
            let mut lease_posts: Vec<(usize, Vec<LeaseEntry>)> = Vec::new();
            for s in 0..shards {
                let w = self.engine.engine_mut(s).world_mut();
                if let Some(device) = w.device.as_mut() {
                    let cmds = device.take_staged_outbound();
                    if !cmds.is_empty() {
                        dev_posts.push((s, cmds));
                    }
                }
                if let Some(ledger) = &w.ledger {
                    let entries = ledger
                        .lock()
                        .expect("lease ledger poisoned")
                        .take_outbound();
                    if !entries.is_empty() {
                        lease_posts.push((s, entries));
                    }
                }
            }
            for s in 0..shards {
                let w = self.engine.engine_mut(s).world_mut();
                if w.server.is_none() {
                    continue;
                }
                for (from, cmds) in &dev_posts {
                    if *from != s {
                        w.device
                            .as_mut()
                            .expect("thread shards hold a device")
                            .accept_staged(cmds);
                    }
                }
                for (from, entries) in &lease_posts {
                    if *from != s {
                        w.ledger
                            .as_ref()
                            .expect("thread shards hold a ledger")
                            .lock()
                            .expect("lease ledger poisoned")
                            .accept(entries);
                    }
                }
            }
        }
        for s in 0..shards {
            let w = self.engine.engine_mut(s).world_mut();
            if let Some(device) = w.device.as_mut() {
                device.observe(now);
            }
            if let Some(ledger) = &w.ledger {
                ledger.lock().expect("lease ledger poisoned").observe(now);
            }
        }
    }

    /// Overrides how the sharded runner picks rendezvous boundaries (no-op
    /// at one shard). Simulated results are byte-identical under every
    /// policy; only barrier counts and wall time change.
    pub fn set_lookahead_policy(&mut self, policy: LookaheadPolicy) {
        self.engine.set_policy(policy);
    }

    /// The active rendezvous policy of the sharded runner.
    pub fn lookahead_policy(&self) -> LookaheadPolicy {
        self.engine.policy()
    }

    /// Cumulative runner counters for shard `s` (barrier waits, committed
    /// windows, extended commits, wall time).
    pub fn shard_stats(&self, s: usize) -> ShardStats {
        self.engine.shard_stats(s)
    }

    /// Folds per-shard runner counters into telemetry as deltas since the
    /// last export. Single-shard runs take no barriers and export nothing,
    /// so figure TSVs (and the allocation budget) are untouched.
    fn export_shard_counters(&mut self) {
        let shards = self.engine.shards();
        if shards <= 1 {
            return;
        }
        let telemetry = self.engine.engine(0).world().telemetry.clone();
        for s in 0..shards {
            let stats = self.engine.shard_stats(s);
            let last = &mut self.exported[s];
            telemetry.count_shard(
                ShardCounter::BarrierWaits,
                s,
                stats.barrier_waits - last.barrier_waits,
            );
            telemetry.count_shard(
                ShardCounter::WindowsCommitted,
                s,
                stats.windows_committed - last.windows_committed,
            );
            telemetry.count_shard(
                ShardCounter::ExtendedCommits,
                s,
                stats.extended_commits - last.extended_commits,
            );
            *last = stats;
        }
    }

    /// Produces the measurement report for the window since
    /// [`begin_measurement`](Self::begin_measurement).
    pub fn report(&self) -> TestbedReport {
        let world = self.engine.engine(0).world();
        let window = self.engine.now().saturating_since(self.measure_begin);
        // Workload state advances only on its owner shard — read it there.
        let workloads: Vec<WorkloadReport> = (0..world.workloads.len())
            .map(|i| {
                let s = self.owner.get(i).copied().unwrap_or(0);
                self.engine.engine(s).world().workloads[i].report(window)
            })
            .collect();
        let world_server = world.server();
        let shards = self.engine.shards();
        let mut threads = Vec::new();
        for i in 0..world_server.active_threads() {
            // Thread state advances only on the shard that owns the thread
            // (shard 0 unless split-dataplane distributed them).
            let tw = (0..shards)
                .map(|s| self.engine.engine(s).world())
                .find(|w| w.server.is_some() && w.thread_local.get(i).copied().unwrap_or(false))
                .unwrap_or(world);
            let server = tw.server();
            let busy0 = tw
                .busy_snapshot
                .get(i)
                .copied()
                .unwrap_or(SimDuration::ZERO);
            let sched0 = tw
                .sched_snapshot
                .get(i)
                .copied()
                .unwrap_or(SimDuration::ZERO);
            let secs = window.as_secs_f64().max(1e-12);
            threads.push(ThreadReport {
                busy_fraction: server.busy_time(i).saturating_sub(busy0).as_secs_f64() / secs,
                sched_fraction: server.sched_time(i).saturating_sub(sched0).as_secs_f64() / secs,
                stats: server.thread_stats(i),
            });
        }
        // Token spend: each replica accounts only the threads it runs, so
        // the split-mode total is the sum of per-shard local deltas (the
        // single-server case reduces to shard 0's delta).
        let mut spent_delta = 0i64;
        for s in 0..shards {
            let w = self.engine.engine(s).world();
            let Some(server) = w.server.as_ref() else {
                continue;
            };
            for (id, now_mt) in server.tenants_spent_millitokens() {
                let before = w.spent_snapshot.get(&id).copied().unwrap_or(0);
                spent_delta += now_mt - before;
            }
        }
        let token_usage_per_sec = spent_delta as f64 / 1_000.0 / window.as_secs_f64().max(1e-12);
        // Renegotiation flags: in split mode each thread-owning shard's
        // control plane sees its own threads' deficits; union and sort so
        // the report does not depend on the shard count. (Non-split
        // reports keep the control plane's insertion order.)
        let renegotiations = if self.split {
            let mut flagged: Vec<TenantId> = Vec::new();
            for s in 0..shards {
                if let Some(server) = self.engine.engine(s).world().server.as_ref() {
                    for id in server.renegotiations() {
                        if !flagged.contains(&id) {
                            flagged.push(id);
                        }
                    }
                }
            }
            flagged.sort_by_key(|t| t.0);
            flagged
        } else {
            world_server.renegotiations()
        };
        TestbedReport {
            window,
            workloads,
            threads,
            token_usage_per_sec,
            device: world.device().stats(),
            renegotiations,
            engine_events: (0..self.engine.shards())
                .map(|s| self.engine.engine(s).dispatched())
                .sum(),
            telemetry: world.telemetry.snapshot(),
        }
    }

    /// Turns on telemetry: installs one shared [`Telemetry`] sink on the
    /// device, fabric, server threads, the engine's dispatch probe and the
    /// client-side span/SLO probes. Recording is strictly passive — it
    /// draws no randomness and schedules nothing, so an instrumented run
    /// produces byte-identical results to an uninstrumented one. Returns a
    /// clone of the handle for direct inspection.
    pub fn enable_telemetry(&mut self) -> Telemetry {
        let telemetry = Telemetry::enabled();
        self.set_telemetry(telemetry.clone());
        telemetry
    }

    /// Installs `telemetry` on every instrumented component (pass
    /// [`Telemetry::disabled`] to switch recording back off). SLO targets
    /// of workloads added before this call are re-registered.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        // One shared handle across every shard: its counters and span sinks
        // are commutative merges, so concurrent shard threads recording
        // into it never change the snapshot's value.
        for s in 0..self.engine.shards() {
            let eng = self.engine.engine_mut(s);
            if let Some(probe) = telemetry.engine_probe() {
                eng.set_probe(probe);
            } else {
                eng.clear_probe();
            }
            let world = eng.world_mut();
            world.fabric.set_telemetry(telemetry.clone());
            if let Some(device) = world.device.as_mut() {
                // Device replicas (split mode, s > 0) apply *every* command
                // to stay bit-identical, so only shard 0's device records —
                // anything else would double-count per replica.
                if s == 0 {
                    device.set_telemetry(telemetry.clone());
                } else {
                    device.set_telemetry(Telemetry::disabled());
                }
            }
            if let Some(server) = world.server.as_mut() {
                server.set_telemetry(telemetry.clone());
            }
            world.telemetry = telemetry.clone();
        }
        let world = self.engine.engine(0).world();
        for w in &world.workloads {
            if let Some(slo) = w.spec.class.slo() {
                telemetry.slo_register(TenantKey(w.spec.tenant.0), slo.p95_read_latency);
            }
        }
    }

    /// The current telemetry snapshot, when telemetry is enabled.
    pub fn telemetry_snapshot(&self) -> Option<TelemetrySnapshot> {
        self.engine.engine(0).world().telemetry.snapshot()
    }
}
