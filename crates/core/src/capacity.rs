//! Device token-capacity tables.
//!
//! The control plane needs to know the maximum weighted-IOPS (token) rate a
//! device sustains at a given p95 read-latency bound — that is what the
//! scheduler's token generation is capped to (paper §3.2.2: "the scheduler
//! generates tokens at a rate equal to the maximum weighted IOPS the Flash
//! device can support at a given tail latency SLO"). A [`CapacityProfile`]
//! is a monotone table of (p95 bound → tokens/sec) points with linear
//! interpolation, either taken from the built-in calibration of the three
//! paper devices or measured by sweeping a simulated device (see
//! [`calibrate_capacity`]).

use reflex_flash::{CmdId, DeviceProfile, FlashDevice, IoType, NvmeCommand};
use reflex_qos::{max_iops_at_latency, SweepPoint, TokenRate};
use reflex_sim::{Histogram, SimDuration, SimRng, SimTime};
use serde::{Deserialize, Serialize};

/// Monotone (latency bound → token capacity) table for one device.
///
/// # Examples
///
/// ```
/// use reflex_core::CapacityProfile;
/// use reflex_sim::SimDuration;
///
/// let cap = CapacityProfile::device_a_default();
/// let at_500us = cap.tokens_per_sec_at(SimDuration::from_micros(500));
/// // The simulated device A sustains ~330K tokens/s at a 500us p95 SLO
/// // (the paper's physical device: 420K).
/// assert!((300_000.0..360_000.0).contains(&at_500us));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CapacityProfile {
    /// (p95 bound in µs, tokens/sec) points, strictly increasing in both.
    points: Vec<(f64, f64)>,
}

impl CapacityProfile {
    /// Builds a profile from (p95 µs, tokens/s) points.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two points are given or they are not strictly
    /// increasing in latency and non-decreasing in capacity.
    pub fn new(points: Vec<(f64, f64)>) -> Self {
        assert!(points.len() >= 2, "need at least two capacity points");
        for w in points.windows(2) {
            assert!(w[0].0 < w[1].0, "latency bounds must increase");
            assert!(w[0].1 <= w[1].1, "capacity cannot shrink with looser SLOs");
        }
        CapacityProfile { points }
    }

    /// The calibrated table for the *simulated* device A, measured with
    /// [`sweep_device`] at 90% reads and held ~7% below the measured knee
    /// so operating at capacity keeps p95 inside the bound. The paper's
    /// physical device A supported 420K tokens/s at 500µs and ~570K at
    /// 2ms; the simulated device lands at ~355K/~500K — same shape,
    /// recorded in EXPERIMENTS.md.
    pub fn device_a_default() -> Self {
        CapacityProfile::new(vec![
            (200.0, 170_000.0),
            (500.0, 330_000.0),
            (1_000.0, 420_000.0),
            (2_000.0, 465_000.0),
            (5_000.0, 505_000.0),
            (20_000.0, 540_000.0),
        ])
    }

    /// Calibrated table for the simulated device B (write cost 20).
    pub fn device_b_default() -> Self {
        CapacityProfile::new(vec![
            (200.0, 75_000.0),
            (500.0, 175_000.0),
            (1_000.0, 210_000.0),
            (2_000.0, 228_000.0),
            (5_000.0, 240_000.0),
            (20_000.0, 255_000.0),
        ])
    }

    /// Calibrated table for the simulated device C (write cost 16).
    pub fn device_c_default() -> Self {
        CapacityProfile::new(vec![
            (200.0, 85_000.0),
            (500.0, 285_000.0),
            (1_000.0, 315_000.0),
            (2_000.0, 350_000.0),
            (5_000.0, 435_000.0),
            (20_000.0, 470_000.0),
        ])
    }

    /// An effectively unlimited capacity table — used to emulate running
    /// with the QoS scheduler disabled (tokens never run out, admission
    /// always passes), the "I/O sched disabled" configuration of Figure 5.
    pub fn unlimited() -> Self {
        CapacityProfile::new(vec![(1.0, 1e12), (1e9, 1e12)])
    }

    /// Picks the default table matching a device profile's name.
    /// Unknown profiles fall back to a conservative scaling of device A's
    /// shape by relative token rate.
    pub fn for_profile(profile: &DeviceProfile) -> Self {
        match profile.name.as_str() {
            "device-a" => Self::device_a_default(),
            "device-b" => Self::device_b_default(),
            "device-c" => Self::device_c_default(),
            _ => {
                let scale = profile.token_rate() / 650_000.0;
                // Unknown devices: scale the device-A shape by token rate.
                let base = Self::device_a_default();
                CapacityProfile::new(base.points.iter().map(|&(l, c)| (l, c * scale)).collect())
            }
        }
    }

    /// Token capacity (tokens/sec) at a p95 read-latency bound, linearly
    /// interpolated; clamps to the table's ends.
    pub fn tokens_per_sec_at(&self, p95_bound: SimDuration) -> f64 {
        let x = p95_bound.as_micros_f64();
        let first = self.points.first().expect("validated non-empty");
        if x <= first.0 {
            return first.1;
        }
        for w in self.points.windows(2) {
            let (x0, y0) = w[0];
            let (x1, y1) = w[1];
            if x <= x1 {
                let f = (x - x0) / (x1 - x0);
                return y0 + f * (y1 - y0);
            }
        }
        self.points.last().expect("validated non-empty").1
    }

    /// Same as [`tokens_per_sec_at`](Self::tokens_per_sec_at) but as a
    /// [`TokenRate`].
    pub fn rate_at(&self, p95_bound: SimDuration) -> TokenRate {
        TokenRate::millitokens_per_sec((self.tokens_per_sec_at(p95_bound) * 1_000.0) as u64)
    }

    /// The device's maximum (most relaxed) token capacity.
    pub fn max_rate(&self) -> TokenRate {
        TokenRate::millitokens_per_sec(
            (self.points.last().expect("validated non-empty").1 * 1_000.0) as u64,
        )
    }

    /// The underlying table.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }
}

/// Sweeps a *local* simulated device (no network) with an open-loop 4KB
/// workload at the given read percentage, returning (offered IOPS, p95 read
/// latency) points — the §3.2.1 calibration measurement.
///
/// `duration` is the measured window per point (a 100ms warmup is added).
pub fn sweep_device(
    profile: &DeviceProfile,
    read_pct: u8,
    offered_iops: &[f64],
    duration: SimDuration,
    seed: u64,
) -> Vec<SweepPoint> {
    sweep_device_sized(profile, read_pct, 4096, offered_iops, duration, seed)
}

/// Like [`sweep_device`] but with a configurable request size (Figure 3
/// also plots 1KB and 32KB curves).
pub fn sweep_device_sized(
    profile: &DeviceProfile,
    read_pct: u8,
    io_size: u32,
    offered_iops: &[f64],
    duration: SimDuration,
    seed: u64,
) -> Vec<SweepPoint> {
    offered_iops
        .iter()
        .enumerate()
        .map(|(k, &iops)| sweep_device_point(profile, read_pct, io_size, iops, duration, seed, k))
        .collect()
}

/// One point of [`sweep_device_sized`]: measures a single offered load.
///
/// `k` is the point's index within the sweep; it perturbs the seed exactly
/// like the batch call does, so sweeping point-by-point (e.g. from a
/// parallel harness) reproduces the batch results bit-for-bit.
pub fn sweep_device_point(
    profile: &DeviceProfile,
    read_pct: u8,
    io_size: u32,
    iops: f64,
    duration: SimDuration,
    seed: u64,
    k: usize,
) -> SweepPoint {
    let mut sweep_profile = profile.clone();
    sweep_profile.sq_depth = 1 << 20; // open loop keeps issuing past saturation
    let mut dev = FlashDevice::new(sweep_profile, SimRng::seed(seed ^ (k as u64) << 16));
    dev.precondition();
    let qp = dev.create_queue_pair();
    let mut rng = SimRng::seed(seed.wrapping_mul(31) ^ k as u64);
    let warmup = SimTime::from_millis(100);
    let end = warmup + duration;
    let gap = SimDuration::from_secs_f64(1.0 / iops);
    let mut now = SimTime::ZERO;
    let mut issued: Vec<(CmdId, SimTime, IoType)> = Vec::new();
    let mut id = 0u64;
    while now < end {
        now += rng.exponential(gap);
        let addr = dev.random_page_addr();
        let op = if rng.below(100) < read_pct as u64 {
            IoType::Read
        } else {
            IoType::Write
        };
        let cmd = match op {
            IoType::Read => NvmeCommand::read(CmdId(id), addr, io_size),
            IoType::Write => NvmeCommand::write(CmdId(id), addr, io_size),
        };
        issued.push((CmdId(id), now, op));
        id += 1;
        let _ = dev.poll_completions(now, qp, usize::MAX);
        dev.submit(now, qp, cmd).expect("sq deep enough for sweep");
    }
    let mut completion_of = std::collections::HashMap::new();
    for c in dev.poll_completions(SimTime::from_secs(120), qp, usize::MAX) {
        completion_of.insert(c.id, c.completed_at);
    }
    let mut hist = Histogram::new();
    for (cid, at, op) in issued {
        if op != IoType::Read || at < warmup {
            continue;
        }
        if let Some(&fin) = completion_of.get(&cid) {
            hist.record(fin.saturating_since(at));
        }
    }
    SweepPoint {
        iops,
        p95_read_us: hist.p95().as_micros_f64(),
    }
}

/// Measures a fresh [`CapacityProfile`] for a device by sweeping a 90%-read
/// workload and reading off the token capacity at each latency bound via
/// the cost model's per-IO cost. This is the control plane's periodic
/// recalibration (paper §4.3); slower but device-agnostic.
pub fn calibrate_capacity(
    profile: &DeviceProfile,
    write_cost_tokens: f64,
    latency_bounds_us: &[f64],
    seed: u64,
) -> CapacityProfile {
    let read_pct = 90u8;
    let r = 0.9;
    let cost_per_io = r + (1.0 - r) * write_cost_tokens;
    let max_tokens = profile.token_rate();
    let offered: Vec<f64> = (1..=14)
        .map(|i| max_tokens / cost_per_io * (i as f64) / 12.0)
        .collect();
    let sweep = sweep_device(
        profile,
        read_pct,
        &offered,
        SimDuration::from_millis(300),
        seed,
    );
    let mut points = Vec::new();
    let mut last_cap = 0.0f64;
    for &bound in latency_bounds_us {
        let iops = max_iops_at_latency(&sweep, bound).unwrap_or(offered[0] * 0.5);
        let cap = (iops * cost_per_io).max(last_cap + 1.0);
        points.push((bound, cap));
        last_cap = cap;
    }
    CapacityProfile::new(points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use reflex_flash::device_a;

    #[test]
    fn interpolation_is_monotone_and_clamped() {
        let cap = CapacityProfile::device_a_default();
        let mut prev = 0.0;
        for us in [50u64, 200, 350, 500, 750, 1_000, 2_000, 10_000, 50_000] {
            let v = cap.tokens_per_sec_at(SimDuration::from_micros(us));
            assert!(v >= prev, "capacity must be monotone in the bound");
            prev = v;
        }
        assert_eq!(
            cap.tokens_per_sec_at(SimDuration::from_micros(1)),
            cap.points()[0].1
        );
        assert_eq!(
            cap.tokens_per_sec_at(SimDuration::from_secs(10)),
            cap.points().last().unwrap().1
        );
    }

    #[test]
    fn calibrated_values_match_measured_device() {
        // The simulated device A's measured capacity (paper's physical
        // device: 420K@500us, 570K@2ms — see EXPERIMENTS.md).
        let cap = CapacityProfile::device_a_default();
        let v500 = cap.tokens_per_sec_at(SimDuration::from_micros(500));
        assert_eq!(v500, 330_000.0);
        let v2ms = cap.tokens_per_sec_at(SimDuration::from_millis(2));
        assert_eq!(v2ms, 465_000.0);
    }

    #[test]
    #[should_panic(expected = "latency bounds must increase")]
    fn unsorted_points_rejected() {
        let _ = CapacityProfile::new(vec![(500.0, 1.0), (200.0, 2.0)]);
    }

    #[test]
    fn sweep_produces_rising_latency() {
        let pts = sweep_device(
            &device_a(),
            100,
            &[100_000.0, 900_000.0],
            SimDuration::from_millis(150),
            7,
        );
        assert_eq!(pts.len(), 2);
        assert!(pts[1].p95_read_us > pts[0].p95_read_us);
    }

    #[test]
    fn calibration_lands_near_builtin_table() {
        let cap = calibrate_capacity(&device_a(), 10.0, &[500.0, 2_000.0], 3);
        let measured_500 = cap.tokens_per_sec_at(SimDuration::from_micros(500));
        let builtin_500 =
            CapacityProfile::device_a_default().tokens_per_sec_at(SimDuration::from_micros(500));
        let ratio = measured_500 / builtin_500;
        assert!(
            (0.5..2.0).contains(&ratio),
            "measured {measured_500} vs builtin {builtin_500}"
        );
    }
}
