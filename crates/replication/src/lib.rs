//! # reflex-replication — client-driven replicated remote Flash
//!
//! ReFlex (§6.3 of the paper) leaves replication to the client: servers
//! stay simple single-site dataplanes, and a client that wants to
//! survive a server loss writes to R of them. This crate builds that
//! design over the existing wire protocol and testbed machinery:
//!
//! - **Write fan-out.** Every write issues one sub-request per replica
//!   member and completes when a majority (`W = ⌊R/2⌋ + 1`) ack.
//! - **Read policies.** [`ReadPolicy::Primary`] reads one member;
//!   [`ReadPolicy::Quorum`] reads `Q = ⌊R/2⌋ + 1` members — anchored on
//!   the primary, with rotating secondaries — and waits for all of
//!   them, so any read quorum intersects any write quorum.
//! - **Failover.** A deterministic server-death schedule
//!   ([`reflex_faults::FaultKind::ServerDeath`]) kills a site; after a
//!   detection delay the [`reflex_core::ReplicaSets`] coordinator
//!   promotes a survivor, places a replacement (anti-affine to the
//!   survivors) and starts a timed re-sync. The replacement serves
//!   writes immediately and becomes read-eligible when re-sync ends.
//!
//! The data path reuses the zero-alloc idioms of the single-server
//! client: fan-out state lives in generation-checked slab pools and the
//! sub-request slab key *is* the wire cookie, so responses, duplicates,
//! timeouts and stale retries all resolve by index.
//!
//! Determinism: runs are byte-identical at any `with_shards` count
//! (fault campaigns pin to a single shard, exactly like the core
//! testbed), and every random draw comes from per-workload streams.
//!
//! ```
//! use reflex_core::ReadPolicy;
//! use reflex_qos::{SloSpec, TenantId};
//! use reflex_replication::{ReplTestbed, ReplWorkloadSpec};
//! use reflex_sim::SimDuration;
//!
//! let slo = SloSpec::new(20_000, 70, SimDuration::from_micros(800));
//! let mut tb = ReplTestbed::builder().sites(3).replication(3).build();
//! tb.add_workload(
//!     ReplWorkloadSpec::open_loop("app", TenantId(1), slo, 20_000.0)
//!         .with_read_policy(ReadPolicy::Quorum),
//! )?;
//! tb.run(SimDuration::from_millis(20)); // warmup
//! tb.begin_measurement();
//! tb.run(SimDuration::from_millis(50));
//! let report = tb.report();
//! assert!(report.workload("app").iops > 0.0);
//! # Ok::<(), reflex_replication::ReplError>(())
//! ```

mod spec;
mod state;
mod testbed;
mod world;

pub use spec::ReplWorkloadSpec;
pub use testbed::{ReplError, ReplReport, ReplTestbed, ReplTestbedBuilder};
pub use world::{ReplEvent, ReplWorld, TenantRecovery};

// Re-exported so callers of this crate can name the policy and quorum
// math without depending on reflex-core directly.
pub use reflex_core::{quorum, ReadPolicy, MAX_REPLICAS};
