//! Assembling a replicated testbed: N server sites, client machines, the
//! replica-set coordinator, and the fault installer that drives failover.

use std::collections::HashMap;
use std::sync::Arc;

use reflex_core::{
    AdmissionError, CapacityProfile, ClusterPlanner, PlacementError, ReflexServer, ReplicaSets,
    ServerConfig, ServerDescriptor, ServerHarness, ServerId, WorkloadReport,
};
use reflex_dataplane::AclEntry;
use reflex_faults::{FaultKind, FaultPlan, FaultStats, PlannedDeviceHook, PlannedNetHook};
use reflex_flash::{DeviceProfile, FlashDevice};
use reflex_net::{Fabric, LinkConfig, StackProfile};
use reflex_qos::{CostModel, TenantClass};
use reflex_sim::{Engine, ShardedEngine, SimDuration, SimRng, SimTime, SlabPool};
use reflex_telemetry::{Telemetry, TelemetrySnapshot, TenantKey};

use crate::spec::ReplWorkloadSpec;
use crate::state::ReplState;
use crate::world::{ClientMachine, MemberLink, ReplEvent, ReplWorld, SiteState, TenantRecovery};

/// Errors from [`ReplTestbed::add_workload`].
#[derive(Debug)]
pub enum ReplError {
    /// The spec failed validation.
    InvalidSpec(String),
    /// The spec names a client machine that does not exist.
    NoSuchClient(usize),
    /// The coordinator could not place the replica set.
    Placement(PlacementError),
    /// A member server rejected the tenant or a connection.
    Admission(AdmissionError),
}

impl std::fmt::Display for ReplError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplError::InvalidSpec(why) => write!(f, "invalid workload spec: {why}"),
            ReplError::NoSuchClient(idx) => write!(f, "no client machine {idx}"),
            ReplError::Placement(e) => write!(f, "replica placement failed: {e}"),
            ReplError::Admission(e) => write!(f, "admission failed: {e}"),
        }
    }
}

impl std::error::Error for ReplError {}

impl From<PlacementError> for ReplError {
    fn from(e: PlacementError) -> Self {
        ReplError::Placement(e)
    }
}

impl From<AdmissionError> for ReplError {
    fn from(e: AdmissionError) -> Self {
        ReplError::Admission(e)
    }
}

/// The measurement report of a replicated run.
#[derive(Debug)]
pub struct ReplReport {
    /// Length of the measured window.
    pub window: SimDuration,
    /// One report per workload, in registration order. Latencies are
    /// whole-op: issue → ack quorum reached.
    pub workloads: Vec<WorkloadReport>,
    /// Failover timeline: one entry per (tenant, failover) pair.
    pub recoveries: Vec<TenantRecovery>,
    /// Total events dispatched since the testbed was built.
    pub engine_events: u64,
    /// Telemetry snapshot, when telemetry is enabled.
    pub telemetry: Option<TelemetrySnapshot>,
}

impl ReplReport {
    /// Finds a workload report by name.
    ///
    /// # Panics
    ///
    /// Panics if no workload has that name.
    pub fn workload(&self, name: &str) -> &WorkloadReport {
        self.workloads
            .iter()
            .find(|w| w.name == name)
            .unwrap_or_else(|| panic!("no workload named {name}"))
    }
}

/// Builder for a [`ReplTestbed`].
#[derive(Debug)]
pub struct ReplTestbedBuilder {
    sites: usize,
    replication: usize,
    device: DeviceProfile,
    link: LinkConfig,
    client_stacks: Vec<StackProfile>,
    server_stack: StackProfile,
    control_interval: SimDuration,
    detect_delay: SimDuration,
    resync_bytes_per_sec: f64,
    seed: u64,
}

impl Default for ReplTestbedBuilder {
    fn default() -> Self {
        ReplTestbedBuilder {
            sites: 3,
            replication: 3,
            device: reflex_flash::device_a(),
            link: LinkConfig::default(),
            client_stacks: vec![StackProfile::ix_tcp()],
            server_stack: StackProfile::dataplane_raw(),
            control_interval: SimDuration::from_millis(10),
            detect_delay: SimDuration::from_millis(30),
            // Background re-sync copies at 2 GiB/s — a deliberately
            // throttled fraction of device bandwidth so re-sync does not
            // starve foreground IO.
            resync_bytes_per_sec: 2.0 * (1u64 << 30) as f64,
            seed: 42,
        }
    }
}

impl ReplTestbedBuilder {
    /// Starts from defaults: three sites on device A, replication 3, one
    /// IX client machine, 30 ms failure detection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the number of server sites.
    pub fn sites(mut self, sites: usize) -> Self {
        self.sites = sites;
        self
    }

    /// Sets the replication factor R (each tenant's set size).
    pub fn replication(mut self, r: usize) -> Self {
        self.replication = r;
        self
    }

    /// Sets the Flash device profile (every site gets its own device).
    pub fn device(mut self, profile: DeviceProfile) -> Self {
        self.device = profile;
        self
    }

    /// Sets the fabric link configuration.
    pub fn link(mut self, link: LinkConfig) -> Self {
        self.link = link;
        self
    }

    /// Replaces the client machines (one entry per machine).
    pub fn client_machines(mut self, stacks: Vec<StackProfile>) -> Self {
        self.client_stacks = stacks;
        self
    }

    /// Sets the coordinator's failure-detection delay (death → failover).
    pub fn detect_delay(mut self, delay: SimDuration) -> Self {
        self.detect_delay = delay;
        self
    }

    /// Sets the modelled background re-sync copy rate in bytes/second.
    pub fn resync_bandwidth(mut self, bytes_per_sec: f64) -> Self {
        self.resync_bytes_per_sec = bytes_per_sec;
        self
    }

    /// Sets the RNG seed (default 42).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builds the testbed.
    ///
    /// # Panics
    ///
    /// Panics if no client machines are configured, or if the replication
    /// factor is 0, exceeds [`reflex_core::MAX_REPLICAS`], or exceeds the
    /// site count.
    pub fn build(self) -> ReplTestbed {
        assert!(
            !self.client_stacks.is_empty(),
            "need at least one client machine"
        );
        assert!(
            self.replication >= 1 && self.replication <= self.sites,
            "replication factor {} needs at least that many sites (have {})",
            self.replication,
            self.sites
        );
        assert!(
            self.resync_bytes_per_sec > 0.0,
            "re-sync bandwidth must be positive"
        );
        let mut rng = SimRng::seed(self.seed);
        let mut fabric = Fabric::new(self.link, rng.fork());
        // Clients first, then the sites — same machine-id order as the
        // single-server testbed, so seeds stay comparable.
        let clients: Vec<ClientMachine> = self
            .client_stacks
            .into_iter()
            .map(|stack| ClientMachine {
                machine: fabric.add_machine(stack.clone()),
                stack,
            })
            .collect();
        let cost = CostModel::for_profile(&self.device);
        let capacity = CapacityProfile::for_profile(&self.device);
        // One dataplane thread per site, no auto-scaling: routes never
        // rebalance at runtime, which keeps sharded runs byte-identical
        // (mirrors `ServerHarness::supports_sharding`).
        let server_cfg = ServerConfig {
            threads: 1,
            max_threads: 1,
            auto_scale: false,
            ..ServerConfig::default()
        };
        let mut sites = Vec::with_capacity(self.sites);
        let mut site_machines = Vec::with_capacity(self.sites);
        let mut descriptors = Vec::with_capacity(self.sites);
        for s in 0..self.sites {
            let machine = fabric.add_machine(self.server_stack.clone());
            let mut device = FlashDevice::new(self.device.clone(), rng.fork());
            device.precondition();
            let server = ReflexServer::new(
                machine,
                &mut fabric,
                &mut device,
                cost.clone(),
                capacity.clone(),
                server_cfg.clone(),
                SimTime::ZERO,
            );
            for c in &clients {
                fabric.declare_link(c.machine, machine);
            }
            descriptors.push(ServerDescriptor::new(
                ServerId(s as u32),
                capacity.clone(),
                cost.clone(),
            ));
            site_machines.push(machine);
            sites.push(Some(SiteState { server, device }));
        }
        fabric.enable_windowed();
        let gen_seed = rng.next_u64();
        let n_sites = sites.len();
        let n_clients = clients.len();
        let world = ReplWorld {
            fabric,
            sites,
            site_machines,
            alive: vec![true; n_sites],
            death_at: vec![None; n_sites],
            coord: Some(ReplicaSets::new(
                ClusterPlanner::new(descriptors),
                self.replication,
            )),
            route_table: HashMap::new(),
            client_local: vec![true; n_clients],
            gen_seed,
            clients,
            workloads: Vec::new(),
            client_threads_busy: Vec::new(),
            ops: SlabPool::new(),
            subs: SlabPool::new(),
            poll_scratch: Vec::new(),
            site_wake: vec![None; n_sites],
            client_wake: vec![None; n_clients],
            measure_start: None,
            detect_delay: self.detect_delay,
            resync_bytes_per_sec: self.resync_bytes_per_sec,
            timeline: Vec::new(),
            telemetry: Telemetry::disabled(),
        };
        let mut engine = Engine::with_events(world);
        let interval = self.control_interval;
        engine.schedule_event_at(SimTime::ZERO + interval, ReplEvent::Control(interval));
        ReplTestbed {
            engine: ShardedEngine::single(engine),
            measure_begin: SimTime::ZERO,
            control_interval: interval,
            owner: Vec::new(),
        }
    }
}

/// The assembled replicated simulation. See the crate documentation.
pub struct ReplTestbed {
    engine: ShardedEngine<ReplWorld, ReplEvent>,
    measure_begin: SimTime,
    control_interval: SimDuration,
    /// Shard that owns each workload's generator, in registration order.
    owner: Vec<usize>,
}

impl std::fmt::Debug for ReplTestbed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplTestbed")
            .field("shards", &self.engine.shards())
            .field("now", &self.engine.now())
            .finish()
    }
}

impl ReplTestbed {
    /// Starts building a replicated testbed.
    pub fn builder() -> ReplTestbedBuilder {
        ReplTestbedBuilder::new()
    }

    /// Current simulated instant.
    pub fn now(&self) -> SimTime {
        self.engine.now()
    }

    /// Number of shards the simulation runs on.
    pub fn shards(&self) -> usize {
        self.engine.shards()
    }

    /// Shared access to the world (shard 0 — the sites' shard).
    pub fn world(&self) -> &ReplWorld {
        self.engine.engine(0).world()
    }

    /// Exclusive access to the world (shard 0 when sharded).
    pub fn world_mut(&mut self) -> &mut ReplWorld {
        self.engine.engine_mut(0).world_mut()
    }

    /// Site indices of workload `w_idx`'s current members, slot order
    /// (membership changes only via failover, which runs on shard 0).
    pub fn member_sites(&self, w_idx: usize) -> Vec<usize> {
        self.engine.engine(0).world().member_sites(w_idx)
    }

    /// Splits the world by machine across up to `n` OS threads: shard 0
    /// keeps every server site (and the coordinator); client machines
    /// round-robin over the remaining shards. Same conservative-PDES
    /// machinery as the core testbed — results are **byte-identical** to
    /// the single-shard run.
    ///
    /// Silently stays single-shard when `n <= 1`, when there are no
    /// client machines to split off, or when a network fault hook is
    /// installed (fault campaigns are single-shard — which also means a
    /// failover only ever mutates membership where generators run).
    ///
    /// # Panics
    ///
    /// Panics if called after a workload was added or after the
    /// simulation has started running.
    pub fn with_shards(mut self, n: usize) -> Self {
        let world0 = self.engine.engine(0).world();
        let n_clients = world0.clients.len();
        let n_eff = 1 + n.saturating_sub(1).min(n_clients);
        if self.engine.shards() != 1 || n_eff <= 1 {
            return self;
        }
        let shardable = world0
            .sites
            .iter()
            .flatten()
            .all(|st| st.server.supports_sharding());
        if !shardable || world0.fabric.has_fault_hook() {
            return self;
        }
        assert!(
            world0.workloads.is_empty(),
            "with_shards must be called before add_workload"
        );
        assert_eq!(
            self.engine.now(),
            SimTime::ZERO,
            "with_shards must be called before the simulation runs"
        );
        let engine = self
            .engine
            .into_engines()
            .pop()
            .expect("single-shard testbed holds one engine");
        let mut world = engine.into_world();
        let mut shard_of = vec![0usize; world.fabric.machines()];
        for (i, c) in world.clients.iter().enumerate() {
            shard_of[c.machine.0 as usize] = 1 + i % (n_eff - 1);
        }
        let window = world.fabric.lookahead();
        let n_sites = world.sites.len();
        let mut sites = std::mem::take(&mut world.sites);
        let mut coord = world.coord.take();
        let mut engines = Vec::with_capacity(n_eff);
        for s in 0..n_eff {
            let shard_world = ReplWorld {
                fabric: world.fabric.split_for_shard(&shard_of, s),
                sites: if s == 0 {
                    std::mem::take(&mut sites)
                } else {
                    (0..n_sites).map(|_| None).collect()
                },
                site_machines: world.site_machines.clone(),
                alive: world.alive.clone(),
                death_at: world.death_at.clone(),
                coord: if s == 0 { coord.take() } else { None },
                route_table: HashMap::new(),
                client_local: world
                    .clients
                    .iter()
                    .map(|c| shard_of[c.machine.0 as usize] == s)
                    .collect(),
                gen_seed: world.gen_seed,
                clients: world.clients.clone(),
                workloads: Vec::new(),
                client_threads_busy: Vec::new(),
                ops: SlabPool::new(),
                subs: SlabPool::new(),
                poll_scratch: Vec::new(),
                site_wake: vec![None; n_sites],
                client_wake: vec![None; world.clients.len()],
                measure_start: None,
                detect_delay: world.detect_delay,
                resync_bytes_per_sec: world.resync_bytes_per_sec,
                timeline: Vec::new(),
                telemetry: world.telemetry.clone(),
            };
            let mut eng = Engine::with_events(shard_world);
            if s == 0 {
                // The control plane ticks with the sites.
                eng.schedule_event_at(
                    SimTime::ZERO + self.control_interval,
                    ReplEvent::Control(self.control_interval),
                );
            }
            engines.push(eng);
        }
        let topology = world.fabric.shard_topology(&shard_of, n_eff);
        self.engine = ShardedEngine::new(engines, window);
        self.engine.set_topology(topology);
        self
    }

    /// Registers a replicated workload: places its replica set, admits
    /// the tenant on every member site, binds per-member connections and
    /// starts the open-loop generator.
    ///
    /// # Errors
    ///
    /// See [`ReplError`]. An admission failure partway through leaves the
    /// tenant registered on earlier members (like the core testbed, the
    /// builder-phase API does not roll back).
    pub fn add_workload(&mut self, spec: ReplWorkloadSpec) -> Result<(), ReplError> {
        let mut spec = spec;
        spec.validate().map_err(ReplError::InvalidSpec)?;
        let shards = self.engine.shards();
        let world = self.engine.engine_mut(0).world_mut();
        if spec.client_machine >= world.clients.len() {
            return Err(ReplError::NoSuchClient(spec.client_machine));
        }
        // Clamp the namespace to the device capacity so default specs
        // work on any profile (every site runs the same profile).
        let capacity = world.sites[0]
            .as_ref()
            .expect("shard 0 holds the sites")
            .device
            .profile()
            .capacity_bytes;
        if spec.namespace.0 >= capacity {
            return Err(ReplError::InvalidSpec(
                "namespace beyond device capacity".into(),
            ));
        }
        spec.namespace.1 = spec.namespace.1.min(capacity - spec.namespace.0);
        let members: Vec<ServerId> = world
            .coord
            .as_mut()
            .expect("shard 0 holds the coordinator")
            .place(spec.tenant, spec.slo)?
            .members
            .clone();
        let acl = AclEntry {
            ns_start: spec.namespace.0,
            ns_len: spec.namespace.1,
            allow_read: true,
            allow_write: true,
            allowed_clients: None,
        };
        let client_machine = world.clients[spec.client_machine].machine;
        let w_idx = world.workloads.len();
        let mut links = Vec::with_capacity(members.len());
        let mut routes = Vec::with_capacity(members.len() * spec.conns as usize);
        for sid in &members {
            let site = sid.0 as usize;
            world.sites[site]
                .as_mut()
                .expect("placement names a real site")
                .server
                .register_tenant(
                    spec.tenant,
                    TenantClass::LatencyCritical(spec.slo),
                    acl.clone(),
                    spec.io_size,
                )?;
            let mut conns = Vec::with_capacity(spec.conns as usize);
            for _ in 0..spec.conns {
                let conn = world.fabric.new_conn();
                let st = world.sites[site]
                    .as_mut()
                    .expect("placement names a real site");
                st.server
                    .bind_connection(conn, spec.tenant, client_machine)?;
                let queue = st.server.route(conn).unwrap_or_default();
                routes.push((conn, site, queue));
                conns.push(conn);
            }
            links.push(MemberLink {
                site,
                conns,
                resyncing: false,
            });
        }
        // SLO monitoring keys on the tenant; no-op while telemetry is off.
        world
            .telemetry
            .slo_register(TenantKey(spec.tenant.0), spec.slo.p95_read_latency);
        // Each workload draws from its own RNG stream keyed by its stable
        // registration index, and the kickoff offset comes out *before*
        // the state is replicated — every shard's copy agrees on the
        // stream position.
        let mut state = ReplState::new(
            spec.clone(),
            SimRng::stream(world.gen_seed, w_idx as u64),
            links,
        );
        let offset = state
            .rng
            .exponential(SimDuration::from_secs_f64(1.0 / spec.iops));
        for s in 0..shards {
            let w = self.engine.engine_mut(s).world_mut();
            debug_assert_eq!(w.workloads.len(), w_idx);
            w.workloads.push(state.clone());
            w.client_threads_busy
                .push(vec![SimTime::ZERO; spec.client_threads as usize]);
            for &(conn, site, queue) in &routes {
                w.route_table.insert(conn, (site, queue));
            }
        }
        let owner = (0..shards)
            .find(|&s| self.engine.engine(s).world().client_local[spec.client_machine])
            .expect("every client machine is local to exactly one shard");
        self.owner.push(owner);
        let eng = self.engine.engine_mut(owner);
        let at = eng.now() + offset;
        eng.schedule_event_at(at, ReplEvent::OpenLoopGen(w_idx));
        Ok(())
    }

    /// Installs a fault plan. The replication testbed accepts only
    /// [`FaultKind::ServerDeath`] events: each arms the victim site's
    /// device-death hook and a permanent link blackout on its machine,
    /// and schedules the death bookkeeping plus coordinator failover
    /// (death + detection delay) as engine events.
    ///
    /// # Panics
    ///
    /// Panics when sharded (fault campaigns are single-shard), on any
    /// non-`ServerDeath` fault kind (use `reflex_faults::install` on a
    /// single-server testbed for those), or when a death names a site
    /// outside the testbed.
    pub fn install(&mut self, plan: &FaultPlan) -> Arc<FaultStats> {
        assert_eq!(
            self.engine.shards(),
            1,
            "fault campaigns are single-shard: install before with_shards"
        );
        let stats = Arc::new(FaultStats::default());
        let world = self.engine.engine_mut(0).world_mut();
        let n_sites = world.sites.len();
        let detect = world.detect_delay;
        let mut dev_hooks: Vec<PlannedDeviceHook> = (0..n_sites)
            .map(|_| PlannedDeviceHook::new(Arc::clone(&stats)))
            .collect();
        let mut net = PlannedNetHook::new(Arc::clone(&stats));
        let mut deaths = Vec::new();
        for ev in &plan.events {
            match ev.kind {
                FaultKind::ServerDeath { server } => {
                    assert!(
                        server < n_sites,
                        "ServerDeath names site {server} but the testbed has {n_sites}"
                    );
                    // The site dies whole: its device aborts every queued
                    // and future command, and its links go dark for the
                    // rest of the run (messages in either direction are
                    // black-holed at send time, so they never count as
                    // submitted work).
                    dev_hooks[server].set_death(ev.at);
                    net.add_link_down(
                        ev.at,
                        SimDuration::from_secs_f64(3600.0),
                        world.site_machines[server],
                    );
                    stats.add_downtime(detect);
                    deaths.push((ev.at, server));
                }
                other => panic!(
                    "the replication testbed installs ServerDeath faults only, got {other:?}; \
                     use reflex_faults::install on a single-server testbed"
                ),
            }
        }
        for (site, hook) in dev_hooks.into_iter().enumerate() {
            if hook.is_armed() {
                world.sites[site]
                    .as_mut()
                    .expect("shard 0 holds the sites")
                    .device
                    .set_fault_hook(Box::new(hook));
            }
        }
        if net.is_armed() {
            world.fabric_mut().set_fault_hook(Box::new(net));
        }
        let eng = self.engine.engine_mut(0);
        for (at, site) in deaths {
            eng.schedule_event_at(at, ReplEvent::ServerDeath(site));
            eng.schedule_event_at(at + detect, ReplEvent::Failover(site));
        }
        stats
    }

    /// Marks the end of warmup: clears all histograms and counters so the
    /// next [`report`](Self::report) covers only what follows.
    pub fn begin_measurement(&mut self) {
        let now = self.engine.now();
        self.measure_begin = now;
        for s in 0..self.engine.shards() {
            let world = self.engine.engine_mut(s).world_mut();
            world.measure_start = Some(now);
            for w in &mut world.workloads {
                w.reset_measurement();
            }
        }
    }

    /// Advances the simulation by `span` (all shards in lockstep windows
    /// when sharded).
    pub fn run(&mut self, span: SimDuration) {
        self.engine.run_for(span);
    }

    /// Produces the measurement report for the window since
    /// [`begin_measurement`](Self::begin_measurement).
    pub fn report(&self) -> ReplReport {
        let world = self.engine.engine(0).world();
        let window = self.engine.now().saturating_since(self.measure_begin);
        // Workload state advances only on its owner shard — read it there.
        let workloads: Vec<WorkloadReport> = (0..world.workloads.len())
            .map(|i| {
                let s = self.owner.get(i).copied().unwrap_or(0);
                self.engine.engine(s).world().workloads[i].report(window)
            })
            .collect();
        ReplReport {
            window,
            workloads,
            recoveries: world.timeline().to_vec(),
            engine_events: (0..self.engine.shards())
                .map(|s| self.engine.engine(s).dispatched())
                .sum(),
            telemetry: world.telemetry.snapshot(),
        }
    }

    /// Turns on telemetry across every site, the fabric, the coordinator
    /// and the engine probes. Recording is strictly passive, so an
    /// instrumented run is byte-identical to an uninstrumented one.
    pub fn enable_telemetry(&mut self) -> Telemetry {
        let telemetry = Telemetry::enabled();
        self.set_telemetry(telemetry.clone());
        telemetry
    }

    /// Installs `telemetry` on every instrumented component (pass
    /// [`Telemetry::disabled`] to switch recording back off).
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        for s in 0..self.engine.shards() {
            let eng = self.engine.engine_mut(s);
            if let Some(probe) = telemetry.engine_probe() {
                eng.set_probe(probe);
            } else {
                eng.clear_probe();
            }
            let world = eng.world_mut();
            world.fabric_mut().set_telemetry(telemetry.clone());
            for st in world.sites.iter_mut().flatten() {
                st.device.set_telemetry(telemetry.clone());
                st.server.set_telemetry(telemetry.clone());
            }
            if let Some(coord) = world.coord.as_mut() {
                coord.set_telemetry(telemetry.clone());
            }
            world.telemetry = telemetry.clone();
        }
        let world = self.engine.engine(0).world();
        for w in &world.workloads {
            telemetry.slo_register(TenantKey(w.spec.tenant.0), w.spec.slo.p95_read_latency);
        }
    }

    /// The current telemetry snapshot, when telemetry is enabled.
    pub fn telemetry_snapshot(&self) -> Option<TelemetrySnapshot> {
        self.engine.engine(0).world().telemetry.snapshot()
    }
}
