//! The replicated world: clients ↔ fabric ↔ N ReFlex server sites.
//!
//! [`ReplWorld`] mirrors the single-server testbed's `World` (see
//! `reflex-core/src/testbed.rs`) event for event — observe-first
//! dispatch, canonical ascending wake servicing, raw arrival re-arming,
//! slab-pooled in-flight state — and extends it with the replication
//! data path: every op fans out 1..R *sub-requests*, one per chosen
//! replica member, and completes when an ack quorum arrives.
//!
//! Two slab pools carry the fan-out state with zero per-IO heap
//! allocation: `ops` holds one [`ReplOp`] per logical request (quorum
//! accounting), `subs` holds one [`SubReq`] per in-flight wire attempt.
//! The sub slab's generation-checked key packs into the wire cookie, so
//! responses, duplicates and stale timeouts resolve by index exactly
//! like the single-server client.

use std::collections::HashMap;

use reflex_core::{
    quorum, ReadPolicy, ReflexServer, ReplicaSets, ServerHarness, ServerId, MAX_REPLICAS,
};
use reflex_dataplane::{AclEntry, WireMsg};
use reflex_flash::FlashDevice;
use reflex_net::{
    ConnId, Delivery, Fabric, Flight, MachineId, NicQueueId, Opcode, ReflexHeader, StackProfile,
};
use reflex_qos::{TenantClass, TenantId};
use reflex_sim::{
    Ctx, EventHandle, PoolKey, ShardWorld, SimDuration, SimTime, SlabPool, TypedEvent,
};
use reflex_telemetry::{Stage, Telemetry, TenantKey};

use crate::state::ReplState;

/// One server site: a ReFlex server machine with its own Flash device.
pub(crate) struct SiteState {
    pub server: ReflexServer,
    pub device: FlashDevice,
}

/// One member of a workload's replica set, as the data path sees it.
#[derive(Debug, Clone)]
pub(crate) struct MemberLink {
    /// Site index hosting this member.
    pub site: usize,
    /// Client connections to that site, one ring per member.
    pub conns: Vec<ConnId>,
    /// A freshly-placed replacement serves writes immediately but is not
    /// read-eligible until its background re-sync completes.
    pub resyncing: bool,
}

#[derive(Debug, Clone)]
pub(crate) struct ClientMachine {
    pub machine: MachineId,
    pub stack: StackProfile,
}

/// Quorum accounting for one logical request. Lives in the `ops` slab;
/// freed when the last sub-request concludes (`pending == 0`), which may
/// be after the op itself completed or failed.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ReplOp {
    pub w_idx: u32,
    pub conn_idx: u32,
    /// Membership epoch at issue. Retries are fenced on epoch change:
    /// an attempt issued under the old membership must not silently
    /// migrate onto a replacement member (see [`ReplWorld::send_sub`]).
    pub epoch: u32,
    pub sent_at: SimTime,
    pub addr: u64,
    pub len: u32,
    pub is_read: bool,
    pub measured: bool,
    /// Acks required (the quorum).
    pub needed: u8,
    /// Acks received so far.
    pub acks: u8,
    /// Sub-requests still in flight (including retries).
    pub pending: u8,
    /// Concluded (completed or failed); stragglers only decrement
    /// `pending` from here on.
    pub done: bool,
    pub failed: bool,
}

/// One in-flight wire attempt of one sub-request. Its slab key is the
/// wire cookie.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SubReq {
    pub op: PoolKey,
    pub slot: u8,
    pub attempt: u32,
}

/// What failover did for one tenant, stamped with simulated instants —
/// the raw material for the recovery-time figure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantRecovery {
    /// The affected tenant.
    pub tenant: TenantId,
    /// Instant its member's server died.
    pub died_at: SimTime,
    /// Instant the coordinator ran failover (death + detection delay).
    pub failover_at: SimTime,
    /// Instant the replacement member finished re-syncing and became
    /// read-eligible (`None` if the set degraded instead).
    pub resync_done_at: Option<SimTime>,
    /// Replacement site (`None` if the set degraded).
    pub new_site: Option<usize>,
}

/// The recurring replication events, dispatched through the engine's
/// typed event path (no per-event closures on the steady-state path;
/// retry backoffs still use boxed closures, like the core testbed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplEvent {
    /// Wake server site `i` and run its dataplane pump loop.
    Pump(usize),
    /// Poll client machine `i` for delivered responses.
    ClientPoll(usize),
    /// Response deadline for the sub-request whose slab key packs to
    /// `cookie` (generation-checked: stale deadlines are no-ops).
    SubTimeout(u64),
    /// Open-loop generator tick for workload `i`.
    OpenLoopGen(usize),
    /// Periodic control-plane tick on every live site.
    Control(SimDuration),
    /// Site `i`'s server dies (bookkeeping; the armed fault hooks do the
    /// actual damage).
    ServerDeath(usize),
    /// The cluster coordinator detects site `i`'s death and fails over.
    Failover(usize),
    /// Replacement member `slot` of workload `w_idx` finished re-syncing
    /// under membership `epoch`.
    ResyncDone {
        /// Workload index.
        w_idx: usize,
        /// Replica slot.
        slot: usize,
        /// Membership epoch the re-sync started under; a stale epoch
        /// (another failover happened meanwhile) is ignored.
        epoch: u32,
    },
}

impl TypedEvent<ReplWorld> for ReplEvent {
    fn dispatch(self, world: &mut ReplWorld, ctx: &mut Ctx<'_, ReplWorld, ReplEvent>) {
        // Same contract as the core testbed: raise the fabric's windowed
        // resolution horizon before any handler looks at arrivals.
        world.fabric.observe(ctx.now());
        match self {
            ReplEvent::Pump(i) => world.pump_event(i, ctx),
            ReplEvent::ClientPoll(i) => world.client_poll_event(i, ctx),
            ReplEvent::SubTimeout(cookie) => world.sub_timeout_event(cookie, ctx),
            ReplEvent::OpenLoopGen(i) => world.open_loop_gen_event(i, ctx),
            ReplEvent::Control(interval) => world.control_event(interval, ctx),
            ReplEvent::ServerDeath(site) => world.server_death_event(site, ctx),
            ReplEvent::Failover(site) => world.failover_event(site, ctx),
            ReplEvent::ResyncDone { w_idx, slot, epoch } => {
                world.resync_done_event(w_idx, slot, epoch);
            }
        }
    }
}

/// The replicated simulation world. Shard 0 holds every server site (and
/// the coordinator); client machines may split onto other shards — the
/// same conservative-PDES machinery as the core testbed, byte-identical
/// at any shard count.
pub struct ReplWorld {
    pub(crate) fabric: Fabric<WireMsg>,
    /// Server sites (`Some` only on shard 0).
    pub(crate) sites: Vec<Option<SiteState>>,
    pub(crate) site_machines: Vec<MachineId>,
    pub(crate) alive: Vec<bool>,
    pub(crate) death_at: Vec<Option<SimTime>>,
    /// Replica-set coordinator (shard 0 only). Failover runs exclusively
    /// on shard 0: death campaigns arm a fabric fault hook, which pins
    /// the run to a single shard — so the membership every shard
    /// replicated at `add_workload` time only ever changes where the
    /// generators actually run.
    pub(crate) coord: Option<ReplicaSets>,
    /// conn → (site, NIC queue), cached at bind time for shards that do
    /// not hold the servers.
    pub(crate) route_table: HashMap<ConnId, (usize, NicQueueId)>,
    pub(crate) client_local: Vec<bool>,
    pub(crate) gen_seed: u64,
    pub(crate) clients: Vec<ClientMachine>,
    pub(crate) workloads: Vec<ReplState>,
    pub(crate) client_threads_busy: Vec<Vec<SimTime>>, // [workload][client thread]
    pub(crate) ops: SlabPool<ReplOp>,
    pub(crate) subs: SlabPool<SubReq>,
    pub(crate) poll_scratch: Vec<Delivery<WireMsg>>,
    pub(crate) site_wake: Vec<Option<(SimTime, EventHandle)>>,
    pub(crate) client_wake: Vec<Option<(SimTime, EventHandle)>>,
    pub(crate) measure_start: Option<SimTime>,
    /// Death → failover delay (the coordinator's detection time).
    pub(crate) detect_delay: SimDuration,
    /// Modelled background re-sync copy rate for replacement members.
    pub(crate) resync_bytes_per_sec: f64,
    pub(crate) timeline: Vec<TenantRecovery>,
    pub(crate) telemetry: Telemetry,
}

impl std::fmt::Debug for ReplWorld {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplWorld")
            .field("sites", &self.sites.len())
            .field("workloads", &self.workloads.len())
            .field("ops", &self.ops.len())
            .field("subs", &self.subs.len())
            .finish()
    }
}

impl ReplWorld {
    /// The network fabric (fault injection installs hooks here).
    pub fn fabric_mut(&mut self) -> &mut Fabric<WireMsg> {
        &mut self.fabric
    }

    /// Number of server sites.
    pub fn site_count(&self) -> usize {
        self.sites.len()
    }

    /// Number of client machines.
    pub fn client_count(&self) -> usize {
        self.clients.len()
    }

    /// Machine id of client `idx`.
    pub fn client_machine(&self, idx: usize) -> MachineId {
        self.clients[idx].machine
    }

    /// Site indices of workload `w_idx`'s current members, slot order.
    pub fn member_sites(&self, w_idx: usize) -> Vec<usize> {
        self.workloads[w_idx]
            .members
            .iter()
            .map(|m| m.site)
            .collect()
    }

    /// Current primary slot of workload `w_idx`.
    pub fn primary_slot(&self, w_idx: usize) -> usize {
        self.workloads[w_idx].primary
    }

    /// Current membership epoch of workload `w_idx`. Bumped by every
    /// failover action; in-flight operations issued under an older epoch
    /// are fenced (fail fast) rather than redirected, so observers must
    /// only ever see this value increase.
    pub fn epoch(&self, w_idx: usize) -> u32 {
        self.workloads[w_idx].epoch
    }

    /// Stops every workload generator so in-flight queues can drain.
    pub fn stop_all_workloads(&mut self) {
        for w in &mut self.workloads {
            w.stopped = true;
        }
    }

    /// The failover timeline so far.
    pub fn timeline(&self) -> &[TenantRecovery] {
        &self.timeline
    }

    fn ensure_site_wake(&mut self, ctx: &mut Ctx<ReplWorld, ReplEvent>, site: usize, at: SimTime) {
        let at = at.max(ctx.now());
        if let Some((pending, _)) = self.site_wake[site] {
            if at >= pending {
                return; // an earlier (or equal) wake is already armed
            }
        }
        let handle = ctx.schedule_event_at_handle(at, ReplEvent::Pump(site));
        if let Some((_, stale)) = self.site_wake[site].replace((at, handle)) {
            ctx.cancel(stale);
        }
    }

    fn ensure_client_wake(&mut self, ctx: &mut Ctx<ReplWorld, ReplEvent>, client: usize) {
        let machine = self.clients[client].machine;
        let Some(at) = self.fabric.next_arrival(machine) else {
            return;
        };
        let at = at.max(ctx.now());
        if let Some((pending, _)) = self.client_wake[client] {
            if at >= pending {
                return;
            }
        }
        let handle = ctx.schedule_event_at_handle(at, ReplEvent::ClientPoll(client));
        if let Some((_, stale)) = self.client_wake[client].replace((at, handle)) {
            ctx.cancel(stale);
        }
    }

    fn pump_event(&mut self, site: usize, ctx: &mut Ctx<ReplWorld, ReplEvent>) {
        // Canonical same-instant order (see the core testbed): one pump
        // event services every site whose wake is due, ascending, so the
        // pump sequence depends only on the due set, never on wake
        // insertion order — the invariant behind shard-count identity.
        let now = ctx.now();
        for i in 0..self.site_wake.len() {
            let due = i == site || self.site_wake[i].is_some_and(|(at, _)| at <= now);
            if !due {
                continue;
            }
            if let Some((_, stale)) = self.site_wake[i].take() {
                if i != site {
                    ctx.cancel(stale);
                }
            }
            self.pump_one(i, ctx);
        }
    }

    fn pump_one(&mut self, site: usize, ctx: &mut Ctx<ReplWorld, ReplEvent>) {
        let st = self.sites[site]
            .as_mut()
            .expect("pump runs on the server shard");
        let wake = st
            .server
            .pump_thread(0, ctx.now(), &mut self.fabric, &mut st.device);
        if let Some(at) = wake {
            self.ensure_site_wake(ctx, site, at);
        }
        for c in 0..self.clients.len() {
            if self.client_local[c] {
                self.ensure_client_wake(ctx, c);
            }
        }
        // Re-arm the raw arrival bound of the pumped site's queue, so the
        // effective wake matches what a sharded run's window exchange
        // would arm (same reasoning as the core testbed's pump_one).
        let st = self.sites[site].as_ref().expect("server shard");
        let queue = st.server.nic_queue(0);
        if let Some(at) = self
            .fabric
            .next_arrival_queue(self.site_machines[site], queue)
        {
            self.ensure_site_wake(ctx, site, at);
        }
    }

    fn client_poll_event(&mut self, client: usize, ctx: &mut Ctx<ReplWorld, ReplEvent>) {
        let now = ctx.now();
        for c in 0..self.clients.len() {
            if !self.client_local[c] {
                continue;
            }
            let due = c == client || self.client_wake[c].is_some_and(|(at, _)| at <= now);
            if !due {
                continue;
            }
            if let Some((_, stale)) = self.client_wake[c].take() {
                if c != client {
                    ctx.cancel(stale);
                }
            }
            self.poll_client(c, ctx);
        }
    }

    fn poll_client(&mut self, client: usize, ctx: &mut Ctx<ReplWorld, ReplEvent>) {
        let machine = self.clients[client].machine;
        let mut deliveries = std::mem::take(&mut self.poll_scratch);
        self.fabric
            .poll_into(ctx.now(), machine, usize::MAX, &mut deliveries);
        for d in deliveries.drain(..) {
            let Ok(header) = ReflexHeader::decode(&d.payload) else {
                continue;
            };
            let Some(sub) = self.subs.take(PoolKey::from_u64(header.cookie)) else {
                // Duplicate delivery or a response to an attempt that
                // already timed out — ignored, like the core client.
                continue;
            };
            let Some(op) = self.ops.get(sub.op).copied() else {
                continue; // cannot happen while the sub held a pending slot
            };
            let policy = self.workloads[op.w_idx as usize].spec.retry;
            if header.opcode == Opcode::Error && !op.done && sub.attempt < policy.max_attempts {
                // Retryable failure: back off and retransmit (same-epoch
                // only — send_sub fences retries that cross a failover).
                self.workloads[op.w_idx as usize].retries += 1;
                let backoff = policy.backoff_after(sub.attempt);
                let (op_key, slot, attempt) = (sub.op, sub.slot as usize, sub.attempt + 1);
                ctx.schedule_after(backoff, move |w: &mut ReplWorld, ctx| {
                    w.send_sub(op_key, slot, attempt, ctx);
                });
                continue;
            }
            let acked = header.opcode != Opcode::Error;
            self.conclude_sub(sub.op, acked, sub.attempt, d.arrived_at);
        }
        self.poll_scratch = deliveries;
        self.ensure_client_wake(ctx, client);
    }

    /// Folds one concluded sub-request into its op's quorum accounting
    /// and records the op's completion or failure when it tips over.
    fn conclude_sub(&mut self, op_key: PoolKey, acked: bool, attempt: u32, at: SimTime) {
        let Some(op) = self.ops.get_mut(op_key) else {
            return;
        };
        op.pending -= 1;
        let done_before = op.done;
        if acked {
            op.acks += 1;
        }
        let completes = !done_before && op.acks >= op.needed;
        let fails = !done_before && !completes && op.acks + op.pending < op.needed;
        if completes || fails {
            op.done = true;
        }
        if fails {
            op.failed = true;
        }
        let snap = *op;
        if snap.pending == 0 {
            self.ops.take(op_key);
        }
        let measure_start = self.measure_start;
        let w = &mut self.workloads[snap.w_idx as usize];
        if acked && attempt > 1 && !done_before {
            w.retry_success += 1;
        }
        if completes {
            let in_window = measure_start.is_some_and(|m| at >= m);
            if in_window {
                let since = at.saturating_since(measure_start.expect("checked in_window"));
                w.iops_series.add(SimTime::ZERO + since, 1);
                if snap.is_read {
                    w.completed_reads += 1;
                    w.read_bytes += snap.len as u64;
                } else {
                    w.completed_writes += 1;
                    w.write_bytes += snap.len as u64;
                }
                // Latency covers the whole op: issue → quorum reached
                // (for quorum reads that is the max of the quorum).
                if snap.measured {
                    let latency = at.saturating_since(snap.sent_at);
                    if snap.is_read {
                        w.read_hist.record(latency);
                        self.telemetry
                            .slo_observe(TenantKey(w.spec.tenant.0), latency, at);
                    } else {
                        w.write_hist.record(latency);
                    }
                }
            }
        } else if fails {
            w.exhausted += 1;
            if measure_start.is_some_and(|m| at >= m) {
                w.errors += 1;
            }
            // A failed read still held the application from issue to
            // exhaustion; account that wait against the tenant's SLO
            // windows so an outage shows up as violations, not silence.
            // (The latency histograms stay completions-only.)
            if snap.measured && snap.is_read {
                let latency = at.saturating_since(snap.sent_at);
                self.telemetry
                    .slo_observe(TenantKey(w.spec.tenant.0), latency, at);
            }
        }
    }

    /// Transmits one attempt of one sub-request. The member is resolved
    /// from the workload's *current* membership at send time; retries
    /// that cross a failover are epoch-fenced (fail fast) rather than
    /// redirected onto the replacement.
    fn send_sub(
        &mut self,
        op_key: PoolKey,
        slot: usize,
        attempt: u32,
        ctx: &mut Ctx<ReplWorld, ReplEvent>,
    ) {
        let Some(op) = self.ops.get(op_key).copied() else {
            return; // op already freed — stale retry, nothing to do
        };
        if op.done {
            // Quorum already reached (or lost): don't put more attempts
            // on the wire, just release this sub's pending slot.
            self.conclude_sub(op_key, false, attempt, ctx.now());
            return;
        }
        let w_idx = op.w_idx as usize;
        if slot >= self.workloads[w_idx].members.len() {
            // The set degraded and this slot no longer exists.
            self.conclude_sub(op_key, false, attempt, ctx.now());
            return;
        }
        if attempt > 1 && op.epoch != self.workloads[w_idx].epoch {
            // Epoch fence. Every op that was in flight when the set
            // reshaped would otherwise retry onto the fresh replacement
            // at the failover instant — a thundering herd that pushes
            // the replacement past its token reservation right as new
            // ops start arriving, and (at R=2, where the quorum needs
            // every member) can keep its queue in a retransmission-fed
            // overload that never drains. Failing the old-epoch attempt
            // fast is also the honest semantics: the replacement learns
            // pre-failover writes from re-sync, not from replayed wire
            // messages.
            self.conclude_sub(op_key, false, attempt, ctx.now());
            return;
        }
        let now = ctx.now();
        let (site, conn, tenant, timeout, client_idx, th) = {
            let w = &self.workloads[w_idx];
            let m = &w.members[slot];
            (
                m.site,
                m.conns[op.conn_idx as usize],
                w.spec.tenant,
                w.spec
                    .retry
                    .timeout
                    .expect("validated: replication requires per-attempt deadlines"),
                w.spec.client_machine,
                (op.conn_idx % w.spec.client_threads) as usize,
            )
        };
        // Client thread gating: every sub-request costs per-message CPU
        // on the issuing stack thread, so fan-out inflates client-side
        // serialization exactly as it would on real hardware.
        let per_msg = self.clients[client_idx].stack.per_msg_cpu;
        let busy = &mut self.client_threads_busy[w_idx][th];
        let t_send = now.max(*busy);
        *busy = t_send + per_msg;
        self.telemetry.span(
            TenantKey(tenant.0),
            Stage::Ingress,
            t_send.saturating_since(now),
        );
        let sub_key = self.subs.insert(SubReq {
            op: op_key,
            slot: slot as u8,
            attempt,
        });
        let cookie = sub_key.as_u64();
        let header = ReflexHeader {
            opcode: if op.is_read { Opcode::Get } else { Opcode::Put },
            tenant: tenant.0,
            cookie,
            addr: op.addr,
            len: op.len,
        };
        let payload = if op.is_read { 0 } else { op.len };
        let client_machine = self.clients[client_idx].machine;
        let to = self.site_machines[site];
        let queue = match self.sites[site].as_ref() {
            Some(st) => st.server.route(conn).unwrap_or_default(),
            None => self
                .route_table
                .get(&conn)
                .map(|&(_, q)| q)
                .unwrap_or_default(),
        };
        let arrival = self.fabric.send_to_queue(
            t_send,
            client_machine,
            to,
            queue,
            conn,
            payload,
            header.encode_array(),
        );
        if self.sites[site].is_some() {
            self.ensure_site_wake(ctx, site, arrival);
        }
        // RTO-style deadline widening: attempt k waits 2^(k-1) × the base
        // deadline. A member that is healthy but queue-delayed (e.g. a
        // fresh replacement absorbing the post-failover inrush) answers
        // late; fixed deadlines would declare every such response stale
        // and retransmit, and at R=2 — where the quorum needs *every*
        // member — that feedback loop multiplies the arrival rate past
        // the member's service rate and the queue never drains. Widening
        // lets a late attempt accept the delayed response, which caps the
        // retransmission rate and lets the backlog clear.
        let deadline = timeout.mul_f64((1u64 << (attempt - 1).min(16)) as f64);
        ctx.schedule_event_at(t_send + deadline, ReplEvent::SubTimeout(cookie));
    }

    fn sub_timeout_event(&mut self, cookie: u64, ctx: &mut Ctx<ReplWorld, ReplEvent>) {
        let Some(sub) = self.subs.take(PoolKey::from_u64(cookie)) else {
            return; // answered in time
        };
        let Some(op) = self.ops.get(sub.op).copied() else {
            return;
        };
        let w = &mut self.workloads[op.w_idx as usize];
        w.timeouts += 1;
        let policy = w.spec.retry;
        if !op.done && sub.attempt < policy.max_attempts {
            w.retries += 1;
            let backoff = policy.backoff_after(sub.attempt);
            let (op_key, slot, attempt) = (sub.op, sub.slot as usize, sub.attempt + 1);
            ctx.schedule_after(backoff, move |w: &mut ReplWorld, ctx| {
                w.send_sub(op_key, slot, attempt, ctx);
            });
        } else {
            self.conclude_sub(sub.op, false, sub.attempt, ctx.now());
        }
    }

    fn open_loop_gen_event(&mut self, w_idx: usize, ctx: &mut Ctx<ReplWorld, ReplEvent>) {
        if self.workloads[w_idx].stopped {
            return;
        }
        self.issue_op(w_idx, ctx);
        let w = &mut self.workloads[w_idx];
        let mean = SimDuration::from_secs_f64(1.0 / w.spec.iops);
        let gap = match w.spec.arrival {
            reflex_core::ArrivalProcess::Poisson => w.rng.exponential(mean),
            reflex_core::ArrivalProcess::Paced => mean.mul_f64(0.9 + 0.2 * w.rng.f64()),
        };
        ctx.schedule_event_after(gap, ReplEvent::OpenLoopGen(w_idx));
    }

    /// Issues one logical op: draws address and read/write mix from the
    /// workload's private stream, picks fan-out targets, registers the
    /// op and transmits its sub-requests.
    fn issue_op(&mut self, w_idx: usize, ctx: &mut Ctx<ReplWorld, ReplEvent>) {
        let now = ctx.now();
        let measured = self.measure_start.is_some_and(|m| now >= m);
        let w = &mut self.workloads[w_idx];
        let r = w.members.len();
        if r == 0 {
            // Fully degraded set: nothing to send to.
            w.exhausted += 1;
            return;
        }
        let size = w.spec.io_size as u64;
        let (ns_start, ns_len) = w.spec.namespace;
        let slots = (ns_len / size).max(1);
        let addr = ns_start + w.rng.below(slots) * size;
        // Deterministic read/write interleaving: an accumulator spreads
        // reads evenly so every run (and every shard count) sees the
        // same sequence.
        w.read_debt += w.spec.read_pct as u32;
        let is_read = if w.read_debt >= 100 {
            w.read_debt -= 100;
            true
        } else {
            false
        };
        let conn_idx = (w.conn_rr % w.spec.conns as u64) as u32;
        w.conn_rr += 1;
        // Fan-out targets live in a fixed array — the hot path allocates
        // nothing per IO.
        let mut targets = [0usize; MAX_REPLICAS];
        let n_targets;
        let needed;
        if is_read {
            match w.spec.read_policy {
                ReadPolicy::Primary => {
                    targets[0] = w.primary;
                    n_targets = 1;
                    needed = 1;
                }
                ReadPolicy::Quorum => {
                    // The primary anchors every read quorum (it sees every
                    // quorum write, so anchored reads are read-your-writes
                    // across promotions); the remaining Q-1 members rotate
                    // so secondary read load spreads. Re-syncing members
                    // are used only when too few eligible members remain
                    // (keeps ops flowing while degraded — the simulation
                    // carries no data contents to go stale).
                    let q = quorum(r);
                    let start = (w.op_rr % r as u64) as usize;
                    let mut selected = [false; MAX_REPLICAS];
                    let mut n = 0;
                    if !w.members[w.primary].resyncing {
                        targets[0] = w.primary;
                        selected[w.primary] = true;
                        n = 1;
                    }
                    for off in 0..r {
                        if n == q {
                            break;
                        }
                        let s = (start + off) % r;
                        if !selected[s] && !w.members[s].resyncing {
                            targets[n] = s;
                            selected[s] = true;
                            n += 1;
                        }
                    }
                    for off in 0..r {
                        if n == q {
                            break;
                        }
                        let s = (start + off) % r;
                        if !selected[s] {
                            targets[n] = s;
                            selected[s] = true;
                            n += 1;
                        }
                    }
                    n_targets = n;
                    needed = q;
                }
            }
        } else {
            // Writes fan out to every member; a majority of acks
            // completes the op.
            for (s, t) in targets.iter_mut().enumerate().take(r) {
                *t = s;
            }
            n_targets = r;
            needed = quorum(r);
        }
        w.op_rr += 1;
        if measured {
            w.issued += 1;
        }
        let len = w.spec.io_size;
        let key = self.ops.insert(ReplOp {
            w_idx: w_idx as u32,
            conn_idx,
            epoch: w.epoch,
            sent_at: now,
            addr,
            len,
            is_read,
            measured,
            needed: needed as u8,
            acks: 0,
            pending: n_targets as u8,
            done: false,
            failed: false,
        });
        for &slot in targets.iter().take(n_targets) {
            self.send_sub(key, slot, 1, ctx);
        }
    }

    fn control_event(&mut self, interval: SimDuration, ctx: &mut Ctx<ReplWorld, ReplEvent>) {
        for st in self.sites.iter_mut().flatten() {
            let _ = st.server.control_tick(ctx.now(), interval);
        }
        ctx.schedule_event_after(interval, ReplEvent::Control(interval));
    }

    fn server_death_event(&mut self, site: usize, ctx: &mut Ctx<ReplWorld, ReplEvent>) {
        self.alive[site] = false;
        self.death_at[site] = Some(ctx.now());
        self.telemetry.count("replication.server_deaths", 1);
        // The armed hooks do the damage: the site's NIC links went dark
        // (messages to/from it are black-holed at send time, so they are
        // never device-submitted) and its device aborts every queued and
        // future command. The dead site keeps being pumped so queued
        // work drains into counted failures — conservation holds.
    }

    /// The coordinator detects the death and re-shapes every affected
    /// replica set: promotion, replacement placement, connection binding
    /// and the re-sync timer.
    fn failover_event(&mut self, site: usize, ctx: &mut Ctx<ReplWorld, ReplEvent>) {
        let Some(coord) = self.coord.as_mut() else {
            return;
        };
        let Ok(fo) = coord.fail_server(ServerId(site as u32)) else {
            return;
        };
        let now = ctx.now();
        let died_at = self.death_at[site].unwrap_or(now);
        for action in fo.actions {
            let Some(w_idx) = self
                .workloads
                .iter()
                .position(|w| w.spec.tenant == action.tenant)
            else {
                continue;
            };
            if let Some(sid) = action.new_member {
                let new_site = sid.0 as usize;
                let spec = self.workloads[w_idx].spec.clone();
                let acl = AclEntry {
                    ns_start: spec.namespace.0,
                    ns_len: spec.namespace.1,
                    allow_read: true,
                    allow_write: true,
                    allowed_clients: None,
                };
                let client_machine = self.clients[spec.client_machine].machine;
                {
                    let st = self.sites[new_site]
                        .as_mut()
                        .expect("failover runs on the server shard");
                    let _ = st.server.register_tenant(
                        spec.tenant,
                        TenantClass::LatencyCritical(spec.slo),
                        acl,
                        spec.io_size,
                    );
                }
                let mut conns = Vec::with_capacity(spec.conns as usize);
                for _ in 0..spec.conns {
                    let conn = self.fabric.new_conn();
                    let st = self.sites[new_site].as_mut().expect("server shard");
                    if st
                        .server
                        .bind_connection(conn, spec.tenant, client_machine)
                        .is_ok()
                    {
                        let queue = st.server.route(conn).unwrap_or_default();
                        self.route_table.insert(conn, (new_site, queue));
                        conns.push(conn);
                    }
                }
                let w = &mut self.workloads[w_idx];
                w.members[action.replaced_slot] = MemberLink {
                    site: new_site,
                    conns,
                    resyncing: true,
                };
                w.primary = action.promoted_primary;
                w.epoch = action.epoch;
                // Re-sync: control-plane re-admission (the action's
                // queued estimate) plus copying the namespace at the
                // modelled background rate. Write-eligible immediately,
                // read-eligible when done.
                let bytes = w.spec.namespace.1 as f64;
                let resync = action.latency_estimate
                    + SimDuration::from_secs_f64(bytes / self.resync_bytes_per_sec);
                let done_at = now + resync;
                ctx.schedule_event_at(
                    done_at,
                    ReplEvent::ResyncDone {
                        w_idx,
                        slot: action.replaced_slot,
                        epoch: action.epoch,
                    },
                );
                self.timeline.push(TenantRecovery {
                    tenant: action.tenant,
                    died_at,
                    failover_at: now,
                    resync_done_at: Some(done_at),
                    new_site: Some(new_site),
                });
            } else {
                let w = &mut self.workloads[w_idx];
                w.members.remove(action.replaced_slot);
                w.primary = action.promoted_primary;
                w.epoch = action.epoch;
                self.timeline.push(TenantRecovery {
                    tenant: action.tenant,
                    died_at,
                    failover_at: now,
                    resync_done_at: None,
                    new_site: None,
                });
            }
        }
    }

    fn resync_done_event(&mut self, w_idx: usize, slot: usize, epoch: u32) {
        let w = &mut self.workloads[w_idx];
        if w.epoch == epoch && slot < w.members.len() {
            w.members[slot].resyncing = false;
            self.telemetry.count("replication.resyncs_done", 1);
        }
    }
}

// Sharded execution: identical to the core testbed's impl, with sites in
// place of the one server.
impl ShardWorld<ReplEvent> for ReplWorld {
    type Flight = Flight<WireMsg>;

    fn flush_outbound(&mut self, sink: &mut Vec<(usize, Self::Flight)>) {
        self.fabric.take_outbound(sink);
    }

    fn flight_bound(flight: &Self::Flight) -> Option<SimTime> {
        Some(flight.bound())
    }

    fn deliver(&mut self, ctx: &mut Ctx<'_, Self, ReplEvent>, flights: &mut Vec<Self::Flight>) {
        for flight in flights.drain(..) {
            let to = flight.to();
            let bound = flight.bound();
            self.fabric.accept_flight(flight);
            if let Some(site) = self.site_machines.iter().position(|&m| m == to) {
                self.ensure_site_wake(ctx, site, bound);
            } else if let Some(c) = self.clients.iter().position(|c| c.machine == to) {
                self.ensure_client_wake(ctx, c);
            }
        }
    }
}
