//! Per-workload runtime state for the replicated client.

use reflex_core::WorkloadReport;
use reflex_sim::{Histogram, RateSeries, SimDuration, SimRng, SimTime};

use crate::spec::ReplWorkloadSpec;
use crate::world::MemberLink;

/// Bucket width of the completion-rate series (matches the core client,
/// so recovery analysis can share one metric definition).
const SERIES_BUCKET: SimDuration = SimDuration::from_millis(10);

/// Internal per-workload runtime state.
///
/// `Clone` because sharded testbeds replicate every workload's state onto
/// every shard (indices must align across engines); only the copy on the
/// shard owning the workload's client machine ever advances.
#[derive(Debug, Clone)]
pub(crate) struct ReplState {
    pub spec: ReplWorkloadSpec,
    /// This workload's private randomness (addresses, open-loop gaps),
    /// keyed by registration index via `SimRng::stream` so adding a
    /// workload never perturbs another's sequence.
    pub rng: SimRng,
    /// Current replica membership, slot order. Mutated only by failover,
    /// which runs on shard 0 — fault campaigns are single-shard, so every
    /// shard's copy stays consistent with where generators actually run.
    pub members: Vec<MemberLink>,
    /// Primary slot (serves `ReadPolicy::Primary` reads).
    pub primary: usize,
    /// Membership epoch; bumped by every failover affecting this set.
    pub epoch: u32,
    pub stopped: bool,
    /// Read/write interleaving accumulator (deterministic mix).
    pub read_debt: u32,
    /// Round-robin cursor over connections.
    pub conn_rr: u64,
    /// Round-robin cursor over ops (rotates quorum-read start slots).
    pub op_rr: u64,
    pub read_hist: Histogram,
    pub write_hist: Histogram,
    /// Successful completions per 10 ms bucket of measured time. Unlike
    /// the core client this counts *successes only* (errors excluded), so
    /// a failover blackout shows as a clean rate dip and the recovery
    /// metric does not count error responses as served load.
    pub iops_series: RateSeries,
    pub issued: u64,
    pub errors: u64,
    pub retries: u64,
    pub retry_success: u64,
    pub exhausted: u64,
    pub timeouts: u64,
    pub completed_reads: u64,
    pub completed_writes: u64,
    pub read_bytes: u64,
    pub write_bytes: u64,
}

impl ReplState {
    pub fn new(spec: ReplWorkloadSpec, rng: SimRng, members: Vec<MemberLink>) -> Self {
        ReplState {
            spec,
            rng,
            members,
            primary: 0,
            epoch: 0,
            stopped: false,
            read_debt: 0,
            conn_rr: 0,
            op_rr: 0,
            read_hist: Histogram::new(),
            write_hist: Histogram::new(),
            iops_series: RateSeries::new(SERIES_BUCKET),
            issued: 0,
            errors: 0,
            retries: 0,
            retry_success: 0,
            exhausted: 0,
            timeouts: 0,
            completed_reads: 0,
            completed_writes: 0,
            read_bytes: 0,
            write_bytes: 0,
        }
    }

    /// Resets measurement accumulators; generator state (RNG, cursors,
    /// membership) is untouched so measurement starts mid-stream.
    pub fn reset_measurement(&mut self) {
        self.read_hist.reset();
        self.write_hist.reset();
        self.iops_series = RateSeries::new(SERIES_BUCKET);
        self.issued = 0;
        self.errors = 0;
        self.retries = 0;
        self.retry_success = 0;
        self.exhausted = 0;
        self.timeouts = 0;
        self.completed_reads = 0;
        self.completed_writes = 0;
        self.read_bytes = 0;
        self.write_bytes = 0;
    }

    /// Renders this workload's measured window as the core crate's
    /// [`WorkloadReport`] so replication figures reuse plain reporting.
    pub fn report(&self, window: SimDuration) -> WorkloadReport {
        let secs = window.as_secs_f64().max(1e-12);
        let mut series = self.iops_series.clone();
        series.finish(SimTime::ZERO + window);
        WorkloadReport {
            name: self.spec.name.clone(),
            tenant: self.spec.tenant,
            read_latency: self.read_hist.clone(),
            write_latency: self.write_hist.clone(),
            iops: (self.completed_reads + self.completed_writes) as f64 / secs,
            read_iops: self.completed_reads as f64 / secs,
            write_iops: self.completed_writes as f64 / secs,
            bytes_per_sec: (self.read_bytes + self.write_bytes) as f64 / secs,
            errors: self.errors,
            issued: self.issued,
            retries: self.retries,
            retry_success: self.retry_success,
            exhausted: self.exhausted,
            timeouts: self.timeouts,
            iops_series: series.points().to_vec(),
        }
    }
}
