//! Declarative description of a replicated workload.

use reflex_core::{ArrivalProcess, ReadPolicy, RetryPolicy};
use reflex_qos::{SloSpec, TenantId};
use reflex_sim::SimDuration;

/// A replicated open-loop workload: one tenant whose writes fan out to
/// every member of its replica set and whose reads follow a
/// [`ReadPolicy`].
///
/// Compared to the single-server `WorkloadSpec`, replication narrows the
/// shape: open-loop Poisson arrivals, uniform-random addresses and a
/// deterministic read/write mix — the figure workloads need nothing
/// richer, and a narrow spec keeps the fan-out data path auditable.
#[derive(Debug, Clone)]
pub struct ReplWorkloadSpec {
    /// Label used in reports.
    pub name: String,
    /// The tenant (must leave the top four id bits free for replica-slot
    /// encoding — see `reflex_core::ReplicaSets`).
    pub tenant: TenantId,
    /// The SLO each replica reserves on its server.
    pub slo: SloSpec,
    /// Offered load in IOPS (whole ops; each op issues 1..R sub-requests).
    pub iops: f64,
    /// Percentage of ops that are reads (deterministic interleaving).
    pub read_pct: u8,
    /// Bytes per IO.
    pub io_size: u32,
    /// Connections per replica member.
    pub conns: u32,
    /// Client stack threads multiplexing those connections.
    pub client_threads: u32,
    /// Index of the client machine issuing the load.
    pub client_machine: usize,
    /// `(start, len)` byte range; also the data volume a replacement
    /// member re-syncs after failover.
    pub namespace: (u64, u64),
    /// Arrival process for op issue instants.
    pub arrival: ArrivalProcess,
    /// Per-sub-request retry policy. `retry.timeout` is mandatory here:
    /// without a per-attempt deadline, one message lost to a dead server
    /// would hang its op slot forever.
    pub retry: RetryPolicy,
    /// How reads are served: primary-only or majority quorum.
    pub read_policy: ReadPolicy,
}

impl ReplWorkloadSpec {
    /// An open-loop replicated workload with the defaults the figures
    /// use: 4 KiB IOs, the SLO's read percentage, 4 connections per
    /// member over 2 client threads, a 1 GiB namespace, Poisson
    /// arrivals, 4 attempts with a 10 ms base per-attempt deadline
    /// (widened 2× per retry, RTO-style), and primary reads.
    ///
    /// The deadline sits far above healthy p999 latency on purpose: a
    /// deadline close to the queue delay of a briefly-backlogged member
    /// (e.g. a fresh replacement absorbing the post-failover inrush)
    /// turns every late response into a retransmission, and at R=2 the
    /// quorum needs every member, so the storm feeds itself and the
    /// member never drains.
    pub fn open_loop(name: impl Into<String>, tenant: TenantId, slo: SloSpec, iops: f64) -> Self {
        ReplWorkloadSpec {
            name: name.into(),
            tenant,
            slo,
            iops,
            read_pct: slo.read_pct,
            io_size: 4096,
            conns: 4,
            client_threads: 2,
            client_machine: 0,
            namespace: (0, 1 << 30),
            arrival: ArrivalProcess::Poisson,
            retry: RetryPolicy {
                max_attempts: 4,
                base_backoff: SimDuration::from_micros(100),
                timeout: Some(SimDuration::from_millis(10)),
            },
            read_policy: ReadPolicy::Primary,
        }
    }

    /// Sets the read percentage.
    #[must_use]
    pub fn with_read_pct(mut self, read_pct: u8) -> Self {
        self.read_pct = read_pct;
        self
    }

    /// Sets the IO size in bytes.
    #[must_use]
    pub fn with_io_size(mut self, io_size: u32) -> Self {
        self.io_size = io_size;
        self
    }

    /// Sets connections per member and client threads.
    #[must_use]
    pub fn with_conns(mut self, conns: u32, client_threads: u32) -> Self {
        self.conns = conns;
        self.client_threads = client_threads;
        self
    }

    /// Sets the issuing client machine.
    #[must_use]
    pub fn with_client_machine(mut self, idx: usize) -> Self {
        self.client_machine = idx;
        self
    }

    /// Sets the namespace byte range (also the re-sync volume).
    #[must_use]
    pub fn with_namespace(mut self, start: u64, len: u64) -> Self {
        self.namespace = (start, len);
        self
    }

    /// Sets the per-sub-request retry policy.
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Sets the read policy.
    #[must_use]
    pub fn with_read_policy(mut self, policy: ReadPolicy) -> Self {
        self.read_policy = policy;
        self
    }

    /// Sets the arrival process.
    #[must_use]
    pub fn with_arrival(mut self, arrival: ArrivalProcess) -> Self {
        self.arrival = arrival;
        self
    }

    /// Validates the spec.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() {
            return Err("workload needs a name".into());
        }
        if !(self.iops > 0.0 && self.iops.is_finite()) {
            return Err("open-loop iops must be positive".into());
        }
        if self.read_pct > 100 {
            return Err("read_pct must be <= 100".into());
        }
        if self.io_size == 0 {
            return Err("io_size must be positive".into());
        }
        if self.conns == 0 || self.client_threads == 0 {
            return Err("need at least one connection and one client thread".into());
        }
        if self.namespace.1 < self.io_size as u64 {
            return Err("namespace smaller than one IO".into());
        }
        if self.retry.timeout.is_none() {
            return Err(
                "replicated sub-requests need retry.timeout: without a per-attempt deadline \
                 a quorum op hangs forever on one message lost to a dead server"
                    .into(),
            );
        }
        if self.tenant.0 >= (1 << 28) {
            return Err("tenant id collides with replica-slot encoding (top 4 bits)".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ReplWorkloadSpec {
        ReplWorkloadSpec::open_loop(
            "w",
            TenantId(1),
            SloSpec::new(10_000, 80, SimDuration::from_micros(500)),
            10_000.0,
        )
    }

    #[test]
    fn defaults_validate() {
        spec().validate().unwrap();
    }

    #[test]
    fn timeout_is_mandatory() {
        let s = spec().with_retry(RetryPolicy::disabled());
        assert!(s.validate().unwrap_err().contains("timeout"));
    }

    #[test]
    fn read_pct_comes_from_the_slo() {
        assert_eq!(spec().read_pct, 80);
    }
}
