//! End-to-end behavior of the replicated testbed: fan-out costs, quorum
//! reads, fault-driven failover, conservation and shard-count identity.

use reflex_faults::{FaultKind, FaultPlan};
use reflex_qos::{SloSpec, TenantId};
use reflex_replication::{ReadPolicy, ReplTestbed, ReplWorkloadSpec};
use reflex_sim::{SimDuration, SimTime};

fn slo(iops: u64, read_pct: u8) -> SloSpec {
    SloSpec::new(iops, read_pct, SimDuration::from_micros(800))
}

fn spec(name: &str, iops: f64, policy: ReadPolicy) -> ReplWorkloadSpec {
    // Reserve 30% above the offered load: a quorum anchor routes *all*
    // reads through the primary, so a reservation equal to the offered
    // load leaves the promoted primary zero margin to drain the
    // failover-blackout backlog.
    ReplWorkloadSpec::open_loop(name, TenantId(1), slo(iops as u64 * 13 / 10, 70), iops)
        .with_read_policy(policy)
}

#[test]
fn replicated_workload_completes_ios() {
    let mut tb = ReplTestbed::builder().sites(3).replication(3).build();
    tb.add_workload(spec("app", 20_000.0, ReadPolicy::Primary))
        .unwrap();
    assert_eq!(tb.member_sites(0).len(), 3);
    tb.run(SimDuration::from_millis(20));
    tb.begin_measurement();
    tb.run(SimDuration::from_millis(60));
    let report = tb.report();
    let w = report.workload("app");
    assert_eq!(w.errors, 0, "healthy run must not error: {w:?}");
    assert_eq!(w.exhausted, 0);
    // Open-loop at 20K IOPS: completions track the offered load.
    assert!(
        (w.iops - 20_000.0).abs() < 2_000.0,
        "iops {:.0} far from offered 20K",
        w.iops
    );
    assert!(w.p95_read_us() > 0.0 && w.p95_write_us() > 0.0);
}

#[test]
fn quorum_reads_cost_more_than_primary_reads() {
    let run = |policy| {
        let mut tb = ReplTestbed::builder().sites(3).replication(3).build();
        tb.add_workload(spec("app", 20_000.0, policy)).unwrap();
        tb.run(SimDuration::from_millis(20));
        tb.begin_measurement();
        tb.run(SimDuration::from_millis(60));
        tb.report().workload("app").mean_read_us()
    };
    let primary = run(ReadPolicy::Primary);
    let quorum = run(ReadPolicy::Quorum);
    // A quorum read waits for the max of Q=2 sub-reads, so its mean is
    // strictly above the single-sub primary read.
    assert!(
        quorum > primary,
        "quorum mean read {quorum:.1}us not above primary {primary:.1}us"
    );
}

#[test]
fn quorum_replication_costs_more_than_single_copy_reads() {
    let run = |sites, r, policy| {
        let mut tb = ReplTestbed::builder().sites(sites).replication(r).build();
        tb.add_workload(spec("app", 20_000.0, policy)).unwrap();
        tb.run(SimDuration::from_millis(20));
        tb.begin_measurement();
        tb.run(SimDuration::from_millis(60));
        tb.report().workload("app").mean_read_us()
    };
    let single = run(1, 1, ReadPolicy::Primary);
    let triple = run(3, 3, ReadPolicy::Quorum);
    // The primary anchors every read quorum, so it carries the same load
    // as the single-copy server — and the quorum read waits for the max
    // of Q=2 sub-reads on top of that. Strictly costlier.
    assert!(
        triple > single,
        "R=3 quorum mean read {triple:.1}us not above single-copy {single:.1}us"
    );
}

fn mean_write_us_of(report: &reflex_replication::ReplReport) -> f64 {
    report.workload("app").write_latency.mean().as_micros_f64()
}

#[test]
fn server_death_fails_over_promotes_and_resyncs() {
    let mut tb = ReplTestbed::builder()
        .sites(4)
        .replication(3)
        .resync_bandwidth(2.0 * (1u64 << 30) as f64)
        .build();
    // A small namespace keeps the modelled re-sync inside the run.
    tb.add_workload(spec("app", 20_000.0, ReadPolicy::Quorum).with_namespace(0, 8 << 20))
        .unwrap();
    let members_before = tb.member_sites(0);
    let victim = members_before[0];
    let spare: usize = (0..4).find(|s| !members_before.contains(s)).unwrap();
    let death = SimTime::ZERO + SimDuration::from_millis(50);
    let plan = FaultPlan::seeded(7).with_event(death, FaultKind::ServerDeath { server: victim });
    let _stats = tb.install(&plan);
    tb.run(SimDuration::from_millis(30));
    tb.begin_measurement();
    tb.run(SimDuration::from_millis(170));
    let report = tb.report();
    // Failover happened: the victim left the set, the spare joined in its
    // slot, and the re-sync completed within the run.
    let members_after = tb.member_sites(0);
    assert_eq!(members_after.len(), 3);
    assert!(!members_after.contains(&victim));
    assert!(members_after.contains(&spare));
    assert_eq!(report.recoveries.len(), 1);
    let rec = report.recoveries[0];
    assert_eq!(rec.tenant, TenantId(1));
    assert_eq!(rec.died_at, death);
    assert_eq!(
        rec.failover_at,
        death + SimDuration::from_millis(30),
        "failover fires after the detection delay"
    );
    assert_eq!(rec.new_site, Some(spare));
    let resync_done = rec.resync_done_at.expect("a spare site means replacement");
    assert!(resync_done > rec.failover_at);
    assert!(tb.now() > resync_done, "run covers the re-sync");
    // R=3 quorum (2-of-3) survives one death: the workload kept serving
    // through the blackout and recovered to the offered load.
    let w = report.workload("app");
    assert!(w.iops > 15_000.0, "iops collapsed to {:.0}", w.iops);
    let tail: Vec<_> = w.iops_series.iter().rev().take(4).collect();
    for p in tail {
        assert!(
            p.rate_per_sec > 15_000.0,
            "post-recovery bucket at {:?} only {:.0}/s",
            p.at,
            p.rate_per_sec
        );
    }
}

#[test]
fn death_without_spare_degrades_the_set() {
    let mut tb = ReplTestbed::builder().sites(3).replication(3).build();
    tb.add_workload(spec("app", 20_000.0, ReadPolicy::Quorum))
        .unwrap();
    let victim = tb.member_sites(0)[2];
    let death = SimTime::ZERO + SimDuration::from_millis(40);
    let plan = FaultPlan::seeded(9).with_event(death, FaultKind::ServerDeath { server: victim });
    let _stats = tb.install(&plan);
    tb.run(SimDuration::from_millis(30));
    tb.begin_measurement();
    tb.run(SimDuration::from_millis(120));
    let report = tb.report();
    // No spare exists, so the set degrades to R=2 and keeps serving.
    let members_after = tb.member_sites(0);
    assert_eq!(members_after.len(), 2);
    assert!(!members_after.contains(&victim));
    assert_eq!(report.recoveries.len(), 1);
    assert_eq!(report.recoveries[0].new_site, None);
    assert_eq!(report.recoveries[0].resync_done_at, None);
    let w = report.workload("app");
    assert!(
        w.iops > 10_000.0,
        "degraded set stopped serving: {:.0}",
        w.iops
    );
}

#[test]
fn conservation_holds_across_replica_death_and_promotion() {
    let mut tb = ReplTestbed::builder().sites(4).replication(3).build();
    tb.enable_telemetry();
    tb.add_workload(spec("app", 25_000.0, ReadPolicy::Quorum).with_namespace(0, 8 << 20))
        .unwrap();
    // Kill the primary's site so the failover also has to promote.
    let victim = tb.member_sites(0)[tb.world().primary_slot(0)];
    let death = SimTime::ZERO + SimDuration::from_millis(40);
    let plan = FaultPlan::seeded(11).with_event(death, FaultKind::ServerDeath { server: victim });
    let _stats = tb.install(&plan);
    tb.run(SimDuration::from_millis(150));
    // Stop the generators, let every queue (including the dead site's
    // draining aborts) settle, then require exact balance.
    tb.world_mut().stop_all_workloads();
    tb.run(SimDuration::from_millis(200));
    let drained = tb.telemetry_snapshot().expect("telemetry enabled");
    assert!(!drained.ios.is_empty(), "no IO counters recorded");
    for (tenant, io) in &drained.ios {
        assert_eq!(
            io.submitted,
            io.completed + io.failed + io.retried,
            "tenant {tenant:?} leaked IOs across failover: {io:?}"
        );
        assert_eq!(
            io.open_spans, 0,
            "tenant {tenant:?} left spans open after drain: {io:?}"
        );
        assert!(io.submitted > 0, "tenant {tenant:?} recorded no traffic");
    }
    // The failover itself was counted.
    let count = |name: &str| drained.counters.get(name).copied().unwrap_or(0);
    assert_eq!(count("replication.server_deaths"), 1);
    assert_eq!(count("replication.failovers"), 1);
    assert_eq!(count("replication.promotions"), 1);
    assert_eq!(count("replication.resyncs_done"), 1);
}

#[test]
fn sharded_runs_are_byte_identical() {
    let run = |shards: usize| {
        let mut tb = ReplTestbed::builder()
            .sites(3)
            .replication(3)
            .client_machines(vec![
                reflex_net::StackProfile::ix_tcp(),
                reflex_net::StackProfile::ix_tcp(),
                reflex_net::StackProfile::linux_tcp(),
            ])
            .build()
            .with_shards(shards);
        tb.add_workload(spec("app", 20_000.0, ReadPolicy::Quorum))
            .unwrap();
        tb.add_workload(
            ReplWorkloadSpec::open_loop("bulk", TenantId(2), slo(10_000, 30), 10_000.0)
                .with_client_machine(1),
        )
        .unwrap();
        tb.add_workload(
            ReplWorkloadSpec::open_loop("far", TenantId(3), slo(5_000, 90), 5_000.0)
                .with_client_machine(2)
                .with_read_policy(ReadPolicy::Quorum),
        )
        .unwrap();
        tb.run(SimDuration::from_millis(20));
        tb.begin_measurement();
        tb.run(SimDuration::from_millis(60));
        tb.report()
    };
    let single = run(1);
    let sharded = run(4);
    assert!(sharded.workloads.len() == 3);
    for (a, b) in single.workloads.iter().zip(&sharded.workloads) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.issued, b.issued, "{}: issued diverged", a.name);
        assert_eq!(a.errors, b.errors);
        assert_eq!(a.retries, b.retries);
        assert_eq!(
            a.iops.to_bits(),
            b.iops.to_bits(),
            "{}: iops diverged",
            a.name
        );
        assert_eq!(
            a.read_latency.p95(),
            b.read_latency.p95(),
            "{}: p95 read diverged",
            a.name
        );
        assert_eq!(a.write_latency.p95(), b.write_latency.p95());
        assert_eq!(a.iops_series, b.iops_series, "{}: series diverged", a.name);
    }
}

#[test]
fn quorum_membership_survives_in_report_consistency() {
    // Writes during an R=2 blackout stall until failover (2-of-2 quorum
    // includes the dead member), so mean write latency under death is
    // strictly above a healthy run — the effect the recovery figure plots.
    let run = |plan: Option<FaultPlan>| {
        let mut tb = ReplTestbed::builder().sites(3).replication(2).build();
        tb.add_workload(spec("app", 15_000.0, ReadPolicy::Primary).with_namespace(0, 8 << 20))
            .unwrap();
        if let Some(p) = &plan {
            let _ = tb.install(p);
        }
        tb.run(SimDuration::from_millis(30));
        tb.begin_measurement();
        tb.run(SimDuration::from_millis(150));
        tb.report()
    };
    let healthy = run(None);
    let victim = {
        let tb = ReplTestbed::builder().sites(3).replication(2).build();
        let mut tb = tb;
        tb.add_workload(spec("app", 15_000.0, ReadPolicy::Primary))
            .unwrap();
        tb.member_sites(0)[0]
    };
    let dead = run(Some(FaultPlan::seeded(13).with_event(
        SimTime::ZERO + SimDuration::from_millis(60),
        FaultKind::ServerDeath { server: victim },
    )));
    assert!(dead.recoveries.len() == 1);
    assert!(
        mean_write_us_of(&dead) > mean_write_us_of(&healthy),
        "death run writes {:.1}us not above healthy {:.1}us",
        mean_write_us_of(&dead),
        mean_write_us_of(&healthy)
    );
}
