//! Composed chaos + replication scenario: a ServerDeath lands while
//! quorum reads are in flight, and the run must satisfy conservation
//! *and* epoch fencing together.
//!
//! The unit suites cover each mechanism in isolation (replication.rs
//! kills servers, telemetry checks balance); this test is the composed
//! case the swarm generates — fault, quorum read path and accounting all
//! active at once — pinned as a named scenario.

use reflex_faults::{FaultKind, FaultPlan};
use reflex_qos::{SloSpec, TenantId};
use reflex_replication::{ReadPolicy, ReplTestbed, ReplWorkloadSpec};
use reflex_sim::{SimDuration, SimTime};

#[test]
fn server_death_under_quorum_reads_conserves_and_fences_epochs() {
    let mut tb = ReplTestbed::builder()
        .sites(4)
        .replication(3)
        .seed(23)
        .build();
    tb.enable_telemetry();
    // Read-heavy quorum workload: most in-flight operations at the death
    // instant are quorum reads anchored at the primary.
    let slo = SloSpec::new(30_000, 90, SimDuration::from_micros(800));
    tb.add_workload(
        ReplWorkloadSpec::open_loop("app", TenantId(1), slo, 22_000.0)
            .with_read_policy(ReadPolicy::Quorum)
            .with_namespace(0, 8 << 20),
    )
    .unwrap();

    // Kill the primary's site: every in-flight quorum read loses its
    // anchor, so the failover must promote *and* the aborted sub-reads
    // must still balance.
    let victim = tb.member_sites(0)[tb.world().primary_slot(0)];
    let death = SimTime::ZERO + SimDuration::from_millis(40);
    let plan = FaultPlan::seeded(23).with_event(death, FaultKind::ServerDeath { server: victim });
    let _stats = tb.install(&plan);

    // Run in slices and sample the epoch, so fencing is asserted on the
    // observed timeline, not just the final state.
    let mut epochs = vec![tb.world().epoch(0)];
    for _ in 0..6 {
        tb.run(SimDuration::from_millis(25));
        epochs.push(tb.world().epoch(0));
    }

    // Epoch fencing: monotone, starts unbumped, bumps exactly once (one
    // death, one failover), and the bump happens after the death instant.
    assert!(
        epochs.windows(2).all(|p| p[0] <= p[1]),
        "epoch went backwards: {epochs:?}"
    );
    let first = epochs[0];
    let last = *epochs.last().unwrap();
    assert_eq!(
        last,
        first + 1,
        "one failover must bump the epoch exactly once: {epochs:?}"
    );
    let bump_slice = epochs.iter().position(|&e| e > first).unwrap();
    assert!(
        SimTime::ZERO + SimDuration::from_millis(25 * bump_slice as u64) > death,
        "epoch bumped before the server died: {epochs:?}"
    );

    // The fenced configuration took effect: the victim is out of the
    // member set and a quorum still exists.
    let members = tb.member_sites(0);
    assert!(!members.contains(&victim), "victim still a member");
    assert!(members.len() >= 2, "quorum lost: {members:?}");
    let report = tb.report();
    assert_eq!(report.recoveries.len(), 1, "exactly one recovery");

    // Conservation across the blackout: stop the generators, drain the
    // queues (including the dead site's aborting sub-reads), and require
    // exact balance with no open spans.
    tb.world_mut().stop_all_workloads();
    tb.run(SimDuration::from_millis(200));
    let drained = tb.telemetry_snapshot().expect("telemetry enabled");
    assert!(!drained.ios.is_empty(), "no IO counters recorded");
    for (tenant, io) in &drained.ios {
        assert_eq!(
            io.submitted,
            io.completed + io.failed + io.retried,
            "tenant {tenant:?} leaked IOs across the in-flight death: {io:?}"
        );
        assert_eq!(
            io.open_spans, 0,
            "tenant {tenant:?} left spans open after drain: {io:?}"
        );
        assert!(io.submitted > 0, "tenant {tenant:?} recorded no traffic");
    }
    // The death really interrupted in-flight work (otherwise this test
    // degenerates to the healthy conservation case).
    let count = |name: &str| drained.counters.get(name).copied().unwrap_or(0);
    assert_eq!(count("replication.server_deaths"), 1);
    assert_eq!(count("replication.failovers"), 1);
    assert_eq!(count("replication.promotions"), 1);
}
