//! Property tests for the quorum arithmetic the data path relies on.

use proptest::prelude::*;
use reflex_replication::{quorum, MAX_REPLICAS};

/// Picks a deterministic, seed-dependent subset of `q` slots out of `r`,
/// returned as a bitmask.
fn subset(r: usize, q: usize, seed: u64) -> u32 {
    let mut mask = 0u32;
    let mut s = seed;
    let mut n = 0;
    while n < q {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let slot = ((s >> 33) as usize) % r;
        if mask & (1 << slot) == 0 {
            mask |= 1 << slot;
            n += 1;
        }
    }
    mask
}

proptest! {
    /// Any two quorums over the same replica set intersect — the
    /// invariant that makes a quorum read observe every quorum write.
    #[test]
    fn any_two_quorums_intersect(
        r in 1usize..=MAX_REPLICAS,
        a in 0u64..u64::MAX,
        b in 0u64..u64::MAX,
    ) {
        let q = quorum(r);
        let read = subset(r, q, a);
        let write = subset(r, q, b);
        prop_assert!(
            read & write != 0,
            "disjoint quorums {read:#b} and {write:#b} for r={r}, q={q}"
        );
    }

    /// The pigeonhole bound behind the property: 2q > r.
    #[test]
    fn quorums_are_majorities(r in 1usize..=MAX_REPLICAS) {
        prop_assert!(2 * quorum(r) > r);
        prop_assert!(quorum(r) <= r);
    }
}
