//! Property-based tests of the network model.

use proptest::prelude::*;
use reflex_net::{
    wire_bytes, Fabric, LinkConfig, NicQueueId, Opcode, ReflexHeader, StackProfile, WireError,
    HEADER_SIZE,
};
use reflex_sim::{SimDuration, SimRng, SimTime};

fn arb_opcode(raw: u8) -> Opcode {
    match raw % 4 {
        0 => Opcode::Get,
        1 => Opcode::Put,
        2 => Opcode::Response,
        _ => Opcode::Error,
    }
}

proptest! {
    /// Header encode/decode round-trips for all field values.
    #[test]
    fn header_round_trip(
        op_raw in any::<u8>(),
        tenant in any::<u32>(),
        cookie in any::<u64>(),
        addr in any::<u64>(),
        len in any::<u32>(),
    ) {
        let hdr = ReflexHeader { opcode: arb_opcode(op_raw), tenant, cookie, addr, len };
        let enc = hdr.encode();
        prop_assert_eq!(enc.len(), HEADER_SIZE);
        prop_assert_eq!(ReflexHeader::decode(&enc).unwrap(), hdr);
    }

    /// Decoding arbitrary bytes never panics and either returns a valid
    /// header or a classified error.
    #[test]
    fn decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        match ReflexHeader::decode(&bytes) {
            Ok(h) => {
                // Anything decoded must re-encode to the same prefix.
                let enc = h.encode();
                prop_assert_eq!(&enc[..], &bytes[..HEADER_SIZE]);
            }
            Err(WireError::Truncated) => prop_assert!(bytes.len() < HEADER_SIZE),
            Err(WireError::BadMagic(b)) => prop_assert_eq!(b, bytes[0]),
            Err(WireError::BadOpcode(b)) => prop_assert_eq!(b, bytes[1]),
        }
    }

    /// Wire size accounting is monotone and always includes the header.
    #[test]
    fn wire_bytes_monotone(a in 0usize..10_000_000, b in 0usize..10_000_000) {
        let (small, large) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(wire_bytes(small) <= wire_bytes(large));
        prop_assert!(wire_bytes(small) >= small + HEADER_SIZE);
    }

    /// Fabric causality: every delivery arrives strictly after its send
    /// instant, and per-queue deliveries are time-ordered.
    #[test]
    fn fabric_causal(
        msgs in prop::collection::vec((0u64..1_000_000, 0u32..100_000, 0u8..2), 1..100),
    ) {
        let mut fabric: Fabric<u64> = Fabric::new(LinkConfig::default(), SimRng::seed(1));
        let c = fabric.add_machine(StackProfile::ix_tcp());
        let s = fabric.add_machine(StackProfile::dataplane_raw());
        let q1 = fabric.add_queue(s);
        let conn = fabric.new_conn();
        let mut sent = Vec::new();
        let mut now = SimTime::ZERO;
        for (i, (gap_ns, size, which_q)) in msgs.iter().enumerate() {
            now += SimDuration::from_nanos(*gap_ns);
            let q = if *which_q == 0 { NicQueueId(0) } else { q1 };
            let arrival = fabric.send_to_queue(now, c, s, q, conn, *size, i as u64);
            prop_assert!(arrival > now, "arrival {arrival} not after send {now}");
            sent.push((q, i as u64));
        }
        let horizon = SimTime::from_secs(3_600);
        for q in [NicQueueId(0), q1] {
            let got = fabric.poll_queue(horizon, s, q, usize::MAX);
            let mut prev = SimTime::ZERO;
            for d in &got {
                prop_assert!(d.arrived_at >= prev);
                prev = d.arrived_at;
            }
            let expected = sent.iter().filter(|(sq, _)| *sq == q).count();
            prop_assert_eq!(got.len(), expected, "queue {:?}", q);
        }
    }

    /// Bandwidth conservation: the receiver can never receive faster than
    /// the link bandwidth over any busy interval.
    #[test]
    fn bandwidth_bounded(n in 10u32..200) {
        let mut fabric: Fabric<u32> = Fabric::new(LinkConfig::default(), SimRng::seed(2));
        let c = fabric.add_machine(StackProfile::ix_tcp());
        let s = fabric.add_machine(StackProfile::dataplane_raw());
        let conn = fabric.new_conn();
        // Blast n 4KB messages at t=0.
        let mut last = SimTime::ZERO;
        for i in 0..n {
            let a = fabric.send(SimTime::ZERO, c, s, conn, 4096, i);
            last = last.max(a);
        }
        let bytes_on_wire = n as u64 * wire_bytes(4096) as u64;
        let min_secs = bytes_on_wire as f64 * 8.0 / 10e9;
        prop_assert!(
            last.as_secs_f64() >= min_secs,
            "{n} msgs finished in {} < wire minimum {min_secs}",
            last.as_secs_f64()
        );
    }
}
