//! Exhaustive edge coverage for wire-header decoding: truncated,
//! oversized and garbage buffers.
//!
//! The property test (`properties.rs::decode_never_panics`) samples this
//! space; these tests pin the edges deterministically — every truncation
//! length, the magic/opcode error precedence, and oversized buffers —
//! so a decode regression fails with a named scenario instead of a
//! proptest seed.

use reflex_net::{Opcode, ReflexHeader, WireError, HEADER_SIZE, MAGIC};

fn valid_header() -> ReflexHeader {
    ReflexHeader {
        opcode: Opcode::Get,
        tenant: 42,
        cookie: 0xdead_beef_cafe_f00d,
        addr: 7 * 4096,
        len: 4096,
    }
}

/// Every prefix shorter than HEADER_SIZE is Truncated — even a prefix of
/// a perfectly valid header, and even the empty buffer.
#[test]
fn every_truncation_length_is_truncated() {
    let enc = valid_header().encode_array();
    for n in 0..HEADER_SIZE {
        assert_eq!(
            ReflexHeader::decode(&enc[..n]),
            Err(WireError::Truncated),
            "prefix of {n} bytes must be Truncated"
        );
    }
}

/// Oversized buffers decode from the first HEADER_SIZE bytes; trailing
/// bytes are payload, not part of the header, and must not affect the
/// result — whatever garbage they hold.
#[test]
fn oversized_buffers_ignore_the_tail() {
    let hdr = valid_header();
    for extra in [1usize, 7, 4096, 65536] {
        let mut buf = hdr.encode_array().to_vec();
        buf.extend(std::iter::repeat_n(0xA5u8, extra));
        assert_eq!(
            ReflexHeader::decode(&buf),
            Ok(hdr),
            "{extra} trailing bytes changed the decode"
        );
    }
}

/// A wrong first byte is BadMagic carrying the offending byte, for every
/// possible wrong value — checked before the opcode, so garbage reports
/// the earliest framing error.
#[test]
fn every_bad_magic_byte_is_reported() {
    let mut buf = valid_header().encode_array();
    for b in 0u8..=255 {
        if b == MAGIC {
            continue;
        }
        buf[0] = b;
        assert_eq!(ReflexHeader::decode(&buf), Err(WireError::BadMagic(b)));
    }
}

/// With good magic, every unknown opcode byte is BadOpcode carrying the
/// offending byte; the known opcodes all decode.
#[test]
fn every_opcode_byte_classified() {
    let mut buf = valid_header().encode_array();
    for b in 0u8..=255 {
        buf[1] = b;
        match ReflexHeader::decode(&buf) {
            Ok(h) => assert_eq!(h.opcode as u8, b, "opcode byte must round-trip"),
            Err(WireError::BadOpcode(e)) => assert_eq!(e, b),
            Err(other) => panic!("opcode byte {b} misclassified as {other:?}"),
        }
    }
}

/// All-garbage buffers of every length: short ones are Truncated, long
/// ones fail on the first framing check (magic), never panic.
#[test]
fn garbage_classifies_by_first_framing_error() {
    for n in 0..(3 * HEADER_SIZE) {
        let buf = vec![0xFFu8; n];
        let expect = if n < HEADER_SIZE {
            WireError::Truncated
        } else {
            WireError::BadMagic(0xFF)
        };
        assert_eq!(ReflexHeader::decode(&buf), Err(expect), "length {n}");
    }
}

/// The zero buffer at exactly HEADER_SIZE: magic 0x00 is reported (not
/// opcode 0x00) — error precedence is fixed byte order.
#[test]
fn zero_buffer_reports_magic_before_opcode() {
    let buf = [0u8; HEADER_SIZE];
    assert_eq!(ReflexHeader::decode(&buf), Err(WireError::BadMagic(0)));
}
