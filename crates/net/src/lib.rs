//! # reflex-net — network model for the ReFlex reproduction
//!
//! Simulates the commodity 10GbE TCP/IP environment of the paper:
//!
//! * [`Fabric`] — machines connected through a switch; per-NIC
//!   serialization/receive capacity and propagation delays, lazily computed
//!   like the Flash device model.
//! * [`StackProfile`] — Linux kernel TCP versus the IX dataplane stack
//!   (latency, jitter, per-thread message-rate ceilings).
//! * [`ReflexHeader`] / [`wire_bytes`] — the binary wire protocol actually
//!   serialized and parsed by the dataplane.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod fabric;
mod stack;
mod wire;

pub use fabric::{
    ConnId, Delivery, Fabric, Flight, LinkConfig, MachineId, NetFaultAction, NetFaultHook,
    NicQueueId,
};
pub use stack::{StackProfile, Transport};
pub use wire::{
    wire_bytes, wire_bytes_with, Opcode, ReflexHeader, WireError, FRAME_OVERHEAD, HEADER_SIZE,
    MAGIC, MSS,
};
