//! The ReFlex wire protocol.
//!
//! A compact binary header (28 bytes) precedes each request and response,
//! similar to the memcached binary protocol the paper's client library is
//! modelled on. With TCP/IP+Ethernet framing this gives the paper's ~38
//! bytes of per-4KB-request overhead. The header is actually serialized and
//! parsed — the dataplane's protocol-processing step runs this code.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};

/// Size of an encoded [`ReflexHeader`] in bytes.
pub const HEADER_SIZE: usize = 28;

/// Magic byte marking a ReFlex protocol message.
pub const MAGIC: u8 = 0x5f;

/// Per-packet TCP/IP + Ethernet framing overhead, bytes.
pub const FRAME_OVERHEAD: usize = 54;

/// Maximum TCP segment payload (Ethernet MTU minus headers).
pub const MSS: usize = 1460;

/// Request/response opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum Opcode {
    /// Read logical blocks.
    Get = 0x01,
    /// Write logical blocks.
    Put = 0x02,
    /// Ordering barrier: completes only after every I/O the tenant issued
    /// before it has completed; I/Os issued after it wait for it (paper
    /// §4.1 future work — the substrate for atomic transactions).
    Barrier = 0x03,
    /// Response carrying read data or a write acknowledgement.
    Response = 0x81,
    /// Error response (access denied, bad request, out of range).
    Error = 0xff,
}

impl Opcode {
    fn from_u8(v: u8) -> Option<Opcode> {
        match v {
            0x01 => Some(Opcode::Get),
            0x02 => Some(Opcode::Put),
            0x03 => Some(Opcode::Barrier),
            0x81 => Some(Opcode::Response),
            0xff => Some(Opcode::Error),
            _ => None,
        }
    }
}

/// The ReFlex message header.
///
/// # Examples
///
/// ```
/// use reflex_net::{Opcode, ReflexHeader};
///
/// let hdr = ReflexHeader {
///     opcode: Opcode::Get,
///     tenant: 3,
///     cookie: 0xdead_beef,
///     addr: 1 << 20,
///     len: 4096,
/// };
/// let bytes = hdr.encode();
/// let back = ReflexHeader::decode(&bytes).expect("round trip");
/// assert_eq!(back, hdr);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ReflexHeader {
    /// Operation.
    pub opcode: Opcode,
    /// Tenant the connection is bound to.
    pub tenant: u32,
    /// Client-chosen correlation cookie echoed in the response.
    pub cookie: u64,
    /// Byte address of the first logical block.
    pub addr: u64,
    /// Transfer length in bytes.
    pub len: u32,
}

/// Error parsing a wire header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// Fewer than [`HEADER_SIZE`] bytes available.
    Truncated,
    /// First byte was not [`MAGIC`].
    BadMagic(u8),
    /// Unknown opcode value.
    BadOpcode(u8),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => f.write_str("truncated header"),
            WireError::BadMagic(b) => write!(f, "bad magic byte {b:#04x}"),
            WireError::BadOpcode(b) => write!(f, "unknown opcode {b:#04x}"),
        }
    }
}

impl std::error::Error for WireError {}

impl ReflexHeader {
    /// Encodes the header into its 28-byte wire form.
    /// Layout: magic(1) opcode(1) reserved(2) tenant(4) cookie(8) addr(8) len(4).
    ///
    /// Allocates a [`Bytes`] buffer; hot paths that send headers per
    /// message use [`ReflexHeader::encode_array`], which returns the same
    /// 28 bytes on the stack.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(HEADER_SIZE);
        buf.put_slice(&self.encode_array());
        buf.freeze()
    }

    /// Encodes the header into a fixed 28-byte array — the allocation-free
    /// form the dataplane and testbed hot paths ship on the simulated wire.
    /// Byte-for-byte identical to [`ReflexHeader::encode`] (the golden
    /// round-trip tests pin both).
    #[inline]
    pub fn encode_array(&self) -> [u8; HEADER_SIZE] {
        let mut buf = [0u8; HEADER_SIZE];
        buf[0] = MAGIC;
        buf[1] = self.opcode as u8;
        // buf[2..4] stays zero: reserved / padding.
        buf[4..8].copy_from_slice(&self.tenant.to_be_bytes());
        buf[8..16].copy_from_slice(&self.cookie.to_be_bytes());
        buf[16..24].copy_from_slice(&self.addr.to_be_bytes());
        buf[24..28].copy_from_slice(&self.len.to_be_bytes());
        buf
    }

    /// Decodes a header from the front of `bytes`.
    ///
    /// # Errors
    ///
    /// See [`WireError`].
    pub fn decode(mut bytes: &[u8]) -> Result<ReflexHeader, WireError> {
        if bytes.len() < HEADER_SIZE {
            return Err(WireError::Truncated);
        }
        let magic = bytes.get_u8();
        if magic != MAGIC {
            return Err(WireError::BadMagic(magic));
        }
        let op_raw = bytes.get_u8();
        let opcode = Opcode::from_u8(op_raw).ok_or(WireError::BadOpcode(op_raw))?;
        let _reserved = bytes.get_u16();
        let tenant = bytes.get_u32();
        let cookie = bytes.get_u64();
        let addr = bytes.get_u64();
        let len = bytes.get_u32();
        Ok(ReflexHeader {
            opcode,
            tenant,
            cookie,
            addr,
            len,
        })
    }
}

/// Total bytes a message of `payload` application bytes occupies on the
/// wire, including the ReFlex header and per-segment TCP/IP+Ethernet
/// framing. Used for serialization-delay and bandwidth accounting.
pub fn wire_bytes(payload: usize) -> usize {
    wire_bytes_with(payload, FRAME_OVERHEAD)
}

/// [`wire_bytes`] with a caller-chosen per-segment framing overhead
/// (UDP frames are 12 bytes lighter than TCP).
pub fn wire_bytes_with(payload: usize, frame_overhead: usize) -> usize {
    let app = payload + HEADER_SIZE;
    let segments = app.div_ceil(MSS).max(1);
    app + segments * frame_overhead
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_round_trips() {
        for (op, tenant, cookie, addr, len) in [
            (Opcode::Get, 0u32, 0u64, 0u64, 1u32),
            (Opcode::Put, u32::MAX, u64::MAX, u64::MAX, u32::MAX),
            (Opcode::Response, 7, 42, 4096, 32 * 1024),
        ] {
            let hdr = ReflexHeader {
                opcode: op,
                tenant,
                cookie,
                addr,
                len,
            };
            let enc = hdr.encode();
            assert_eq!(enc.len(), HEADER_SIZE);
            assert_eq!(ReflexHeader::decode(&enc).expect("round trip"), hdr);
            // The stack-array form is byte-identical to the Bytes form.
            assert_eq!(hdr.encode_array().as_slice(), &enc[..]);
            assert_eq!(ReflexHeader::decode(&hdr.encode_array()).unwrap(), hdr);
        }
    }

    #[test]
    fn encode_array_matches_golden_layout() {
        let hdr = ReflexHeader {
            opcode: Opcode::Get,
            tenant: 0x0102_0304,
            cookie: 0x1122_3344_5566_7788,
            addr: 0x99aa_bbcc_ddee_ff00,
            len: 0x0a0b_0c0d,
        };
        let enc = hdr.encode_array();
        assert_eq!(enc[0], MAGIC);
        assert_eq!(enc[1], Opcode::Get as u8);
        assert_eq!(&enc[2..4], &[0, 0]);
        assert_eq!(&enc[4..8], &[0x01, 0x02, 0x03, 0x04]);
        assert_eq!(
            &enc[8..16],
            &[0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88]
        );
        assert_eq!(
            &enc[16..24],
            &[0x99, 0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff, 0x00]
        );
        assert_eq!(&enc[24..28], &[0x0a, 0x0b, 0x0c, 0x0d]);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(ReflexHeader::decode(&[0u8; 4]), Err(WireError::Truncated));
        let mut bad_magic = [0u8; HEADER_SIZE];
        bad_magic[0] = 0xAA;
        assert_eq!(
            ReflexHeader::decode(&bad_magic),
            Err(WireError::BadMagic(0xAA))
        );
        let mut bad_op = [0u8; HEADER_SIZE];
        bad_op[0] = MAGIC;
        bad_op[1] = 0x7e;
        assert_eq!(
            ReflexHeader::decode(&bad_op),
            Err(WireError::BadOpcode(0x7e))
        );
    }

    #[test]
    fn small_request_overhead_matches_paper() {
        // A request message (header only): 28 + 54 = 82 wire bytes; the
        // paper's "38 bytes per 4KB request" counts header + TCP/IP on an
        // established flow with header compression of ACKs; our accounting
        // is deliberately more conservative but the same order.
        assert_eq!(wire_bytes(0), HEADER_SIZE + FRAME_OVERHEAD);
    }

    #[test]
    fn large_payloads_pay_per_segment_framing() {
        let one_seg = wire_bytes(1_000);
        assert_eq!(one_seg, 1_000 + HEADER_SIZE + FRAME_OVERHEAD);
        let resp_4k = wire_bytes(4096);
        // 4096+24 bytes = 3 segments.
        assert_eq!(resp_4k, 4096 + HEADER_SIZE + 3 * FRAME_OVERHEAD);
    }
}
