//! Network stack performance profiles.
//!
//! The paper contrasts the Linux kernel stack (interrupt-driven, copies,
//! scheduling jitter) with the IX dataplane stack (polling, zero-copy,
//! run-to-completion). A [`StackProfile`] captures the per-message software
//! latency each adds on top of the wire, plus the per-message CPU cost that
//! bounds a client thread's message rate (§4.2: the Linux TCP stack
//! supports ~70K messages per second per thread at 4KB).

use reflex_sim::{SimDuration, SimRng};
use serde::{Deserialize, Serialize};

/// Transport protocol an endpoint speaks. The paper ships TCP (the most
/// heavyweight choice, "a conservative lower bound on performance") and
/// names UDP as the planned lighter transport (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Transport {
    /// Reliable byte stream: 20B header, per-segment ACK bookkeeping.
    Tcp,
    /// Datagrams: 8B header, no connection state to maintain.
    Udp,
}

impl Transport {
    /// Per-packet framing overhead (Ethernet + IP + transport headers).
    pub fn frame_overhead(self) -> usize {
        match self {
            Transport::Tcp => crate::wire::FRAME_OVERHEAD,
            Transport::Udp => crate::wire::FRAME_OVERHEAD - 12, // 8B UDP vs 20B TCP
        }
    }
}

/// Performance parameters of one network stack implementation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StackProfile {
    /// Human-readable name ("linux-tcp", "ix-tcp", …).
    pub name: String,
    /// Median software latency to transmit one message.
    pub tx_median: SimDuration,
    /// Lognormal sigma of the transmit latency (jitter).
    pub tx_sigma: f64,
    /// Median software latency from NIC arrival to application delivery.
    pub rx_median: SimDuration,
    /// Lognormal sigma of the receive latency. Interrupt-driven stacks have
    /// visibly heavier tails here.
    pub rx_sigma: f64,
    /// CPU time one application thread spends per message (send+receive
    /// bookkeeping) — bounds messages/sec/thread.
    pub per_msg_cpu: SimDuration,
    /// Transport protocol this endpoint speaks.
    pub transport: Transport,
}

impl StackProfile {
    /// The Linux kernel TCP stack: ~9µs software latency per direction
    /// with heavy interrupt/scheduling jitter; ~70K msgs/s per thread.
    pub fn linux_tcp() -> Self {
        StackProfile {
            name: "linux-tcp".to_owned(),
            tx_median: SimDuration::from_micros_f64(8.0),
            tx_sigma: 0.3,
            rx_median: SimDuration::from_micros_f64(9.0),
            rx_sigma: 0.4,
            per_msg_cpu: SimDuration::from_micros_f64(14.3), // 1 / 70K msgs/s
            transport: Transport::Tcp,
        }
    }

    /// The Linux UDP stack: no connection state or congestion control
    /// bookkeeping — ~35% lighter than TCP per message.
    pub fn linux_udp() -> Self {
        StackProfile {
            name: "linux-udp".to_owned(),
            tx_median: SimDuration::from_micros_f64(5.5),
            tx_sigma: 0.3,
            rx_median: SimDuration::from_micros_f64(6.0),
            rx_sigma: 0.4,
            per_msg_cpu: SimDuration::from_micros_f64(9.5),
            transport: Transport::Udp,
        }
    }

    /// The IX dataplane TCP stack used by optimized clients: ~2µs per
    /// direction, low jitter, ~1.2µs CPU per message.
    pub fn ix_tcp() -> Self {
        StackProfile {
            name: "ix-tcp".to_owned(),
            tx_median: SimDuration::from_micros_f64(2.0),
            tx_sigma: 0.1,
            rx_median: SimDuration::from_micros_f64(2.0),
            rx_sigma: 0.1,
            per_msg_cpu: SimDuration::from_micros_f64(1.2),
            transport: Transport::Tcp,
        }
    }

    /// The IX dataplane UDP stack: the lightest client path.
    pub fn ix_udp() -> Self {
        StackProfile {
            name: "ix-udp".to_owned(),
            tx_median: SimDuration::from_micros_f64(1.3),
            tx_sigma: 0.1,
            rx_median: SimDuration::from_micros_f64(1.3),
            rx_sigma: 0.1,
            per_msg_cpu: SimDuration::from_micros_f64(0.8),
            transport: Transport::Udp,
        }
    }

    /// The ReFlex server side: the dataplane polls NIC queues directly, so
    /// the stack adds almost nothing here — per-request processing is
    /// charged explicitly by the dataplane CPU model instead.
    pub fn dataplane_raw() -> Self {
        StackProfile {
            name: "dataplane-raw".to_owned(),
            tx_median: SimDuration::from_micros_f64(0.3),
            tx_sigma: 0.05,
            rx_median: SimDuration::from_micros_f64(0.3),
            rx_sigma: 0.05,
            per_msg_cpu: SimDuration::from_micros_f64(0.0),
            transport: Transport::Tcp,
        }
    }

    /// The ReFlex server side speaking UDP (dataplane polls raw queues
    /// either way; the per-request protocol saving is charged in
    /// `DataplaneConfig::udp`).
    pub fn dataplane_raw_udp() -> Self {
        StackProfile {
            name: "dataplane-raw-udp".to_owned(),
            transport: Transport::Udp,
            ..Self::dataplane_raw()
        }
    }

    /// A degraded copy of this profile: medians multiplied by `factor` and
    /// jitter widened (latency-storm fault injection swaps a machine's
    /// stack for a degraded one during the storm window).
    ///
    /// # Panics
    ///
    /// Panics if `factor < 1.0`.
    pub fn degraded(&self, factor: f64) -> StackProfile {
        assert!(factor >= 1.0, "degradation can only slow a stack down");
        StackProfile {
            name: format!("{}-degraded", self.name),
            tx_median: self.tx_median.mul_f64(factor),
            tx_sigma: (self.tx_sigma * factor.sqrt()).min(1.0),
            rx_median: self.rx_median.mul_f64(factor),
            rx_sigma: (self.rx_sigma * factor.sqrt()).min(1.0),
            per_msg_cpu: self.per_msg_cpu,
            transport: self.transport,
        }
    }

    /// Samples the transmit-side software latency.
    pub fn sample_tx(&self, rng: &mut SimRng) -> SimDuration {
        rng.lognormal(self.tx_median, self.tx_sigma)
    }

    /// Samples the receive-side software latency.
    pub fn sample_rx(&self, rng: &mut SimRng) -> SimDuration {
        rng.lognormal(self.rx_median, self.rx_sigma)
    }

    /// Messages per second one thread of this stack can sustain
    /// (infinite for a zero-CPU profile).
    pub fn max_msgs_per_thread_per_sec(&self) -> f64 {
        let cpu = self.per_msg_cpu.as_secs_f64();
        if cpu <= 0.0 {
            f64::INFINITY
        } else {
            1.0 / cpu
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linux_thread_ceiling_near_70k() {
        let rate = StackProfile::linux_tcp().max_msgs_per_thread_per_sec();
        assert!((65_000.0..75_000.0).contains(&rate), "rate {rate}");
    }

    #[test]
    fn ix_is_faster_than_linux_everywhere() {
        let linux = StackProfile::linux_tcp();
        let ix = StackProfile::ix_tcp();
        assert!(ix.tx_median < linux.tx_median);
        assert!(ix.rx_median < linux.rx_median);
        assert!(ix.per_msg_cpu < linux.per_msg_cpu);
        assert!(ix.rx_sigma < linux.rx_sigma);
    }

    #[test]
    fn sampling_is_near_median() {
        let mut rng = SimRng::seed(1);
        let p = StackProfile::linux_tcp();
        let mut xs: Vec<f64> = (0..2_001)
            .map(|_| p.sample_rx(&mut rng).as_micros_f64())
            .collect();
        xs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        let median = xs[1_000];
        assert!((median - 9.0).abs() < 1.0, "median {median}");
    }

    #[test]
    fn raw_profile_has_unbounded_thread_rate() {
        assert!(StackProfile::dataplane_raw()
            .max_msgs_per_thread_per_sec()
            .is_infinite());
    }
}
