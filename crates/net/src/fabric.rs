//! The network fabric: machines, NICs and message delivery.
//!
//! Like the Flash device model, the fabric computes each message's arrival
//! instant *at send time* from per-NIC busy state (serialization on the
//! sender's uplink, receive capacity on the destination's downlink,
//! propagation through the switch) plus the endpoints' stack latencies.
//! Receivers poll their delivery queue, mirroring how the dataplane polls
//! NIC RX descriptor rings.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use reflex_sim::{SimDuration, SimRng, SimTime};
use reflex_telemetry::{Stage, Telemetry, TenantKey};
use serde::{Deserialize, Serialize};

use crate::stack::StackProfile;
use crate::wire::wire_bytes_with;

/// Identifier of a machine attached to the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MachineId(pub u32);

/// Identifier of a (TCP) connection between two machines. The fabric itself
/// is connection-agnostic; ids are carried for the endpoints' bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ConnId(pub u64);

/// Identifier of a receive queue on a machine's NIC. Multi-queue NICs let
/// each dataplane thread poll its own queue (flow steering / RSS) while all
/// queues share the NIC's bandwidth. Every machine has queue 0 by default.
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
)]
pub struct NicQueueId(pub u32);

/// Fabric-wide link parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkConfig {
    /// Link bandwidth in bits per second (default: 10GbE).
    pub bandwidth_bps: u64,
    /// One-way propagation + switching delay.
    pub propagation: SimDuration,
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig {
            bandwidth_bps: 10_000_000_000,
            propagation: SimDuration::from_micros_f64(1.0),
        }
    }
}

impl LinkConfig {
    /// A 40GbE fabric (the paper notes modern datacenters remove the 10GbE
    /// bottleneck; fig4/fig7a discussion).
    pub fn forty_gbe() -> Self {
        LinkConfig {
            bandwidth_bps: 40_000_000_000,
            ..LinkConfig::default()
        }
    }

    /// Time to serialize `bytes` onto the wire.
    pub fn serialization(&self, bytes: usize) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 * 8.0 / self.bandwidth_bps as f64)
    }
}

/// A message delivered to a machine's receive queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery<P> {
    /// Sender machine.
    pub from: MachineId,
    /// Connection the message belongs to.
    pub conn: ConnId,
    /// Instant the receiving application sees the message.
    pub arrived_at: SimTime,
    /// Application payload length in bytes (excluding headers).
    pub size: u32,
    /// Opaque payload handed back to the receiver.
    pub payload: P,
}

#[derive(Clone)]
struct Nic {
    stack: StackProfile,
    tx_busy: SimTime,
    rx_busy: SimTime,
    rng: SimRng,
    tx_bytes: u64,
    rx_bytes: u64,
    /// Monotone per-source transmit counter; the tie-break of the windowed
    /// delivery order (see [`Flight`]).
    tx_seq: u64,
}

/// Per-queue NIC state for a machine whose dataplane threads may live on
/// different shards (split-dataplane mode). Each lane carries its own
/// busy chains, jitter RNG stream, and transmit counter so a thread's
/// traffic touches only its own lane — which is what lets each lane live
/// on its thread's shard without cross-shard NIC state.
#[derive(Clone)]
struct Lane {
    tx_busy: SimTime,
    rx_busy: SimTime,
    rng: SimRng,
    tx_seq: u64,
}

#[derive(Clone)]
struct Lanes {
    machine: MachineId,
    lanes: Vec<Lane>,
}

/// What a [`NetFaultHook`] does to one message in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetFaultAction {
    /// Deliver normally.
    Deliver,
    /// Lose the message on the wire. The sender still paid stack CPU and
    /// uplink serialization (it did transmit); the receiver never sees it.
    Drop,
    /// Deliver twice (switch-level duplication / spurious retransmit). The
    /// copy lands 500ns after the original.
    Duplicate,
    /// Deliver late by the given extra delay (congestion burst, pause
    /// frames) on top of the modelled arrival time.
    Delay(SimDuration),
}

/// Per-message fault injection hook, consulted by
/// [`Fabric::send_to_queue`] for every message.
///
/// Installed via [`Fabric::set_fault_hook`]. The hook is consulted *after*
/// the fabric has computed the message's timing, so NIC busy state and the
/// per-NIC jitter RNG streams advance identically whether or not a fault
/// fires — a hook that always returns [`NetFaultAction::Deliver`] is
/// invisible. Implementations needing randomness must carry their own
/// [`SimRng`] stream.
pub trait NetFaultHook: Send {
    /// Decides the fate of a `size`-byte message from `from` to `to`.
    fn on_send(
        &mut self,
        now: SimTime,
        from: MachineId,
        to: MachineId,
        size: u32,
    ) -> NetFaultAction;
}

#[derive(Clone)]
struct RxEntry<P> {
    at: SimTime,
    seq: u64,
    delivery: Delivery<P>,
}

impl<P> PartialEq for RxEntry<P> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<P> Eq for RxEntry<P> {}
impl<P> PartialOrd for RxEntry<P> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<P> Ord for RxEntry<P> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A message whose transmit half has completed but whose receive half has
/// not yet been resolved (windowed delivery mode, see
/// [`Fabric::enable_windowed`]).
///
/// Flights are totally ordered by `(departed, src, tx_seq)` — departure
/// instant off the sender's uplink, source machine id, and the source NIC's
/// monotone transmit counter. The receive half of every flight addressed to
/// a machine is resolved in exactly this order, which is what makes
/// windowed delivery independent of event interleaving: however sends race
/// across shards, the per-destination resolution sequence (and therefore
/// the destination NIC's busy state and jitter-RNG stream) is a pure
/// function of the flight set.
#[derive(Debug, Clone)]
pub struct Flight<P> {
    departed: SimTime,
    src: MachineId,
    tx_seq: u64,
    to: MachineId,
    queue: NicQueueId,
    conn: ConnId,
    size: u32,
    ser: SimDuration,
    sent_at: SimTime,
    /// Earliest possible arrival: `departed + propagation`. The true
    /// arrival adds receive-side contention, stack latency, and any fault
    /// delay, all of which resolve later.
    bound: SimTime,
    stage: Stage,
    fault: NetFaultAction,
    payload: P,
}

impl<P> Flight<P> {
    /// Destination machine.
    pub fn to(&self) -> MachineId {
        self.to
    }

    /// Destination NIC receive queue.
    pub fn queue(&self) -> NicQueueId {
        self.queue
    }

    /// Connection the message belongs to.
    pub fn conn(&self) -> ConnId {
        self.conn
    }

    /// Source machine.
    pub fn src(&self) -> MachineId {
        self.src
    }

    /// Departure instant off the sender's uplink (first component of the
    /// delivery order).
    pub fn departed(&self) -> SimTime {
        self.departed
    }

    /// Conservative lower bound on the arrival instant
    /// (`departed + propagation`); receivers arm their next poll at this
    /// time.
    pub fn bound(&self) -> SimTime {
        self.bound
    }

    fn key(&self) -> (SimTime, MachineId, u64) {
        (self.departed, self.src, self.tx_seq)
    }
}

impl<P> PartialEq for Flight<P> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl<P> Eq for Flight<P> {}
impl<P> PartialOrd for Flight<P> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<P> Ord for Flight<P> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

/// Machine → shard routing for a fabric endpoint that lives inside one
/// shard of a sharded run.
#[derive(Debug, Clone)]
struct ShardRoutes {
    own: usize,
    shard_of: Vec<usize>,
    /// Queue-granular routing for the lane machine (split-dataplane mode):
    /// flights to it are owned by the shard of their destination queue's
    /// thread, not by a single machine-owning shard.
    queue_shards: Option<(MachineId, Vec<usize>)>,
}

impl ShardRoutes {
    fn dest_shard(&self, to: MachineId, queue: NicQueueId) -> usize {
        match &self.queue_shards {
            Some((m, qs)) if *m == to => qs[queue.0 as usize],
            _ => self.shard_of[to.0 as usize],
        }
    }
}

/// The shared network fabric over which all machines communicate.
///
/// # Examples
///
/// ```
/// use reflex_net::{Fabric, LinkConfig, StackProfile};
/// use reflex_sim::{SimRng, SimTime};
///
/// let mut fabric: Fabric<&'static str> = Fabric::new(LinkConfig::default(), SimRng::seed(1));
/// let client = fabric.add_machine(StackProfile::linux_tcp());
/// let server = fabric.add_machine(StackProfile::dataplane_raw());
///
/// let conn = fabric.new_conn();
/// let arrival = fabric.send(SimTime::ZERO, client, server, conn, 4096, "hello");
/// let got = fabric.poll(arrival, server, 16);
/// assert_eq!(got.len(), 1);
/// assert_eq!(got[0].payload, "hello");
/// ```
pub struct Fabric<P> {
    link: LinkConfig,
    nic_seed: u64,
    nics: Vec<Nic>,
    rx_queues: Vec<Vec<BinaryHeap<Reverse<RxEntry<P>>>>>,
    seq: u64,
    next_conn: u64,
    fault_hook: Option<Box<dyn NetFaultHook>>,
    dropped: u64,
    duplicated: u64,
    telemetry: Telemetry,
    /// Declared machine-pair links (unordered pairs). Empty means "no
    /// accounting": any machine may talk to any other (full mesh). Once
    /// links are declared, only declared pairs may exchange traffic, and
    /// sharded runs derive per-shard-pair lookahead from them.
    links: Vec<(MachineId, MachineId)>,
    /// Windowed delivery state; `None` in (default) immediate mode.
    windowed: Option<Windowed<P>>,
    /// Per-queue NIC lanes (split-dataplane mode); `None` normally.
    lanes: Option<Lanes>,
}

/// State of windowed delivery mode (split send: the transmit half runs at
/// send time, the receive half when the horizon passes the departure).
struct Windowed<P> {
    /// Horizon quantum in nanoseconds (= link propagation, the lookahead).
    window_ns: u64,
    /// All flights departing strictly before this instant are resolved.
    horizon: SimTime,
    /// Per-destination-machine min-heaps of unresolved flights.
    pending: Vec<BinaryHeap<Reverse<Flight<P>>>>,
    /// Present when this fabric endpoint is one shard of a sharded run.
    routes: Option<ShardRoutes>,
    /// Flights addressed to machines owned by other shards, awaiting the
    /// next window-boundary exchange.
    outbound: Vec<(usize, Flight<P>)>,
}

impl<P: Clone> Clone for Windowed<P> {
    fn clone(&self) -> Self {
        Windowed {
            window_ns: self.window_ns,
            horizon: self.horizon,
            pending: self.pending.clone(),
            routes: self.routes.clone(),
            outbound: self.outbound.clone(),
        }
    }
}

impl<P> std::fmt::Debug for Fabric<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fabric")
            .field("machines", &self.nics.len())
            .field("link", &self.link)
            .finish()
    }
}

impl<P> Fabric<P> {
    /// Creates a fabric with the given link configuration. `seed_rng`
    /// derives each attached NIC's jitter stream.
    pub fn new(link: LinkConfig, mut seed_rng: SimRng) -> Self {
        let nic_seed = seed_rng.next_u64();
        Fabric {
            link,
            nic_seed,
            nics: Vec::new(),
            rx_queues: Vec::new(),
            seq: 0,
            next_conn: 0,
            fault_hook: None,
            dropped: 0,
            duplicated: 0,
            telemetry: Telemetry::disabled(),
            links: Vec::new(),
            windowed: None,
            lanes: None,
        }
    }

    /// Switches the fabric to *windowed* delivery.
    ///
    /// In windowed mode [`send`](Self::send) runs only the transmit half of
    /// a transfer (sender stack, uplink serialization, departure) and
    /// returns a conservative arrival *bound* (`departed + propagation`)
    /// instead of the exact arrival. The receive half — downlink
    /// contention, receiver stack latency, fault outcome — resolves lazily
    /// when [`observe`](Self::observe) raises the delivery horizon past the
    /// departure instant, and always in [`Flight`] order, making delivery
    /// timing independent of the order in which sends from different
    /// machines interleave. This is the delivery model shared by the
    /// single-shard and sharded testbeds, and the reason their outputs are
    /// byte-identical.
    ///
    /// Must be called before any traffic. Irreversible.
    ///
    /// # Panics
    ///
    /// Panics if the link has zero propagation delay (no lookahead).
    pub fn enable_windowed(&mut self) {
        assert!(
            self.link.propagation.as_nanos() > 0,
            "windowed delivery needs nonzero propagation (lookahead)"
        );
        if self.windowed.is_some() {
            return;
        }
        self.windowed = Some(Windowed {
            window_ns: self.link.propagation.as_nanos(),
            horizon: SimTime::ZERO,
            pending: self.nics.iter().map(|_| BinaryHeap::new()).collect(),
            routes: None,
            outbound: Vec::new(),
        });
    }

    /// Whether windowed delivery is enabled.
    pub fn is_windowed(&self) -> bool {
        self.windowed.is_some()
    }

    /// Switches `machine`'s NIC to per-queue lanes (split-dataplane mode):
    /// every receive queue gets its own tx/rx busy chains, jitter RNG
    /// stream, and transmit counter, so each dataplane thread's traffic
    /// touches only its own lane and the machine's threads can be placed
    /// on different shards. Queue-aware sends go through
    /// [`send_from`](Self::send_from); arrivals resolve against the lane
    /// of their destination queue.
    ///
    /// Lane RNG streams derive from the machine and queue ids, so lane
    /// timing is a pure function of the flight set — identical at any
    /// shard count. Must be called before any traffic on `machine`, after
    /// all its queues exist, and with windowed delivery enabled.
    ///
    /// # Panics
    ///
    /// Panics if windowed mode is off or a fault hook is installed
    /// (per-message hooks observe global send order).
    pub fn enable_lanes(&mut self, machine: MachineId) {
        assert!(self.windowed.is_some(), "lanes require windowed delivery");
        assert!(
            self.fault_hook.is_none(),
            "lanes are incompatible with fault injection"
        );
        let queues = self.rx_queues[machine.0 as usize].len();
        let lanes = (0..queues)
            .map(|q| Lane {
                tx_busy: SimTime::ZERO,
                rx_busy: SimTime::ZERO,
                rng: SimRng::seed(
                    self.nic_seed ^ (0x9e37_79b9 * (machine.0 as u64 + 1)) ^ ((q as u64 + 1) << 32),
                ),
                tx_seq: 0,
            })
            .collect();
        self.lanes = Some(Lanes { machine, lanes });
    }

    /// Whether `machine`'s NIC runs per-queue lanes.
    pub fn has_lanes(&self, machine: MachineId) -> bool {
        matches!(&self.lanes, Some(l) if l.machine == machine)
    }

    /// Whether a fault-injection hook is installed.
    pub fn has_fault_hook(&self) -> bool {
        self.fault_hook.is_some()
    }

    /// The conservative lookahead of this fabric: no message can cross it
    /// in less than the one-way propagation delay. Sharded runs use this as
    /// the synchronization window.
    pub fn lookahead(&self) -> SimDuration {
        self.link.propagation
    }

    /// Declares that machines `a` and `b` exchange traffic (both ways).
    /// Idempotent. Until the first declaration the fabric assumes a full
    /// mesh; once any link is declared, sends between undeclared pairs are
    /// rejected in debug builds, and sharded runs compute per-shard-pair
    /// lookahead from the declared set (see
    /// [`shard_topology`](Self::shard_topology)).
    ///
    /// # Panics
    ///
    /// Panics if `a == b` (loopback is not modelled) or either machine is
    /// unknown.
    pub fn declare_link(&mut self, a: MachineId, b: MachineId) {
        assert_ne!(a, b, "loopback is not modelled");
        assert!(
            (a.0 as usize) < self.nics.len() && (b.0 as usize) < self.nics.len(),
            "declare_link on unknown machine"
        );
        let pair = (a.min(b), a.max(b));
        if !self.links.contains(&pair) {
            self.links.push(pair);
        }
    }

    /// Whether any machine-pair links have been declared.
    pub fn has_declared_links(&self) -> bool {
        !self.links.is_empty()
    }

    /// Whether `a` and `b` may exchange traffic (always true until links
    /// are declared).
    fn pair_linked(&self, a: MachineId, b: MachineId) -> bool {
        self.links.is_empty() || self.links.contains(&(a.min(b), a.max(b)))
    }

    /// Per-shard-pair lookahead computed from the links actually crossing
    /// each shard boundary: entry `(i, j)` is the minimum propagation among
    /// declared links between a machine in shard `i` and one in shard `j`
    /// (`None` when no link crosses that boundary, so `i` can never send
    /// flights to `j`). Without declared links every distinct pair is
    /// assumed linked — the conservative full mesh.
    ///
    /// # Panics
    ///
    /// Panics if `shard_of` does not cover every machine.
    pub fn shard_topology(&self, shard_of: &[usize], shards: usize) -> reflex_sim::ShardTopology {
        assert_eq!(
            shard_of.len(),
            self.nics.len(),
            "shard map must cover all machines"
        );
        let mut pair: Vec<Vec<Option<SimDuration>>> = vec![vec![None; shards]; shards];
        if self.links.is_empty() {
            for (i, row) in pair.iter_mut().enumerate() {
                for (j, slot) in row.iter_mut().enumerate() {
                    if i != j {
                        *slot = Some(self.link.propagation);
                    }
                }
            }
        } else {
            for &(a, b) in &self.links {
                let (sa, sb) = (shard_of[a.0 as usize], shard_of[b.0 as usize]);
                if sa == sb {
                    continue;
                }
                // All links share the fabric's propagation today; the min
                // keeps this correct if per-link delays ever diverge.
                for (x, y) in [(sa, sb), (sb, sa)] {
                    pair[x][y] = Some(match pair[x][y] {
                        Some(cur) => cur.min(self.link.propagation),
                        None => self.link.propagation,
                    });
                }
            }
        }
        reflex_sim::ShardTopology::from_pair_matrix(pair)
    }

    /// Installs a telemetry handle. Wire-time spans are recorded per
    /// message (`Stage::Fabric` for [`send_to_queue`], `Stage::Egress` for
    /// [`send`]); recording is purely passive and perturbs no timing.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Installs a fault-injection hook consulted on every message sent.
    /// Replaces any previously installed hook.
    pub fn set_fault_hook(&mut self, hook: Box<dyn NetFaultHook>) {
        self.fault_hook = Some(hook);
    }

    /// Removes the fault hook, restoring lossless delivery.
    pub fn clear_fault_hook(&mut self) -> Option<Box<dyn NetFaultHook>> {
        self.fault_hook.take()
    }

    /// Messages lost / duplicated by the fault hook so far.
    pub fn fault_counts(&self) -> (u64, u64) {
        (self.dropped, self.duplicated)
    }

    /// The fabric's link configuration.
    pub fn link(&self) -> LinkConfig {
        self.link
    }

    /// Attaches a machine with the given stack; returns its id.
    pub fn add_machine(&mut self, stack: StackProfile) -> MachineId {
        let id = MachineId(self.nics.len() as u32);
        // Each NIC gets an independent RNG stream derived from its index so
        // machine creation order, not call order, determines jitter.
        let rng = SimRng::seed(self.nic_seed ^ (0x9e37_79b9 * (id.0 as u64 + 1)));
        self.nics.push(Nic {
            stack,
            tx_busy: SimTime::ZERO,
            rx_busy: SimTime::ZERO,
            rng,
            tx_bytes: 0,
            rx_bytes: 0,
            tx_seq: 0,
        });
        self.rx_queues.push(vec![BinaryHeap::new()]);
        if let Some(w) = self.windowed.as_mut() {
            w.pending.push(BinaryHeap::new());
        }
        id
    }

    /// Adds a receive queue to `machine`'s NIC (queue 0 exists already);
    /// returns its id. Dataplane threads poll disjoint queues.
    pub fn add_queue(&mut self, machine: MachineId) -> NicQueueId {
        let queues = &mut self.rx_queues[machine.0 as usize];
        queues.push(BinaryHeap::new());
        NicQueueId(queues.len() as u32 - 1)
    }

    /// Number of receive queues on `machine`'s NIC.
    pub fn queue_count(&self, machine: MachineId) -> u32 {
        self.rx_queues[machine.0 as usize].len() as u32
    }

    /// Allocates a fresh connection id.
    pub fn new_conn(&mut self) -> ConnId {
        let id = ConnId(self.next_conn);
        self.next_conn += 1;
        id
    }

    /// Number of attached machines.
    pub fn machines(&self) -> usize {
        self.nics.len()
    }

    /// Total (tx, rx) application bytes a machine has moved.
    pub fn traffic(&self, m: MachineId) -> (u64, u64) {
        let nic = &self.nics[m.0 as usize];
        (nic.tx_bytes, nic.rx_bytes)
    }

    /// Sends `size` application bytes from `from` to `to`; returns the
    /// instant the receiving application will see the message. The message
    /// is queued on the destination and must be drained with
    /// [`poll`](Self::poll).
    ///
    /// # Panics
    ///
    /// Panics if `from == to` or either machine id is unknown.
    pub fn send(
        &mut self,
        now: SimTime,
        from: MachineId,
        to: MachineId,
        conn: ConnId,
        size: u32,
        payload: P,
    ) -> SimTime
    where
        P: Clone,
    {
        // Responses (server → client) travel through `send`; their wire
        // time is the telemetry Egress stage.
        self.transfer(
            now,
            from,
            to,
            NicQueueId(0),
            conn,
            size,
            payload,
            Stage::Egress,
        )
    }

    /// Like [`send`](Self::send) but names the *sending* queue: when
    /// `from` runs per-queue lanes (see [`enable_lanes`](Self::enable_lanes))
    /// the transmit half uses `from_queue`'s lane — its own busy chain,
    /// jitter RNG, and (queue-namespaced) transmit counter — instead of the
    /// machine-wide NIC state. Falls back to [`send`](Self::send) exactly
    /// when lanes are not active on `from`.
    ///
    /// # Panics
    ///
    /// Panics if `from == to` or either machine id is unknown.
    #[allow(clippy::too_many_arguments)]
    pub fn send_from(
        &mut self,
        now: SimTime,
        from: MachineId,
        from_queue: NicQueueId,
        to: MachineId,
        conn: ConnId,
        size: u32,
        payload: P,
    ) -> SimTime
    where
        P: Clone,
    {
        if !self.has_lanes(from) {
            return self.send(now, from, to, conn, size, payload);
        }
        assert_ne!(from, to, "loopback is not modelled");
        debug_assert!(
            self.pair_linked(from, to),
            "send on undeclared link {from:?} -> {to:?}"
        );
        debug_assert!(
            self.fault_hook.is_none(),
            "lanes are incompatible with fault injection"
        );
        let overhead = self.nics[from.0 as usize].stack.transport.frame_overhead();
        let bytes = wire_bytes_with(size as usize, overhead);
        let ser = self.link.serialization(bytes);

        // Transmit half against the lane, not the machine NIC.
        let stack = &self.nics[from.0 as usize].stack;
        let lanes = self.lanes.as_mut().expect("checked has_lanes");
        let lane = &mut lanes.lanes[from_queue.0 as usize];
        let tx_stack = stack.sample_tx(&mut lane.rng);
        let depart_start = (now + tx_stack).max(lane.tx_busy);
        let departed = depart_start + ser;
        lane.tx_busy = departed;
        // Namespace the transmit counter by queue so flight keys from
        // different lanes of one machine can never collide.
        let tx_seq = ((from_queue.0 as u64 + 1) << 48) | lane.tx_seq;
        lane.tx_seq += 1;
        self.nics[from.0 as usize].tx_bytes += size as u64;

        let w = self
            .windowed
            .as_mut()
            .expect("lanes require windowed delivery");
        let flight = Flight {
            departed,
            src: from,
            tx_seq,
            to,
            queue: NicQueueId(0),
            conn,
            size,
            ser,
            sent_at: now,
            bound: departed + self.link.propagation,
            stage: Stage::Egress,
            fault: NetFaultAction::Deliver,
            payload,
        };
        let bound = flight.bound;
        match &w.routes {
            Some(r) => {
                let dest = r.dest_shard(to, NicQueueId(0));
                if dest != r.own {
                    w.outbound.push((dest, flight));
                } else {
                    w.pending[to.0 as usize].push(Reverse(flight));
                }
            }
            None => w.pending[to.0 as usize].push(Reverse(flight)),
        }
        bound
    }

    /// Replaces `machine`'s network stack profile. Used by fault injection
    /// to model latency storms (a degraded stack for a window of time);
    /// the NIC's jitter RNG stream is untouched.
    pub fn set_stack(&mut self, machine: MachineId, stack: StackProfile) {
        self.nics[machine.0 as usize].stack = stack;
    }

    /// The stack profile currently in force on `machine`.
    pub fn stack(&self, machine: MachineId) -> &StackProfile {
        &self.nics[machine.0 as usize].stack
    }

    /// Like [`send`](Self::send) but steers the message to a specific
    /// receive queue on the destination NIC (flow steering). All queues of
    /// a NIC share its bandwidth.
    ///
    /// # Panics
    ///
    /// Panics if `from == to`, either machine id is unknown, or the queue
    /// does not exist on the destination.
    #[allow(clippy::too_many_arguments)]
    pub fn send_to_queue(
        &mut self,
        now: SimTime,
        from: MachineId,
        to: MachineId,
        queue: NicQueueId,
        conn: ConnId,
        size: u32,
        payload: P,
    ) -> SimTime
    where
        P: Clone,
    {
        // Flow-steered requests (client → server) are the telemetry
        // Fabric stage.
        self.transfer(now, from, to, queue, conn, size, payload, Stage::Fabric)
    }

    #[allow(clippy::too_many_arguments)]
    fn transfer(
        &mut self,
        now: SimTime,
        from: MachineId,
        to: MachineId,
        queue: NicQueueId,
        conn: ConnId,
        size: u32,
        payload: P,
        stage: Stage,
    ) -> SimTime
    where
        P: Clone,
    {
        assert_ne!(from, to, "loopback is not modelled");
        debug_assert!(
            self.pair_linked(from, to),
            "send on undeclared link {from:?} -> {to:?}: declare_link it, \
             or the sharded lookahead accounting is unsound"
        );
        // The flow's transport is the sender's (both ends of a connection
        // speak the same protocol).
        let overhead = self.nics[from.0 as usize].stack.transport.frame_overhead();
        let bytes = wire_bytes_with(size as usize, overhead);
        let ser = self.link.serialization(bytes);

        // Sender: stack latency, then serialization on the uplink.
        let src = &mut self.nics[from.0 as usize];
        let tx_stack = src.stack.sample_tx(&mut src.rng);
        let depart_start = (now + tx_stack).max(src.tx_busy);
        let departed = depart_start + ser;
        src.tx_busy = departed;
        src.tx_bytes += size as u64;

        if let Some(w) = self.windowed.as_mut() {
            // Windowed mode: the receive half resolves later, in flight
            // order; return only the conservative bound. The fault hook is
            // still consulted at send time (same call order and arguments
            // as immediate mode); its verdict travels with the flight.
            let tx_seq = src.tx_seq;
            src.tx_seq += 1;
            let fault = match self.fault_hook.as_mut() {
                Some(hook) => hook.on_send(now, from, to, size),
                None => NetFaultAction::Deliver,
            };
            let flight = Flight {
                departed,
                src: from,
                tx_seq,
                to,
                queue,
                conn,
                size,
                ser,
                sent_at: now,
                bound: departed + self.link.propagation,
                stage,
                fault,
                payload,
            };
            let bound = flight.bound;
            match &w.routes {
                Some(r) if r.dest_shard(to, queue) != r.own => {
                    w.outbound.push((r.dest_shard(to, queue), flight));
                }
                _ => w.pending[to.0 as usize].push(Reverse(flight)),
            }
            return bound;
        }

        // Receiver: downlink capacity, then stack latency to the app.
        let dst = &mut self.nics[to.0 as usize];
        let wire_arrival = departed + self.link.propagation;
        let rx_done = wire_arrival.max(dst.rx_busy) + ser;
        dst.rx_busy = rx_done;
        let rx_stack = dst.stack.sample_rx(&mut dst.rng);
        let mut arrived_at = rx_done + rx_stack;
        dst.rx_bytes += size as u64;

        // Fault hook last: the timing above (NIC busy state, jitter RNG)
        // has already advanced exactly as in a healthy run, so disabling
        // the hook cannot perturb any other message.
        let fault = match self.fault_hook.as_mut() {
            Some(hook) => hook.on_send(now, from, to, size),
            None => NetFaultAction::Deliver,
        };
        let mut copies = 1u32;
        match fault {
            NetFaultAction::Deliver => {}
            NetFaultAction::Drop => {
                self.dropped += 1;
                self.telemetry.count("net.dropped", 1);
                // Callers treat the return value as "when to look"; for a
                // lost message nothing will be there, which is harmless.
                return arrived_at;
            }
            NetFaultAction::Duplicate => {
                self.duplicated += 1;
                self.telemetry.count("net.duplicated", 1);
                copies = 2;
            }
            NetFaultAction::Delay(extra) => arrived_at += extra,
        }
        self.telemetry.count("net.messages", 1);
        self.telemetry
            .span(TenantKey::GLOBAL, stage, arrived_at.saturating_since(now));

        for copy in 0..copies {
            let at = arrived_at + SimDuration::from_nanos(500 * copy as u64);
            let seq = self.seq;
            self.seq += 1;
            self.rx_queues[to.0 as usize][queue.0 as usize].push(Reverse(RxEntry {
                at,
                seq,
                delivery: Delivery {
                    from,
                    conn,
                    arrived_at: at,
                    size,
                    payload: payload.clone(),
                },
            }));
        }
        arrived_at
    }

    /// Raises the delivery horizon to `now` rounded *down* to the window
    /// grid, resolving the receive half of every flight that departed
    /// strictly before it (windowed mode only; a no-op otherwise).
    ///
    /// Callers invoke this at the start of every event that touches the
    /// fabric, passing the event's scheduled instant. Rounding down to the
    /// window grid is what keeps single-shard and sharded runs identical: a
    /// sharded receiver provably holds every flight departing before the
    /// current window boundary (they were exchanged at the boundary
    /// barrier), but may not yet know of flights departing after it — so
    /// the single-shard fabric must not resolve those either, even though
    /// it already holds them.
    pub fn observe(&mut self, now: SimTime)
    where
        P: Clone,
    {
        let Some(w) = self.windowed.as_mut() else {
            return;
        };
        let horizon = SimTime::from_nanos(now.as_nanos() / w.window_ns * w.window_ns);
        if horizon <= w.horizon {
            return;
        }
        w.horizon = horizon;
        for m in 0..self.nics.len() {
            loop {
                let w = self.windowed.as_mut().expect("windowed mode");
                match w.pending[m].peek() {
                    Some(Reverse(f)) if f.departed < horizon => {
                        let flight = w.pending[m].pop().expect("peeked entry must pop").0;
                        self.resolve(flight);
                    }
                    _ => break,
                }
            }
        }
    }

    /// Resolves the receive half of one flight: downlink contention,
    /// receiver stack latency, fault outcome, enqueue. Mirrors the receive
    /// half of an immediate-mode transfer exactly; the only difference is
    /// *when* it runs (horizon crossing vs send time) and in what order
    /// (flight order vs send order).
    fn resolve(&mut self, f: Flight<P>)
    where
        P: Clone,
    {
        // A lane machine receives against the destination queue's lane
        // (its own rx chain and RNG stream), so per-queue arrival timing
        // is independent of which shard resolves the other queues.
        let (rx_done, rx_stack) = if self.has_lanes(f.to) {
            let stack = &self.nics[f.to.0 as usize].stack;
            let lanes = self.lanes.as_mut().expect("checked has_lanes");
            let lane = &mut lanes.lanes[f.queue.0 as usize];
            let rx_done = f.bound.max(lane.rx_busy) + f.ser;
            lane.rx_busy = rx_done;
            let rx_stack = stack.sample_rx(&mut lane.rng);
            (rx_done, rx_stack)
        } else {
            let dst = &mut self.nics[f.to.0 as usize];
            let rx_done = f.bound.max(dst.rx_busy) + f.ser;
            dst.rx_busy = rx_done;
            let rx_stack = dst.stack.sample_rx(&mut dst.rng);
            (rx_done, rx_stack)
        };
        let mut arrived_at = rx_done + rx_stack;
        self.nics[f.to.0 as usize].rx_bytes += f.size as u64;

        let mut copies = 1u32;
        match f.fault {
            NetFaultAction::Deliver => {}
            NetFaultAction::Drop => {
                self.dropped += 1;
                self.telemetry.count("net.dropped", 1);
                // Receive-side state above still advanced (the frame
                // occupied the downlink before being lost), matching the
                // immediate-mode semantics.
                return;
            }
            NetFaultAction::Duplicate => {
                self.duplicated += 1;
                self.telemetry.count("net.duplicated", 1);
                copies = 2;
            }
            NetFaultAction::Delay(extra) => arrived_at += extra,
        }
        self.telemetry.count("net.messages", 1);
        self.telemetry.span(
            TenantKey::GLOBAL,
            f.stage,
            arrived_at.saturating_since(f.sent_at),
        );

        for copy in 0..copies {
            let at = arrived_at + SimDuration::from_nanos(500 * copy as u64);
            let seq = self.seq;
            self.seq += 1;
            self.rx_queues[f.to.0 as usize][f.queue.0 as usize].push(Reverse(RxEntry {
                at,
                seq,
                delivery: Delivery {
                    from: f.src,
                    conn: f.conn,
                    arrived_at: at,
                    size: f.size,
                    payload: f.payload.clone(),
                },
            }));
        }
    }

    /// Moves all flights addressed to other shards into `sink` as
    /// `(destination shard, flight)` pairs. Called at window boundaries by
    /// the sharded runner. Empty unless shard routes are installed.
    pub fn take_outbound(&mut self, sink: &mut Vec<(usize, Flight<P>)>) {
        if let Some(w) = self.windowed.as_mut() {
            sink.append(&mut w.outbound);
        }
    }

    /// Accepts a flight exchanged from another shard, queueing it for
    /// horizon resolution on this endpoint.
    ///
    /// # Panics
    ///
    /// Panics if windowed mode is not enabled.
    pub fn accept_flight(&mut self, flight: Flight<P>) {
        let w = self
            .windowed
            .as_mut()
            .expect("accept_flight requires windowed mode");
        w.pending[flight.to.0 as usize].push(Reverse(flight));
    }

    /// Clones this fabric into the endpoint for one shard of a sharded
    /// run: same machines, NIC state, and RNG streams, but sends to
    /// machines owned by other shards are diverted to the outbound buffer
    /// for exchange instead of the local pending heap.
    ///
    /// Each shard must only drive the machines assigned to it; the clone
    /// carries the full NIC table (ids stay global) but only the local
    /// machines' state ever advances.
    ///
    /// # Panics
    ///
    /// Panics if windowed mode is not enabled, a fault hook is installed
    /// (per-message hooks observe global send order, which sharding does
    /// not preserve), or `shard_of` does not cover every machine.
    pub fn split_for_shard(&self, shard_of: &[usize], own: usize) -> Fabric<P>
    where
        P: Clone,
    {
        self.split_for_shard_with_queues(shard_of, own, None)
    }

    /// [`split_for_shard`](Self::split_for_shard) with queue-granular
    /// routing for a lane machine (split-dataplane mode):
    /// `queue_shards = Some((machine, map))` routes flights addressed to
    /// `machine` to the shard owning their destination queue's thread
    /// instead of a single machine-owning shard.
    ///
    /// # Panics
    ///
    /// Same as [`split_for_shard`](Self::split_for_shard), plus if the
    /// queue map does not cover every queue of the lane machine.
    pub fn split_for_shard_with_queues(
        &self,
        shard_of: &[usize],
        own: usize,
        queue_shards: Option<(MachineId, Vec<usize>)>,
    ) -> Fabric<P>
    where
        P: Clone,
    {
        assert!(self.windowed.is_some(), "sharding requires windowed mode");
        assert!(
            self.fault_hook.is_none(),
            "fault injection is incompatible with sharded execution"
        );
        assert_eq!(
            shard_of.len(),
            self.nics.len(),
            "shard map must cover all machines"
        );
        if let Some((m, qs)) = &queue_shards {
            assert!(
                self.has_lanes(*m),
                "queue-granular routing requires lanes on the split machine"
            );
            assert_eq!(
                qs.len(),
                self.rx_queues[m.0 as usize].len(),
                "queue shard map must cover every queue"
            );
        }
        let mut windowed = self.windowed.clone();
        if let Some(w) = windowed.as_mut() {
            w.routes = Some(ShardRoutes {
                own,
                shard_of: shard_of.to_vec(),
                queue_shards,
            });
        }
        Fabric {
            link: self.link,
            nic_seed: self.nic_seed,
            nics: self.nics.clone(),
            rx_queues: self.rx_queues.clone(),
            seq: self.seq,
            next_conn: self.next_conn,
            fault_hook: None,
            dropped: self.dropped,
            duplicated: self.duplicated,
            telemetry: self.telemetry.clone(),
            links: self.links.clone(),
            windowed,
            lanes: self.lanes.clone(),
        }
    }

    /// Re-enqueues a polled delivery onto another queue of the same
    /// machine (connection rebalancing across dataplane threads forwards
    /// in-flight messages instead of dropping them). The message becomes
    /// visible shortly after `now`.
    pub fn requeue(
        &mut self,
        now: SimTime,
        machine: MachineId,
        queue: NicQueueId,
        mut delivery: Delivery<P>,
    ) {
        let at = now + SimDuration::from_nanos(500);
        delivery.arrived_at = at;
        let seq = self.seq;
        self.seq += 1;
        self.rx_queues[machine.0 as usize][queue.0 as usize].push(Reverse(RxEntry {
            at,
            seq,
            delivery,
        }));
    }

    /// Pops up to `max` messages that have arrived at `machine`'s queue 0
    /// by `now`.
    pub fn poll(&mut self, now: SimTime, machine: MachineId, max: usize) -> Vec<Delivery<P>> {
        self.poll_queue(now, machine, NicQueueId(0), max)
    }

    /// [`Fabric::poll`] into a caller-owned buffer (queue 0): `out` is
    /// cleared and refilled, letting pollers reuse one scratch `Vec`.
    pub fn poll_into(
        &mut self,
        now: SimTime,
        machine: MachineId,
        max: usize,
        out: &mut Vec<Delivery<P>>,
    ) {
        self.poll_queue_into(now, machine, NicQueueId(0), max, out);
    }

    /// Pops up to `max` arrived messages from a specific receive queue.
    pub fn poll_queue(
        &mut self,
        now: SimTime,
        machine: MachineId,
        queue: NicQueueId,
        max: usize,
    ) -> Vec<Delivery<P>> {
        let mut out = Vec::new();
        self.poll_queue_into(now, machine, queue, max, &mut out);
        out
    }

    /// [`Fabric::poll_queue`] into a caller-owned buffer: `out` is cleared
    /// and refilled, so a poll loop reusing one scratch `Vec` drains the
    /// queue without allocating once the buffer has reached the batch size.
    pub fn poll_queue_into(
        &mut self,
        now: SimTime,
        machine: MachineId,
        queue: NicQueueId,
        max: usize,
        out: &mut Vec<Delivery<P>>,
    ) {
        out.clear();
        let q = &mut self.rx_queues[machine.0 as usize][queue.0 as usize];
        while out.len() < max {
            match q.peek() {
                Some(Reverse(e)) if e.at <= now => {
                    out.push(q.pop().expect("peeked entry must pop").0.delivery);
                }
                _ => break,
            }
        }
    }

    /// Instant of the earliest undelivered message on `machine`'s queue 0.
    ///
    /// In windowed mode this is a conservative *lower bound*: unresolved
    /// flights contribute their arrival bound at machine granularity (a
    /// flight steered to another queue of the same NIC can briefly make a
    /// queue look earlier than its true next arrival), so a wake armed from
    /// it may find nothing and must re-arm — at most one spurious poll per
    /// message.
    pub fn next_arrival(&self, machine: MachineId) -> Option<SimTime> {
        self.next_arrival_queue(machine, NicQueueId(0))
    }

    /// Instant (or, in windowed mode, lower bound — see
    /// [`next_arrival`](Self::next_arrival)) of the earliest undelivered
    /// message on a specific queue.
    pub fn next_arrival_queue(&self, machine: MachineId, queue: NicQueueId) -> Option<SimTime> {
        let resolved = self.rx_queues[machine.0 as usize][queue.0 as usize]
            .peek()
            .map(|Reverse(e)| e.at);
        // Per-queue, not machine-level: a sharded server only learns about
        // a remote shard's in-flight messages at the window exchange, at
        // which point the destination thread's wake is armed per flight.
        // Reporting another queue's pending flight here would let the
        // single-shard run arm sibling wakes a sharded run cannot know
        // about yet, breaking shards=1 ≡ shards=N.
        [resolved, self.pending_bound_queue(machine, queue)]
            .into_iter()
            .flatten()
            .min()
    }

    /// Earliest undelivered message (or arrival bound) across all machines
    /// and queues, if any.
    pub fn next_arrival_any(&self) -> Option<SimTime> {
        let resolved = self
            .rx_queues
            .iter()
            .flatten()
            .filter_map(|q| q.peek().map(|Reverse(e)| e.at));
        let pending = self
            .windowed
            .iter()
            .flat_map(|w| w.pending.iter())
            .filter_map(|h| h.peek().map(|Reverse(f)| f.bound));
        resolved.chain(pending).min()
    }

    /// Earliest arrival bound among unresolved flights to one queue of
    /// `machine`. In-flight counts are bounded by per-connection queue
    /// depths, so the linear scan stays small.
    fn pending_bound_queue(&self, machine: MachineId, queue: NicQueueId) -> Option<SimTime> {
        self.windowed.as_ref().and_then(|w| {
            w.pending[machine.0 as usize]
                .iter()
                .filter(|Reverse(f)| f.queue == queue)
                .map(|Reverse(f)| f.bound)
                .min()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fabric() -> (Fabric<u32>, MachineId, MachineId) {
        let mut f = Fabric::new(LinkConfig::default(), SimRng::seed(9));
        let a = f.add_machine(StackProfile::ix_tcp());
        let b = f.add_machine(StackProfile::dataplane_raw());
        (f, a, b)
    }

    #[test]
    fn unloaded_latency_is_stack_plus_wire() {
        let (mut f, a, b) = fabric();
        let conn = f.new_conn();
        let mut total = 0.0;
        let n = 500;
        for i in 0..n {
            let t = SimTime::from_millis(i);
            let arrival = f.send(t, a, b, conn, 0, 0);
            total += (arrival - t).as_micros_f64();
        }
        let avg = total / n as f64;
        // ix tx ~2 + ser 82B*2 ~0.13 + prop 1 + raw rx ~0.3 = ~3.5us.
        assert!((2.5..5.0).contains(&avg), "unloaded one-way {avg}us");
    }

    #[test]
    fn four_kb_response_takes_longer() {
        let (mut f, a, b) = fabric();
        let conn = f.new_conn();
        let t = SimTime::ZERO;
        let small = f.send(t, a, b, conn, 0, 0) - t;
        let t2 = SimTime::from_millis(1);
        let large = f.send(t2, a, b, conn, 4096, 1) - t2;
        // 4KB ≈ 4.3KB wire ≈ 3.4us serialization x2 (uplink+downlink).
        let delta = large.as_micros_f64() - small.as_micros_f64();
        assert!((4.0..10.0).contains(&delta), "4KB penalty {delta}us");
    }

    #[test]
    fn downlink_saturates_at_10gbe() {
        // Two senders blast one receiver with 4KB messages; the receiver's
        // goodput must cap near 10Gb/s = ~291K 4KB msgs/s (with framing).
        let mut f: Fabric<u32> = Fabric::new(LinkConfig::default(), SimRng::seed(1));
        let s1 = f.add_machine(StackProfile::ix_tcp());
        let s2 = f.add_machine(StackProfile::ix_tcp());
        let dst = f.add_machine(StackProfile::dataplane_raw());
        let conn = f.new_conn();
        // Offer 600K msg/s total for 10ms.
        let mut last_arrival = SimTime::ZERO;
        for i in 0..6_000u64 {
            let t = SimTime::from_nanos(i * 1_667);
            let from = if i % 2 == 0 { s1 } else { s2 };
            let a = f.send(t, from, dst, conn, 4096, i as u32);
            last_arrival = last_arrival.max(a);
        }
        let got = f.poll(last_arrival, dst, usize::MAX);
        assert_eq!(got.len(), 6_000);
        let span = last_arrival.as_secs_f64();
        let rate = 6_000.0 / span;
        assert!(
            (250_000.0..300_000.0).contains(&rate),
            "saturated receive rate {rate} msgs/s"
        );
    }

    #[test]
    fn deliveries_are_time_ordered_and_pollable() {
        let (mut f, a, b) = fabric();
        let conn = f.new_conn();
        for i in 0..100u32 {
            f.send(SimTime::from_nanos(u64::from(i) * 10), a, b, conn, 1024, i);
        }
        assert!(f.poll(SimTime::ZERO, b, usize::MAX).is_empty());
        let all = f.poll(SimTime::from_secs(1), b, usize::MAX);
        assert_eq!(all.len(), 100);
        for w in all.windows(2) {
            assert!(w[0].arrived_at <= w[1].arrived_at);
        }
        assert!(f.next_arrival(b).is_none());
    }

    #[test]
    fn lane_split_matches_unsplit_fabric() {
        // A two-queue lane machine split queue-granularly across two
        // shards must deliver identically to the unsplit lane fabric.
        let build = || {
            let mut f: Fabric<u32> = Fabric::new(LinkConfig::default(), SimRng::seed(11));
            let client = f.add_machine(StackProfile::linux_tcp());
            let server = f.add_machine(StackProfile::dataplane_raw());
            let q1 = f.add_queue(server);
            assert_eq!(q1, NicQueueId(1));
            f.enable_windowed();
            f.enable_lanes(server);
            (f, client, server)
        };
        let (mut whole, client, server) = build();
        let (base, _, _) = build();
        // Client + queue 0's thread on shard 0, queue 1's thread on shard 1.
        let shard_of = vec![0usize, 0];
        let queue_shards = Some((server, vec![0usize, 1]));
        let mut s0 = base.split_for_shard_with_queues(&shard_of, 0, queue_shards.clone());
        let mut s1 = base.split_for_shard_with_queues(&shard_of, 1, queue_shards);
        let conn = whole.new_conn();

        for i in 0..50u64 {
            let t = SimTime::from_nanos(i * 137);
            let q = NicQueueId((i % 2) as u32);
            whole.send_to_queue(t, client, server, q, conn, 1024, i as u32);
            // The client machine lives on shard 0; its NIC state advances
            // there and queue-1 flights travel to shard 1.
            s0.send_to_queue(t, client, server, q, conn, 1024, i as u32);
            // Server responses from each queue's lane.
            whole.send_from(t, server, q, client, conn, 64, 1_000 + i as u32);
            if q == NicQueueId(0) {
                s0.send_from(t, server, q, client, conn, 64, 1_000 + i as u32);
            } else {
                s1.send_from(t, server, q, client, conn, 64, 1_000 + i as u32);
            }
        }
        // Exchange outbound flights, then raise every horizon.
        let mut sink = Vec::new();
        s0.take_outbound(&mut sink);
        s1.take_outbound(&mut sink);
        for (shard, flight) in sink {
            match shard {
                0 => s0.accept_flight(flight),
                _ => s1.accept_flight(flight),
            }
        }
        let late = SimTime::from_millis(1);
        whole.observe(late);
        s0.observe(late);
        s1.observe(late);

        let w0 = whole.poll_queue(late, server, NicQueueId(0), usize::MAX);
        let w1 = whole.poll_queue(late, server, NicQueueId(1), usize::MAX);
        let p0 = s0.poll_queue(late, server, NicQueueId(0), usize::MAX);
        let p1 = s1.poll_queue(late, server, NicQueueId(1), usize::MAX);
        assert_eq!(w0.len(), 25);
        assert_eq!(w1.len(), 25);
        assert_eq!(w0, p0, "queue 0 deliveries diverged");
        assert_eq!(w1, p1, "queue 1 deliveries diverged");
        // Client-bound responses from both lanes land on shard 0.
        let wc = whole.poll(late, client, usize::MAX);
        let pc = s0.poll(late, client, usize::MAX);
        assert_eq!(wc, pc, "client deliveries diverged");
        assert_eq!(wc.len(), 50);
    }

    #[test]
    fn next_arrival_reports_earliest() {
        let (mut f, a, b) = fabric();
        let conn = f.new_conn();
        let t1 = f.send(SimTime::ZERO, a, b, conn, 0, 1);
        let _t2 = f.send(SimTime::from_micros(50), a, b, conn, 0, 2);
        assert_eq!(f.next_arrival(b), Some(t1));
        assert_eq!(f.next_arrival_any(), Some(t1));
    }

    #[test]
    fn traffic_accounting() {
        let (mut f, a, b) = fabric();
        let conn = f.new_conn();
        f.send(SimTime::ZERO, a, b, conn, 4096, 0);
        assert_eq!(f.traffic(a).0, 4096);
        assert_eq!(f.traffic(b).1, 4096);
    }

    #[test]
    #[should_panic(expected = "loopback")]
    fn loopback_panics() {
        let (mut f, a, _b) = fabric();
        let conn = f.new_conn();
        f.send(SimTime::ZERO, a, a, conn, 0, 0);
    }

    struct ScriptedNetHook {
        actions: Vec<NetFaultAction>,
    }

    impl NetFaultHook for ScriptedNetHook {
        fn on_send(
            &mut self,
            _now: SimTime,
            _from: MachineId,
            _to: MachineId,
            _size: u32,
        ) -> NetFaultAction {
            if self.actions.is_empty() {
                NetFaultAction::Deliver
            } else {
                self.actions.remove(0)
            }
        }
    }

    #[test]
    fn fault_hook_drops_duplicates_and_delays() {
        let (mut f, a, b) = fabric();
        f.set_fault_hook(Box::new(ScriptedNetHook {
            actions: vec![
                NetFaultAction::Drop,
                NetFaultAction::Duplicate,
                NetFaultAction::Delay(SimDuration::from_millis(5)),
                NetFaultAction::Deliver,
            ],
        }));
        let conn = f.new_conn();
        f.send(SimTime::ZERO, a, b, conn, 64, 0); // dropped
        f.send(SimTime::from_micros(100), a, b, conn, 64, 1); // duplicated
        let delayed_at = f.send(SimTime::from_micros(200), a, b, conn, 64, 2);
        f.send(SimTime::from_micros(300), a, b, conn, 64, 3);
        let all = f.poll(SimTime::from_secs(1), b, usize::MAX);
        let payloads: Vec<u32> = all.iter().map(|d| d.payload).collect();
        // 0 lost; 1 twice; 3 arrives before the delayed 2.
        assert_eq!(payloads, vec![1, 1, 3, 2]);
        assert!(delayed_at.as_micros_f64() > 5_000.0);
        assert_eq!(f.fault_counts(), (1, 1));
    }

    #[test]
    fn passthrough_hook_does_not_change_timing() {
        let (mut f0, a0, b0) = fabric();
        let (mut f1, a1, b1) = fabric();
        f1.set_fault_hook(Box::new(ScriptedNetHook { actions: vec![] }));
        let c0 = f0.new_conn();
        let c1 = f1.new_conn();
        for i in 0..100u64 {
            let t = SimTime::from_micros(i * 7);
            let x = f0.send(t, a0, b0, c0, 1024, i as u32);
            let y = f1.send(t, a1, b1, c1, 1024, i as u32);
            assert_eq!(x, y, "diverged at msg {i}");
        }
    }

    #[test]
    fn degraded_stack_swap_slows_delivery() {
        let (mut f, a, b) = fabric();
        let conn = f.new_conn();
        let healthy = f.send(SimTime::ZERO, a, b, conn, 0, 0) - SimTime::ZERO;
        let degraded = f.stack(a).degraded(10.0);
        f.set_stack(a, degraded);
        let t = SimTime::from_millis(1);
        let stormy = f.send(t, a, b, conn, 0, 1) - t;
        assert!(
            stormy.as_micros_f64() > healthy.as_micros_f64() * 3.0,
            "storm {stormy:?} vs healthy {healthy:?}"
        );
    }

    fn windowed_fabric() -> (Fabric<u32>, MachineId, MachineId) {
        let (mut f, a, b) = fabric();
        f.enable_windowed();
        (f, a, b)
    }

    #[test]
    fn windowed_send_returns_conservative_bound() {
        let (mut f, a, b) = windowed_fabric();
        let (mut g, a2, b2) = fabric();
        let conn = f.new_conn();
        let conn2 = g.new_conn();
        for i in 0..200u64 {
            let t = SimTime::from_micros(i * 40);
            let bound = f.send(t, a, b, conn, 1024, i as u32);
            let exact = g.send(t, a2, b2, conn2, 1024, i as u32);
            // Same NIC streams on both fabrics, so the exact arrival is
            // comparable: the bound must never be later than it.
            assert!(bound <= exact, "msg {i}: bound {bound} > exact {exact}");
        }
    }

    #[test]
    fn windowed_resolution_waits_for_horizon() {
        let (mut f, a, b) = windowed_fabric();
        let conn = f.new_conn();
        let bound = f.send(SimTime::ZERO, a, b, conn, 64, 7);
        // Before any observe the message is pending, but the arrival bound
        // is already visible to wake scheduling.
        assert!(f.poll(SimTime::from_secs(1), b, usize::MAX).is_empty());
        assert_eq!(f.next_arrival(b), Some(bound));
        // The horizon rounds down to the window grid, so observing just
        // past the bound resolves the flight (propagation >= one window).
        f.observe(bound + SimDuration::from_nanos(1));
        let got = f.poll(SimTime::from_secs(1), b, usize::MAX);
        assert_eq!(got.len(), 1);
        assert!(got[0].arrived_at >= bound);
    }

    #[test]
    fn windowed_resolution_order_is_flight_order() {
        // Two senders, one receiver. Messages resolve in departure order
        // regardless of send-call order, so issuing the sends in opposite
        // orders on two fabrics yields identical deliveries.
        let mk = || {
            let mut f: Fabric<u32> = Fabric::new(LinkConfig::default(), SimRng::seed(5));
            let s1 = f.add_machine(StackProfile::ix_tcp());
            let s2 = f.add_machine(StackProfile::ix_tcp());
            let dst = f.add_machine(StackProfile::dataplane_raw());
            f.enable_windowed();
            (f, s1, s2, dst)
        };
        let (mut f, s1, s2, dst) = mk();
        let (mut g, g1, g2, gdst) = mk();
        let conn = f.new_conn();
        let gconn = g.new_conn();
        for i in 0..100u64 {
            let t1 = SimTime::from_micros(i * 20);
            let t2 = SimTime::from_micros(i * 20) + SimDuration::from_nanos(200);
            // f: s1 then s2; g: s2 then s1 (per-sender streams make the
            // same calls, only the interleaving differs).
            f.send(t1, s1, dst, conn, 1024, i as u32);
            f.send(t2, s2, dst, conn, 512, 1000 + i as u32);
            g.send(t2, g2, gdst, gconn, 512, 1000 + i as u32);
            g.send(t1, g1, gdst, gconn, 1024, i as u32);
        }
        let end = SimTime::from_secs(1);
        f.observe(end);
        g.observe(end);
        let fd = f.poll(end, dst, usize::MAX);
        let gd = g.poll(end, gdst, usize::MAX);
        assert_eq!(fd.len(), 200);
        let fv: Vec<(u32, SimTime)> = fd.iter().map(|d| (d.payload, d.arrived_at)).collect();
        let gv: Vec<(u32, SimTime)> = gd.iter().map(|d| (d.payload, d.arrived_at)).collect();
        assert_eq!(fv, gv);
    }

    #[test]
    fn split_exchange_matches_unsplit_windowed() {
        // A 3-machine world split into two shards must produce exactly the
        // deliveries of the unsplit windowed fabric once flights are
        // exchanged.
        let mk = || {
            let mut f: Fabric<u32> = Fabric::new(LinkConfig::default(), SimRng::seed(11));
            let a = f.add_machine(StackProfile::ix_tcp());
            let b = f.add_machine(StackProfile::ix_tcp());
            let srv = f.add_machine(StackProfile::dataplane_raw());
            f.enable_windowed();
            (f, a, b, srv)
        };
        let (mut mono, a, b, srv) = mk();
        let (whole, _, _, _) = mk();
        // Shard 0 owns the server, shard 1 owns both clients.
        let shard_of = vec![1, 1, 0];
        let mut f0 = whole.split_for_shard(&shard_of, 0);
        let mut f1 = whole.split_for_shard(&shard_of, 1);
        let conn = mono.new_conn();
        for i in 0..50u64 {
            let t = SimTime::from_micros(i * 30);
            let from = if i % 2 == 0 { a } else { b };
            mono.send(t, from, srv, conn, 2048, i as u32);
            f1.send(t, from, srv, conn, 2048, i as u32);
        }
        // Window-boundary exchange: client shard -> server shard.
        let mut sink = Vec::new();
        f1.take_outbound(&mut sink);
        assert_eq!(sink.len(), 50);
        for (dst_shard, flight) in sink {
            assert_eq!(dst_shard, 0);
            f0.accept_flight(flight);
        }
        let end = SimTime::from_secs(1);
        mono.observe(end);
        f0.observe(end);
        let want = mono.poll(end, srv, usize::MAX);
        let got = f0.poll(end, srv, usize::MAX);
        assert_eq!(want.len(), 50);
        let wv: Vec<(u32, SimTime)> = want.iter().map(|d| (d.payload, d.arrived_at)).collect();
        let gv: Vec<(u32, SimTime)> = got.iter().map(|d| (d.payload, d.arrived_at)).collect();
        assert_eq!(wv, gv);
    }

    #[test]
    fn windowed_fault_actions_apply_at_resolution() {
        let (mut f, a, b) = windowed_fabric();
        f.set_fault_hook(Box::new(ScriptedNetHook {
            actions: vec![
                NetFaultAction::Drop,
                NetFaultAction::Duplicate,
                NetFaultAction::Deliver,
            ],
        }));
        let conn = f.new_conn();
        f.send(SimTime::ZERO, a, b, conn, 64, 0);
        f.send(SimTime::from_micros(100), a, b, conn, 64, 1);
        f.send(SimTime::from_micros(200), a, b, conn, 64, 2);
        assert_eq!(f.fault_counts(), (0, 0), "faults apply at resolution");
        f.observe(SimTime::from_secs(1));
        let payloads: Vec<u32> = f
            .poll(SimTime::from_secs(1), b, usize::MAX)
            .iter()
            .map(|d| d.payload)
            .collect();
        assert_eq!(payloads, vec![1, 1, 2]);
        assert_eq!(f.fault_counts(), (1, 1));
    }

    #[test]
    fn shard_topology_reflects_declared_links() {
        // 5 machines: clients 0-3, server 4; hub links only.
        let mut f: Fabric<u32> = Fabric::new(LinkConfig::default(), SimRng::seed(13));
        for _ in 0..5 {
            f.add_machine(StackProfile::ix_tcp());
        }
        let srv = MachineId(4);
        for c in 0..4 {
            f.declare_link(MachineId(c), srv);
            f.declare_link(MachineId(c), srv); // idempotent
        }
        // Shard 0 owns the server; clients split over shards 1 and 2.
        let shard_of = vec![1, 2, 1, 2, 0];
        let topo = f.shard_topology(&shard_of, 3);
        let prop = f.link().propagation;
        // Hub pairs are linked both ways; client shards are mutually
        // unlinked, so neither can ever constrain the other.
        for s in [1, 2] {
            assert_eq!(topo.pair_lookahead(0, s), Some(prop));
            assert_eq!(topo.pair_lookahead(s, 0), Some(prop));
        }
        assert_eq!(topo.pair_lookahead(1, 2), None);
        assert_eq!(topo.pair_lookahead(2, 1), None);
        assert_eq!(topo.pair_lookahead(0, 0), None);
    }

    #[test]
    fn shard_topology_without_links_is_full_mesh() {
        let mut f: Fabric<u32> = Fabric::new(LinkConfig::default(), SimRng::seed(13));
        for _ in 0..3 {
            f.add_machine(StackProfile::ix_tcp());
        }
        let topo = f.shard_topology(&[0, 1, 1], 2);
        assert_eq!(topo.pair_lookahead(0, 1), Some(f.link().propagation));
        assert_eq!(topo.pair_lookahead(1, 0), Some(f.link().propagation));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "undeclared link")]
    fn send_on_undeclared_pair_panics_in_debug() {
        let mut f: Fabric<u32> = Fabric::new(LinkConfig::default(), SimRng::seed(13));
        let a = f.add_machine(StackProfile::ix_tcp());
        let b = f.add_machine(StackProfile::ix_tcp());
        let c = f.add_machine(StackProfile::dataplane_raw());
        f.declare_link(a, c);
        let conn = f.new_conn();
        f.send(SimTime::ZERO, a, b, conn, 64, 0);
    }

    #[test]
    #[should_panic(expected = "incompatible")]
    fn split_rejects_fault_hook() {
        let (mut f, _a, _b) = windowed_fabric();
        f.set_fault_hook(Box::new(ScriptedNetHook { actions: vec![] }));
        let _ = f.split_for_shard(&[0, 1], 0);
    }

    /// Drains one machine's pending heap, returning flights in resolution
    /// order (test helper; production resolution consumes the same heap).
    fn drain_pending(f: &mut Fabric<u32>, m: MachineId) -> Vec<(SimTime, MachineId, u64)> {
        let w = f.windowed.as_mut().expect("windowed");
        let mut out = Vec::new();
        while let Some(Reverse(fl)) = w.pending[m.0 as usize].pop() {
            out.push((fl.departed, fl.src, fl.tx_seq));
        }
        out
    }

    proptest::proptest! {
        /// Satellite: arbitrary interleavings of cross-shard sends always
        /// drain in (timestamp, source machine, per-source sequence) order
        /// — the deterministic merge order of the window exchange.
        #[test]
        fn mailbox_drains_in_flight_order(
            raw in proptest::prop::collection::vec((0u64..1_000_000, 0u32..4, 0u64..64), 1..80),
            shuffle in proptest::prop::collection::vec(proptest::strategy::any::<u64>(), 80..81),
        ) {
            let mut f: Fabric<u32> = Fabric::new(LinkConfig::default(), SimRng::seed(3));
            for _ in 0..5 {
                f.add_machine(StackProfile::ix_tcp());
            }
            f.enable_windowed();
            let dst = MachineId(4);
            // Build flights from arbitrary (time, shard/source, seq)
            // triples, then accept them in an arbitrary interleaving.
            let mut flights: Vec<Flight<u32>> = raw
                .iter()
                .enumerate()
                .map(|(i, &(t, src, seq))| Flight {
                    departed: SimTime::from_nanos(t),
                    src: MachineId(src),
                    tx_seq: seq,
                    to: dst,
                    queue: NicQueueId(0),
                    conn: ConnId(0),
                    size: 64,
                    ser: SimDuration::from_nanos(50),
                    sent_at: SimTime::from_nanos(t),
                    bound: SimTime::from_nanos(t + 1_000),
                    stage: Stage::Fabric,
                    fault: NetFaultAction::Deliver,
                    payload: i as u32,
                })
                .collect();
            // Permute by repeatedly swapping with arbitrary indices.
            for (i, &r) in shuffle.iter().enumerate().take(flights.len()) {
                let j = (r % flights.len() as u64) as usize;
                flights.swap(i, j);
            }
            for fl in flights {
                f.accept_flight(fl);
            }
            let drained = drain_pending(&mut f, dst);
            let mut sorted = drained.clone();
            sorted.sort();
            proptest::prop_assert_eq!(drained, sorted);
        }
    }

    #[test]
    fn linux_stack_adds_latency_over_ix() {
        let mut f: Fabric<u32> = Fabric::new(LinkConfig::default(), SimRng::seed(2));
        let linux = f.add_machine(StackProfile::linux_tcp());
        let ix = f.add_machine(StackProfile::ix_tcp());
        let dst = f.add_machine(StackProfile::dataplane_raw());
        let conn = f.new_conn();
        let mut linux_total = 0.0;
        let mut ix_total = 0.0;
        for i in 0..500 {
            let t = SimTime::from_millis(i);
            linux_total += (f.send(t, linux, dst, conn, 1024, 0) - t).as_micros_f64();
            let t = SimTime::from_millis(i) + SimDuration::from_micros(300);
            ix_total += (f.send(t, ix, dst, conn, 1024, 0) - t).as_micros_f64();
        }
        assert!(
            linux_total / 500.0 > ix_total / 500.0 + 4.0,
            "linux {:.1} vs ix {:.1}",
            linux_total / 500.0,
            ix_total / 500.0
        );
    }
}
