//! Replication figure: what client-driven replication costs when
//! healthy and what it buys when a server dies.
//!
//! Three panels in one TSV (see the `#`-prefixed column headers the
//! binary prints):
//!
//! - **overlay** — Figure-4-style throughput/latency curves for
//!   single-copy (R=1) vs replicated (R=2, R=3) under primary and
//!   quorum read policies. Quorum reads anchor on the primary, so the
//!   replication cost shows up as read latency, not lost throughput.
//! - **recovery** — time for throughput to return to its pre-death
//!   baseline after a replica's server dies, per replication factor,
//!   next to the modelled re-sync and failover estimates. Uses the
//!   shared [`crate::recovery`] metric, so the numbers are directly
//!   comparable with the chaos sweep's `recovery_ms` column.
//! - **violations** — rolling SLO-window violations and coordinator
//!   counters (failovers, promotions, server deaths) during the same
//!   failover runs.
//!
//! Healthy overlay points honour `REFLEX_SIM_SHARDS`; failover points
//! always run single-shard (fault campaigns pin to one shard). Output
//! is byte-identical at any shard count — the CI determinism gate diffs
//! shards 1 vs 4.
//!
//! Run: `cargo run --release -p reflex-bench --bin fig_replication [-- --smoke]`

use reflex_core::ReadPolicy;
use reflex_faults::{FaultKind, FaultPlan};
use reflex_qos::{SloSpec, TenantId};
use reflex_replication::{ReplTestbed, ReplWorkloadSpec};
use reflex_sim::{SimDuration, SimTime};
use reflex_telemetry::TenantKey;

use crate::recovery;
use crate::sweep::{PointOutcome, Sweep, SweepResult};

/// Master seed for the failover fault plans.
const PLAN_SEED: u64 = 0x5EF1EC;

/// Testbed RNG seed for every point.
const SEED: u64 = 97;

/// Read percentage for every workload: the paper's mixed-tenant shape.
const READ_PCT: u8 = 70;

/// Offered load for the failover runs: high enough that a dead replica
/// visibly dents throughput, low enough that every configuration admits.
const DEATH_IOPS: f64 = 40_000.0;

fn warmup(smoke: bool) -> SimDuration {
    SimDuration::from_millis(if smoke { 30 } else { 100 })
}

fn measure(smoke: bool) -> SimDuration {
    SimDuration::from_millis(if smoke { 100 } else { 300 })
}

/// Failover runs need the window to cover death (40ms), detection
/// (30ms), re-sync and the post-recovery tail.
fn measure_death(smoke: bool) -> SimDuration {
    SimDuration::from_millis(if smoke { 150 } else { 250 })
}

/// SLO reservation for an offered load: 30% headroom. Reserving exactly
/// the offered rate leaves the promoted quorum anchor zero token margin
/// after a failover, so the blackout backlog never drains and reads
/// collapse into deadline timeouts (see DESIGN.md §11).
fn slo_for(offered: f64) -> SloSpec {
    let reserved = (offered * 1.3) as u64;
    SloSpec::new(reserved, READ_PCT, SimDuration::from_micros(800))
}

/// `-1` (no measurement) prints as `-`.
fn fmt_ms(v: f64) -> String {
    if v < 0.0 {
        "-".to_string()
    } else {
        format!("{v:.1}")
    }
}

/// One healthy overlay point: replication factor × read policy at one
/// offered load, on 3 sites.
fn overlay_point(
    label: &'static str,
    r: usize,
    policy: ReadPolicy,
    offered: f64,
    smoke: bool,
    shards: usize,
) -> PointOutcome {
    let mut tb = ReplTestbed::builder()
        .sites(3)
        .replication(r)
        .seed(SEED)
        .build();
    if shards > 1 {
        tb = tb.with_shards(shards);
    }
    if crate::telemetry::enabled() {
        tb.enable_telemetry();
    }
    tb.add_workload(
        ReplWorkloadSpec::open_loop("app", TenantId(1), slo_for(offered), offered)
            .with_read_policy(policy),
    )
    .unwrap_or_else(|e| panic!("overlay workload rejected ({label} @ {offered}): {e}"));
    tb.run(warmup(smoke));
    tb.begin_measurement();
    tb.run(measure(smoke));
    let report = tb.report();
    let wl = report.workload("app");
    if crate::telemetry::enabled() {
        if let Some(t) = &report.telemetry {
            crate::telemetry::merge(t);
        }
    }
    PointOutcome::new(wl.p95_read_us())
        .with_row(format!(
            "overlay\t{label}\t{offered:.0}\t{:.0}\t{:.0}\t{:.0}\t{:.1}\t{}",
            wl.iops,
            wl.p95_read_us(),
            wl.p95_write_us(),
            wl.mean_read_us(),
            wl.errors
        ))
        .with_metric("offered_iops", offered)
        .with_metric("iops", wl.iops)
        .with_metric("p95_read_us", wl.p95_read_us())
        .with_metric("p95_write_us", wl.p95_write_us())
        .with_metric("mean_read_us", wl.mean_read_us())
        .with_metric("errors", wl.errors as f64)
        .with_events(report.engine_events)
}

/// One failover run: R replicas on R+1 sites (one spare), quorum reads,
/// and a scheduled death of the tenant's primary site 40ms into the
/// measured window. Emits one `recovery` row and one `violations` row.
fn failover_point(r: usize, smoke: bool) -> PointOutcome {
    let w = warmup(smoke);
    let mut tb = ReplTestbed::builder()
        .sites(r + 1)
        .replication(r)
        .seed(SEED)
        .build();
    tb.add_workload(
        ReplWorkloadSpec::open_loop("app", TenantId(1), slo_for(DEATH_IOPS), DEATH_IOPS)
            .with_read_policy(ReadPolicy::Quorum)
            // 32 MiB namespace: the replacement's re-sync (2 GiB/s) takes
            // ~16ms — long enough to see, short enough to finish in-window.
            .with_namespace(0, 32 << 20),
    )
    .unwrap_or_else(|e| panic!("failover workload rejected (R={r}): {e}"));
    // Kill the primary: the worst case — the quorum-read anchor and the
    // write set both lose a member, and the coordinator must promote a
    // survivor *and* place a replacement.
    let victim = tb.member_sites(0)[tb.world().primary_slot(0)];
    let death_at = SimTime::ZERO + w + SimDuration::from_millis(40);
    let plan = FaultPlan::seeded(PLAN_SEED)
        .with_event(death_at, FaultKind::ServerDeath { server: victim });
    tb.install(&plan);
    // Always record telemetry here (passive, so the TSV is unaffected):
    // the violations panel needs the SLO monitor and the coordinator
    // counters.
    tb.enable_telemetry();
    tb.run(w);
    tb.begin_measurement();
    tb.run(measure_death(smoke));
    let report = tb.report();
    let wl = report.workload("app");
    let rec = report.recoveries.first().copied().expect("one failover");
    // Series buckets are relative to measurement start; the outage ends
    // for the client at the failover instant, when survivors are
    // promoted and the replacement becomes write-eligible.
    let up_rel = SimTime::ZERO + rec.failover_at.saturating_since(SimTime::ZERO + w);
    let times = recovery::recovery_times(&wl.iops_series, &[up_rel]);
    let recovery_ms = recovery::mean_ms(&times);
    let resync_ms = rec.resync_done_at.map_or(-1.0, |t| {
        t.saturating_since(rec.failover_at).as_micros_f64() / 1_000.0
    });
    let total_ms = rec.resync_done_at.map_or(-1.0, |t| {
        t.saturating_since(rec.died_at).as_micros_f64() / 1_000.0
    });
    let snap = report.telemetry.as_ref().expect("telemetry enabled");
    let count = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
    let violations = snap.slo.get(&TenantKey(1)).map_or(0, |s| s.violations);
    if crate::telemetry::enabled() {
        crate::telemetry::merge(snap);
    }
    PointOutcome::new(wl.p95_read_us())
        .with_row(format!(
            "recovery\tR={r}\t{}\t{}\t{}",
            fmt_ms(recovery_ms),
            fmt_ms(resync_ms),
            fmt_ms(total_ms)
        ))
        .with_row(format!(
            "violations\tR={r}\t{violations}\t{}\t{}\t{}",
            count("replication.failovers"),
            count("replication.promotions"),
            count("replication.server_deaths"),
        ))
        .with_metric("iops", wl.iops)
        .with_metric("recovery_ms", recovery_ms)
        .with_metric("recovery_p95_ms", recovery::p95_ms(&times))
        .with_metric("resync_ms", resync_ms)
        .with_metric("failover_total_ms", total_ms)
        .with_metric("slo_violations", violations as f64)
        .with_events(report.engine_events)
}

/// Builds the replication sweep. `smoke` shrinks windows and load points
/// to a CI-friendly size; `shards` is forwarded to the healthy overlay
/// testbeds (failover runs are single-shard by construction).
pub fn build_sweep(smoke: bool, shards: usize) -> Sweep {
    let mut sweep = Sweep::new("fig_replication");
    let loads: &[f64] = if smoke {
        &[20_000.0, 40_000.0]
    } else {
        &[20_000.0, 35_000.0, 50_000.0, 65_000.0]
    };
    let configs: &[(&'static str, usize, ReadPolicy)] = &[
        ("R1-primary", 1, ReadPolicy::Primary),
        ("R2-primary", 2, ReadPolicy::Primary),
        ("R2-quorum", 2, ReadPolicy::Quorum),
        ("R3-quorum", 3, ReadPolicy::Quorum),
    ];
    for &(label, r, policy) in configs {
        let curve = sweep.curve(label);
        for &offered in loads {
            curve.point(move || overlay_point(label, r, policy, offered, smoke, shards));
        }
    }
    for r in [2usize, 3] {
        sweep
            .curve(format!("failover-R{r}"))
            .point(move || failover_point(r, smoke));
    }
    sweep
}

/// Column headers, one comment line per panel.
pub const OVERLAY_HEADER: &str =
    "# overlay\tcurve\toffered_iops\tiops\tp95_read_us\tp95_write_us\tmean_read_us\terrors";
/// See [`OVERLAY_HEADER`].
pub const RECOVERY_HEADER: &str = "# recovery\tR\trecovery_ms\tresync_ms\tfailover_total_ms";
/// See [`OVERLAY_HEADER`].
pub const VIOLATIONS_HEADER: &str =
    "# violations\tR\tslo_violations\tfailovers\tpromotions\tserver_deaths";

/// Renders the full figure output: title, the three panel headers, then
/// every kept row. This is the exact byte stream the CI determinism gate
/// diffs between shard counts.
pub fn render(result: &SweepResult) -> String {
    let mut out = String::new();
    out.push_str("# fig_replication: client-driven replication over remote Flash\n");
    out.push_str(OVERLAY_HEADER);
    out.push('\n');
    out.push_str(RECOVERY_HEADER);
    out.push('\n');
    out.push_str(VIOLATIONS_HEADER);
    out.push('\n');
    out.push_str(&result.tsv());
    out
}
