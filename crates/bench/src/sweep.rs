//! Parallel sweep runner for the experiment harnesses.
//!
//! Every figure binary is a set of *curves* (a configuration) each swept
//! over *load points*. Points are independent, deterministic simulations,
//! so the [`Sweep`] fans them out across OS threads and re-assembles the
//! results in declaration order — output is byte-identical to a serial
//! run, only faster.
//!
//! The serial harnesses stopped a curve early once its p95 blew past a
//! cutoff (`if p95 > cutoff { break }` after printing the breaching
//! point). The parallel runner keeps that output rule by running all
//! points speculatively and discarding everything after the first breach
//! ([`Curve::cutoff_p95_us`]); a single-threaded run short-circuits
//! instead — points past a breach are never executed, exactly like the
//! old harness loops. Either way the kept points, and therefore the TSV,
//! are identical.
//!
//! Thread count comes from `REFLEX_BENCH_THREADS` (default: all cores).
//! Besides the binaries' TSV on stdout, [`SweepResult::write_json`] drops
//! a machine-readable `BENCH_<name>.json` with per-point metrics, the
//! wall-clock time and the engine event throughput.

use std::io::Write as _;
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One measured load point.
///
/// Built by the point's job closure: `p95_us` drives the curve's
/// early-exit cutoff, `rows` are the pre-rendered TSV lines the binary
/// prints for this point, and `metrics` land in `BENCH_<name>.json`.
#[derive(Debug, Clone)]
pub struct PointOutcome {
    /// The cutoff metric, typically the worst p95 read latency in µs.
    pub p95_us: f64,
    /// Pre-rendered TSV rows (no trailing newline), printed in order.
    pub rows: Vec<String>,
    /// Named metrics for the JSON artifact, in insertion order.
    pub metrics: Vec<(String, f64)>,
    /// Engine events dispatched while producing this point.
    pub engine_events: u64,
}

impl PointOutcome {
    /// A point whose cutoff metric is `p95_us`.
    pub fn new(p95_us: f64) -> Self {
        PointOutcome {
            p95_us,
            rows: Vec::new(),
            metrics: Vec::new(),
            engine_events: 0,
        }
    }

    /// Appends a TSV row.
    #[must_use]
    pub fn with_row(mut self, row: impl Into<String>) -> Self {
        self.rows.push(row.into());
        self
    }

    /// Appends a named metric for the JSON artifact.
    #[must_use]
    pub fn with_metric(mut self, name: impl Into<String>, value: f64) -> Self {
        self.metrics.push((name.into(), value));
        self
    }

    /// Records how many engine events the point's simulation dispatched.
    #[must_use]
    pub fn with_events(mut self, events: u64) -> Self {
        self.engine_events = events;
        self
    }

    /// Looks up a metric by name.
    pub fn metric(&self, name: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }
}

type Job = Box<dyn FnOnce() -> PointOutcome + Send>;

/// A named curve: an ordered list of point jobs plus an optional cutoff.
pub struct Curve {
    label: String,
    cutoff: Option<f64>,
    jobs: Vec<Job>,
}

impl std::fmt::Debug for Curve {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Curve")
            .field("label", &self.label)
            .field("cutoff", &self.cutoff)
            .field("points", &self.jobs.len())
            .finish()
    }
}

impl Curve {
    /// Discard points after the first whose `p95_us` exceeds `cutoff`
    /// (the breaching point itself is kept, matching the serial harnesses'
    /// print-then-break behavior).
    pub fn cutoff_p95_us(&mut self, cutoff: f64) -> &mut Self {
        self.cutoff = Some(cutoff);
        self
    }

    /// Adds the next load point. `job` must be a pure function of its
    /// captures — it runs on an arbitrary thread at an arbitrary time.
    pub fn point<F>(&mut self, job: F) -> &mut Self
    where
        F: FnOnce() -> PointOutcome + Send + 'static,
    {
        self.jobs.push(Box::new(job));
        self
    }
}

/// A declarative sweep: curves × points, executed in parallel.
#[derive(Debug)]
pub struct Sweep {
    name: String,
    curves: Vec<Curve>,
}

/// Thread count for sweeps: `REFLEX_BENCH_THREADS`, else all cores.
pub fn bench_threads() -> usize {
    std::env::var("REFLEX_BENCH_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

impl Sweep {
    /// Starts a sweep named `name` (the JSON artifact is
    /// `BENCH_<name>.json`).
    pub fn new(name: impl Into<String>) -> Self {
        Sweep {
            name: name.into(),
            curves: Vec::new(),
        }
    }

    /// Opens a new curve; add points to the returned handle.
    pub fn curve(&mut self, label: impl Into<String>) -> &mut Curve {
        self.curves.push(Curve {
            label: label.into(),
            cutoff: None,
            jobs: Vec::new(),
        });
        self.curves.last_mut().expect("just pushed")
    }

    /// Runs every point on [`bench_threads`] threads.
    pub fn run(self) -> SweepResult {
        let threads = bench_threads();
        self.run_with_threads(threads)
    }

    /// Runs every point on exactly `threads` threads (1 = fully serial).
    ///
    /// Kept points — and therefore the TSV — are identical for any thread
    /// count; only wall clock (and whether discarded points actually ran)
    /// varies.
    pub fn run_with_threads(self, threads: usize) -> SweepResult {
        let start = Instant::now();
        let sizes: Vec<usize> = self.curves.iter().map(|c| c.jobs.len()).collect();
        let mut jobs: Vec<Option<Job>> = Vec::new();
        let mut specs = Vec::new();
        for curve in self.curves {
            jobs.extend(curve.jobs.into_iter().map(Some));
            specs.push((curve.label, curve.cutoff));
        }
        let n = jobs.len();
        let workers = threads.max(1).min(n.max(1));

        if workers <= 1 {
            // True early exit, exactly like the old serial harness loops:
            // once a curve breaches its cutoff, its remaining points are
            // never executed (but still counted as discarded).
            let mut jobs = jobs.into_iter();
            let mut curves = Vec::new();
            let mut engine_events = 0u64;
            for ((label, cutoff), size) in specs.into_iter().zip(sizes) {
                let mut points = Vec::new();
                let mut discarded = 0usize;
                for job in jobs.by_ref().take(size) {
                    let breached = cutoff.is_some_and(|c| {
                        points.last().is_some_and(|p: &PointOutcome| p.p95_us > c)
                    });
                    if breached {
                        discarded += 1;
                        continue;
                    }
                    let outcome = (job.expect("job present"))();
                    engine_events += outcome.engine_events;
                    points.push(outcome);
                }
                curves.push(CurveResult {
                    label,
                    points,
                    discarded,
                });
            }
            let wall = start.elapsed();
            return SweepResult {
                name: self.name,
                threads: 1,
                wall,
                engine_events,
                curves,
                faults: None,
            };
        }

        let outcomes: Vec<PointOutcome> = {
            let work = Mutex::new((0usize, jobs));
            let slots: Vec<Mutex<Option<PointOutcome>>> =
                (0..n).map(|_| Mutex::new(None)).collect();
            std::thread::scope(|s| {
                for _ in 0..workers {
                    s.spawn(|| loop {
                        let (i, job) = {
                            let mut guard = work.lock().expect("sweep worker poisoned");
                            let i = guard.0;
                            if i >= n {
                                break;
                            }
                            guard.0 += 1;
                            (i, guard.1[i].take().expect("job claimed once"))
                        };
                        let outcome = job();
                        *slots[i].lock().expect("slot poisoned") = Some(outcome);
                    });
                }
            });
            slots
                .into_iter()
                .map(|m| m.into_inner().expect("slot poisoned").expect("job ran"))
                .collect()
        };

        let wall = start.elapsed();
        let engine_events: u64 = outcomes.iter().map(|o| o.engine_events).sum();
        let mut it = outcomes.into_iter();
        let mut curves = Vec::new();
        for ((label, cutoff), size) in specs.into_iter().zip(sizes) {
            let all: Vec<PointOutcome> = it.by_ref().take(size).collect();
            let kept = match cutoff {
                // Keep everything up to and including the first breach.
                Some(c) => {
                    let breach = all.iter().position(|p| p.p95_us > c);
                    breach.map_or(all.len(), |i| i + 1)
                }
                None => all.len(),
            };
            let discarded = all.len() - kept;
            let mut points = all;
            points.truncate(kept);
            curves.push(CurveResult {
                label,
                points,
                discarded,
            });
        }
        SweepResult {
            name: self.name,
            threads: workers,
            wall,
            engine_events,
            curves,
            faults: None,
        }
    }
}

/// Fault-injection totals for a chaos sweep — emitted as the optional
/// `faults` section of `BENCH_<name>.json` (see
/// [`SweepResult::set_faults`]).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FaultsSummary {
    /// Individual faults injected (failed/delayed commands, dropped or
    /// duplicated messages, thread stalls).
    pub injected: u64,
    /// Requests that succeeded after at least one retry.
    pub recovered: u64,
    /// Requests abandoned with all retry attempts spent.
    pub unrecovered: u64,
    /// Total scheduled unavailability (link outages + stalls), seconds
    /// of simulated time.
    pub downtime_secs: f64,
}

/// A curve's kept points after cutoff truncation.
#[derive(Debug)]
pub struct CurveResult {
    /// The curve's label, as declared.
    pub label: String,
    /// Kept points, in declaration order.
    pub points: Vec<PointOutcome>,
    /// Points dropped past the cutoff. Parallel runs executed them
    /// speculatively; serial runs never executed them at all.
    pub discarded: usize,
}

/// Results of a [`Sweep::run`], in declaration order.
#[derive(Debug)]
pub struct SweepResult {
    /// Sweep name (JSON artifact stem).
    pub name: String,
    /// Worker threads actually used.
    pub threads: usize,
    /// Wall-clock time for the whole sweep.
    pub wall: Duration,
    /// Engine events dispatched across all executed points (parallel runs
    /// include speculatively-run discarded points; serial runs do not).
    pub engine_events: u64,
    /// One entry per declared curve.
    pub curves: Vec<CurveResult>,
    /// Fault totals, if this was a chaos sweep (set after the run; the
    /// JSON artifact gains a `faults` section when present).
    pub faults: Option<FaultsSummary>,
}

impl SweepResult {
    /// The curve with the given label.
    ///
    /// # Panics
    ///
    /// Panics if no curve has that label.
    pub fn curve(&self, label: &str) -> &CurveResult {
        self.curves
            .iter()
            .find(|c| c.label == label)
            .unwrap_or_else(|| panic!("no curve labelled {label}"))
    }

    /// Attaches fault totals; `BENCH_<name>.json` then carries a
    /// `faults` section. Chaos harnesses call this between the run and
    /// [`write_json`](Self::write_json).
    pub fn set_faults(&mut self, faults: FaultsSummary) {
        self.faults = Some(faults);
    }

    /// All kept rows, curve by curve, newline-terminated — the canonical
    /// TSV body (binaries with richer layouts print from `curves`
    /// directly).
    pub fn tsv(&self) -> String {
        let mut out = String::new();
        for c in &self.curves {
            for p in &c.points {
                for r in &p.rows {
                    out.push_str(r);
                    out.push('\n');
                }
            }
        }
        out
    }

    /// Prints [`tsv`](Self::tsv) to stdout.
    pub fn print_tsv(&self) {
        print!("{}", self.tsv());
    }

    /// Engine events per wall-clock second across the sweep.
    pub fn events_per_sec(&self) -> f64 {
        self.engine_events as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    /// Writes `BENCH_<name>.json` into the current directory and returns
    /// its path. The sweep stays usable; call after printing the TSV.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors creating or writing the file.
    pub fn write_json(&self) -> std::io::Result<PathBuf> {
        let path = PathBuf::from(format!("BENCH_{}.json", self.name));
        let mut f = std::io::BufWriter::new(std::fs::File::create(&path)?);
        writeln!(f, "{{")?;
        writeln!(f, "  \"bench\": {},", json_str(&self.name))?;
        writeln!(f, "  \"threads\": {},", self.threads)?;
        writeln!(f, "  \"wall_secs\": {},", json_num(self.wall.as_secs_f64()))?;
        writeln!(f, "  \"engine_events\": {},", self.engine_events)?;
        writeln!(
            f,
            "  \"engine_events_per_sec\": {},",
            json_num(self.events_per_sec())
        )?;
        if let Some(fs) = &self.faults {
            writeln!(
                f,
                "  \"faults\": {{\"injected\": {}, \"recovered\": {}, \"unrecovered\": {}, \"downtime_secs\": {}}},",
                fs.injected,
                fs.recovered,
                fs.unrecovered,
                json_num(fs.downtime_secs)
            )?;
        }
        writeln!(f, "  \"curves\": [")?;
        for (ci, c) in self.curves.iter().enumerate() {
            writeln!(f, "    {{")?;
            writeln!(f, "      \"label\": {},", json_str(&c.label))?;
            writeln!(f, "      \"discarded\": {},", c.discarded)?;
            writeln!(f, "      \"points\": [")?;
            for (pi, p) in c.points.iter().enumerate() {
                write!(f, "        {{\"p95_us\": {}", json_num(p.p95_us))?;
                if p.engine_events > 0 {
                    write!(f, ", \"engine_events\": {}", p.engine_events)?;
                }
                for (name, value) in &p.metrics {
                    write!(f, ", {}: {}", json_str(name), json_num(*value))?;
                }
                writeln!(f, "}}{}", if pi + 1 < c.points.len() { "," } else { "" })?;
            }
            writeln!(f, "      ]")?;
            writeln!(
                f,
                "    }}{}",
                if ci + 1 < self.curves.len() { "," } else { "" }
            )?;
        }
        writeln!(f, "  ]")?;
        writeln!(f, "}}")?;
        f.flush()?;
        Ok(path)
    }

    /// [`write_json`](Self::write_json), reporting failure on stderr
    /// instead of returning it (harness binaries treat the artifact as
    /// best-effort).
    pub fn write_json_or_warn(&self) {
        match self.write_json() {
            Ok(path) => eprintln!(
                "[{}] {} threads, {:.2}s wall, {:.2}M engine events/s -> {}",
                self.name,
                self.threads,
                self.wall.as_secs_f64(),
                self.events_per_sec() / 1e6,
                path.display()
            ),
            Err(e) => eprintln!("[{}] could not write JSON artifact: {e}", self.name),
        }
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_sweep() -> Sweep {
        let mut sweep = Sweep::new("demo");
        for curve_idx in 0..3u64 {
            let c = sweep.curve(format!("curve{curve_idx}"));
            c.cutoff_p95_us(500.0);
            for point_idx in 0..6u64 {
                c.point(move || {
                    // Deterministic pseudo-latency ramp per curve.
                    let p95 = (point_idx * 150 + curve_idx * 37) as f64;
                    PointOutcome::new(p95)
                        .with_row(format!("{curve_idx}\t{point_idx}\t{p95:.0}"))
                        .with_metric("p", p95)
                        .with_events(100)
                });
            }
        }
        sweep
    }

    #[test]
    fn serial_and_parallel_agree_byte_for_byte() {
        let serial = demo_sweep().run_with_threads(1);
        let parallel = demo_sweep().run_with_threads(4);
        assert_eq!(serial.tsv(), parallel.tsv());
        // Serial skips discarded points entirely, so it dispatches fewer
        // (or equal) engine events than the speculative parallel run.
        assert!(serial.engine_events <= parallel.engine_events);
        // curve0/curve1 keep 5 points, curve2 breaches earlier and keeps 4;
        // only kept points ran, 100 events each.
        assert_eq!(serial.engine_events, (5 + 5 + 4) * 100);
        assert_eq!(serial.curves.len(), parallel.curves.len());
        for (s, p) in serial.curves.iter().zip(&parallel.curves) {
            assert_eq!(s.points.len(), p.points.len());
            assert_eq!(s.discarded, p.discarded);
        }
    }

    #[test]
    fn cutoff_keeps_first_breaching_point() {
        let result = demo_sweep().run_with_threads(2);
        // curve0: p95 = 0,150,300,450,600,750 -> first breach at index 4.
        let c = result.curve("curve0");
        assert_eq!(c.points.len(), 5);
        assert_eq!(c.discarded, 1);
        assert!(c.points[4].p95_us > 500.0);
        assert!(c.points[3].p95_us <= 500.0);
        // Discarded points still count toward engine events (they ran).
        assert_eq!(result.engine_events, 3 * 6 * 100);
    }

    #[test]
    fn no_cutoff_keeps_everything() {
        let mut sweep = Sweep::new("nocut");
        let c = sweep.curve("only");
        for i in 0..4 {
            c.point(move || PointOutcome::new(i as f64 * 1e6).with_row(format!("{i}")));
        }
        let result = sweep.run_with_threads(3);
        assert_eq!(result.curve("only").points.len(), 4);
        assert_eq!(result.tsv(), "0\n1\n2\n3\n");
    }

    #[test]
    fn json_escaping_and_numbers() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_num(1.5), "1.5");
        assert_eq!(json_num(f64::NAN), "null");
        assert_eq!(json_num(f64::INFINITY), "null");
    }
}
