//! Shared recovery-time metric over 10 ms IOPS series.
//!
//! Both the chaos sweep ([`crate::chaos`]) and the replication figure
//! ([`crate::replication`]) answer the same question — *how long after
//! an outage ended did throughput return to its pre-outage baseline?* —
//! so the definition lives here once and the two artifacts stay
//! comparable number-for-number.

use reflex_sim::{RatePoint, SimDuration, SimTime};

/// Time from `up_at` (an outage's end) until the first 10ms IOPS bucket
/// back at >= 90% of the pre-outage mean, in milliseconds. Buckets fully
/// before the outage form the baseline. Returns the remaining window
/// length if the series never recovers (pessimistic, keeps the metric
/// finite and deterministic), and `-1.0` when there is no pre-outage
/// baseline to recover to.
pub fn recovery_ms(series: &[RatePoint], up_at: SimTime) -> f64 {
    let baseline: Vec<f64> = series
        .iter()
        .filter(|p| p.at + SimDuration::from_millis(10) <= up_at)
        .map(|p| p.rate_per_sec)
        .collect();
    if baseline.is_empty() {
        return -1.0;
    }
    let mean = baseline.iter().sum::<f64>() / baseline.len() as f64;
    for p in series.iter().filter(|p| p.at >= up_at) {
        if p.rate_per_sec >= 0.9 * mean {
            return p.at.saturating_since(up_at).as_micros_f64() / 1_000.0;
        }
    }
    series.last().map_or(-1.0, |p| {
        p.at.saturating_since(up_at).as_micros_f64() / 1_000.0
    })
}

/// Per-outage recovery times for a series that saw several scheduled
/// outages, in `up_ats` order. Outages the series cannot answer (no
/// pre-outage baseline) are dropped.
pub fn recovery_times(series: &[RatePoint], up_ats: &[SimTime]) -> Vec<f64> {
    up_ats
        .iter()
        .map(|&t| recovery_ms(series, t))
        .filter(|&r| r >= 0.0)
        .collect()
}

/// Mean recovery time, or `-1.0` when no outage was measured.
pub fn mean_ms(times: &[f64]) -> f64 {
    if times.is_empty() {
        return -1.0;
    }
    times.iter().sum::<f64>() / times.len() as f64
}

/// Nearest-rank p95 recovery time, or `-1.0` when no outage was
/// measured. For a single outage this equals the outage's recovery time,
/// so single-outage points report `p95 == mean`.
pub fn p95_ms(times: &[f64]) -> f64 {
    if times.is_empty() {
        return -1.0;
    }
    let mut sorted = times.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = ((0.95 * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(at_ms: u64, rate: f64) -> RatePoint {
        RatePoint {
            at: SimTime::ZERO + SimDuration::from_millis(at_ms),
            count: rate as u64 / 100,
            rate_per_sec: rate,
        }
    }

    #[test]
    fn recovers_at_first_bucket_back_over_ninety_pct() {
        // Baseline 1000, outage ends at 30ms, dip then recovery at 50ms.
        let series = vec![
            pt(0, 1000.0),
            pt(10, 1000.0),
            pt(20, 100.0),
            pt(30, 200.0),
            pt(40, 500.0),
            pt(50, 950.0),
        ];
        let up = SimTime::ZERO + SimDuration::from_millis(30);
        assert_eq!(recovery_ms(&series, up), 20.0);
    }

    #[test]
    fn never_recovering_reports_remaining_window() {
        let series = vec![pt(0, 1000.0), pt(10, 1000.0), pt(50, 100.0)];
        let up = SimTime::ZERO + SimDuration::from_millis(30);
        assert_eq!(recovery_ms(&series, up), 20.0);
    }

    #[test]
    fn no_baseline_is_unanswerable() {
        let series = vec![pt(0, 1000.0)];
        assert_eq!(recovery_ms(&series, SimTime::ZERO), -1.0);
        assert!(recovery_times(&series, &[SimTime::ZERO]).is_empty());
        assert_eq!(mean_ms(&[]), -1.0);
        assert_eq!(p95_ms(&[]), -1.0);
    }

    #[test]
    fn multi_outage_mean_and_p95() {
        let times = vec![10.0, 20.0, 30.0];
        assert_eq!(mean_ms(&times), 20.0);
        // Nearest rank: ceil(0.95 * 3) = 3 -> the worst outage.
        assert_eq!(p95_ms(&times), 30.0);
        // A single outage reports p95 == mean.
        assert_eq!(p95_ms(&[12.5]), 12.5);
        assert_eq!(mean_ms(&[12.5]), 12.5);
    }

    #[test]
    fn p95_is_nearest_rank_not_max() {
        let times: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(p95_ms(&times), 95.0);
    }
}
