//! Chaos harness: throughput and tail latency under escalating faults.
//!
//! Figure-4-style sweeps, but instead of escalating *load* each curve
//! escalates a *fault* — transient device errors, packet loss, latency
//! storms, link flaps, dataplane thread stalls, whole-device death and
//! control-plane server death — and measures what the recovery machinery
//! (client retry with exponential backoff, server connection
//! teardown/re-registration, cluster tenant re-placement) salvages:
//! achieved IOPS, p95 inflation, recovered vs unrecovered requests, and
//! recovery time after outages.
//!
//! Everything is deterministic: fault draws come from private RNG
//! streams keyed by `(plan seed, event id)`, so the TSV is byte-identical
//! for any `REFLEX_BENCH_THREADS` (see `tests/chaos_determinism.rs`).
//!
//! Run: `cargo run --release -p reflex-bench --bin chaos [-- --smoke]`

use reflex_core::{
    CapacityProfile, ClusterPlanner, RetryPolicy, ServerDescriptor, ServerId, Testbed, WorkloadSpec,
};
use reflex_faults::{install, FaultKind, FaultPlan};
use reflex_qos::{CostModel, SloSpec, TenantClass, TenantId};
use reflex_sim::{SimDuration, SimTime};
use reflex_telemetry::TenantKey;

use crate::recovery;
use crate::sweep::{FaultsSummary, PointOutcome, Sweep, SweepResult};

/// Master seed for every chaos fault plan.
const PLAN_SEED: u64 = 0xC4A05;

/// Offered load for the single-tenant chaos testbeds (well under one
/// server thread's capacity, so fault effects dominate queueing).
const OFFERED_IOPS: f64 = 50_000.0;

fn warmup(smoke: bool) -> SimDuration {
    SimDuration::from_millis(if smoke { 30 } else { 100 })
}

fn measure(smoke: bool) -> SimDuration {
    SimDuration::from_millis(if smoke { 80 } else { 300 })
}

/// Renders the unified TSV row. A negative recovery time prints `-`
/// (scenario has no outage to recover from).
fn row(label: &str, severity: &str, o: &ChaosOutcome) -> String {
    let fmt = |v: f64| {
        if v < 0.0 {
            "-".to_string()
        } else {
            format!("{v:.1}")
        }
    };
    format!(
        "{label}\t{severity}\t{:.0}\t{:.0}\t{}\t{}\t{}\t{}\t{}\t{}",
        o.iops,
        o.p95_us,
        o.injected,
        o.retries,
        o.recovered,
        o.unrecovered,
        fmt(o.recovery_ms),
        fmt(o.recovery_p95_ms)
    )
}

struct ChaosOutcome {
    iops: f64,
    p95_us: f64,
    injected: u64,
    retries: u64,
    recovered: u64,
    unrecovered: u64,
    downtime_secs: f64,
    /// Mean recovery time across the point's outages (single-outage
    /// points: the outage's recovery time; no outage: -1).
    recovery_ms: f64,
    /// Nearest-rank p95 across the point's outages — the same definition
    /// the replication figure reports (see [`crate::recovery`]), so the
    /// chaos and replication artifacts are comparable.
    recovery_p95_ms: f64,
    engine_events: u64,
    slo_violations: u64,
}

impl ChaosOutcome {
    fn into_point(self, label: &str, severity: &str) -> PointOutcome {
        let r = row(label, severity, &self);
        PointOutcome::new(self.p95_us)
            .with_row(r)
            .with_metric("iops", self.iops)
            .with_metric("injected", self.injected as f64)
            .with_metric("retries", self.retries as f64)
            .with_metric("recovered", self.recovered as f64)
            .with_metric("unrecovered", self.unrecovered as f64)
            .with_metric("downtime_s", self.downtime_secs)
            .with_metric("recovery_ms", self.recovery_ms)
            .with_metric("recovery_p95_ms", self.recovery_p95_ms)
            .with_metric("slo_violations", self.slo_violations as f64)
            .with_events(self.engine_events)
    }
}

/// Runs one single-tenant testbed under `plan` and collects the chaos
/// metrics. Each entry of `up_ats` marks the end of one scheduled
/// outage, enabling the recovery-time measurement (mean and p95 across
/// outages) from the 10ms IOPS series.
fn run_faulted(
    plan: &FaultPlan,
    retry: RetryPolicy,
    smoke: bool,
    up_ats: &[SimTime],
) -> ChaosOutcome {
    let mut tb = Testbed::builder().seed(71).server_threads(1).build();
    let slo = SloSpec::new(OFFERED_IOPS as u64, 100, SimDuration::from_micros(500));
    tb.add_workload(
        WorkloadSpec::open_loop(
            "app",
            TenantId(1),
            TenantClass::LatencyCritical(slo),
            OFFERED_IOPS,
        )
        .with_retry(retry),
    )
    .expect("chaos workload rejected");
    let stats = install(plan, &mut tb);
    // Chaos points always record telemetry (recording is passive, so the
    // TSV is unaffected): the sweep JSON reports how many rolling SLO
    // windows each fault pushed over the tenant's p95 target.
    tb.enable_telemetry();
    tb.run(warmup(smoke));
    tb.begin_measurement();
    tb.run(measure(smoke));
    let report = tb.report();
    let w = report.workload("app");
    let snap = stats.snapshot();
    let slo_violations = report
        .telemetry
        .as_ref()
        .map_or(0, |t| t.slo.get(&TenantKey(1)).map_or(0, |s| s.violations));
    if crate::telemetry::enabled() {
        if let Some(t) = &report.telemetry {
            crate::telemetry::merge(t);
        }
    }
    let times = recovery::recovery_times(&w.iops_series, up_ats);
    ChaosOutcome {
        iops: w.iops,
        p95_us: w.p95_read_us(),
        injected: snap.injected(),
        retries: w.retries,
        recovered: w.retry_success,
        unrecovered: w.exhausted,
        downtime_secs: snap.downtime.as_secs_f64(),
        recovery_ms: recovery::mean_ms(&times),
        recovery_p95_ms: recovery::p95_ms(&times),
        engine_events: report.engine_events,
        slo_violations,
    }
}

/// Control-plane server death: a 3-server cluster loses one server and
/// the planner re-places its tenants. Recovery time is modelled as
/// failure detection (three missed 10ms heartbeats) plus 1ms of
/// re-admission work per migrated tenant.
fn server_death_point(tenants_per_server: u32) -> PointOutcome {
    let mut planner = ClusterPlanner::new(
        (0..3)
            .map(|i| {
                ServerDescriptor::new(
                    ServerId(i),
                    CapacityProfile::device_a_default(),
                    CostModel::for_device_a(),
                )
            })
            .collect(),
    );
    let slo = SloSpec::new(20_000, 100, SimDuration::from_micros(1_000));
    let total = 3 * tenants_per_server;
    for t in 0..total {
        planner
            .place(TenantId(t + 1), slo)
            .expect("chaos cluster sized to fit");
    }
    let victim = planner
        .servers()
        .iter()
        .max_by_key(|s| (s.tenant_count(), s.id.0))
        .expect("three servers")
        .id;
    let report = planner.fail_server(victim).expect("victim exists");
    let migrated = report.migrated.len() as u64;
    let stranded = report.stranded.len() as u64;
    let detection = SimDuration::from_millis(30);
    let recovery = report.total_recovery_estimate(detection).as_micros_f64() / 1_000.0;
    // Per-tenant recovery estimates: each migration queues behind the
    // earlier ones, so the p95 is the estimate of the ~worst-placed
    // tenant rather than the last one.
    let per_tenant: Vec<f64> = report
        .migrated
        .iter()
        .map(|m| (detection + m.latency_estimate).as_micros_f64() / 1_000.0)
        .collect();
    let o = ChaosOutcome {
        iops: 0.0,
        p95_us: 0.0,
        injected: migrated + stranded,
        retries: 0,
        recovered: migrated,
        unrecovered: stranded,
        downtime_secs: recovery / 1_000.0,
        recovery_ms: recovery,
        recovery_p95_ms: recovery::p95_ms(&per_tenant),
        engine_events: 0,
        slo_violations: 0,
    };
    o.into_point("server-death", &format!("{total}-tenants"))
}

/// Builds the chaos sweep. `smoke` shrinks windows and severities to a
/// CI-friendly size whose faults must all recover (the binary gates on
/// it); the full sweep adds harsher points — including whole-device
/// death, whose requests are unrecoverable by design.
pub fn build_sweep(smoke: bool) -> Sweep {
    let mut sweep = Sweep::new(if smoke { "chaos_smoke" } else { "chaos" });
    let w = warmup(smoke);
    let start = SimTime::ZERO + w;

    // Transient device errors, escalating per-command error rate;
    // recovered by immediate client retries (exponential backoff).
    let rates: &[f64] = if smoke {
        &[0.0, 0.02]
    } else {
        &[0.0, 0.01, 0.05, 0.1]
    };
    let curve = sweep.curve("transient-errors");
    for &rate in rates {
        curve.point(move || {
            let plan = if rate > 0.0 {
                FaultPlan::seeded(PLAN_SEED).with_event(
                    start,
                    FaultKind::TransientDeviceErrors {
                        rate,
                        duration: measure(smoke),
                    },
                )
            } else {
                FaultPlan::none()
            };
            run_faulted(&plan, RetryPolicy::standard(), smoke, &[])
                .into_point("transient-errors", &format!("rate={rate}"))
        });
    }

    // Packet loss, escalating drop probability; recovered by per-attempt
    // timeouts + retransmission.
    let rates: &[f64] = if smoke { &[0.01] } else { &[0.005, 0.02, 0.05] };
    let curve = sweep.curve("packet-loss");
    for &rate in rates {
        curve.point(move || {
            let plan = FaultPlan::seeded(PLAN_SEED).with_event(
                start,
                FaultKind::PacketLoss {
                    rate,
                    duration: measure(smoke),
                },
            );
            run_faulted(&plan, RetryPolicy::standard(), smoke, &[])
                .into_point("packet-loss", &format!("rate={rate}"))
        });
    }

    // Packet duplication: stale copies must be ignored, not double-counted.
    let curve = sweep.curve("packet-dup");
    let dup_rates: &[f64] = if smoke { &[0.05] } else { &[0.05, 0.2] };
    for &rate in dup_rates {
        curve.point(move || {
            let plan = FaultPlan::seeded(PLAN_SEED).with_event(
                start,
                FaultKind::PacketDup {
                    rate,
                    duration: measure(smoke),
                },
            );
            run_faulted(&plan, RetryPolicy::standard(), smoke, &[])
                .into_point("packet-dup", &format!("rate={rate}"))
        });
    }

    // Latency storms: bounded p95 inflation, no retries required.
    let extras_us: &[u64] = if smoke { &[100] } else { &[100, 300, 1_000] };
    let curve = sweep.curve("latency-storm");
    for &extra in extras_us {
        curve.point(move || {
            let plan = FaultPlan::seeded(PLAN_SEED).with_event(
                start,
                FaultKind::LatencyStorm {
                    extra: SimDuration::from_micros(extra),
                    duration: measure(smoke),
                },
            );
            run_faulted(&plan, RetryPolicy::standard(), smoke, &[])
                .into_point("latency-storm", &format!("extra={extra}us"))
        });
    }

    // Link flaps: the server tears the client's connections down and
    // re-registers them when the link returns; timeouts + retries recover
    // the requests lost in the blackout. Recovery time is read off the
    // 10ms IOPS series.
    let downs_ms: &[u64] = if smoke { &[2] } else { &[2, 5, 10, 20] };
    let flap_at = start + SimDuration::from_millis(30);
    let curve = sweep.curve("link-flap");
    for &down in downs_ms {
        curve.point(move || {
            let down_for = SimDuration::from_millis(down);
            let plan = FaultPlan::seeded(PLAN_SEED).with_event(
                flap_at,
                FaultKind::LinkFlap {
                    client: 0,
                    down_for,
                },
            );
            run_faulted(&plan, RetryPolicy::standard(), smoke, &[flap_at + down_for])
                .into_point("link-flap", &format!("down={down}ms"))
        });
    }

    // Repeated link flaps (full runs only): three outages in one window,
    // so the mean and p95 recovery times genuinely diverge — the p95 is
    // the worst of the three recoveries, not a restatement of the mean.
    if !smoke {
        sweep.curve("link-flap-train").point(move || {
            let down_for = SimDuration::from_millis(5);
            let flaps: Vec<SimTime> = (0..3)
                .map(|k| start + SimDuration::from_millis(30 + 80 * k))
                .collect();
            let mut plan = FaultPlan::seeded(PLAN_SEED);
            for &at in &flaps {
                plan = plan.with_event(
                    at,
                    FaultKind::LinkFlap {
                        client: 0,
                        down_for,
                    },
                );
            }
            let up_ats: Vec<SimTime> = flaps.iter().map(|&at| at + down_for).collect();
            run_faulted(&plan, RetryPolicy::standard(), smoke, &up_ats)
                .into_point("link-flap-train", "3x down=5ms")
        });
    }

    // Dataplane thread stalls: the polling loop wedges, queues back up
    // and drain afterwards.
    let stalls_us: &[u64] = if smoke { &[200] } else { &[200, 1_000, 5_000] };
    let stall_at = start + SimDuration::from_millis(30);
    let curve = sweep.curve("thread-stall");
    for &stall in stalls_us {
        curve.point(move || {
            let dur = SimDuration::from_micros(stall);
            let plan = FaultPlan::seeded(PLAN_SEED).with_event(
                stall_at,
                FaultKind::ThreadStall {
                    thread: 0,
                    stall: dur,
                },
            );
            run_faulted(&plan, RetryPolicy::standard(), smoke, &[stall_at + dur])
                .into_point("thread-stall", &format!("stall={stall}us"))
        });
    }

    // Control-plane server death: tenants migrate to the surviving
    // servers (sized to always fit in smoke mode).
    let curve = sweep.curve("server-death");
    let sizes: &[u32] = if smoke { &[2] } else { &[2, 4] };
    for &per in sizes {
        curve.point(move || server_death_point(per));
    }

    // Whole-device death: nothing can recover these; full runs report
    // the exhausted requests (the smoke gate excludes this curve).
    if !smoke {
        let death_at = start + SimDuration::from_millis(100);
        sweep.curve("device-death").point(move || {
            let plan = FaultPlan::seeded(PLAN_SEED).with_event(death_at, FaultKind::DeviceDeath);
            run_faulted(&plan, RetryPolicy::standard(), smoke, &[])
                .into_point("device-death", "at=100ms")
        });
    }

    sweep
}

/// Aggregates the per-point chaos metrics into the sweep-wide
/// [`FaultsSummary`] for the JSON artifact.
pub fn faults_summary(result: &SweepResult) -> FaultsSummary {
    let mut s = FaultsSummary::default();
    for c in &result.curves {
        for p in &c.points {
            s.injected += p.metric("injected").unwrap_or(0.0) as u64;
            s.recovered += p.metric("recovered").unwrap_or(0.0) as u64;
            s.unrecovered += p.metric("unrecovered").unwrap_or(0.0) as u64;
            s.downtime_secs += p.metric("downtime_s").unwrap_or(0.0);
        }
    }
    s
}

/// The TSV header matching [`row`].
pub const TSV_HEADER: &str = "scenario\tseverity\tiops\tp95_us\tinjected\tretries\trecovered\t\
     unrecovered\trecovery_ms\trecovery_p95_ms";
