//! # reflex-bench — experiment harnesses
//!
//! One binary per table/figure of the paper's evaluation (see DESIGN.md's
//! experiment index) plus Criterion microbenches. Every binary prints a
//! self-describing TSV so results can be diffed against EXPERIMENTS.md.
//!
//! | binary | regenerates |
//! |---|---|
//! | `fig1_interference` | Figure 1: p95 read latency vs total IOPS per read ratio |
//! | `fig3_cost_model` | Figure 3: latency vs weighted IOPS for devices A/B/C |
//! | `tab2_unloaded_latency` | Table 2: unloaded 4KB latency, six configurations |
//! | `fig4_throughput` | Figure 4: latency vs 1KB IOPS, Local/ReFlex/libaio × 1-2 threads |
//! | `fig5_qos` | Figure 5: four tenants, scheduler on/off, scenarios 1-2 |
//! | `fig6a_core_scaling` | Figure 6a: LC/BE IOPS and token rate vs cores |
//! | `fig6b_tenant_scaling` | Figure 6b: IOPS vs tenant count per core |
//! | `fig6c_conn_scaling` | Figure 6c: IOPS vs connections at 3 per-conn rates |
//! | `fig7a_fio` | Figure 7a: FIO p95 latency vs throughput |
//! | `fig7b_flashx` | Figure 7b: FlashX slowdowns (WCC/PR/BFS/SCC) |
//! | `fig7c_rocksdb` | Figure 7c: RocksDB slowdowns (BL/RR/RwW) |
//! | `ablations` | design-choice sweeps: batching cap, NEG_LIMIT, donation |
//! | `chaos` | recovery under escalating injected faults (`--smoke` gates CI) |
//! | `fig_replication` | replication overlays (R=1/2/3), failover recovery, SLO violations |

#![warn(missing_docs)]

pub mod chaos;
pub mod recovery;
pub mod replication;
pub mod sweep;
pub mod telemetry;

use reflex_core::{ServerHarness, Testbed, TestbedReport, WorkloadSpec};
use reflex_sim::SimDuration;

/// Standard warmup used by the harnesses.
pub const WARMUP: SimDuration = SimDuration::from_millis(100);

/// Standard measurement window used by the harnesses.
pub const MEASURE: SimDuration = SimDuration::from_millis(400);

/// Number of simulation shards requested via `REFLEX_SIM_SHARDS`
/// (default 1 — single-shard; `0` auto-detects the host's cores).
/// Orthogonal to `REFLEX_BENCH_THREADS`, which parallelizes *across*
/// sweep points; this splits one simulation across cores while keeping
/// its results byte-identical.
///
/// # Panics
///
/// Panics on non-numeric values — a typo silently running single-shard
/// would invalidate a scaling measurement without anyone noticing.
pub fn sim_shards() -> usize {
    let Ok(raw) = std::env::var("REFLEX_SIM_SHARDS") else {
        return 1;
    };
    if raw.is_empty() {
        return 1;
    }
    let n: usize = raw
        .parse()
        .unwrap_or_else(|_| panic!("invalid REFLEX_SIM_SHARDS={raw:?} (expected 0=auto or N>=1)"));
    if n == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        n
    }
}

/// Whether split-dataplane mode is requested via `REFLEX_SIM_SPLIT`
/// (default off). When on, [`run_testbed`] switches the testbed to
/// split-dataplane execution before sharding, so `REFLEX_SIM_SHARDS`
/// distributes dataplane *threads* (not just client machines) across
/// shards. Split-mode results are byte-identical at every shard count but
/// differ from default-mode results (token grants quantize to the
/// exchange-window grid), which is why the default stays off and every
/// committed figure is generated without it.
///
/// # Panics
///
/// Panics on unrecognized values — a typo silently running the unified
/// dataplane would invalidate a scaling measurement.
pub fn sim_split() -> bool {
    let Ok(raw) = std::env::var("REFLEX_SIM_SPLIT") else {
        return false;
    };
    match raw.as_str() {
        "" | "0" | "off" => false,
        "1" | "on" => true,
        other => panic!("invalid REFLEX_SIM_SPLIT={other:?} (expected 0/off or 1/on)"),
    }
}

/// Adds `workloads` to a testbed, runs warmup + measurement, and reports.
/// Honors `REFLEX_SIM_SHARDS` (sharding applies before workloads are
/// added; results are byte-identical at any shard count) and
/// `REFLEX_SIM_SPLIT` (thread-granular sharding — see [`sim_split`]).
///
/// # Panics
///
/// Panics if any workload is rejected (harness configurations are
/// pre-validated).
pub fn run_testbed<S: ServerHarness + 'static>(
    mut tb: Testbed<S>,
    workloads: Vec<WorkloadSpec>,
    warmup: SimDuration,
    measure: SimDuration,
) -> TestbedReport {
    let shards = sim_shards();
    if sim_split() {
        // Falls back (with a stderr note) when the server under test does
        // not support splitting — the run is still valid, just unified.
        let _ = tb.enable_split_dataplane();
    }
    if shards > 1 {
        tb = tb.with_shards(shards);
    }
    if telemetry::enabled() {
        tb.enable_telemetry();
    }
    for spec in workloads {
        let name = spec.name.clone();
        tb.add_workload(spec)
            .unwrap_or_else(|e| panic!("workload {name} rejected: {e}"));
    }
    tb.run(warmup);
    tb.begin_measurement();
    tb.run(measure);
    let report = tb.report();
    if let Some(snapshot) = &report.telemetry {
        telemetry::merge(snapshot);
    }
    report
}

/// Worst p95 read latency (µs) across a report's workloads — the cutoff
/// metric used by most figure sweeps.
pub fn max_p95_read_us(report: &TestbedReport) -> f64 {
    report
        .workloads
        .iter()
        .map(reflex_core::WorkloadReport::p95_read_us)
        .fold(0.0f64, f64::max)
}

/// Worst p95 write latency (µs) across a report's workloads.
pub fn max_p95_write_us(report: &TestbedReport) -> f64 {
    report
        .workloads
        .iter()
        .map(reflex_core::WorkloadReport::p95_write_us)
        .fold(0.0f64, f64::max)
}
