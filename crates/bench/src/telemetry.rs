//! Opt-in telemetry sink for the harness binaries.
//!
//! Telemetry is off by default, so every figure TSV stays byte-identical
//! to the uninstrumented harness. Setting `REFLEX_TELEMETRY=1` (or
//! calling [`force`] from a test) turns it on:
//! [`run_testbed`](crate::run_testbed) then enables recording on every
//! testbed it drives and folds each point's snapshot into one
//! process-wide snapshot — snapshot merge is commutative and
//! associative, so parallel sweep workers fold in any order with a
//! deterministic result. A binary's final [`flush`] writes
//! `TELEMETRY_<name>.json` and `TELEMETRY_<name>.tsv` next to the
//! `BENCH_<name>.json` artifact.
//!
//! Recording itself is passive (no RNG draws, no scheduled events), so
//! an instrumented run produces byte-identical TSVs — pinned by
//! `tests/telemetry_determinism.rs`.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Mutex;

use reflex_telemetry::TelemetrySnapshot;

// 0 = follow the environment, 1 = forced off, 2 = forced on.
static FORCED: AtomicU8 = AtomicU8::new(0);
static SINK: Mutex<Option<TelemetrySnapshot>> = Mutex::new(None);

/// `true` when telemetry recording is on for this process: forced via
/// [`force`], else `REFLEX_TELEMETRY=1` (or `true`) in the environment.
pub fn enabled() -> bool {
    match FORCED.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => std::env::var("REFLEX_TELEMETRY")
            .is_ok_and(|v| v == "1" || v.eq_ignore_ascii_case("true")),
    }
}

/// Overrides the environment switch for this process (`None` reverts to
/// the environment). Tests use this to compare instrumented and
/// uninstrumented runs in-process without mutating the environment.
pub fn force(on: Option<bool>) {
    let v = match on {
        None => 0,
        Some(false) => 1,
        Some(true) => 2,
    };
    FORCED.store(v, Ordering::Relaxed);
}

/// Folds `snapshot` into the process-wide sink.
pub fn merge(snapshot: &TelemetrySnapshot) {
    let mut sink = SINK.lock().expect("telemetry sink poisoned");
    sink.get_or_insert_with(TelemetrySnapshot::default)
        .merge(snapshot);
}

/// Takes the merged snapshot accumulated so far, leaving the sink empty.
pub fn take() -> Option<TelemetrySnapshot> {
    SINK.lock().expect("telemetry sink poisoned").take()
}

/// Writes `TELEMETRY_<name>.json` and `TELEMETRY_<name>.tsv` from the
/// merged sink and drains it. A no-op (and silent) when telemetry is
/// disabled or nothing was recorded; file errors go to stderr — the
/// artifact is best-effort, like `BENCH_<name>.json`.
pub fn flush(name: &str) {
    if !enabled() {
        return;
    }
    let Some(snapshot) = take() else { return };
    if snapshot.is_empty() {
        return;
    }
    for (ext, body) in [("json", snapshot.to_json()), ("tsv", snapshot.to_tsv())] {
        let path = PathBuf::from(format!("TELEMETRY_{name}.{ext}"));
        match std::fs::write(&path, body) {
            Ok(()) => eprintln!("[{name}] telemetry -> {}", path.display()),
            Err(e) => eprintln!("[{name}] could not write {}: {e}", path.display()),
        }
    }
}
