//! Shard-scaling curve: the fig4 ReFlex scenario at 1, 2, 4 and 8 shards.
//!
//! Runs the same near-saturation 1KB open-loop scenario (eight IX client
//! machines over 40GbE into a two-thread ReFlex server) once per shard
//! count and records wall-clock time, barrier-wait share, and committed
//! windows. The simulated results must be **byte-identical** at every
//! shard count — the binary asserts it and aborts loudly on divergence,
//! so the TSV's simulated columns are diffable across rows by
//! construction.
//!
//! `--split-dataplane` adds a second axis: the same shard counts with the
//! server's dataplane threads distributed across shards (lease-ledger
//! token accounting, windowed device). Split rows are byte-identical to
//! each other (asserted per axis — the split token grants quantize to the
//! window grid, so the two axes legitimately differ from one another),
//! and the JSON grows a `split_dataplane` field per point.
//! `--require-split-win` additionally asserts that the split axis' best
//! speedup strictly beats the machine-granular best — the point of
//! splitting a server-bound scenario. The assertion only binds on hosts
//! with ≥ 2 cores; single-core hosts time-slice both axes and the gap
//! is noise.
//!
//! Output: a TSV on stdout (simulated columns identical across shard
//! counts; wall-clock columns vary with the host) and
//! `BENCH_shard_scaling.json` with the measured scaling curve.
//!
//! Run: `cargo run --release -p reflex-bench --bin shard_scaling`
//! (`--smoke` shortens the windows for CI smoke coverage).

use std::io::Write as _;
use std::time::Instant;

use reflex_bench::{max_p95_read_us, MEASURE, WARMUP};
use reflex_core::{ServerConfig, Testbed, WorkloadSpec};
use reflex_net::{LinkConfig, StackProfile};
use reflex_qos::{TenantClass, TenantId};
use reflex_sim::{LookaheadPolicy, SimDuration};

const CLIENTS: usize = 8;
const OFFERED_IOPS: f64 = 860_000.0;
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

struct RunPoint {
    shards_requested: usize,
    shards_effective: usize,
    split_dataplane: bool,
    wall_secs: f64,
    iops: f64,
    p95_us: f64,
    engine_events: u64,
    barrier_waits: u64,
    windows_committed: u64,
    extended_commits: u64,
    barrier_wait_frac: f64,
    /// Full `Debug` rendering of the simulated results — the identity
    /// invariant says this string is equal at every shard count.
    signature: String,
}

fn run_point(
    shards: usize,
    split: bool,
    policy: LookaheadPolicy,
    warmup: SimDuration,
    measure: SimDuration,
) -> RunPoint {
    let mut tb = Testbed::builder()
        .seed(31)
        .server(ServerConfig {
            threads: 2,
            max_threads: 2,
            ..ServerConfig::default()
        })
        .client_machines(vec![StackProfile::ix_tcp(); CLIENTS])
        .link(LinkConfig::forty_gbe())
        .build();
    if split {
        tb.enable_split_dataplane()
            .expect("the fig4 ReFlex scenario supports split-dataplane execution");
    }
    let mut tb = tb.with_shards(shards);
    tb.set_lookahead_policy(policy);
    for i in 0..CLIENTS {
        let mut spec = WorkloadSpec::open_loop(
            &format!("load{i}"),
            TenantId(i as u32 + 1),
            TenantClass::BestEffort,
            OFFERED_IOPS / CLIENTS as f64,
        );
        spec.io_size = 1024;
        spec.conns = 48;
        spec.client_threads = 8;
        spec.client_machine = i;
        tb.add_workload(spec).expect("workload admitted");
    }
    let started = Instant::now();
    tb.run(warmup);
    tb.begin_measurement();
    tb.run(measure);
    let wall_secs = started.elapsed().as_secs_f64();
    let report = tb.report();

    let (mut waits, mut windows, mut extended) = (0u64, 0u64, 0u64);
    let (mut wait_nanos, mut run_nanos) = (0u64, 0u64);
    for s in 0..tb.shards() {
        let st = tb.shard_stats(s);
        waits += st.barrier_waits;
        windows += st.windows_committed;
        extended += st.extended_commits;
        wait_nanos += st.wall_wait_nanos;
        run_nanos += st.wall_run_nanos;
    }
    let iops: f64 = report.workloads.iter().map(|w| w.iops).sum();
    RunPoint {
        shards_requested: shards,
        shards_effective: tb.shards(),
        split_dataplane: split,
        wall_secs,
        iops,
        p95_us: max_p95_read_us(&report),
        engine_events: report.engine_events,
        barrier_waits: waits,
        windows_committed: windows,
        extended_commits: extended,
        barrier_wait_frac: if run_nanos == 0 {
            0.0
        } else {
            wait_nanos as f64 / run_nanos as f64
        },
        signature: format!(
            "workloads={:?} threads={:?} tokens={} device={:?}",
            report.workloads,
            report.threads,
            report.token_usage_per_sec.to_bits(),
            report.device,
        ),
    }
}

/// Wall-clock of the axis' own 1-shard run — speedups never compare
/// across the two execution modes' (intentionally different) baselines.
fn axis_baseline(points: &[RunPoint], split: bool) -> f64 {
    points
        .iter()
        .find(|p| p.split_dataplane == split && p.shards_requested == 1)
        .map_or(1.0, |p| p.wall_secs)
}

fn write_json(points: &[RunPoint]) -> std::io::Result<()> {
    let path = "BENCH_shard_scaling.json";
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(f, "{{")?;
    writeln!(f, "  \"bench\": \"shard_scaling\",")?;
    writeln!(
        f,
        "  \"host_cores\": {},",
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    )?;
    writeln!(f, "  \"identical_results\": true,")?;
    writeln!(f, "  \"points\": [")?;
    for (i, p) in points.iter().enumerate() {
        let baseline_wall = axis_baseline(points, p.split_dataplane);
        writeln!(f, "    {{")?;
        writeln!(f, "      \"shards_requested\": {},", p.shards_requested)?;
        writeln!(f, "      \"shards_effective\": {},", p.shards_effective)?;
        writeln!(f, "      \"split_dataplane\": {},", p.split_dataplane)?;
        writeln!(f, "      \"wall_secs\": {},", p.wall_secs)?;
        writeln!(
            f,
            "      \"speedup_vs_1shard\": {},",
            baseline_wall / p.wall_secs
        )?;
        writeln!(f, "      \"achieved_iops\": {},", p.iops)?;
        writeln!(f, "      \"p95_us\": {},", p.p95_us)?;
        writeln!(f, "      \"engine_events\": {},", p.engine_events)?;
        writeln!(f, "      \"barrier_waits\": {},", p.barrier_waits)?;
        writeln!(f, "      \"windows_committed\": {},", p.windows_committed)?;
        writeln!(f, "      \"extended_commits\": {},", p.extended_commits)?;
        writeln!(f, "      \"barrier_wait_frac\": {}", p.barrier_wait_frac)?;
        writeln!(f, "    }}{}", if i + 1 < points.len() { "," } else { "" })?;
    }
    writeln!(f, "  ]")?;
    writeln!(f, "}}")?;
    f.flush()
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let split_axis = std::env::args().any(|a| a == "--split-dataplane");
    let require_split_win = std::env::args().any(|a| a == "--require-split-win");
    assert!(
        split_axis || !require_split_win,
        "--require-split-win needs --split-dataplane"
    );
    let (warmup, measure) = if smoke {
        (SimDuration::from_millis(20), SimDuration::from_millis(80))
    } else {
        (WARMUP, MEASURE)
    };

    let mut points: Vec<RunPoint> = SHARD_COUNTS
        .iter()
        .map(|&n| run_point(n, false, LookaheadPolicy::Adaptive, warmup, measure))
        .collect();
    if split_axis {
        points.extend(
            SHARD_COUNTS
                .iter()
                .map(|&n| run_point(n, true, LookaheadPolicy::Adaptive, warmup, measure)),
        );
    }

    // The PDES invariant, enforced per axis: every shard count simulates
    // the exact same system. A mismatch is a determinism bug, not a
    // measurement. (The two axes differ from *each other* by design: split
    // mode quantizes token grants to the exchange-window grid.)
    for split in [false, true] {
        let axis: Vec<&RunPoint> = points
            .iter()
            .filter(|p| p.split_dataplane == split)
            .collect();
        for p in axis.iter().skip(1) {
            assert_eq!(
                p.signature, axis[0].signature,
                "simulated results diverged at {} shards vs 1 shard (split={split})",
                p.shards_requested
            );
        }
    }

    println!("# Shard scaling: fig4 ReFlex scenario, adaptive lookahead");
    println!("# simulated columns (achieved_kiops, p95_us) are byte-identical across rows of one axis; wall columns vary with the host");
    println!("shards\teff\tsplit\tachieved_kiops\tp95_us\twall_ms\tspeedup\tbarrier_wait_pct\tbarriers\twindows\textended");
    for p in &points {
        println!(
            "{}\t{}\t{}\t{:.0}\t{:.0}\t{:.0}\t{:.2}\t{:.1}\t{}\t{}\t{}",
            p.shards_requested,
            p.shards_effective,
            u8::from(p.split_dataplane),
            p.iops / 1e3,
            p.p95_us,
            p.wall_secs * 1e3,
            axis_baseline(&points, p.split_dataplane) / p.wall_secs,
            p.barrier_wait_frac * 100.0,
            p.barrier_waits,
            p.windows_committed,
            p.extended_commits,
        );
    }
    match write_json(&points) {
        Ok(()) => eprintln!("[shard_scaling] wrote BENCH_shard_scaling.json"),
        Err(e) => eprintln!("[shard_scaling] could not write JSON artifact: {e}"),
    }

    if split_axis {
        // The tentpole claim: on a server-bound scenario (two dataplane
        // threads, one machine) machine-granular sharding leaves the whole
        // server on shard 0, so distributing the threads must scale
        // strictly better.
        let best = |split: bool| {
            let base = axis_baseline(&points, split);
            points
                .iter()
                .filter(|p| p.split_dataplane == split && p.shards_requested > 1)
                .map(|p| base / p.wall_secs)
                .fold(0.0f64, f64::max)
        };
        let (machine_best, split_best) = (best(false), best(true));
        eprintln!(
            "[shard_scaling] best speedup: machine-granular {machine_best:.2}x, \
             split-dataplane {split_best:.2}x"
        );
        if require_split_win {
            // The claim is about *parallel* execution: with one core both
            // axes just time-slice and the wall-clock gap is noise, so the
            // gate only binds on hosts that can actually run shards
            // concurrently (CI's multi-core runners).
            let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
            if cores < 2 {
                eprintln!(
                    "[shard_scaling] --require-split-win skipped: host has {cores} core(s), \
                     speedup comparison needs real parallelism"
                );
            } else {
                assert!(
                    split_best > machine_best,
                    "split-dataplane ({split_best:.2}x) did not beat machine-granular \
                     ({machine_best:.2}x) on a server-bound scenario"
                );
            }
        }
    }
}
