//! Shard-scaling curve: the fig4 ReFlex scenario at 1, 2, 4 and 8 shards.
//!
//! Runs the same near-saturation 1KB open-loop scenario (eight IX client
//! machines over 40GbE into a two-thread ReFlex server) once per shard
//! count and records wall-clock time, barrier-wait share, and committed
//! windows. The simulated results must be **byte-identical** at every
//! shard count — the binary asserts it and aborts loudly on divergence,
//! so the TSV's simulated columns are diffable across rows by
//! construction.
//!
//! Output: a TSV on stdout (simulated columns identical across shard
//! counts; wall-clock columns vary with the host) and
//! `BENCH_shard_scaling.json` with the measured scaling curve.
//!
//! Run: `cargo run --release -p reflex-bench --bin shard_scaling`
//! (`--smoke` shortens the windows for CI smoke coverage).

use std::io::Write as _;
use std::time::Instant;

use reflex_bench::{max_p95_read_us, MEASURE, WARMUP};
use reflex_core::{ServerConfig, Testbed, WorkloadSpec};
use reflex_net::{LinkConfig, StackProfile};
use reflex_qos::{TenantClass, TenantId};
use reflex_sim::{LookaheadPolicy, SimDuration};

const CLIENTS: usize = 8;
const OFFERED_IOPS: f64 = 860_000.0;
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

struct RunPoint {
    shards_requested: usize,
    shards_effective: usize,
    wall_secs: f64,
    iops: f64,
    p95_us: f64,
    engine_events: u64,
    barrier_waits: u64,
    windows_committed: u64,
    extended_commits: u64,
    barrier_wait_frac: f64,
    /// Full `Debug` rendering of the simulated results — the identity
    /// invariant says this string is equal at every shard count.
    signature: String,
}

fn run_point(
    shards: usize,
    policy: LookaheadPolicy,
    warmup: SimDuration,
    measure: SimDuration,
) -> RunPoint {
    let mut tb = Testbed::builder()
        .seed(31)
        .server(ServerConfig {
            threads: 2,
            max_threads: 2,
            ..ServerConfig::default()
        })
        .client_machines(vec![StackProfile::ix_tcp(); CLIENTS])
        .link(LinkConfig::forty_gbe())
        .build()
        .with_shards(shards);
    tb.set_lookahead_policy(policy);
    for i in 0..CLIENTS {
        let mut spec = WorkloadSpec::open_loop(
            &format!("load{i}"),
            TenantId(i as u32 + 1),
            TenantClass::BestEffort,
            OFFERED_IOPS / CLIENTS as f64,
        );
        spec.io_size = 1024;
        spec.conns = 48;
        spec.client_threads = 8;
        spec.client_machine = i;
        tb.add_workload(spec).expect("workload admitted");
    }
    let started = Instant::now();
    tb.run(warmup);
    tb.begin_measurement();
    tb.run(measure);
    let wall_secs = started.elapsed().as_secs_f64();
    let report = tb.report();

    let (mut waits, mut windows, mut extended) = (0u64, 0u64, 0u64);
    let (mut wait_nanos, mut run_nanos) = (0u64, 0u64);
    for s in 0..tb.shards() {
        let st = tb.shard_stats(s);
        waits += st.barrier_waits;
        windows += st.windows_committed;
        extended += st.extended_commits;
        wait_nanos += st.wall_wait_nanos;
        run_nanos += st.wall_run_nanos;
    }
    let iops: f64 = report.workloads.iter().map(|w| w.iops).sum();
    RunPoint {
        shards_requested: shards,
        shards_effective: tb.shards(),
        wall_secs,
        iops,
        p95_us: max_p95_read_us(&report),
        engine_events: report.engine_events,
        barrier_waits: waits,
        windows_committed: windows,
        extended_commits: extended,
        barrier_wait_frac: if run_nanos == 0 {
            0.0
        } else {
            wait_nanos as f64 / run_nanos as f64
        },
        signature: format!(
            "workloads={:?} threads={:?} tokens={} device={:?}",
            report.workloads,
            report.threads,
            report.token_usage_per_sec.to_bits(),
            report.device,
        ),
    }
}

fn write_json(points: &[RunPoint], baseline_wall: f64) -> std::io::Result<()> {
    let path = "BENCH_shard_scaling.json";
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(f, "{{")?;
    writeln!(f, "  \"bench\": \"shard_scaling\",")?;
    writeln!(
        f,
        "  \"host_cores\": {},",
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    )?;
    writeln!(f, "  \"identical_results\": true,")?;
    writeln!(f, "  \"points\": [")?;
    for (i, p) in points.iter().enumerate() {
        writeln!(f, "    {{")?;
        writeln!(f, "      \"shards_requested\": {},", p.shards_requested)?;
        writeln!(f, "      \"shards_effective\": {},", p.shards_effective)?;
        writeln!(f, "      \"wall_secs\": {},", p.wall_secs)?;
        writeln!(
            f,
            "      \"speedup_vs_1shard\": {},",
            baseline_wall / p.wall_secs
        )?;
        writeln!(f, "      \"achieved_iops\": {},", p.iops)?;
        writeln!(f, "      \"p95_us\": {},", p.p95_us)?;
        writeln!(f, "      \"engine_events\": {},", p.engine_events)?;
        writeln!(f, "      \"barrier_waits\": {},", p.barrier_waits)?;
        writeln!(f, "      \"windows_committed\": {},", p.windows_committed)?;
        writeln!(f, "      \"extended_commits\": {},", p.extended_commits)?;
        writeln!(f, "      \"barrier_wait_frac\": {}", p.barrier_wait_frac)?;
        writeln!(f, "    }}{}", if i + 1 < points.len() { "," } else { "" })?;
    }
    writeln!(f, "  ]")?;
    writeln!(f, "}}")?;
    f.flush()
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (warmup, measure) = if smoke {
        (SimDuration::from_millis(20), SimDuration::from_millis(80))
    } else {
        (WARMUP, MEASURE)
    };

    let points: Vec<RunPoint> = SHARD_COUNTS
        .iter()
        .map(|&n| run_point(n, LookaheadPolicy::Adaptive, warmup, measure))
        .collect();

    // The PDES invariant, enforced: every shard count simulates the exact
    // same system. A mismatch is a determinism bug, not a measurement.
    for p in &points[1..] {
        assert_eq!(
            p.signature, points[0].signature,
            "simulated results diverged at {} shards vs 1 shard",
            p.shards_requested
        );
    }

    println!("# Shard scaling: fig4 ReFlex scenario, adaptive lookahead");
    println!("# simulated columns (achieved_kiops, p95_us) are byte-identical across rows; wall columns vary with the host");
    println!("shards\teff\tachieved_kiops\tp95_us\twall_ms\tspeedup\tbarrier_wait_pct\tbarriers\twindows\textended");
    let baseline_wall = points[0].wall_secs;
    for p in &points {
        println!(
            "{}\t{}\t{:.0}\t{:.0}\t{:.0}\t{:.2}\t{:.1}\t{}\t{}\t{}",
            p.shards_requested,
            p.shards_effective,
            p.iops / 1e3,
            p.p95_us,
            p.wall_secs * 1e3,
            baseline_wall / p.wall_secs,
            p.barrier_wait_frac * 100.0,
            p.barrier_waits,
            p.windows_committed,
            p.extended_commits,
        );
    }
    match write_json(&points, baseline_wall) {
        Ok(()) => eprintln!("[shard_scaling] wrote BENCH_shard_scaling.json"),
        Err(e) => eprintln!("[shard_scaling] could not write JSON artifact: {e}"),
    }
}
