//! Figure 6a: multi-core scaling of the QoS scheduler.
//!
//! From 0 to 12 cores: each core serves one LC tenant (20K IOPS, 90%
//! reads, 2ms p95 SLO); two cores additionally serve one BE tenant each
//! (80% reads, closed loop). LC throughput must scale linearly with cores
//! while BE throughput shrinks (rate-limited to the leftover tokens) and
//! total token usage stays pinned at the device capacity for the 2ms SLO.
//!
//! Run: `cargo run --release -p reflex-bench --bin fig6a_core_scaling`

use reflex_bench::sweep::{PointOutcome, Sweep};
use reflex_bench::{run_testbed, MEASURE, WARMUP};
use reflex_core::{ServerConfig, Testbed, WorkloadSpec};
use reflex_net::{LinkConfig, StackProfile};
use reflex_qos::{SloSpec, TenantClass, TenantId};
use reflex_sim::SimDuration;

fn core_point(cores: u32) -> PointOutcome {
    let threads = cores.max(2); // BE tenants always run on 2 threads
    let tb = Testbed::builder()
        .seed(51)
        .server(ServerConfig {
            threads,
            max_threads: threads,
            ..ServerConfig::default()
        })
        .client_machines(vec![
            StackProfile::ix_tcp(),
            StackProfile::ix_tcp(),
            StackProfile::ix_tcp(),
        ])
        .link(LinkConfig::forty_gbe())
        .build();

    let mut specs = Vec::new();
    for i in 0..cores {
        let slo = SloSpec::new(20_000, 90, SimDuration::from_millis(2));
        let mut spec = WorkloadSpec::open_loop(
            &format!("lc{i}"),
            TenantId(i + 1),
            TenantClass::LatencyCritical(slo),
            20_000.0,
        );
        spec.read_pct = 90;
        spec.conns = 4;
        spec.client_threads = 2;
        spec.client_machine = (i % 3) as usize;
        specs.push(spec);
    }
    for j in 0..2u32 {
        let mut spec = WorkloadSpec::closed_loop(
            &format!("be{j}"),
            TenantId(100 + j),
            TenantClass::BestEffort,
            32,
        );
        spec.read_pct = 80;
        spec.conns = 8;
        spec.client_threads = 4;
        spec.client_machine = j as usize;
        specs.push(spec);
    }

    let report = run_testbed(tb, specs, WARMUP, MEASURE);
    let lc: f64 = report
        .workloads
        .iter()
        .filter(|w| w.name.starts_with("lc"))
        .map(|w| w.iops)
        .sum();
    let be: f64 = report
        .workloads
        .iter()
        .filter(|w| w.name.starts_with("be"))
        .map(|w| w.iops)
        .sum();
    let max_p95 = report
        .workloads
        .iter()
        .filter(|w| w.name.starts_with("lc"))
        .map(|w| w.p95_read_us())
        .fold(0.0f64, f64::max);
    PointOutcome::new(max_p95)
        .with_row(format!(
            "{cores}\t{:.0}\t{:.0}\t{:.0}\t{max_p95:.0}",
            lc / 1e3,
            be / 1e3,
            report.token_usage_per_sec / 1e3
        ))
        .with_metric("lc_kiops", lc / 1e3)
        .with_metric("be_kiops", be / 1e3)
        .with_metric("token_usage_ktokens_s", report.token_usage_per_sec / 1e3)
        .with_events(report.engine_events)
}

fn main() {
    let mut sweep = Sweep::new("fig6a_core_scaling");
    let curve = sweep.curve("core_scaling");
    for cores in 0..=12u32 {
        curve.point(move || core_point(cores));
    }
    let result = sweep.run();
    println!("# Figure 6a: scaling LC tenants across cores (2ms SLO, 90% read)");
    println!("cores\tlc_kiops\tbe_kiops\ttoken_usage_ktokens_s\tmax_lc_p95_us");
    result.print_tsv();
    result.write_json_or_warn();
    reflex_bench::telemetry::flush("fig6a_core_scaling");
}
