//! Figure 7a: FIO latency-throughput with the remote block device driver.
//!
//! 4KB random reads at increasing parallelism (threads × queue depth) on
//! the local kernel NVMe path, the ReFlex block driver and iSCSI. ReFlex
//! saturates the 10GbE link (~1.2GB/s) with ~4x iSCSI's throughput and
//! half its latency; local Flash goes further on raw device bandwidth.
//!
//! Run: `cargo run --release -p reflex-bench --bin fig7a_fio`

use reflex_bench::sweep::{PointOutcome, Sweep};
use reflex_flash::device_a;
use reflex_workloads::{Backend, BackendProfile, FioJob};

fn fio_point(name: &str, profile: &BackendProfile, threads: u32, qd: u32) -> PointOutcome {
    let mut backend = Backend::new(profile.clone(), device_a(), threads, 81);
    let rep = FioJob {
        threads,
        queue_depth: qd,
        ..FioJob::default()
    }
    .run(&mut backend, 7);
    let p95 = rep.latency.p95().as_micros_f64();
    PointOutcome::new(p95)
        .with_row(format!(
            "{name}\t{threads}\t{qd}\t{:.0}\t{:.0}\t{:.0}",
            rep.mb_per_sec,
            rep.iops / 1e3,
            p95
        ))
        .with_metric("mb_per_sec", rep.mb_per_sec)
        .with_metric("kiops", rep.iops / 1e3)
}

/// A backend's name, profile and (threads, queue-depth) ladder.
type FioConfig = (&'static str, BackendProfile, Vec<(u32, u32)>);

fn main() {
    let configs: [FioConfig; 3] = [
        (
            "local",
            BackendProfile::local_nvme(),
            vec![(1, 4), (1, 16), (2, 16), (3, 24), (4, 32), (5, 32), (5, 64)],
        ),
        (
            "reflex",
            BackendProfile::reflex_remote(),
            vec![(1, 4), (1, 16), (2, 16), (3, 24), (4, 32), (5, 48), (6, 64)],
        ),
        (
            "iscsi",
            BackendProfile::iscsi_remote(),
            vec![(1, 4), (1, 16), (2, 16), (3, 24), (4, 32), (5, 48), (6, 64)],
        ),
    ];
    let mut sweep = Sweep::new("fig7a_fio");
    for (name, profile, points) in &configs {
        let curve = sweep.curve(*name);
        for &(threads, qd) in points {
            let name = *name;
            let profile = profile.clone();
            curve.point(move || fio_point(name, &profile, threads, qd));
        }
    }
    let result = sweep.run();
    println!("# Figure 7a: FIO 4KB random read, p95 latency vs throughput");
    println!("path\tthreads\tqd\tMB_s\tkiops\tp95_us");
    for (name, _, _) in &configs {
        for p in &result.curve(name).points {
            for row in &p.rows {
                println!("{row}");
            }
        }
        println!();
    }
    result.write_json_or_warn();
    reflex_bench::telemetry::flush("fig7a_fio");
}
