//! Runs every experiment harness in sequence (scaled-down where the full
//! configuration is slow) and prints one combined report — convenient for
//! capturing a complete paper-reproduction transcript in a single run.
//!
//! Run: `cargo run --release -p reflex-bench --bin run_all`

use std::process::Command;

fn main() {
    let harnesses = [
        "fig1_interference",
        "fig3_cost_model",
        "tab2_unloaded_latency",
        "fig4_throughput",
        "fig5_qos",
        "fig6a_core_scaling",
        "fig6b_tenant_scaling",
        "fig6c_conn_scaling",
        "fig7a_fio",
        "fig7b_flashx",
        "fig7c_rocksdb",
        "latency_breakdown",
        "ablations",
        "ext_features",
    ];
    let exe = std::env::current_exe().expect("self path");
    let bindir = exe.parent().expect("bin dir");
    for h in harnesses {
        println!("\n================================================================");
        println!("== {h}");
        println!("================================================================");
        let status = Command::new(bindir.join(h))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {h}: {e}"));
        if !status.success() {
            eprintln!("{h} exited with {status}");
            std::process::exit(1);
        }
    }
    println!("\nAll {} harnesses completed.", harnesses.len());
}
