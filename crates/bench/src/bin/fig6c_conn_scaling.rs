//! Figure 6c: TCP connection scaling on one ReFlex core.
//!
//! One tenant with N connections, each issuing 100 / 500 / 1000 1KB-read
//! IOPS. Throughput scales with connections until either the core's IOPS
//! ceiling or — beyond ~5K connections — the LLC no longer holds the TCP
//! connection state and per-request processing slows down.
//!
//! Run: `cargo run --release -p reflex-bench --bin fig6c_conn_scaling`

use reflex_bench::run_testbed;
use reflex_bench::sweep::{PointOutcome, Sweep};
use reflex_core::{Testbed, WorkloadSpec};
use reflex_net::{LinkConfig, StackProfile};
use reflex_qos::{TenantClass, TenantId};
use reflex_sim::SimDuration;

fn conn_point(per_conn: f64, conns: u32) -> PointOutcome {
    let offered = per_conn * conns as f64;
    let tb = Testbed::builder()
        .seed(71)
        .client_machines(vec![
            StackProfile::ix_tcp(),
            StackProfile::ix_tcp(),
            StackProfile::ix_tcp(),
            StackProfile::ix_tcp(),
        ])
        .link(LinkConfig::forty_gbe())
        .build();
    let mut spec = WorkloadSpec::open_loop("tenant", TenantId(1), TenantClass::BestEffort, offered);
    spec.io_size = 1024;
    spec.conns = conns;
    spec.client_threads = 16;
    let report = run_testbed(
        tb,
        vec![spec],
        SimDuration::from_millis(100),
        SimDuration::from_millis(300),
    );
    let w = report.workload("tenant");
    PointOutcome::new(w.p95_read_us())
        .with_row(format!(
            "{per_conn:.0}\t{conns}\t{:.0}\t{:.0}",
            offered / 1e3,
            w.iops / 1e3
        ))
        .with_metric("achieved_kiops", w.iops / 1e3)
        .with_events(report.engine_events)
}

fn main() {
    let rates = [100.0f64, 500.0, 1_000.0];
    let mut sweep = Sweep::new("fig6c_conn_scaling");
    for per_conn in rates {
        let curve = sweep.curve(format!("{per_conn:.0}iops_per_conn"));
        for conns in [
            10u32, 50, 100, 250, 500, 850, 1_500, 2_500, 5_000, 7_500, 10_000,
        ] {
            // Skip points that are pure overkill (>2x core peak).
            if per_conn * conns as f64 > 1_800_000.0 {
                continue;
            }
            curve.point(move || conn_point(per_conn, conns));
        }
    }
    let result = sweep.run();
    println!("# Figure 6c: connections for one tenant on one core (1KB reads)");
    println!("iops_per_conn\tconns\toffered_kiops\tachieved_kiops");
    for per_conn in rates {
        for p in &result.curve(&format!("{per_conn:.0}iops_per_conn")).points {
            for row in &p.rows {
                println!("{row}");
            }
        }
        println!();
    }
    result.write_json_or_warn();
    reflex_bench::telemetry::flush("fig6c_conn_scaling");
}
