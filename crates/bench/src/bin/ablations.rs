//! Ablations: the design choices DESIGN.md calls out, swept one at a time.
//!
//! * **Batching cap** (paper: 64) — smaller caps cost throughput at load;
//!   much larger caps cost tail latency.
//! * **NEG_LIMIT** (paper: −50 tokens) — the LC burst allowance. Too small
//!   queues bursts; too large lets expensive write bursts through and
//!   hurts other tenants' tails.
//! * **Donation fraction** (paper: 90%) — how much LC surplus flows to the
//!   global bucket; lower fractions starve best-effort tenants.
//! * **Cost model off** (unit costs) — writes charged like reads: the
//!   write-heavy tenant overruns its fair share and the reader's SLO dies.
//!
//! Run: `cargo run --release -p reflex-bench --bin ablations`

use reflex_bench::sweep::{PointOutcome, Sweep};
use reflex_bench::{run_testbed, MEASURE, WARMUP};
use reflex_core::{ServerConfig, Testbed, WorkloadSpec};
use reflex_qos::{CostModel, SchedulerParams, SloSpec, TenantClass, TenantId, Tokens};
use reflex_sim::SimDuration;

fn scenario_specs() -> Vec<WorkloadSpec> {
    let slo =
        TenantClass::LatencyCritical(SloSpec::new(120_000, 100, SimDuration::from_micros(500)));
    let mut lc = WorkloadSpec::open_loop("lc-reader", TenantId(1), slo, 120_000.0);
    lc.conns = 8;
    lc.client_threads = 4;
    let mut be = WorkloadSpec::closed_loop("be-writer", TenantId(2), TenantClass::BestEffort, 16);
    be.read_pct = 25;
    be.conns = 8;
    be.client_threads = 4;
    vec![lc, be]
}

fn run_with(
    knob: &str,
    value: String,
    server: ServerConfig,
    cost_model: Option<CostModel>,
) -> PointOutcome {
    let mut builder = Testbed::builder().seed(111).server(server);
    if let Some(m) = cost_model {
        builder = builder.cost_model(m);
    }
    let report = run_testbed(builder.build(), scenario_specs(), WARMUP, MEASURE);
    let lc = report.workload("lc-reader");
    let be = report.workload("be-writer");
    let p95 = lc.p95_read_us();
    PointOutcome::new(p95)
        .with_row(format!(
            "{knob}\t{value}\t{:.0}\t{p95:.0}\t{:.0}",
            lc.iops / 1e3,
            be.iops / 1e3
        ))
        .with_metric("lc_kiops", lc.iops / 1e3)
        .with_metric("lc_p95_us", p95)
        .with_metric("be_kiops", be.iops / 1e3)
        .with_events(report.engine_events)
}

fn main() {
    let mut sweep = Sweep::new("ablations");

    let curve = sweep.curve("batch_max");
    for batch in [4usize, 16, 64, 256] {
        curve.point(move || {
            let mut server = ServerConfig::default();
            server.dataplane.batch_max = batch;
            run_with("batch_max", batch.to_string(), server, None)
        });
    }

    let curve = sweep.curve("neg_limit");
    for neg in [-5i64, -50, -500, -5_000] {
        curve.point(move || {
            let server = ServerConfig {
                sched_params: SchedulerParams {
                    neg_limit: Tokens::from_tokens(neg),
                    ..SchedulerParams::default()
                },
                ..ServerConfig::default()
            };
            run_with("neg_limit", neg.to_string(), server, None)
        });
    }

    let curve = sweep.curve("donate_fraction");
    for frac in [0.0f64, 0.5, 0.9, 1.0] {
        curve.point(move || {
            let server = ServerConfig {
                sched_params: SchedulerParams {
                    donate_fraction: frac,
                    ..SchedulerParams::default()
                },
                ..ServerConfig::default()
            };
            run_with("donate_fraction", frac.to_string(), server, None)
        });
    }

    let curve = sweep.curve("cost_model");
    curve.point(|| {
        // Cost model ablation: writes cost the same as reads (1 token).
        let unit = CostModel::new(
            4096,
            Tokens::from_tokens(1),
            Tokens::from_millitokens(500),
            Tokens::from_tokens(1),
        );
        run_with(
            "cost_model",
            "unit-writes".into(),
            ServerConfig::default(),
            Some(unit),
        )
    });
    curve.point(|| {
        run_with(
            "cost_model",
            "calibrated".into(),
            ServerConfig::default(),
            None,
        )
    });

    let result = sweep.run();
    println!("# Ablations on the Figure-5-style scenario (LC reader vs BE writer)");
    println!("knob\tvalue\tlc_kiops\tlc_p95_us\tbe_kiops");
    for (i, label) in ["batch_max", "neg_limit", "donate_fraction", "cost_model"]
        .iter()
        .enumerate()
    {
        if i > 0 {
            println!();
        }
        for p in &result.curve(label).points {
            for row in &p.rows {
                println!("{row}");
            }
        }
    }
    result.write_json_or_warn();
    reflex_bench::telemetry::flush("ablations");
}
