//! Figure 5: tail latency and IOPS for 4 tenants sharing a ReFlex server,
//! with the I/O scheduler disabled and enabled, in two scenarios.
//!
//! Tenants: A (LC, 120K IOPS, 100% reads), B (LC, 70K IOPS, 80% reads),
//! C (BE, 95% reads), D (BE, 25% reads); 4KB requests; both LC SLOs are
//! 500µs p95. Scenario 1: A and B use their full reservations. Scenario 2:
//! B issues only 45K IOPS, freeing tokens the BE tenants pick up.
//!
//! Run: `cargo run --release -p reflex-bench --bin fig5_qos`

use reflex_bench::sweep::{PointOutcome, Sweep};
use reflex_bench::{run_testbed, MEASURE, WARMUP};
use reflex_core::{CapacityProfile, LoadPattern, Testbed, WorkloadSpec};
use reflex_qos::{SloSpec, TenantClass, TenantId};
use reflex_sim::SimDuration;

fn tenant_specs(scenario: u8) -> Vec<WorkloadSpec> {
    let slo = |iops, read_pct| {
        TenantClass::LatencyCritical(SloSpec::new(iops, read_pct, SimDuration::from_micros(500)))
    };
    let b_offered = if scenario == 1 { 70_000.0 } else { 45_000.0 };
    let mut specs = Vec::new();

    let mut a = WorkloadSpec::open_loop("A", TenantId(1), slo(120_000, 100), 120_000.0);
    a.conns = 8;
    a.client_threads = 4;
    specs.push(a);

    let mut b = WorkloadSpec::open_loop("B", TenantId(2), slo(70_000, 80), b_offered);
    b.read_pct = 80;
    b.conns = 8;
    b.client_threads = 4;
    specs.push(b);

    // BE tenants run closed-loop: they consume whatever spare throughput
    // exists with bounded outstanding requests.
    let mut c = WorkloadSpec::closed_loop("C", TenantId(3), TenantClass::BestEffort, 16);
    c.read_pct = 95;
    c.conns = 8;
    c.client_threads = 4;
    specs.push(c);

    let mut d = WorkloadSpec::closed_loop("D", TenantId(4), TenantClass::BestEffort, 16);
    d.read_pct = 25;
    d.conns = 8;
    d.client_threads = 4;
    specs.push(d);
    specs
}

fn run(scenario: u8, qos: bool) -> PointOutcome {
    let mut builder = Testbed::builder().seed(41);
    if !qos {
        builder = builder.capacity(CapacityProfile::unlimited());
    }
    let tb = builder.build();
    let report = run_testbed(tb, tenant_specs(scenario), WARMUP, MEASURE);
    let sched = if qos { "enabled" } else { "disabled" };
    let mut out =
        PointOutcome::new(reflex_bench::max_p95_read_us(&report)).with_events(report.engine_events);
    for w in &report.workloads {
        let qd_note = match w.name.as_str() {
            "C" | "D" => "closed-loop",
            _ => "open-loop",
        };
        out = out
            .with_row(format!(
                "{scenario}\t{sched}\t{}\t{:.0}\t{:.0}\t{qd_note}",
                w.name,
                w.iops / 1e3,
                w.p95_read_us()
            ))
            .with_metric(format!("{}_kiops", w.name), w.iops / 1e3)
            .with_metric(format!("{}_p95_us", w.name), w.p95_read_us());
    }
    out
}

fn main() {
    let mut sweep = Sweep::new("fig5_qos");
    for scenario in [1u8, 2] {
        for qos in [false, true] {
            let label = format!("s{scenario}/{}", if qos { "sched" } else { "nosched" });
            sweep.curve(label).point(move || run(scenario, qos));
        }
    }
    let result = sweep.run();
    println!("# Figure 5: 4 tenants sharing one ReFlex server (device A)");
    println!("# LC SLOs: A=120K IOPS@100%r, B=70K@80%r, both p95<=500us");
    println!("scenario\tsched\ttenant\tkiops\tp95_read_us\tload");
    for scenario in [1u8, 2] {
        for qos in [false, true] {
            let label = format!("s{scenario}/{}", if qos { "sched" } else { "nosched" });
            for p in &result.curve(&label).points {
                for row in &p.rows {
                    println!("{row}");
                }
            }
        }
        println!();
    }
    result.write_json_or_warn();
    reflex_bench::telemetry::flush("fig5_qos");
    let _ = LoadPattern::ClosedLoop { queue_depth: 1 }; // (doc reference)
}
