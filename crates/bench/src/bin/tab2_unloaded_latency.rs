//! Table 2: unloaded Flash latency for 4KB random I/Os (QD1), including
//! round-trip network for the remote configurations.
//!
//! Rows: Local (SPDK), iSCSI, libaio (Linux and IX clients), ReFlex (Linux
//! and IX clients). Columns: read avg/p95, write avg/p95 in microseconds.
//!
//! Run: `cargo run --release -p reflex-bench --bin tab2_unloaded_latency`

use reflex_baselines::{BaselineConfig, BaselineServer, LocalRig};
use reflex_bench::run_testbed;
use reflex_core::{Testbed, TestbedBuilder, WorkloadSpec};
use reflex_flash::device_a;
use reflex_net::StackProfile;
use reflex_qos::{SloSpec, TenantClass, TenantId};
use reflex_sim::SimDuration;

fn probe_spec(read_pct: u8) -> WorkloadSpec {
    // A QD1 prober self-clocks at ~1/latency; reserve enough IOPS that the
    // scheduler never throttles it (ReFlex configs only).
    let slo = SloSpec::new(40_000, read_pct.max(1), SimDuration::from_millis(2));
    let mut spec =
        WorkloadSpec::closed_loop("probe", TenantId(1), TenantClass::LatencyCritical(slo), 1);
    spec.read_pct = read_pct;
    spec
}

fn reflex_row(client: StackProfile, read_pct: u8) -> (f64, f64) {
    let tb = Testbed::builder().client_machines(vec![client]).seed(21).build();
    let report = run_testbed(
        tb,
        vec![probe_spec(read_pct)],
        SimDuration::from_millis(50),
        SimDuration::from_millis(400),
    );
    let w = report.workload("probe");
    let h = if read_pct == 100 { &w.read_latency } else { &w.write_latency };
    (h.mean().as_micros_f64(), h.p95().as_micros_f64())
}

fn baseline_row(config: BaselineConfig, client: StackProfile, read_pct: u8) -> (f64, f64) {
    let tb = TestbedBuilder::new()
        .server_stack(StackProfile::linux_tcp())
        .client_machines(vec![client])
        .seed(22)
        .build_with(move |fabric, device, machine| {
            BaselineServer::new(machine, fabric, device, config, 23)
        });
    let mut spec =
        WorkloadSpec::closed_loop("probe", TenantId(1), TenantClass::BestEffort, 1);
    spec.read_pct = read_pct;
    let report = run_testbed(
        tb,
        vec![spec],
        SimDuration::from_millis(50),
        SimDuration::from_millis(400),
    );
    let w = report.workload("probe");
    let h = if read_pct == 100 { &w.read_latency } else { &w.write_latency };
    (h.mean().as_micros_f64(), h.p95().as_micros_f64())
}

fn local_row(read_pct: u8) -> (f64, f64) {
    let mut rig = LocalRig::new(device_a(), 1, 24);
    let rep = rig.run_unloaded(read_pct, 4096, 3_000);
    let h = if read_pct == 100 { &rep.read_latency } else { &rep.write_latency };
    (h.mean().as_micros_f64(), h.p95().as_micros_f64())
}

fn main() {
    println!("# Table 2: unloaded 4KB latency (us). Paper values in parens.");
    println!("config\tread_avg\tread_p95\twrite_avg\twrite_p95");

    let (ra, rp) = local_row(100);
    let (wa, wp) = local_row(0);
    println!("Local (SPDK)       (78/90, 11/17)\t{ra:.0}\t{rp:.0}\t{wa:.0}\t{wp:.0}");

    let (ra, rp) = baseline_row(BaselineConfig::iscsi(), StackProfile::linux_tcp(), 100);
    let (wa, wp) = baseline_row(BaselineConfig::iscsi(), StackProfile::linux_tcp(), 0);
    println!("iSCSI              (211/251, 155/215)\t{ra:.0}\t{rp:.0}\t{wa:.0}\t{wp:.0}");

    let (ra, rp) = baseline_row(BaselineConfig::libaio(), StackProfile::linux_tcp(), 100);
    let (wa, wp) = baseline_row(BaselineConfig::libaio(), StackProfile::linux_tcp(), 0);
    println!("Libaio (Linux)     (183/205, 180/205)\t{ra:.0}\t{rp:.0}\t{wa:.0}\t{wp:.0}");

    let (ra, rp) = baseline_row(BaselineConfig::libaio(), StackProfile::ix_tcp(), 100);
    let (wa, wp) = baseline_row(BaselineConfig::libaio(), StackProfile::ix_tcp(), 0);
    println!("Libaio (IX)        (121/139, 117/144)\t{ra:.0}\t{rp:.0}\t{wa:.0}\t{wp:.0}");

    let (ra, rp) = reflex_row(StackProfile::linux_tcp(), 100);
    let (wa, wp) = reflex_row(StackProfile::linux_tcp(), 0);
    println!("ReFlex (Linux)     (117/135, 58/64)\t{ra:.0}\t{rp:.0}\t{wa:.0}\t{wp:.0}");

    let (ra, rp) = reflex_row(StackProfile::ix_tcp(), 100);
    let (wa, wp) = reflex_row(StackProfile::ix_tcp(), 0);
    println!("ReFlex (IX)        (99/113, 31/34)\t{ra:.0}\t{rp:.0}\t{wa:.0}\t{wp:.0}");
}
