//! Table 2: unloaded Flash latency for 4KB random I/Os (QD1), including
//! round-trip network for the remote configurations.
//!
//! Rows: Local (SPDK), iSCSI, libaio (Linux and IX clients), ReFlex (Linux
//! and IX clients). Columns: read avg/p95, write avg/p95 in microseconds.
//!
//! Run: `cargo run --release -p reflex-bench --bin tab2_unloaded_latency`

use reflex_baselines::{BaselineConfig, BaselineServer, LocalRig};
use reflex_bench::run_testbed;
use reflex_bench::sweep::{PointOutcome, Sweep};
use reflex_core::{Testbed, TestbedBuilder, WorkloadSpec};
use reflex_flash::device_a;
use reflex_net::StackProfile;
use reflex_qos::{SloSpec, TenantClass, TenantId};
use reflex_sim::SimDuration;

fn probe_spec(read_pct: u8) -> WorkloadSpec {
    // A QD1 prober self-clocks at ~1/latency; reserve enough IOPS that the
    // scheduler never throttles it (ReFlex configs only).
    let slo = SloSpec::new(40_000, read_pct.max(1), SimDuration::from_millis(2));
    let mut spec =
        WorkloadSpec::closed_loop("probe", TenantId(1), TenantClass::LatencyCritical(slo), 1);
    spec.read_pct = read_pct;
    spec
}

fn reflex_row(client: StackProfile, read_pct: u8) -> (f64, f64) {
    let tb = Testbed::builder()
        .client_machines(vec![client])
        .seed(21)
        .build();
    let report = run_testbed(
        tb,
        vec![probe_spec(read_pct)],
        SimDuration::from_millis(50),
        SimDuration::from_millis(400),
    );
    let w = report.workload("probe");
    let h = if read_pct == 100 {
        &w.read_latency
    } else {
        &w.write_latency
    };
    (h.mean().as_micros_f64(), h.p95().as_micros_f64())
}

fn baseline_row(config: BaselineConfig, client: StackProfile, read_pct: u8) -> (f64, f64) {
    let tb = TestbedBuilder::new()
        .server_stack(StackProfile::linux_tcp())
        .client_machines(vec![client])
        .seed(22)
        .build_with(move |fabric, device, machine| {
            BaselineServer::new(machine, fabric, device, config, 23)
        });
    let mut spec = WorkloadSpec::closed_loop("probe", TenantId(1), TenantClass::BestEffort, 1);
    spec.read_pct = read_pct;
    let report = run_testbed(
        tb,
        vec![spec],
        SimDuration::from_millis(50),
        SimDuration::from_millis(400),
    );
    let w = report.workload("probe");
    let h = if read_pct == 100 {
        &w.read_latency
    } else {
        &w.write_latency
    };
    (h.mean().as_micros_f64(), h.p95().as_micros_f64())
}

fn local_row(read_pct: u8) -> (f64, f64) {
    let mut rig = LocalRig::new(device_a(), 1, 24);
    let rep = rig.run_unloaded(read_pct, 4096, 3_000);
    let h = if read_pct == 100 {
        &rep.read_latency
    } else {
        &rep.write_latency
    };
    (h.mean().as_micros_f64(), h.p95().as_micros_f64())
}

/// Renders one table row from a read-mode and a write-mode measurement.
fn row_outcome(label: &str, run: impl Fn(u8) -> (f64, f64)) -> PointOutcome {
    let (ra, rp) = run(100);
    let (wa, wp) = run(0);
    PointOutcome::new(rp)
        .with_row(format!("{label}\t{ra:.0}\t{rp:.0}\t{wa:.0}\t{wp:.0}"))
        .with_metric("read_avg_us", ra)
        .with_metric("read_p95_us", rp)
        .with_metric("write_avg_us", wa)
        .with_metric("write_p95_us", wp)
}

fn main() {
    let mut sweep = Sweep::new("tab2_unloaded_latency");
    sweep
        .curve("Local (SPDK)")
        .point(|| row_outcome("Local (SPDK)       (78/90, 11/17)", local_row));
    sweep.curve("iSCSI").point(|| {
        row_outcome("iSCSI              (211/251, 155/215)", |pct| {
            baseline_row(BaselineConfig::iscsi(), StackProfile::linux_tcp(), pct)
        })
    });
    sweep.curve("Libaio (Linux)").point(|| {
        row_outcome("Libaio (Linux)     (183/205, 180/205)", |pct| {
            baseline_row(BaselineConfig::libaio(), StackProfile::linux_tcp(), pct)
        })
    });
    sweep.curve("Libaio (IX)").point(|| {
        row_outcome("Libaio (IX)        (121/139, 117/144)", |pct| {
            baseline_row(BaselineConfig::libaio(), StackProfile::ix_tcp(), pct)
        })
    });
    sweep.curve("ReFlex (Linux)").point(|| {
        row_outcome("ReFlex (Linux)     (117/135, 58/64)", |pct| {
            reflex_row(StackProfile::linux_tcp(), pct)
        })
    });
    sweep.curve("ReFlex (IX)").point(|| {
        row_outcome("ReFlex (IX)        (99/113, 31/34)", |pct| {
            reflex_row(StackProfile::ix_tcp(), pct)
        })
    });
    let result = sweep.run();
    println!("# Table 2: unloaded 4KB latency (us). Paper values in parens.");
    println!("config\tread_avg\tread_p95\twrite_avg\twrite_p95");
    result.print_tsv();
    result.write_json_or_warn();
    reflex_bench::telemetry::flush("tab2_unloaded_latency");
}
