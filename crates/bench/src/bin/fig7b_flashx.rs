//! Figure 7b: FlashX graph analytics slowdown over remote Flash.
//!
//! WCC, PageRank, BFS and SCC on a SOC-LiveJournal1-sized graph (4.8M
//! vertices, 68.9M edges), executed on the local NVMe path, the ReFlex
//! block driver, and iSCSI. Reported as slowdown relative to local Flash
//! (paper: ReFlex 1-3.8%, iSCSI 15-40%).
//!
//! Run: `cargo run --release -p reflex-bench --bin fig7b_flashx`

use reflex_bench::sweep::{PointOutcome, Sweep};
use reflex_flash::device_a;
use reflex_workloads::{run_flashx, Backend, BackendProfile, FlashXConfig, GraphAlgo};

fn algo_point(algo: GraphAlgo) -> PointOutcome {
    let config = FlashXConfig::default();
    let mut runtimes = Vec::new();
    for profile in [
        BackendProfile::local_nvme(),
        BackendProfile::reflex_remote(),
        BackendProfile::iscsi_remote(),
    ] {
        let mut backend = Backend::new(profile, device_a(), 6, 91);
        runtimes.push(run_flashx(algo, &config, &mut backend, 17).as_secs_f64());
    }
    PointOutcome::new(0.0)
        .with_row(format!(
            "{}\t{:.1}\t{:.1}\t{:.1}\t{:.3}\t{:.3}",
            algo.name(),
            runtimes[0],
            runtimes[1],
            runtimes[2],
            runtimes[1] / runtimes[0],
            runtimes[2] / runtimes[0]
        ))
        .with_metric("local_s", runtimes[0])
        .with_metric("reflex_s", runtimes[1])
        .with_metric("iscsi_s", runtimes[2])
        .with_metric("reflex_slowdown", runtimes[1] / runtimes[0])
        .with_metric("iscsi_slowdown", runtimes[2] / runtimes[0])
}

fn main() {
    let mut sweep = Sweep::new("fig7b_flashx");
    for algo in GraphAlgo::all() {
        sweep.curve(algo.name()).point(move || algo_point(algo));
    }
    let result = sweep.run();
    println!("# Figure 7b: FlashX end-to-end slowdown vs local Flash");
    println!("algo\tlocal_s\treflex_s\tiscsi_s\treflex_slowdown\tiscsi_slowdown");
    result.print_tsv();
    result.write_json_or_warn();
    reflex_bench::telemetry::flush("fig7b_flashx");
}
