//! Where do the "+21µs over local Flash" go? (paper Figure 2 / Table 2)
//!
//! Decomposes the unloaded remote read path into its stages — client
//! stack, wire, NIC batching wait, RX processing, QoS scheduling wait,
//! device, completion+TX — from the dataplane's per-request trace,
//! comparing low load against heavy load (where batching and queueing
//! appear).
//!
//! Run: `cargo run --release -p reflex-bench --bin latency_breakdown`

use reflex_core::{Testbed, WorkloadSpec};
use reflex_qos::{SloSpec, TenantClass, TenantId};
use reflex_sim::SimDuration;

fn main() {
    println!("# Server-side latency decomposition (Figure 2 stages)");
    for (label, offered) in [("unloaded", 20_000.0f64), ("mid-load", 400_000.0), ("near-peak", 800_000.0)] {
        let mut tb = Testbed::builder().seed(131).build();
        let slo = SloSpec::new(450_000, 100, SimDuration::from_millis(2));
        let mut spec = WorkloadSpec::open_loop(
            "app",
            TenantId(1),
            TenantClass::LatencyCritical(slo),
            offered,
        );
        spec.io_size = 1024;
        spec.conns = 32;
        spec.client_threads = 8;
        tb.add_workload(spec).expect("admitted");
        tb.run(SimDuration::from_millis(50));
        tb.begin_measurement();
        tb.run(SimDuration::from_millis(200));
        let report = tb.report();
        let w = report.workload("app");
        let b = tb.world().server().threads()[0].latency_breakdown();
        let (rx_wait, rx_proc, sched_wait, device, tx) = b.means_us();
        let server_total = rx_wait + rx_proc + sched_wait + device + tx;
        let client_and_wire = w.mean_read_us() - server_total;
        println!("\n## {label} ({offered:.0} IOPS offered, {:.0} achieved)", w.iops);
        println!("stage\tmean_us");
        println!("client+wire\t{client_and_wire:.1}");
        println!("nic_batch_wait\t{rx_wait:.1}");
        println!("rx_processing\t{rx_proc:.1}");
        println!("qos_sched_wait\t{sched_wait:.1}");
        println!("flash_device\t{device:.1}");
        println!("completion_tx\t{tx:.1}");
        println!("end_to_end_mean\t{:.1}\tp95\t{:.1}", w.mean_read_us(), w.p95_read_us());
    }
}
